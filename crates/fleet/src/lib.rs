//! `specasr-fleet`: deterministic elastic fleet control above the sharded
//! serving router.
//!
//! The [`specasr_server::Router`] serves a *fixed* fleet: N workers chosen
//! at construction.  Real deployments breathe — traffic bursts, quiet hours,
//! machines cycling out for maintenance.  This crate adds the control loop
//! that makes the simulated fleet breathe the same way, without giving up a
//! single deterministic bit:
//!
//! * **Elastic scaling** — a [`FleetController`] evaluates the fleet on a
//!   fixed cadence ([`FleetConfig::evaluate_every_ms`]) against two
//!   pressure signals: per-active-worker queue depth and the P99 latency of
//!   the Interactive and Standard SLO classes.  A signal must breach its
//!   target for [`FleetConfig::scale_up_after`] *consecutive* evaluations
//!   before a worker is added (hysteresis — one bursty interval never flaps
//!   the fleet), and sustained headroom for
//!   [`FleetConfig::scale_down_after`] evaluations before one is drained.
//! * **Live drain and migration** — scale-down never kills work.  The
//!   drained worker's queue re-routes through the consistent-hash ring and
//!   its in-flight sessions migrate: same-machine block-table hand-off when
//!   the destination has headroom (decode state survives, no re-prefill),
//!   preempt-and-restore otherwise.  Transcripts are byte-identical either
//!   way.
//! * **Determinism** — the control loop runs on the fleet's simulated
//!   clock.  The same configuration and workload produce the same scaling
//!   decisions, the same migrations, and the same transcripts, run after
//!   run.
//!
//! # Example
//!
//! ```
//! use specasr::{Policy, SpeculativeConfig};
//! use specasr_audio::{Corpus, EncoderProfile, Split};
//! use specasr_fleet::{FleetConfig, FleetController};
//! use specasr_models::{ModelProfile, SimulatedAsrModel, TokenizerBinding};
//! use specasr_server::{Router, RouterConfig};
//!
//! let corpus = Corpus::librispeech_like(5, 8);
//! let binding = TokenizerBinding::for_corpus(&corpus);
//! let target = SimulatedAsrModel::target(ModelProfile::whisper_medium_en(), 7);
//! let draft = SimulatedAsrModel::draft_paired(ModelProfile::whisper_tiny_en(), 8, &target);
//!
//! let make = {
//!     let (draft, target) = (draft.clone(), target.clone());
//!     move |_| (draft.clone(), target.clone())
//! };
//! let router = Router::new(
//!     RouterConfig::default().with_workers(1),
//!     binding,
//!     EncoderProfile::whisper_medium_encoder(),
//!     make.clone(),
//! );
//! let mut fleet = FleetController::new(router, FleetConfig::default(), make);
//! let policy = Policy::Speculative(SpeculativeConfig::short_single());
//! for utterance in corpus.split(Split::TestClean) {
//!     fleet.submit(policy, utterance).ok();
//! }
//! let outcomes = fleet.run_until_idle();
//! assert_eq!(outcomes.len(), 8);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use specasr::Policy;
use specasr_audio::Utterance;
use specasr_models::AsrDecoderModel;
use specasr_server::{
    RequestId, RequestOutcome, Router, SloClass, SubmitError, Worker, WorkerId, WorkerProfile,
};
use specasr_trace::MetricsRegistry;

/// Configuration of the elastic control loop.
///
/// The defaults scale between 1 and 8 workers, evaluating every 250 ms of
/// simulated time, and require 3 consecutive breached evaluations before
/// scaling up (and 8 relaxed ones before scaling down) — enough hysteresis
/// that a single bursty interval never flaps the fleet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetConfig {
    /// The fleet never drains below this many active workers.
    pub min_workers: usize,
    /// The fleet never grows past this many active workers.
    pub max_workers: usize,
    /// Evaluation cadence on the simulated timeline.
    pub evaluate_every_ms: f64,
    /// Consecutive breached evaluations required before scaling up.
    pub scale_up_after: usize,
    /// Consecutive headroom evaluations required before scaling down.
    pub scale_down_after: usize,
    /// Queue-pressure target: mean queued requests per active worker above
    /// which an evaluation counts as breached.
    pub queue_target: f64,
    /// End-to-end P99 target for the latency-critical SLO classes
    /// (Interactive and Standard); `None` disables the latency signal and
    /// scales on queue pressure alone.
    pub e2e_p99_target_ms: Option<f64>,
    /// The capacity profile given to workers added by scale-up.
    pub scale_profile: WorkerProfile,
}

impl FleetConfig {
    /// Returns this configuration with different fleet-size bounds.
    pub fn with_worker_bounds(mut self, min_workers: usize, max_workers: usize) -> Self {
        self.min_workers = min_workers;
        self.max_workers = max_workers;
        self
    }

    /// Returns this configuration with a different evaluation cadence.
    pub fn with_evaluate_every_ms(mut self, evaluate_every_ms: f64) -> Self {
        self.evaluate_every_ms = evaluate_every_ms;
        self
    }

    /// Returns this configuration with different hysteresis depths.
    pub fn with_hysteresis(mut self, scale_up_after: usize, scale_down_after: usize) -> Self {
        self.scale_up_after = scale_up_after;
        self.scale_down_after = scale_down_after;
        self
    }

    /// Returns this configuration with a different queue-pressure target.
    pub fn with_queue_target(mut self, queue_target: f64) -> Self {
        self.queue_target = queue_target;
        self
    }

    /// Returns this configuration with a different (or disabled) P99 target.
    pub fn with_e2e_p99_target_ms(mut self, target_ms: Option<f64>) -> Self {
        self.e2e_p99_target_ms = target_ms;
        self
    }

    /// Returns this configuration with a different scale-up profile.
    pub fn with_scale_profile(mut self, profile: WorkerProfile) -> Self {
        self.scale_profile = profile;
        self
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics when the bounds are empty or inverted, the cadence is not
    /// finite and positive, a hysteresis depth is zero, the queue target is
    /// not finite and positive, a set P99 target is not finite and
    /// positive, or the scale profile is invalid.
    pub fn validate(&self) {
        assert!(self.min_workers > 0, "min_workers must be positive");
        assert!(
            self.max_workers >= self.min_workers,
            "max_workers must be at least min_workers"
        );
        assert!(
            self.evaluate_every_ms.is_finite() && self.evaluate_every_ms > 0.0,
            "evaluate_every_ms must be finite and positive"
        );
        assert!(self.scale_up_after > 0, "scale_up_after must be positive");
        assert!(
            self.scale_down_after > 0,
            "scale_down_after must be positive"
        );
        assert!(
            self.queue_target.is_finite() && self.queue_target > 0.0,
            "queue_target must be finite and positive"
        );
        if let Some(target) = self.e2e_p99_target_ms {
            assert!(
                target.is_finite() && target > 0.0,
                "e2e_p99_target_ms must be finite and positive when set"
            );
        }
        self.scale_profile.validate();
    }
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            min_workers: 1,
            max_workers: 8,
            evaluate_every_ms: 250.0,
            scale_up_after: 3,
            scale_down_after: 8,
            queue_target: 4.0,
            e2e_p99_target_ms: None,
            scale_profile: WorkerProfile::default(),
        }
    }
}

/// Every decision the control loop has taken, exactly as counted — the
/// reconciliation source for the published `specasr_fleet_*` metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FleetCounters {
    /// Control-loop evaluations executed.
    pub evaluations: usize,
    /// Evaluations whose pressure signals breached a target.
    pub breached_evaluations: usize,
    /// Scale-up decisions (each added exactly one worker).
    pub scale_ups: usize,
    /// Scale-down decisions (each drained exactly one worker).
    pub scale_downs: usize,
    /// Drained workers that went idle and were removed from the fleet.
    pub workers_removed: usize,
    /// In-flight sessions migrated off draining workers.
    pub sessions_migrated: usize,
}

/// A deterministic autoscaler owning a [`Router`] and a model factory.
///
/// Drive it exactly like a router — [`FleetController::submit`] then
/// [`FleetController::advance_to`] / [`FleetController::run_until_idle`] —
/// and it interleaves control-loop evaluations at the configured cadence,
/// adding, draining, and reaping workers as pressure dictates.
pub struct FleetController<D, T, F> {
    router: Router<D, T>,
    config: FleetConfig,
    make_models: F,
    next_eval_ms: f64,
    breach_streak: usize,
    headroom_streak: usize,
    counters: FleetCounters,
}

impl<D, T, F> FleetController<D, T, F>
where
    D: AsrDecoderModel,
    T: AsrDecoderModel + Send + 'static,
    F: FnMut(WorkerId) -> (D, T),
{
    /// Wraps `router` in a control loop that asks `make_models` for each
    /// scaled-up worker's draft/target pair.
    ///
    /// # Panics
    ///
    /// Panics if `config` is invalid (see [`FleetConfig::validate`]).
    pub fn new(router: Router<D, T>, config: FleetConfig, make_models: F) -> Self {
        config.validate();
        let next_eval_ms = router.now_ms() + config.evaluate_every_ms;
        FleetController {
            router,
            config,
            make_models,
            next_eval_ms,
            breach_streak: 0,
            headroom_streak: 0,
            counters: FleetCounters::default(),
        }
    }

    /// The wrapped router, for inspection.
    pub fn router(&self) -> &Router<D, T> {
        &self.router
    }

    /// The wrapped router, mutably (e.g. to install drafters or tracing).
    pub fn router_mut(&mut self) -> &mut Router<D, T> {
        &mut self.router
    }

    /// The control-loop configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// Every decision taken so far.
    pub fn counters(&self) -> FleetCounters {
        self.counters
    }

    /// Consecutive breached evaluations ending at the latest one.
    pub fn breach_streak(&self) -> usize {
        self.breach_streak
    }

    /// Consecutive headroom evaluations ending at the latest one.
    pub fn headroom_streak(&self) -> usize {
        self.headroom_streak
    }

    /// Submits one utterance at the current timeline instant (see
    /// [`Router::submit`]).
    pub fn submit(
        &mut self,
        policy: Policy,
        utterance: &Utterance,
    ) -> Result<RequestId, SubmitError> {
        self.router.submit(policy, utterance)
    }

    /// Submits one utterance with a time-to-first-token budget (see
    /// [`Router::submit_with_budget`]).
    pub fn submit_with_budget(
        &mut self,
        policy: Policy,
        utterance: &Utterance,
        ttft_budget_ms: Option<f64>,
    ) -> Result<RequestId, SubmitError> {
        self.router
            .submit_with_budget(policy, utterance, ttft_budget_ms)
    }

    /// Advances the fleet to `deadline_ms`, running a control-loop
    /// evaluation at every elapsed cadence boundary, and returns whatever
    /// completed.
    pub fn advance_to(&mut self, deadline_ms: f64) -> Vec<RequestOutcome> {
        let mut outcomes = Vec::new();
        while self.next_eval_ms <= deadline_ms {
            let boundary = self.next_eval_ms;
            outcomes.extend(self.router.advance_to(boundary));
            self.evaluate();
            self.next_eval_ms = boundary + self.config.evaluate_every_ms;
        }
        outcomes.extend(self.router.advance_to(deadline_ms));
        outcomes
    }

    /// Serves until nothing is queued or in flight anywhere, evaluating the
    /// control loop along the way, then reaps any still-draining workers.
    pub fn run_until_idle(&mut self) -> Vec<RequestOutcome> {
        let mut outcomes = Vec::new();
        while !self.router.is_idle() {
            let boundary = self.next_eval_ms;
            outcomes.extend(self.router.advance_to(boundary));
            self.evaluate();
            self.next_eval_ms = boundary + self.config.evaluate_every_ms;
        }
        self.counters.workers_removed += self.router.reap_drained().len();
        outcomes
    }

    /// One control-loop evaluation: reap drained workers, measure pressure,
    /// update the hysteresis streaks, and scale when a streak completes.
    fn evaluate(&mut self) {
        self.counters.evaluations += 1;
        self.counters.workers_removed += self.router.reap_drained().len();

        let active = self.router.active_workers();
        let queue_pressure = self.router.queued() as f64 / active as f64;
        let p99_breach = self.config.e2e_p99_target_ms.is_some_and(|target| {
            let stats = self.router.fleet_stats();
            [SloClass::Interactive, SloClass::Standard]
                .iter()
                .any(|&class| {
                    let slo = stats.slo_class(class);
                    slo.completed() > 0 && slo.e2e_p99_ms() > target
                })
        });

        let breached = queue_pressure > self.config.queue_target || p99_breach;
        // Headroom is deliberately stricter than "not breached": the queue
        // must be *well* under target, so the fleet doesn't oscillate
        // around the threshold.
        let headroom = !breached && queue_pressure <= self.config.queue_target / 2.0;
        if breached {
            self.counters.breached_evaluations += 1;
            self.breach_streak += 1;
            self.headroom_streak = 0;
        } else if headroom {
            self.headroom_streak += 1;
            self.breach_streak = 0;
        } else {
            self.breach_streak = 0;
            self.headroom_streak = 0;
        }

        if self.breach_streak >= self.config.scale_up_after && active < self.config.max_workers {
            let profile = self.config.scale_profile;
            self.router.add_worker(profile, &mut self.make_models);
            self.counters.scale_ups += 1;
            self.breach_streak = 0;
        } else if self.headroom_streak >= self.config.scale_down_after
            && active > self.config.min_workers
        {
            // Drain the most recently added active worker: LIFO keeps the
            // longest-lived workers (and their prefix caches) in place and
            // is deterministic by construction.
            let newest = self
                .router
                .workers()
                .iter()
                .filter(|worker| !worker.is_draining())
                .map(Worker::id)
                .max()
                .expect("an active fleet always has an active worker");
            self.counters.sessions_migrated += self.router.drain_worker(newest);
            self.counters.scale_downs += 1;
            self.headroom_streak = 0;
        }
    }

    /// Publishes the fleet-control gauges and counters into `registry`
    /// under the `specasr_fleet_*` namespace, alongside the router's
    /// serving metrics (`specasr_migrations_total` among them).  The values
    /// reconcile exactly with [`FleetController::counters`].
    pub fn publish_metrics(&self, registry: &mut MetricsRegistry) {
        self.router.fleet_stats().publish_metrics(registry);
        registry.set_gauge(
            "specasr_fleet_workers",
            "Workers currently in the fleet, by lifecycle state.",
            &[("state", "active")],
            self.router.active_workers() as f64,
        );
        registry.set_gauge(
            "specasr_fleet_workers",
            "Workers currently in the fleet, by lifecycle state.",
            &[("state", "draining")],
            self.router.draining_workers() as f64,
        );
        registry.set_counter(
            "specasr_fleet_evaluations_total",
            "Control-loop evaluations executed.",
            &[],
            self.counters.evaluations as f64,
        );
        registry.set_counter(
            "specasr_fleet_breached_evaluations_total",
            "Evaluations whose pressure signals breached a target.",
            &[],
            self.counters.breached_evaluations as f64,
        );
        registry.set_counter(
            "specasr_fleet_scale_ups_total",
            "Scale-up decisions taken.",
            &[],
            self.counters.scale_ups as f64,
        );
        registry.set_counter(
            "specasr_fleet_scale_downs_total",
            "Scale-down decisions taken.",
            &[],
            self.counters.scale_downs as f64,
        );
        registry.set_counter(
            "specasr_fleet_workers_removed_total",
            "Drained workers reaped from the fleet.",
            &[],
            self.counters.workers_removed as f64,
        );
        registry.set_gauge(
            "specasr_fleet_breach_streak",
            "Consecutive breached evaluations ending at the latest one.",
            &[],
            self.breach_streak as f64,
        );
        registry.set_gauge(
            "specasr_fleet_headroom_streak",
            "Consecutive headroom evaluations ending at the latest one.",
            &[],
            self.headroom_streak as f64,
        );
    }
}

impl<D: std::fmt::Debug, T: std::fmt::Debug, F> std::fmt::Debug for FleetController<D, T, F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetController")
            .field("config", &self.config)
            .field("next_eval_ms", &self.next_eval_ms)
            .field("breach_streak", &self.breach_streak)
            .field("headroom_streak", &self.headroom_streak)
            .field("counters", &self.counters)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use specasr::SpeculativeConfig;
    use specasr_audio::{Corpus, EncoderProfile, Split};
    use specasr_models::{ModelProfile, SimulatedAsrModel, TokenizerBinding};
    use specasr_server::{LoadGen, RouterConfig, ServerConfig};

    type Fleet = FleetController<
        SimulatedAsrModel,
        SimulatedAsrModel,
        Box<dyn FnMut(WorkerId) -> (SimulatedAsrModel, SimulatedAsrModel)>,
    >;

    fn fleet(config: FleetConfig, workers: usize) -> (Fleet, Corpus) {
        let corpus = Corpus::librispeech_like(88, 12);
        let binding = TokenizerBinding::for_corpus(&corpus);
        let target = SimulatedAsrModel::target(ModelProfile::whisper_medium_en(), 7);
        let draft = SimulatedAsrModel::draft_paired(ModelProfile::whisper_tiny_en(), 8, &target);
        let mut make: Box<dyn FnMut(WorkerId) -> (SimulatedAsrModel, SimulatedAsrModel)> =
            Box::new(move |_| (draft.clone(), target.clone()));
        let router = Router::new(
            RouterConfig::default()
                .with_workers(workers)
                .with_worker_config(ServerConfig::default().with_queue_depth(256)),
            binding,
            EncoderProfile::whisper_medium_encoder(),
            &mut make,
        );
        (FleetController::new(router, config, make), corpus)
    }

    fn burst(fleet: &mut Fleet, corpus: &Corpus, requests: usize, qps: f64) -> Vec<RequestOutcome> {
        let policy = Policy::Speculative(SpeculativeConfig::short_single());
        let pool: Vec<&Utterance> = Split::ALL
            .iter()
            .flat_map(|&split| corpus.split(split))
            .collect();
        let mut gen = LoadGen::new(7, qps);
        let mut outcomes = Vec::new();
        for index in 0..requests {
            let arrival = gen.next_arrival_ms();
            outcomes.extend(fleet.advance_to(arrival));
            fleet
                .submit(policy, pool[index % pool.len()])
                .expect("queues are deep");
        }
        outcomes.extend(fleet.run_until_idle());
        outcomes
    }

    #[test]
    fn a_burst_scales_the_fleet_up() {
        let config = FleetConfig::default()
            .with_worker_bounds(1, 4)
            .with_hysteresis(2, 8)
            .with_queue_target(2.0);
        let (mut fleet, corpus) = fleet(config, 1);
        let outcomes = burst(&mut fleet, &corpus, 96, 400.0);
        assert_eq!(outcomes.len(), 96);
        let counters = fleet.counters();
        assert!(
            counters.scale_ups > 0,
            "a 400 QPS burst on one worker must breach the queue target, got {counters:?}"
        );
        assert!(counters.evaluations > 0);
    }

    #[test]
    fn quiet_traffic_scales_back_down_and_reaps() {
        let config = FleetConfig::default()
            .with_worker_bounds(1, 4)
            .with_hysteresis(2, 2)
            .with_queue_target(2.0);
        let (mut fleet, corpus) = fleet(config, 3);
        // A trickle far below capacity: the fleet must shed workers.
        let policy = Policy::Speculative(SpeculativeConfig::short_single());
        let pool = corpus.split(Split::TestClean);
        let mut gen = LoadGen::new(3, 0.5);
        for index in 0..8 {
            let arrival = gen.next_arrival_ms();
            fleet.advance_to(arrival);
            fleet.submit(policy, &pool[index % pool.len()]).unwrap();
        }
        fleet.run_until_idle();
        let counters = fleet.counters();
        assert!(
            counters.scale_downs > 0,
            "sustained headroom must drain workers, got {counters:?}"
        );
        assert_eq!(
            counters.workers_removed, counters.scale_downs,
            "every drained worker goes idle and is reaped by the end"
        );
        assert_eq!(fleet.router().active_workers(), 1);
        assert_eq!(fleet.router().draining_workers(), 0);
    }

    #[test]
    fn scaling_decisions_are_deterministic() {
        let mut runs = Vec::new();
        for _ in 0..2 {
            let config = FleetConfig::default()
                .with_worker_bounds(1, 4)
                .with_hysteresis(2, 4)
                .with_queue_target(2.0);
            let (mut fleet, corpus) = fleet(config, 1);
            let outcomes = burst(&mut fleet, &corpus, 64, 300.0);
            let transcripts: Vec<(u64, String)> = outcomes
                .iter()
                .map(|o| (o.id.value(), o.text.clone()))
                .collect();
            runs.push((fleet.counters(), transcripts));
        }
        assert_eq!(runs[0], runs[1]);
    }

    #[test]
    fn bounds_cap_the_fleet_size() {
        let config = FleetConfig::default()
            .with_worker_bounds(1, 2)
            .with_hysteresis(1, 1)
            .with_queue_target(1.0);
        let (mut fleet, corpus) = fleet(config, 1);
        burst(&mut fleet, &corpus, 96, 500.0);
        assert!(fleet.router().active_workers() <= 2);
        // min bound: run dry for a long time, the last worker stays.
        fleet.advance_to(fleet.router().now_ms() + 60_000.0);
        assert_eq!(fleet.router().active_workers(), 1);
    }

    #[test]
    fn published_metrics_reconcile_with_counters() {
        let config = FleetConfig::default()
            .with_worker_bounds(1, 4)
            .with_hysteresis(2, 3)
            .with_queue_target(2.0);
        let (mut fleet, corpus) = fleet(config, 1);
        burst(&mut fleet, &corpus, 64, 300.0);
        let mut registry = MetricsRegistry::new();
        fleet.publish_metrics(&mut registry);
        let rendered = registry.render();
        let counters = fleet.counters();
        let value = |needle: &str| -> f64 {
            rendered
                .lines()
                .find(|line| line.starts_with(needle))
                .unwrap_or_else(|| panic!("metric {needle} missing from:\n{rendered}"))
                .rsplit(' ')
                .next()
                .unwrap()
                .parse()
                .unwrap()
        };
        assert_eq!(
            value("specasr_fleet_evaluations_total"),
            counters.evaluations as f64
        );
        assert_eq!(
            value("specasr_fleet_scale_ups_total"),
            counters.scale_ups as f64
        );
        assert_eq!(
            value("specasr_fleet_scale_downs_total"),
            counters.scale_downs as f64
        );
        assert_eq!(
            value("specasr_fleet_workers_removed_total"),
            counters.workers_removed as f64
        );
        assert_eq!(
            value("specasr_fleet_workers{state=\"active\"}"),
            fleet.router().active_workers() as f64
        );
        let stats = fleet.router().fleet_stats();
        assert_eq!(
            value("specasr_migrations_total{path=\"handoff\"}")
                + value("specasr_migrations_total{path=\"restore\"}"),
            counters.sessions_migrated as f64,
            "router-side migration stats must reconcile with the controller's count"
        );
        assert_eq!(stats.migrations(), counters.sessions_migrated);
    }

    #[test]
    #[should_panic(expected = "max_workers")]
    fn inverted_bounds_panic() {
        FleetConfig::default().with_worker_bounds(4, 2).validate();
    }
}
