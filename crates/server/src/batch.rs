//! Cost model of one scheduler iteration on the shared accelerator.
//!
//! The latency substrate (`specasr_models::LatencyModel`) prices a forward
//! pass as `base_ms + per_token_ms · tokens`.  Continuous batching exploits
//! exactly that shape:
//!
//! * **Grouped verification** — the drafted sequences/trees of every session
//!   in the batch are concatenated into *one* target forward pass (each
//!   sequence attends only to its own prefix, the batched generalisation of
//!   the tree attention mask), so the pass base cost is paid once instead of
//!   once per session;
//! * **Parallel drafting** — the draft models of all sessions run
//!   concurrently on the accelerator, so the tick's draft wall time is the
//!   slowest session's draft phase, not the sum.
//!
//! [`TickCost`] computes both, and keeps the sequential-equivalent cost so
//! the scheduler can report how much device time batching saved.

use specasr_models::LatencyModel;

/// Wall-clock cost of one scheduler tick, with its sequential equivalent.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TickCost {
    /// Wall time of the batched tick: slowest draft phase + one grouped
    /// verification pass.
    pub wall_ms: f64,
    /// What the same work would have cost run one session after another.
    pub sequential_ms: f64,
}

impl TickCost {
    /// Costs one tick.
    ///
    /// `draft_ms` holds each batched session's draft-phase device time for
    /// this round; `verify_widths` holds the token width each session's
    /// verification pass must process (from
    /// [`specasr::DraftedRound::verify_tokens`]).
    pub fn of_round(draft_ms: &[f64], verify_widths: &[usize], target: &LatencyModel) -> TickCost {
        assert_eq!(
            draft_ms.len(),
            verify_widths.len(),
            "one draft time and one verify width per batched session"
        );
        if draft_ms.is_empty() {
            return TickCost::default();
        }
        let slowest_draft = draft_ms.iter().copied().fold(0.0f64, f64::max);
        let wall_ms = slowest_draft + grouped_verify_ms(target, verify_widths);
        let sequential_ms = draft_ms.iter().sum::<f64>()
            + verify_widths
                .iter()
                .map(|&width| target.forward_pass_ms(width))
                .sum::<f64>();
        TickCost {
            wall_ms,
            sequential_ms,
        }
    }

    /// Device milliseconds saved by batching this tick.
    pub fn saved_ms(&self) -> f64 {
        (self.sequential_ms - self.wall_ms).max(0.0)
    }
}

/// Cost of verifying all sessions' drafts in one grouped target pass: the
/// base cost is paid once, the per-token cost for every drafted token.
pub fn grouped_verify_ms(target: &LatencyModel, verify_widths: &[usize]) -> f64 {
    if verify_widths.is_empty() {
        return 0.0;
    }
    target.forward_pass_ms(verify_widths.iter().sum())
}

/// One tick's verification schedule against an in-flight target backend:
/// which sessions verify in which cross-session batch (wave), when each
/// wave is submitted, and the modeled makespan of the whole tick.
///
/// Produced by [`plan_verify_waves`]; the scheduler submits each wave as one
/// [`specasr_models::BackendBatch`] at `tick_start + submit_offsets_ms[w]`
/// and advances its wall clock to the last completion.
#[derive(Debug, Clone, PartialEq)]
pub struct VerifyPlan {
    /// Session indices per wave, in draft-completion order (ties broken by
    /// index, so the schedule is deterministic).
    pub waves: Vec<Vec<usize>>,
    /// Submission offset of each wave relative to the tick start — the
    /// moment its slowest member finished drafting.
    pub submit_offsets_ms: Vec<f64>,
    /// Modeled completion of the last wave, relative to the tick start.
    pub makespan_ms: f64,
}

/// Plans the tick's verification waves against a serialised device with
/// per-batch `dispatch_overhead_ms` (the [`specasr_models::InFlightSimBackend`]
/// timeline model).
///
/// The historical schedule — wait for the slowest draft, then one grouped
/// verification pass over everyone — is always a candidate.  The overlap
/// alternative splits the sessions (ordered by draft-completion time) into
/// two waves: the early finishers' verification batch is submitted as soon
/// as *their* slowest draft lands, so its service time executes in flight
/// while the straggling draft phases are still running, and only the
/// stragglers' (smaller) batch remains on the critical path.  The split is
/// chosen per tick by evaluating the modeled makespan of every cut point
/// and keeping the single grouped batch unless a split is strictly faster —
/// so the plan never costs more wall-clock than the historical schedule,
/// and wins exactly when one session's long adaptive draft phase used to
/// stall everyone else's verification (the `serve_load` bottleneck at high
/// concurrency).
///
/// This is the two-wave, fresh-device specialisation of
/// [`plan_verify_waves_pipelined`], retained as the drain-per-tick
/// scheduler's planner (`max_in_flight_waves = 1`); the pipelined scheduler
/// calls the N-wave form with absolute draft-completion times and the
/// device backlog carried over from previous ticks.
///
/// # Panics
///
/// Panics if `draft_ms` and `verify_widths` differ in length.
pub fn plan_verify_waves(
    draft_ms: &[f64],
    verify_widths: &[usize],
    target: &LatencyModel,
    dispatch_overhead_ms: f64,
) -> VerifyPlan {
    plan_verify_waves_pipelined(
        draft_ms,
        verify_widths,
        target,
        dispatch_overhead_ms,
        2,
        0.0,
    )
}

/// Plans up to `max_waves` verification waves over sessions whose draft
/// phases complete at `draft_done_ms` (any shared reference frame: the
/// drain-per-tick scheduler passes tick-relative durations, the pipelined
/// scheduler passes absolute wall times), against a serialised device that
/// is busy until `device_free_ms` with work from previous ticks.
///
/// Sessions are ordered by draft completion (ties by index) and partitioned
/// into contiguous cohorts; each cohort's batch is submitted the moment its
/// slowest member finishes drafting, pays `dispatch_overhead_ms`, then
/// queues behind both the device backlog and every earlier wave.  The
/// partition is chosen by a dynamic program minimising the modeled
/// completion of the last wave: minimising each prefix's completion is
/// optimal because a later wave's start is monotone in it.  Fewer waves are
/// preferred whenever splitting is not strictly faster (an extra wave pays
/// the pass base cost again), so the single grouped batch remains the plan
/// whenever overlap cannot win.
///
/// `submit_offsets_ms` and `makespan_ms` come back in the caller's
/// reference frame.
///
/// # Panics
///
/// Panics if the slice lengths differ or `max_waves` is zero.
pub fn plan_verify_waves_pipelined(
    draft_done_ms: &[f64],
    verify_widths: &[usize],
    target: &LatencyModel,
    dispatch_overhead_ms: f64,
    max_waves: usize,
    device_free_ms: f64,
) -> VerifyPlan {
    assert_eq!(
        draft_done_ms.len(),
        verify_widths.len(),
        "one draft time and one verify width per batched session"
    );
    assert!(max_waves >= 1, "a plan needs at least one wave");
    let n = draft_done_ms.len();
    if n == 0 {
        return VerifyPlan {
            waves: Vec::new(),
            submit_offsets_ms: Vec::new(),
            makespan_ms: 0.0,
        };
    }
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        draft_done_ms[a]
            .partial_cmp(&draft_done_ms[b])
            .expect("draft times are finite")
            .then(a.cmp(&b))
    });
    // Prefix token widths over the draft-completion order.
    let mut width_prefix = Vec::with_capacity(n + 1);
    width_prefix.push(0usize);
    for &index in &order {
        width_prefix.push(width_prefix.last().unwrap() + verify_widths[index]);
    }
    // One wave over the sorted range `j..i`, entering a device free at
    // `free`: submitted when its slowest draft lands, started after dispatch
    // overhead and whatever still occupies the device.
    let wave_done = |free: f64, j: usize, i: usize| -> f64 {
        let submit = draft_done_ms[order[i - 1]];
        let start = (submit + dispatch_overhead_ms).max(free);
        start + target.forward_pass_ms(width_prefix[i] - width_prefix[j])
    };
    let wave_cap = max_waves.min(n);
    // dp[w][i]: earliest completion of the first `i` sorted sessions in
    // exactly `w + 1` waves; cut[w][i] reconstructs the last cohort.
    let mut dp = vec![vec![f64::INFINITY; n + 1]; wave_cap];
    let mut cut = vec![vec![0usize; n + 1]; wave_cap];
    for (i, slot) in dp[0].iter_mut().enumerate().skip(1) {
        *slot = wave_done(device_free_ms, 0, i);
    }
    for w in 1..wave_cap {
        for i in (w + 1)..=n {
            for j in w..i {
                let candidate = wave_done(dp[w - 1][j], j, i);
                if candidate < dp[w][i] - 1e-9 {
                    dp[w][i] = candidate;
                    cut[w][i] = j;
                }
            }
        }
    }
    // Prefer fewer waves unless more are strictly faster.
    let mut best_w = 0;
    for w in 1..wave_cap {
        if dp[w][n] < dp[best_w][n] - 1e-9 {
            best_w = w;
        }
    }
    // Reconstruct cohort boundaries back to front.
    let mut bounds = vec![n];
    let mut at = n;
    for w in (1..=best_w).rev() {
        at = cut[w][at];
        bounds.push(at);
    }
    bounds.push(0);
    bounds.reverse();
    let mut waves = Vec::with_capacity(best_w + 1);
    let mut submit_offsets_ms = Vec::with_capacity(best_w + 1);
    for pair in bounds.windows(2) {
        let (from, to) = (pair[0], pair[1]);
        submit_offsets_ms.push(draft_done_ms[order[to - 1]]);
        waves.push(order[from..to].to_vec());
    }
    VerifyPlan {
        waves,
        submit_offsets_ms,
        makespan_ms: dp[best_w][n],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target() -> LatencyModel {
        LatencyModel::new(20.0, 0.5, 0.1)
    }

    #[test]
    fn grouped_verification_pays_the_base_cost_once() {
        let widths = [8usize, 4, 1];
        let grouped = grouped_verify_ms(&target(), &widths);
        let sequential: f64 = widths.iter().map(|&w| target().forward_pass_ms(w)).sum();
        assert!((grouped - (20.0 + 0.5 * 13.0)).abs() < 1e-12);
        assert!(grouped < sequential);
        assert_eq!(grouped_verify_ms(&target(), &[]), 0.0);
    }

    #[test]
    fn tick_wall_time_is_slowest_draft_plus_one_pass() {
        let cost = TickCost::of_round(&[3.0, 7.0, 5.0], &[8, 8, 8], &target());
        assert!((cost.wall_ms - (7.0 + 20.0 + 0.5 * 24.0)).abs() < 1e-12);
        assert!(cost.sequential_ms > cost.wall_ms);
        assert!(cost.saved_ms() > 0.0);
    }

    #[test]
    fn single_session_ticks_save_nothing() {
        let cost = TickCost::of_round(&[4.0], &[8], &target());
        assert!((cost.wall_ms - cost.sequential_ms).abs() < 1e-12);
        assert_eq!(cost.saved_ms(), 0.0);
    }

    #[test]
    fn empty_ticks_cost_nothing() {
        let cost = TickCost::of_round(&[], &[], &target());
        assert_eq!(cost.wall_ms, 0.0);
        assert_eq!(cost.sequential_ms, 0.0);
    }

    #[test]
    #[should_panic(expected = "one draft time and one verify width")]
    fn mismatched_lengths_panic() {
        TickCost::of_round(&[1.0], &[], &target());
    }

    #[test]
    fn uniform_drafts_plan_one_grouped_batch() {
        // With no straggler there is nothing to overlap: splitting would pay
        // the pass base cost twice for no gain.
        let plan = plan_verify_waves(&[5.0, 5.0, 5.0], &[8, 8, 8], &target(), 0.0);
        assert_eq!(plan.waves.len(), 1);
        assert_eq!(plan.waves[0].len(), 3);
        assert!((plan.submit_offsets_ms[0] - 5.0).abs() < 1e-12);
        let analytic = TickCost::of_round(&[5.0, 5.0, 5.0], &[8, 8, 8], &target());
        assert!((plan.makespan_ms - analytic.wall_ms).abs() < 1e-12);
    }

    #[test]
    fn a_long_straggler_draft_hides_the_early_wave() {
        // Three fast drafters (3 ms) and one 100 ms straggler: the fast
        // sessions' verification (20 + 0.5·24 = 32 ms) fully executes while
        // the straggler drafts, leaving only its own pass on the critical
        // path.
        let draft_ms = [3.0, 3.0, 100.0, 3.0];
        let widths = [8usize, 8, 8, 8];
        let plan = plan_verify_waves(&draft_ms, &widths, &target(), 0.0);
        assert_eq!(plan.waves.len(), 2);
        assert_eq!(plan.waves[0], vec![0, 1, 3]);
        assert_eq!(plan.waves[1], vec![2]);
        assert!((plan.submit_offsets_ms[0] - 3.0).abs() < 1e-12);
        assert!((plan.submit_offsets_ms[1] - 100.0).abs() < 1e-12);
        // Makespan: straggler draft + its own verification pass.
        assert!((plan.makespan_ms - (100.0 + 20.0 + 0.5 * 8.0)).abs() < 1e-12);
        let analytic = TickCost::of_round(&draft_ms, &widths, &target());
        assert!(
            plan.makespan_ms < analytic.wall_ms,
            "overlap must beat the wait-for-all schedule"
        );
    }

    #[test]
    fn the_plan_never_exceeds_the_single_batch_makespan() {
        let cases: [(&[f64], &[usize]); 4] = [
            (&[1.0], &[4]),
            (&[10.0, 12.0], &[8, 2]),
            (&[1.0, 2.0, 3.0, 50.0, 4.0], &[8, 8, 8, 8, 8]),
            (&[0.0, 0.0, 90.0], &[24, 1, 3]),
        ];
        for (draft_ms, widths) in cases {
            for overhead in [0.0, 2.5] {
                let plan = plan_verify_waves(draft_ms, widths, &target(), overhead);
                let d_max = draft_ms.iter().copied().fold(0.0f64, f64::max);
                let single = d_max + overhead + grouped_verify_ms(&target(), widths);
                assert!(plan.makespan_ms <= single + 1e-9);
                assert!(plan.makespan_ms >= d_max, "verification follows drafting");
                let scheduled: usize = plan.waves.iter().map(Vec::len).sum();
                assert_eq!(scheduled, draft_ms.len(), "every session is verified");
            }
        }
    }

    #[test]
    fn small_straggler_gaps_keep_the_single_grouped_batch() {
        // The gap between the slowest and the second-slowest draft (4 ms) is
        // far smaller than an extra pass base cost (20 ms): splitting would
        // push the early wave's completion past the straggler and pay the
        // base twice, so the plan must keep one grouped batch.
        let plan = plan_verify_waves(&[1.0, 1.0, 5.0], &[8, 8, 8], &target(), 0.0);
        assert_eq!(plan.waves.len(), 1);
        assert!((plan.makespan_ms - (5.0 + 20.0 + 0.5 * 24.0)).abs() < 1e-12);
    }

    #[test]
    fn empty_ticks_plan_nothing() {
        let plan = plan_verify_waves(&[], &[], &target(), 0.0);
        assert!(plan.waves.is_empty());
        assert_eq!(plan.makespan_ms, 0.0);
    }

    #[test]
    fn three_stragglers_earn_three_waves() {
        // Draft completions spaced far wider than a pass base cost: each
        // cohort's verification hides completely under the next straggler's
        // draft, so the N-wave planner splits three ways where the two-wave
        // planner had to group the first two cohorts.
        let done = [3.0, 3.0, 100.0, 140.0];
        let widths = [40usize, 40, 40, 8];
        let plan = plan_verify_waves_pipelined(&done, &widths, &target(), 0.0, 4, 0.0);
        assert_eq!(plan.waves.len(), 3);
        assert_eq!(plan.waves[0], vec![0, 1]);
        assert_eq!(plan.waves[1], vec![2]);
        assert_eq!(plan.waves[2], vec![3]);
        assert_eq!(plan.submit_offsets_ms, vec![3.0, 100.0, 140.0]);
        // Only the last straggler's own pass remains on the critical path.
        assert!((plan.makespan_ms - (140.0 + 20.0 + 0.5 * 8.0)).abs() < 1e-12);
        let two = plan_verify_waves_pipelined(&done, &widths, &target(), 0.0, 2, 0.0);
        assert!(plan.makespan_ms < two.makespan_ms - 1.0);
    }

    #[test]
    fn a_single_wave_cap_forces_the_grouped_batch() {
        let done = [3.0, 3.0, 100.0, 3.0];
        let widths = [8usize, 8, 8, 8];
        let plan = plan_verify_waves_pipelined(&done, &widths, &target(), 0.0, 1, 0.0);
        assert_eq!(plan.waves.len(), 1);
        assert!((plan.makespan_ms - (100.0 + 20.0 + 0.5 * 32.0)).abs() < 1e-12);
    }

    #[test]
    fn the_device_backlog_delays_every_wave() {
        // The device is still busy with the previous tick's waves until
        // t = 500: no split can win (waves would just queue), and the
        // makespan is backlog + one grouped pass.
        let done = [3.0, 3.0, 100.0, 3.0];
        let widths = [8usize, 8, 8, 8];
        let plan = plan_verify_waves_pipelined(&done, &widths, &target(), 0.0, 4, 500.0);
        assert_eq!(plan.waves.len(), 1);
        assert!((plan.makespan_ms - (500.0 + 20.0 + 0.5 * 32.0)).abs() < 1e-12);
    }

    #[test]
    fn the_two_wave_cap_reproduces_the_legacy_planner() {
        let cases: [(&[f64], &[usize]); 4] = [
            (&[1.0], &[4]),
            (&[10.0, 12.0], &[8, 2]),
            (&[1.0, 2.0, 3.0, 50.0, 4.0], &[8, 8, 8, 8, 8]),
            (&[0.0, 0.0, 90.0], &[24, 1, 3]),
        ];
        for (done, widths) in cases {
            for overhead in [0.0, 2.5] {
                let legacy = plan_verify_waves(done, widths, &target(), overhead);
                let general =
                    plan_verify_waves_pipelined(done, widths, &target(), overhead, 2, 0.0);
                assert_eq!(legacy, general);
            }
        }
    }

    #[test]
    fn deeper_wave_caps_never_cost_wall_clock() {
        let done = [1.0, 2.0, 3.0, 50.0, 120.0, 121.0];
        let widths = [8usize, 4, 8, 2, 8, 1];
        let mut previous = f64::INFINITY;
        for cap in 1..=6 {
            let plan = plan_verify_waves_pipelined(&done, &widths, &target(), 1.5, cap, 10.0);
            assert!(plan.makespan_ms <= previous + 1e-9);
            assert!(plan.waves.len() <= cap);
            let scheduled: usize = plan.waves.iter().map(Vec::len).sum();
            assert_eq!(scheduled, done.len());
            previous = plan.makespan_ms;
        }
    }
}
