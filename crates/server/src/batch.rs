//! Cost model of one scheduler iteration on the shared accelerator.
//!
//! The latency substrate (`specasr_models::LatencyModel`) prices a forward
//! pass as `base_ms + per_token_ms · tokens`.  Continuous batching exploits
//! exactly that shape:
//!
//! * **Grouped verification** — the drafted sequences/trees of every session
//!   in the batch are concatenated into *one* target forward pass (each
//!   sequence attends only to its own prefix, the batched generalisation of
//!   the tree attention mask), so the pass base cost is paid once instead of
//!   once per session;
//! * **Parallel drafting** — the draft models of all sessions run
//!   concurrently on the accelerator, so the tick's draft wall time is the
//!   slowest session's draft phase, not the sum.
//!
//! [`TickCost`] computes both, and keeps the sequential-equivalent cost so
//! the scheduler can report how much device time batching saved.

use specasr_models::LatencyModel;

/// Wall-clock cost of one scheduler tick, with its sequential equivalent.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TickCost {
    /// Wall time of the batched tick: slowest draft phase + one grouped
    /// verification pass.
    pub wall_ms: f64,
    /// What the same work would have cost run one session after another.
    pub sequential_ms: f64,
}

impl TickCost {
    /// Costs one tick.
    ///
    /// `draft_ms` holds each batched session's draft-phase device time for
    /// this round; `verify_widths` holds the token width each session's
    /// verification pass must process (from
    /// [`specasr::DraftedRound::verify_tokens`]).
    pub fn of_round(draft_ms: &[f64], verify_widths: &[usize], target: &LatencyModel) -> TickCost {
        assert_eq!(
            draft_ms.len(),
            verify_widths.len(),
            "one draft time and one verify width per batched session"
        );
        if draft_ms.is_empty() {
            return TickCost::default();
        }
        let slowest_draft = draft_ms.iter().copied().fold(0.0f64, f64::max);
        let wall_ms = slowest_draft + grouped_verify_ms(target, verify_widths);
        let sequential_ms = draft_ms.iter().sum::<f64>()
            + verify_widths
                .iter()
                .map(|&width| target.forward_pass_ms(width))
                .sum::<f64>();
        TickCost {
            wall_ms,
            sequential_ms,
        }
    }

    /// Device milliseconds saved by batching this tick.
    pub fn saved_ms(&self) -> f64 {
        (self.sequential_ms - self.wall_ms).max(0.0)
    }
}

/// Cost of verifying all sessions' drafts in one grouped target pass: the
/// base cost is paid once, the per-token cost for every drafted token.
pub fn grouped_verify_ms(target: &LatencyModel, verify_widths: &[usize]) -> f64 {
    if verify_widths.is_empty() {
        return 0.0;
    }
    target.forward_pass_ms(verify_widths.iter().sum())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target() -> LatencyModel {
        LatencyModel::new(20.0, 0.5, 0.1)
    }

    #[test]
    fn grouped_verification_pays_the_base_cost_once() {
        let widths = [8usize, 4, 1];
        let grouped = grouped_verify_ms(&target(), &widths);
        let sequential: f64 = widths.iter().map(|&w| target().forward_pass_ms(w)).sum();
        assert!((grouped - (20.0 + 0.5 * 13.0)).abs() < 1e-12);
        assert!(grouped < sequential);
        assert_eq!(grouped_verify_ms(&target(), &[]), 0.0);
    }

    #[test]
    fn tick_wall_time_is_slowest_draft_plus_one_pass() {
        let cost = TickCost::of_round(&[3.0, 7.0, 5.0], &[8, 8, 8], &target());
        assert!((cost.wall_ms - (7.0 + 20.0 + 0.5 * 24.0)).abs() < 1e-12);
        assert!(cost.sequential_ms > cost.wall_ms);
        assert!(cost.saved_ms() > 0.0);
    }

    #[test]
    fn single_session_ticks_save_nothing() {
        let cost = TickCost::of_round(&[4.0], &[8], &target());
        assert!((cost.wall_ms - cost.sequential_ms).abs() < 1e-12);
        assert_eq!(cost.saved_ms(), 0.0);
    }

    #[test]
    fn empty_ticks_cost_nothing() {
        let cost = TickCost::of_round(&[], &[], &target());
        assert_eq!(cost.wall_ms, 0.0);
        assert_eq!(cost.sequential_ms, 0.0);
    }

    #[test]
    #[should_panic(expected = "one draft time and one verify width")]
    fn mismatched_lengths_panic() {
        TickCost::of_round(&[1.0], &[], &target());
    }
}
