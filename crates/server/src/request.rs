//! Request identity, admission errors, and the per-request outcome with its
//! serving-latency breakdown.

use serde::{Deserialize, Serialize};
use specasr::{DecodeOutcome, Policy};
use specasr_audio::UtteranceId;

/// Identity of one transcription request within a scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RequestId(u64);

impl RequestId {
    /// Builds an id from its raw value.
    pub const fn new(raw: u64) -> Self {
        RequestId(raw)
    }

    /// The raw id value (monotonically increasing in submission order).
    pub const fn value(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for RequestId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "req-{}", self.0)
    }
}

/// Latency-SLO class of a request, derived from its time-to-first-token
/// budget at submission: tighter budgets land in stricter classes, budgets
/// of `None` are best-effort.  The scheduler keys its per-class latency
/// histograms and deadline-shedding counters on this (see
/// [`crate::ServerStats::slo_class`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum SloClass {
    /// TTFT budget ≤ 500 ms (live captioning, voice UI).
    Interactive,
    /// TTFT budget ≤ 2 000 ms (conversational transcription).
    Standard,
    /// Any larger finite TTFT budget (near-line processing).
    Relaxed,
    /// No budget: batch/offline traffic, never deadline-shed.
    BestEffort,
}

impl SloClass {
    /// Every class, in strictness order.
    pub const ALL: [SloClass; 4] = [
        SloClass::Interactive,
        SloClass::Standard,
        SloClass::Relaxed,
        SloClass::BestEffort,
    ];

    /// Classifies a time-to-first-token budget.
    pub fn of_budget(ttft_budget_ms: Option<f64>) -> Self {
        match ttft_budget_ms {
            None => SloClass::BestEffort,
            Some(budget) if budget <= 500.0 => SloClass::Interactive,
            Some(budget) if budget <= 2_000.0 => SloClass::Standard,
            Some(_) => SloClass::Relaxed,
        }
    }

    /// Dense index of this class (position in [`SloClass::ALL`]).
    pub fn index(self) -> usize {
        match self {
            SloClass::Interactive => 0,
            SloClass::Standard => 1,
            SloClass::Relaxed => 2,
            SloClass::BestEffort => 3,
        }
    }

    /// Stable lowercase name, for report rows and logs.
    pub fn name(self) -> &'static str {
        match self {
            SloClass::Interactive => "interactive",
            SloClass::Standard => "standard",
            SloClass::Relaxed => "relaxed",
            SloClass::BestEffort => "best-effort",
        }
    }
}

impl std::fmt::Display for SloClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Why a submission was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The wait queue is at its configured depth; retry after completions.
    QueueFull {
        /// The configured queue depth that was hit.
        queue_depth: usize,
    },
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull { queue_depth } => {
                write!(f, "wait queue is full ({queue_depth} requests)")
            }
        }
    }
}

impl std::error::Error for SubmitError {}

/// The serving-latency breakdown of one completed request, all in simulated
/// milliseconds on the scheduler's wall clock.
///
/// When the scheduler runs with its flight recorder enabled
/// (`Scheduler::set_trace`), the `specasr-trace` span assembly reconstructs
/// the same components from the event stream — `RequestSpans::queue_ms`,
/// `decode_wall_ms`, and `e2e_ms` must agree with this breakdown *exactly*
/// (same clock, same clamping); the workspace `trace.rs` integration tests
/// assert the reconciliation per request.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct RequestLatency {
    /// Time spent waiting for admission into the batch.
    pub queue_ms: f64,
    /// Audio-encoder time (runs on the encoder pool, concurrent with other
    /// requests' decoding; included in end-to-end latency, not in decoder
    /// wall time).
    pub encoder_ms: f64,
    /// Wall-clock time from admission to the final committed token.
    pub decode_wall_ms: f64,
    /// Time from arrival until the first transcript token was committed
    /// (includes queueing and the encoder).
    pub time_to_first_token_ms: f64,
}

impl RequestLatency {
    /// End-to-end latency: queueing + encoder + decoding wall time.
    pub fn e2e_ms(&self) -> f64 {
        self.queue_ms + self.encoder_ms + self.decode_wall_ms
    }
}

/// One partial transcript emitted while a streaming request was in flight:
/// the serving-side record of a [`specasr_stream::PartialTranscript`], with
/// its latency span on the scheduler wall clock.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PartialSpan {
    /// Position of this partial in the request's emission order (0-based).
    pub partial_index: usize,
    /// Index of the newest audio chunk this partial's decode had heard.
    pub chunk_index: usize,
    /// Wall time that chunk arrived at the server.
    pub chunk_arrival_ms: f64,
    /// Wall time the partial was emitted.
    pub emitted_ms: f64,
    /// Incremental encoder milliseconds charged to this partial (the chunks
    /// delivered since the previous partial).
    pub encoder_ms: f64,
    /// Total committed (never-retracted) tokens after this partial.
    pub committed_tokens: usize,
    /// Tokens this partial newly committed.
    pub newly_committed: usize,
    /// Full hypothesis length (committed prefix plus unstable tail).
    pub hypothesis_tokens: usize,
    /// Uncommitted hypothesis positions that changed versus the previous
    /// partial.
    pub retracted_tokens: usize,
    /// `true` for the final partial (full audio received, everything
    /// committed).
    pub is_final: bool,
}

impl PartialSpan {
    /// The per-partial latency span: newest-chunk arrival → partial
    /// emission, plus the incremental encoder time the chunk cost (clamped
    /// non-negative under router clock skew, like every latency span).
    pub fn span_ms(&self) -> f64 {
        (self.emitted_ms - self.chunk_arrival_ms).max(0.0) + self.encoder_ms
    }
}

/// Everything the server produces for one finished request.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestOutcome {
    /// The request's identity.
    pub id: RequestId,
    /// The decode policy the request ran under.
    pub policy: Policy,
    /// The utterance that was transcribed.
    pub utterance_id: UtteranceId,
    /// The decoded transcript text.
    pub text: String,
    /// The full decoding outcome (tokens, statistics, device-time clock).
    pub outcome: DecodeOutcome,
    /// The serving-latency breakdown.
    pub latency: RequestLatency,
    /// Audio duration of the utterance in seconds.
    pub audio_seconds: f64,
    /// Times this request was preempted (evicted to free KV-pool blocks and
    /// later restored by a deterministic re-decode) before completing.
    pub preemptions: usize,
    /// The latency-SLO class the request was served under (derived from its
    /// TTFT budget at submission).
    pub slo: SloClass,
    /// Partial transcripts emitted while the request streamed, in order —
    /// empty for offline requests.  For streaming requests the latency's
    /// time-to-first-token is the first partial's arrival-to-emission span.
    pub partials: Vec<PartialSpan>,
}

impl RequestOutcome {
    /// End-to-end serving latency in milliseconds.
    pub fn e2e_ms(&self) -> f64 {
        self.latency.e2e_ms()
    }

    /// Number of transcript tokens produced.
    pub fn token_count(&self) -> usize {
        self.outcome.tokens.len()
    }

    /// `true` when this request streamed its audio chunk by chunk.
    pub fn is_streaming(&self) -> bool {
        !self.partials.is_empty()
    }

    /// The first partial's chunk-arrival → emission span (streaming requests
    /// only).  First-partial latency measured from request *arrival* is the
    /// streaming time-to-first-token, reported in
    /// [`RequestLatency::time_to_first_token_ms`].
    pub fn first_partial_span_ms(&self) -> Option<f64> {
        self.partials.first().map(PartialSpan::span_ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_totals_add_up() {
        let latency = RequestLatency {
            queue_ms: 5.0,
            encoder_ms: 2.0,
            decode_wall_ms: 40.0,
            time_to_first_token_ms: 12.0,
        };
        assert!((latency.e2e_ms() - 47.0).abs() < 1e-12);
    }

    #[test]
    fn request_ids_order_by_submission() {
        assert!(RequestId::new(2) > RequestId::new(1));
        assert_eq!(RequestId::new(7).to_string(), "req-7");
        assert_eq!(RequestId::new(7).value(), 7);
    }

    #[test]
    fn partial_spans_clamp_skew_and_charge_the_encoder() {
        let span = PartialSpan {
            partial_index: 0,
            chunk_index: 2,
            chunk_arrival_ms: 100.0,
            emitted_ms: 130.0,
            encoder_ms: 4.0,
            committed_tokens: 6,
            newly_committed: 2,
            hypothesis_tokens: 9,
            retracted_tokens: 1,
            is_final: false,
        };
        assert!((span.span_ms() - 34.0).abs() < 1e-12);
        let skewed = PartialSpan {
            chunk_arrival_ms: 200.0,
            ..span
        };
        assert!(
            (skewed.span_ms() - 4.0).abs() < 1e-12,
            "clamped at zero + encoder"
        );
    }

    #[test]
    fn slo_classes_bucket_budgets_by_strictness() {
        assert_eq!(SloClass::of_budget(None), SloClass::BestEffort);
        assert_eq!(SloClass::of_budget(Some(100.0)), SloClass::Interactive);
        assert_eq!(SloClass::of_budget(Some(500.0)), SloClass::Interactive);
        assert_eq!(SloClass::of_budget(Some(1_500.0)), SloClass::Standard);
        assert_eq!(SloClass::of_budget(Some(60_000.0)), SloClass::Relaxed);
        for (index, class) in SloClass::ALL.into_iter().enumerate() {
            assert_eq!(class.index(), index);
        }
        assert_eq!(SloClass::Interactive.to_string(), "interactive");
    }

    #[test]
    fn queue_full_error_reports_the_depth() {
        let error = SubmitError::QueueFull { queue_depth: 3 };
        assert!(error.to_string().contains('3'));
    }
}
