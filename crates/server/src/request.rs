//! Request identity, admission errors, and the per-request outcome with its
//! serving-latency breakdown.

use serde::{Deserialize, Serialize};
use specasr::{DecodeOutcome, Policy};
use specasr_audio::UtteranceId;

/// Identity of one transcription request within a scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RequestId(u64);

impl RequestId {
    /// Builds an id from its raw value.
    pub const fn new(raw: u64) -> Self {
        RequestId(raw)
    }

    /// The raw id value (monotonically increasing in submission order).
    pub const fn value(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for RequestId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "req-{}", self.0)
    }
}

/// Why a submission was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The wait queue is at its configured depth; retry after completions.
    QueueFull {
        /// The configured queue depth that was hit.
        queue_depth: usize,
    },
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull { queue_depth } => {
                write!(f, "wait queue is full ({queue_depth} requests)")
            }
        }
    }
}

impl std::error::Error for SubmitError {}

/// The serving-latency breakdown of one completed request, all in simulated
/// milliseconds on the scheduler's wall clock.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct RequestLatency {
    /// Time spent waiting for admission into the batch.
    pub queue_ms: f64,
    /// Audio-encoder time (runs on the encoder pool, concurrent with other
    /// requests' decoding; included in end-to-end latency, not in decoder
    /// wall time).
    pub encoder_ms: f64,
    /// Wall-clock time from admission to the final committed token.
    pub decode_wall_ms: f64,
    /// Time from arrival until the first transcript token was committed
    /// (includes queueing and the encoder).
    pub time_to_first_token_ms: f64,
}

impl RequestLatency {
    /// End-to-end latency: queueing + encoder + decoding wall time.
    pub fn e2e_ms(&self) -> f64 {
        self.queue_ms + self.encoder_ms + self.decode_wall_ms
    }
}

/// Everything the server produces for one finished request.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestOutcome {
    /// The request's identity.
    pub id: RequestId,
    /// The decode policy the request ran under.
    pub policy: Policy,
    /// The utterance that was transcribed.
    pub utterance_id: UtteranceId,
    /// The decoded transcript text.
    pub text: String,
    /// The full decoding outcome (tokens, statistics, device-time clock).
    pub outcome: DecodeOutcome,
    /// The serving-latency breakdown.
    pub latency: RequestLatency,
    /// Audio duration of the utterance in seconds.
    pub audio_seconds: f64,
    /// Times this request was preempted (evicted to free KV-pool blocks and
    /// later restored by a deterministic re-decode) before completing.
    pub preemptions: usize,
}

impl RequestOutcome {
    /// End-to-end serving latency in milliseconds.
    pub fn e2e_ms(&self) -> f64 {
        self.latency.e2e_ms()
    }

    /// Number of transcript tokens produced.
    pub fn token_count(&self) -> usize {
        self.outcome.tokens.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_totals_add_up() {
        let latency = RequestLatency {
            queue_ms: 5.0,
            encoder_ms: 2.0,
            decode_wall_ms: 40.0,
            time_to_first_token_ms: 12.0,
        };
        assert!((latency.e2e_ms() - 47.0).abs() < 1e-12);
    }

    #[test]
    fn request_ids_order_by_submission() {
        assert!(RequestId::new(2) > RequestId::new(1));
        assert_eq!(RequestId::new(7).to_string(), "req-7");
        assert_eq!(RequestId::new(7).value(), 7);
    }

    #[test]
    fn queue_full_error_reports_the_depth() {
        let error = SubmitError::QueueFull { queue_depth: 3 };
        assert!(error.to_string().contains('3'));
    }
}
