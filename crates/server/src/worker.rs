//! One shard of a sharded serving fleet: a [`Scheduler`] plus its identity,
//! capacity profile, lifecycle state, and work-stealing accounting.

use specasr_models::AsrDecoderModel;

use crate::config::WorkerProfile;
use crate::scheduler::Scheduler;
use crate::stats::ServerStats;

/// Identity of one worker within a [`crate::Router`] fleet.
///
/// Ids are *stable*: they name the worker for its whole lifetime and are
/// never reused, even after the worker drains and leaves the fleet.  The
/// consistent-hash ring derives its points from this id (not from the
/// worker's current position in the fleet vector), which is what keeps
/// placement minimally disturbed across membership changes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct WorkerId(usize);

impl WorkerId {
    /// Builds an id from the worker's fleet ordinal.
    pub const fn new(index: usize) -> Self {
        WorkerId(index)
    }

    /// The worker's fleet ordinal (0-based, never reused).
    pub const fn index(self) -> usize {
        self.0
    }
}

impl std::fmt::Display for WorkerId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "worker-{}", self.0)
    }
}

/// Lifecycle state of a worker within the fleet.
///
/// `Active → Draining → removed` is the only legal progression.  A draining
/// worker holds no ring points, admits nothing new, and hands its queued and
/// migratable in-flight work to the active workers; it stays in the fleet
/// only until whatever *must* finish locally (streaming sessions bound to
/// their chunk timetable) has completed, then [`crate::Router::reap_drained`]
/// removes it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkerState {
    /// Serving normally: on the ring, admitting, stealing.
    Active,
    /// Winding down: off the ring, finishing local-only work.
    Draining,
}

/// One scheduler shard owned by a [`crate::Router`].
///
/// The router places requests onto workers (consistent hashing, then work
/// stealing on imbalance); each worker runs its own independent
/// [`Scheduler`] over its own draft/target model pair, so the fleet scales
/// the way N accelerators would.
#[derive(Debug)]
pub struct Worker<D, T> {
    id: WorkerId,
    profile: WorkerProfile,
    state: WorkerState,
    pub(crate) scheduler: Scheduler<D, T>,
    pub(crate) stolen_in: usize,
    pub(crate) stolen_out: usize,
}

impl<D, T> Worker<D, T>
where
    D: AsrDecoderModel,
    T: AsrDecoderModel,
{
    /// Wraps a scheduler as fleet worker `id` with capacity `profile`.
    pub(crate) fn new(id: WorkerId, profile: WorkerProfile, scheduler: Scheduler<D, T>) -> Self {
        Worker {
            id,
            profile,
            state: WorkerState::Active,
            scheduler,
            stolen_in: 0,
            stolen_out: 0,
        }
    }

    /// The worker's fleet identity.
    pub fn id(&self) -> WorkerId {
        self.id
    }

    /// The worker's capacity profile (ring weight and scheduler overrides).
    pub fn profile(&self) -> &WorkerProfile {
        &self.profile
    }

    /// The worker's lifecycle state.
    pub fn state(&self) -> WorkerState {
        self.state
    }

    /// `true` once the worker has been told to drain.
    pub fn is_draining(&self) -> bool {
        self.state == WorkerState::Draining
    }

    pub(crate) fn set_draining(&mut self) {
        self.state = WorkerState::Draining;
    }

    /// Number of requests waiting in this worker's queue.
    pub fn queue_depth(&self) -> usize {
        self.scheduler.queued()
    }

    /// Number of sessions this worker is decoding right now.
    pub fn in_flight(&self) -> usize {
        self.scheduler.in_flight()
    }

    /// Queued plus in-flight requests — the router's load signal.
    pub fn load(&self) -> usize {
        self.queue_depth() + self.in_flight()
    }

    /// The worker's queue depth normalized by its relative speed: the load
    /// signal heterogeneous work stealing compares (a queue of 8 on a 4×
    /// worker is as deep as a queue of 2 on a 1× one).
    pub fn normalized_depth(&self) -> f64 {
        self.queue_depth() as f64 / self.profile.speed
    }

    /// `true` when the worker has nothing queued or in flight.
    pub fn is_idle(&self) -> bool {
        self.scheduler.is_idle()
    }

    /// This worker's wall clock in milliseconds (clocks only advance while a
    /// worker ticks; the router fast-forwards idle workers).
    pub fn wall_ms(&self) -> f64 {
        self.scheduler.wall_ms()
    }

    /// This worker's serving statistics.
    pub fn stats(&self) -> &ServerStats {
        self.scheduler.stats()
    }

    /// The paged KV pool this worker's scheduler allocates from.
    pub fn kv_pool(&self) -> &specasr_runtime::KvPool {
        self.scheduler.kv_pool()
    }

    /// Requests this worker received through work stealing.
    pub fn stolen_in(&self) -> usize {
        self.stolen_in
    }

    /// Requests other workers stole from this worker's queue.
    pub fn stolen_out(&self) -> usize {
        self.stolen_out
    }
}
