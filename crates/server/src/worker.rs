//! One shard of a sharded serving fleet: a [`Scheduler`] plus its identity
//! and work-stealing accounting.

use specasr_models::AsrDecoderModel;

use crate::scheduler::Scheduler;
use crate::stats::ServerStats;

/// Identity of one worker within a [`crate::Router`] fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct WorkerId(usize);

impl WorkerId {
    /// Builds an id from the worker's fleet index.
    pub const fn new(index: usize) -> Self {
        WorkerId(index)
    }

    /// The worker's index in the fleet (0-based).
    pub const fn index(self) -> usize {
        self.0
    }
}

impl std::fmt::Display for WorkerId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "worker-{}", self.0)
    }
}

/// One scheduler shard owned by a [`crate::Router`].
///
/// The router places requests onto workers (consistent hashing, then work
/// stealing on imbalance); each worker runs its own independent
/// [`Scheduler`] over its own draft/target model pair, so the fleet scales
/// the way N accelerators would.
#[derive(Debug)]
pub struct Worker<D, T> {
    id: WorkerId,
    pub(crate) scheduler: Scheduler<D, T>,
    pub(crate) stolen_in: usize,
    pub(crate) stolen_out: usize,
}

impl<D, T> Worker<D, T>
where
    D: AsrDecoderModel,
    T: AsrDecoderModel,
{
    /// Wraps a scheduler as fleet worker `id`.
    pub(crate) fn new(id: WorkerId, scheduler: Scheduler<D, T>) -> Self {
        Worker {
            id,
            scheduler,
            stolen_in: 0,
            stolen_out: 0,
        }
    }

    /// The worker's fleet identity.
    pub fn id(&self) -> WorkerId {
        self.id
    }

    /// Number of requests waiting in this worker's queue.
    pub fn queue_depth(&self) -> usize {
        self.scheduler.queued()
    }

    /// Number of sessions this worker is decoding right now.
    pub fn in_flight(&self) -> usize {
        self.scheduler.in_flight()
    }

    /// Queued plus in-flight requests — the router's load signal.
    pub fn load(&self) -> usize {
        self.queue_depth() + self.in_flight()
    }

    /// `true` when the worker has nothing queued or in flight.
    pub fn is_idle(&self) -> bool {
        self.scheduler.is_idle()
    }

    /// This worker's wall clock in milliseconds (clocks only advance while a
    /// worker ticks; the router fast-forwards idle workers).
    pub fn wall_ms(&self) -> f64 {
        self.scheduler.wall_ms()
    }

    /// This worker's serving statistics.
    pub fn stats(&self) -> &ServerStats {
        self.scheduler.stats()
    }

    /// The paged KV pool this worker's scheduler allocates from.
    pub fn kv_pool(&self) -> &specasr_runtime::KvPool {
        self.scheduler.kv_pool()
    }

    /// Requests this worker received through work stealing.
    pub fn stolen_in(&self) -> usize {
        self.stolen_in
    }

    /// Requests other workers stole from this worker's queue.
    pub fn stolen_out(&self) -> usize {
        self.stolen_out
    }
}
