//! Open-loop load generation: a seeded Poisson arrival process and the
//! driver that plays it against a [`Router`] fleet.
//!
//! The `serve_load` bench is *closed-loop*: every request is queued up front,
//! so the system is never outrun by its clients and queueing delay collapses
//! to a function of service order.  Real traffic is *open-loop*: arrivals
//! come from the outside world at their own rate regardless of how far
//! behind the server is.  Only the open-loop view exposes queueing-theory
//! behaviour — latency stays flat while the offered rate sits below the
//! fleet's service capacity, then grows without bound past the saturation
//! knee.  [`LoadGen`] produces the deterministic arrival process and
//! [`run_open_loop`] measures exactly that curve.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use specasr::{DrafterKind, Policy};
use specasr_audio::Utterance;
use specasr_models::AsrDecoderModel;
use specasr_stream::StreamConfig;

use crate::request::RequestOutcome;
use crate::router::Router;
use crate::scheduler::Scheduler;

/// A deterministic Poisson arrival process targeting a fixed request rate.
///
/// Inter-arrival gaps are exponentially distributed with mean `1 / qps`,
/// drawn from a seeded generator, so a given `(seed, target_qps)` pair
/// always produces the identical arrival timeline — benchmark runs are
/// reproducible bit for bit.
///
/// # Example
///
/// ```
/// use specasr_server::LoadGen;
///
/// let mut a = LoadGen::new(42, 10.0);
/// let mut b = LoadGen::new(42, 10.0);
/// let t1 = a.next_arrival_ms();
/// assert_eq!(t1, b.next_arrival_ms());
/// assert!(a.next_arrival_ms() > t1);
/// ```
#[derive(Debug, Clone)]
pub struct LoadGen {
    rng: ChaCha8Rng,
    target_qps: f64,
    clock_ms: f64,
}

impl LoadGen {
    /// Creates a generator targeting `target_qps` requests per second.
    ///
    /// # Panics
    ///
    /// Panics if `target_qps` is not finite and positive.
    pub fn new(seed: u64, target_qps: f64) -> Self {
        assert!(
            target_qps.is_finite() && target_qps > 0.0,
            "target_qps must be finite and positive"
        );
        LoadGen {
            rng: ChaCha8Rng::seed_from_u64(seed),
            target_qps,
            clock_ms: 0.0,
        }
    }

    /// The targeted offered rate in requests per second.
    pub fn target_qps(&self) -> f64 {
        self.target_qps
    }

    /// The timestamp of the latest generated arrival (0 before the first).
    pub fn clock_ms(&self) -> f64 {
        self.clock_ms
    }

    /// Advances the process by one exponential inter-arrival gap and returns
    /// the next arrival's absolute timestamp in milliseconds.
    pub fn next_arrival_ms(&mut self) -> f64 {
        let uniform: f64 = self.rng.gen();
        // Inverse-CDF exponential draw; 1 - u keeps the argument in (0, 1].
        let gap_ms = -(1.0 - uniform).ln() * 1_000.0 / self.target_qps;
        self.clock_ms += gap_ms;
        self.clock_ms
    }

    /// Generates the next `count` arrival timestamps.
    pub fn arrivals_ms(&mut self, count: usize) -> Vec<f64> {
        (0..count).map(|_| self.next_arrival_ms()).collect()
    }

    /// Draws one request's chunk cadence for the streaming workload mode:
    /// uniform in `[base × (1 − spread), base × (1 + spread)]` seconds, from
    /// the same seeded generator as the arrival process (microphones and
    /// capture stacks chunk at different rates; a fleet never sees one
    /// uniform cadence).
    ///
    /// # Panics
    ///
    /// Panics if `base_chunk_seconds` is not finite and positive, or
    /// `spread` is not within `[0, 1)`.
    pub fn next_chunk_seconds(&mut self, base_chunk_seconds: f64, spread: f64) -> f64 {
        assert!(
            base_chunk_seconds.is_finite() && base_chunk_seconds > 0.0,
            "base_chunk_seconds must be finite and positive"
        );
        assert!(
            spread.is_finite() && (0.0..1.0).contains(&spread),
            "spread must be within [0, 1)"
        );
        let uniform: f64 = self.rng.gen();
        base_chunk_seconds * (1.0 - spread + 2.0 * spread * uniform)
    }
}

/// Everything one open-loop run produces.
#[derive(Debug, Clone)]
pub struct OpenLoopReport {
    /// Outcomes of every completed request, in completion order.
    pub outcomes: Vec<RequestOutcome>,
    /// Requests the fleet accepted.
    pub submitted: usize,
    /// Requests rejected by fleet-wide backpressure (all queues full).
    pub rejected: usize,
    /// Timestamp of the last arrival — the offered-load window.
    pub last_arrival_ms: f64,
    /// Fleet wall time when the last request completed.
    pub drained_ms: f64,
}

impl OpenLoopReport {
    /// The realised offered rate in requests per second (submitted plus
    /// rejected, over the arrival window).
    pub fn offered_qps(&self) -> f64 {
        if self.last_arrival_ms <= 0.0 {
            return 0.0;
        }
        (self.submitted + self.rejected) as f64 / (self.last_arrival_ms / 1_000.0)
    }

    /// The achieved completion rate in requests per second, over the full
    /// window from first arrival to drain.
    pub fn completed_qps(&self) -> f64 {
        if self.drained_ms <= 0.0 {
            return 0.0;
        }
        self.outcomes.len() as f64 / (self.drained_ms / 1_000.0)
    }
}

/// Plays an open-loop workload against a router: each `(policy, utterance)`
/// request arrives at its [`LoadGen`] timestamp while the fleet keeps
/// serving, and after the last arrival the fleet drains.
///
/// The run is a pure function of the router construction, the workload
/// order, and the load generator's seed/rate.
pub fn run_open_loop<'a, D, T>(
    router: &mut Router<D, T>,
    loadgen: &mut LoadGen,
    workload: impl IntoIterator<Item = (Policy, &'a Utterance)>,
) -> OpenLoopReport
where
    D: AsrDecoderModel,
    T: AsrDecoderModel,
{
    run_open_loop_drafted(
        router,
        loadgen,
        workload
            .into_iter()
            .map(|(policy, utterance)| (policy, DrafterKind::ModelDraft, utterance)),
    )
}

/// [`run_open_loop`] with per-request drafter selection: each workload item
/// names its draft source alongside its policy, so one run can measure a
/// model-draft/CTC/token-map mix (or a pure draft-free fleet) under the same
/// seeded arrival process.  Draft-free kinds must be installed on the router
/// first ([`Router::install_drafter`]).
pub fn run_open_loop_drafted<'a, D, T>(
    router: &mut Router<D, T>,
    loadgen: &mut LoadGen,
    workload: impl IntoIterator<Item = (Policy, DrafterKind, &'a Utterance)>,
) -> OpenLoopReport
where
    D: AsrDecoderModel,
    T: AsrDecoderModel,
{
    let mut outcomes = Vec::new();
    let mut submitted = 0;
    let mut rejected = 0;
    for (policy, drafter, utterance) in workload {
        let arrival_ms = loadgen.next_arrival_ms();
        outcomes.extend(router.advance_to(arrival_ms));
        match router.submit_with_drafter(policy, drafter, utterance) {
            Ok(_) => submitted += 1,
            Err(_) => rejected += 1,
        }
    }
    outcomes.extend(router.run_until_idle());
    OpenLoopReport {
        outcomes,
        submitted,
        rejected,
        last_arrival_ms: loadgen.clock_ms(),
        drained_ms: router.fleet_stats().wall_ms(),
    }
}

/// [`run_open_loop`] with a per-request time-to-first-token budget: each
/// workload item carries an optional TTFT budget that classes the request
/// into its latency SLO, arms deadline shedding, and — under
/// [`crate::AdmissionOrdering::EarliestDeadlineFirst`] — orders admission.
/// This is the goodput-under-overload driver: completions that blew their
/// budget still count as completed, but not as goodput.
pub fn run_open_loop_budgeted<'a, D, T>(
    router: &mut Router<D, T>,
    loadgen: &mut LoadGen,
    workload: impl IntoIterator<Item = (Policy, &'a Utterance, Option<f64>)>,
) -> OpenLoopReport
where
    D: AsrDecoderModel,
    T: AsrDecoderModel,
{
    let mut outcomes = Vec::new();
    let mut submitted = 0;
    let mut rejected = 0;
    for (policy, utterance, ttft_budget_ms) in workload {
        let arrival_ms = loadgen.next_arrival_ms();
        outcomes.extend(router.advance_to(arrival_ms));
        match router.submit_with_budget(policy, utterance, ttft_budget_ms) {
            Ok(_) => submitted += 1,
            Err(_) => rejected += 1,
        }
    }
    outcomes.extend(router.run_until_idle());
    OpenLoopReport {
        outcomes,
        submitted,
        rejected,
        last_arrival_ms: loadgen.clock_ms(),
        drained_ms: router.fleet_stats().wall_ms(),
    }
}

/// Plays an open-loop *streaming* workload against one scheduler: each
/// request arrives at its [`LoadGen`] timestamp as a chunked stream with its
/// own cadence (drawn via [`LoadGen::next_chunk_seconds`]), the scheduler
/// keeps serving between arrivals, and after the last arrival it drains.
///
/// The run is a pure function of the scheduler construction, the workload
/// order, the stream configuration, and the load generator's seed/rate.
pub fn run_open_loop_streaming<'a, D, T>(
    scheduler: &mut Scheduler<D, T>,
    loadgen: &mut LoadGen,
    stream: StreamConfig,
    cadence_spread: f64,
    workload: impl IntoIterator<Item = (Policy, &'a Utterance)>,
) -> OpenLoopReport
where
    D: AsrDecoderModel,
    T: AsrDecoderModel,
{
    let base_chunk_seconds = stream.chunk.chunk_seconds;
    let mut outcomes = Vec::new();
    let mut submitted = 0;
    let mut rejected = 0;
    for (policy, utterance) in workload {
        let arrival_ms = loadgen.next_arrival_ms();
        outcomes.extend(scheduler.advance_to(arrival_ms));
        let cadence = loadgen.next_chunk_seconds(base_chunk_seconds, cadence_spread);
        match scheduler.submit_streaming(policy, utterance, stream.with_chunk_seconds(cadence)) {
            Ok(_) => submitted += 1,
            Err(_) => rejected += 1,
        }
    }
    outcomes.extend(scheduler.run_until_idle());
    OpenLoopReport {
        outcomes,
        submitted,
        rejected,
        last_arrival_ms: loadgen.clock_ms(),
        drained_ms: scheduler.stats().wall_ms(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use specasr::SpeculativeConfig;
    use specasr_audio::{Corpus, EncoderProfile, Split};
    use specasr_models::{ModelProfile, SimulatedAsrModel, TokenizerBinding};

    use crate::config::RouterConfig;

    #[test]
    fn arrival_streams_are_deterministic_per_seed() {
        let mut a = LoadGen::new(7, 25.0);
        let mut b = LoadGen::new(7, 25.0);
        let mut c = LoadGen::new(8, 25.0);
        assert_eq!(a.arrivals_ms(16), b.arrivals_ms(16));
        assert_ne!(a.arrivals_ms(16), c.arrivals_ms(16));
    }

    #[test]
    fn arrivals_are_strictly_increasing_with_exponential_mean() {
        let mut gen = LoadGen::new(11, 50.0);
        let arrivals = gen.arrivals_ms(2_000);
        for pair in arrivals.windows(2) {
            assert!(pair[1] > pair[0], "arrival times must strictly increase");
        }
        // Mean inter-arrival gap of a 50 QPS Poisson process is 20 ms.
        let mean_gap = arrivals.last().unwrap() / arrivals.len() as f64;
        assert!(
            (mean_gap - 20.0).abs() < 2.0,
            "mean gap should approach 20 ms, got {mean_gap:.2}"
        );
    }

    #[test]
    #[should_panic(expected = "target_qps")]
    fn zero_qps_panics() {
        LoadGen::new(1, 0.0);
    }

    fn fleet(workers: usize) -> (Router<SimulatedAsrModel, SimulatedAsrModel>, Corpus) {
        let corpus = Corpus::librispeech_like(88, 12);
        let binding = TokenizerBinding::for_corpus(&corpus);
        let target = SimulatedAsrModel::target(ModelProfile::whisper_medium_en(), 7);
        let draft = SimulatedAsrModel::draft_paired(ModelProfile::whisper_tiny_en(), 8, &target);
        let router = Router::new(
            RouterConfig::default()
                .with_workers(workers)
                .with_worker_config(
                    // Deep queues: these tests measure latency under overload,
                    // not backpressure shedding.
                    crate::config::ServerConfig::default().with_queue_depth(512),
                ),
            binding,
            EncoderProfile::whisper_medium_encoder(),
            |_| (draft.clone(), target.clone()),
        );
        (router, corpus)
    }

    fn workload(corpus: &Corpus, requests: usize) -> Vec<(Policy, &Utterance)> {
        let policy = Policy::Speculative(SpeculativeConfig::short_single());
        let pool: Vec<&Utterance> = Split::ALL
            .iter()
            .flat_map(|&split| corpus.split(split))
            .collect();
        (0..requests)
            .map(|i| (policy, pool[i % pool.len()]))
            .collect()
    }

    #[test]
    fn open_loop_runs_are_deterministic() {
        let mut latencies = Vec::new();
        for _ in 0..2 {
            let (mut router, corpus) = fleet(2);
            let mut gen = LoadGen::new(42, 20.0);
            let report = run_open_loop(&mut router, &mut gen, workload(&corpus, 40));
            assert_eq!(report.outcomes.len(), 40);
            assert_eq!(report.rejected, 0);
            latencies.push(
                report
                    .outcomes
                    .iter()
                    .map(|o| o.e2e_ms())
                    .collect::<Vec<f64>>(),
            );
        }
        assert_eq!(latencies[0], latencies[1]);
    }

    #[test]
    fn chunk_cadences_are_seeded_bounded_and_spread() {
        let mut a = LoadGen::new(3, 10.0);
        let mut b = LoadGen::new(3, 10.0);
        let cadences: Vec<f64> = (0..64).map(|_| a.next_chunk_seconds(0.5, 0.4)).collect();
        let repeat: Vec<f64> = (0..64).map(|_| b.next_chunk_seconds(0.5, 0.4)).collect();
        assert_eq!(cadences, repeat, "cadences are deterministic per seed");
        for &cadence in &cadences {
            assert!((0.3..=0.7).contains(&cadence), "cadence {cadence}");
        }
        let spread = cadences
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &c| {
                (lo.min(c), hi.max(c))
            });
        assert!(spread.1 - spread.0 > 0.1, "cadences must actually vary");
        // Zero spread collapses to the base cadence.
        assert_eq!(a.next_chunk_seconds(0.5, 0.0), 0.5);
    }

    #[test]
    #[should_panic(expected = "spread")]
    fn out_of_range_cadence_spread_panics() {
        LoadGen::new(1, 1.0).next_chunk_seconds(0.5, 1.0);
    }

    #[test]
    fn open_loop_streaming_runs_are_deterministic_and_emit_partials() {
        use specasr_audio::EncoderProfile;
        use specasr_models::{ModelProfile, SimulatedAsrModel, TokenizerBinding};
        let policy = Policy::Speculative(SpeculativeConfig::short_single());
        let mut finals = Vec::new();
        for _ in 0..2 {
            let corpus = Corpus::librispeech_like(88, 4);
            let binding = TokenizerBinding::for_corpus(&corpus);
            let target = SimulatedAsrModel::target(ModelProfile::whisper_medium_en(), 7);
            let draft =
                SimulatedAsrModel::draft_paired(ModelProfile::whisper_tiny_en(), 8, &target);
            let mut scheduler = Scheduler::new(
                draft,
                target,
                binding,
                EncoderProfile::whisper_medium_encoder(),
                crate::config::ServerConfig::default(),
            );
            let mut gen = LoadGen::new(21, 4.0);
            let report = run_open_loop_streaming(
                &mut scheduler,
                &mut gen,
                StreamConfig::default(),
                0.3,
                corpus
                    .split(Split::TestClean)
                    .iter()
                    .map(|utterance| (policy, utterance)),
            );
            assert_eq!(report.outcomes.len(), 4);
            assert_eq!(report.rejected, 0);
            assert!(scheduler.stats().partials_emitted() >= 4);
            assert!(report.offered_qps() > 0.0);
            assert!(report.completed_qps() > 0.0);
            finals.push(
                report
                    .outcomes
                    .iter()
                    .map(|o| (o.text.clone(), o.latency.time_to_first_token_ms))
                    .collect::<Vec<_>>(),
            );
        }
        assert_eq!(finals[0], finals[1]);
    }

    #[test]
    fn queueing_delay_grows_past_the_saturation_knee() {
        // The same workload offered gently and then far above the fleet's
        // service rate: the overloaded run must queue dramatically more.
        let mut p99 = Vec::new();
        for qps in [2.0, 2_000.0] {
            let (mut router, corpus) = fleet(1);
            let mut gen = LoadGen::new(9, qps);
            let report = run_open_loop(&mut router, &mut gen, workload(&corpus, 120));
            assert_eq!(report.outcomes.len(), 120, "qps {qps}");
            p99.push(router.fleet_stats().e2e_p99_ms());
        }
        assert!(
            p99[1] > 3.0 * p99[0],
            "overload P99 ({:.0} ms) must dwarf underload P99 ({:.0} ms)",
            p99[1],
            p99[0]
        );
    }
}
