//! The continuous-batching scheduler: iteration-level admission, per-session
//! draft phases, and one grouped verification pass per tick.

use std::collections::VecDeque;

use specasr::Policy;
use specasr_audio::{EncoderProfile, Utterance};
use specasr_models::{AsrDecoderModel, TokenizerBinding};

use crate::batch::TickCost;
use crate::config::{AdmissionPolicy, ServerConfig};
use crate::request::{RequestId, RequestLatency, RequestOutcome, SubmitError};
use crate::session::{QueuedRequest, ServerSession};
use crate::stats::ServerStats;

/// A continuous-batching serving scheduler over a draft/target model pair.
///
/// Requests are [`Scheduler::submit`]ted with their own [`Policy`] (different
/// policies batch together) and decoded round by round: every
/// [`Scheduler::tick`] admits queued requests into free batch slots
/// (iteration-level scheduling — finished sessions free their slots without
/// waiting for the batch to drain), runs each active session's draft phase,
/// verifies all drafted material in one grouped target pass, and retires the
/// sessions that reached EOS.
///
/// Time is simulated: the scheduler advances a wall clock by each tick's
/// batched cost (see [`crate::batch::TickCost`]), which makes every
/// throughput/latency number deterministic and reproducible.  The audio
/// encoder is modelled as a concurrent pool: its latency counts toward each
/// request's end-to-end and first-token latency but does not serialise the
/// decoder timeline.
///
/// # Example
///
/// ```
/// use specasr::{AdaptiveConfig, Policy};
/// use specasr_audio::{Corpus, EncoderProfile, Split};
/// use specasr_models::{ModelProfile, SimulatedAsrModel, TokenizerBinding};
/// use specasr_server::{Scheduler, ServerConfig};
///
/// let corpus = Corpus::librispeech_like(5, 4);
/// let binding = TokenizerBinding::for_corpus(&corpus);
/// let target = SimulatedAsrModel::target(ModelProfile::whisper_medium_en(), 7);
/// let draft = SimulatedAsrModel::draft_paired(ModelProfile::whisper_tiny_en(), 8, &target);
///
/// let mut scheduler = Scheduler::new(
///     draft,
///     target,
///     binding,
///     EncoderProfile::whisper_medium_encoder(),
///     ServerConfig::default(),
/// );
/// let policy = Policy::AdaptiveSingleSequence(AdaptiveConfig::paper());
/// for utterance in corpus.split(Split::TestClean) {
///     scheduler.submit(policy, utterance).expect("queue has room");
/// }
/// let outcomes = scheduler.run_until_idle();
/// assert_eq!(outcomes.len(), 4);
/// assert!(scheduler.stats().utterances_per_second() > 0.0);
/// ```
#[derive(Debug)]
pub struct Scheduler<D, T> {
    draft: D,
    target: T,
    binding: TokenizerBinding,
    encoder: EncoderProfile,
    config: ServerConfig,
    queue: VecDeque<QueuedRequest>,
    active: Vec<ServerSession>,
    wall_ms: f64,
    next_id: u64,
    stats: ServerStats,
}

impl<D, T> Scheduler<D, T>
where
    D: AsrDecoderModel,
    T: AsrDecoderModel,
{
    /// Creates a scheduler.
    ///
    /// # Panics
    ///
    /// Panics if `config` is invalid (see [`ServerConfig::validate`]).
    pub fn new(
        draft: D,
        target: T,
        binding: TokenizerBinding,
        encoder: EncoderProfile,
        config: ServerConfig,
    ) -> Self {
        config.validate();
        Scheduler {
            draft,
            target,
            binding,
            encoder,
            config,
            queue: VecDeque::new(),
            active: Vec::with_capacity(config.max_batch),
            wall_ms: 0.0,
            next_id: 0,
            stats: ServerStats::new(),
        }
    }

    /// The scheduler configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// Aggregate statistics accumulated so far.
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    /// Current simulated wall-clock time in milliseconds.
    pub fn wall_ms(&self) -> f64 {
        self.wall_ms
    }

    /// Number of requests waiting for admission.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Number of sessions decoding right now.
    pub fn in_flight(&self) -> usize {
        self.active.len()
    }

    /// `true` when no request is queued or in flight.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty() && self.active.is_empty()
    }

    /// Submits one utterance for transcription under `policy`.
    ///
    /// The request is timestamped at the current wall time and queued;
    /// admission happens on the next [`Scheduler::tick`].  Returns the
    /// request id, or [`SubmitError::QueueFull`] once `queue_depth` requests
    /// are already waiting (backpressure — the caller decides whether to
    /// retry, shed, or block).
    pub fn submit(
        &mut self,
        policy: Policy,
        utterance: &Utterance,
    ) -> Result<RequestId, SubmitError> {
        // Reject before tokenizing: under overload, rejected submissions are
        // the common case and must not pay for work that gets dropped.
        if self.queue.len() >= self.config.queue_depth {
            return Err(self.reject());
        }
        let id = RequestId::new(self.next_id);
        let audio = self.binding.bind(utterance);
        self.enqueue(QueuedRequest {
            id,
            policy,
            audio,
            utterance_id: utterance.id(),
            audio_seconds: utterance.duration_seconds(),
            encoder_ms: self
                .encoder
                .latency_ms_for_audio(utterance.duration_seconds()),
            arrival_ms: self.wall_ms,
        })?;
        self.next_id += 1;
        Ok(id)
    }

    /// Enqueues an externally built request (the router path: the
    /// [`crate::Router`] assigns fleet-unique ids and arrival timestamps
    /// itself).  Applies the same queue-depth backpressure as
    /// [`Scheduler::submit`].
    pub(crate) fn enqueue(&mut self, request: QueuedRequest) -> Result<(), SubmitError> {
        if self.queue.len() >= self.config.queue_depth {
            return Err(self.reject());
        }
        self.queue.push_back(request);
        Ok(())
    }

    /// Records a queue-full rejection on this worker's statistics and builds
    /// the error (the router's cheap pre-bind backpressure path).
    pub(crate) fn reject(&mut self) -> SubmitError {
        self.stats.record_rejection();
        SubmitError::QueueFull {
            queue_depth: self.config.queue_depth,
        }
    }

    /// Removes up to `max` requests from the *back* of the wait queue, for
    /// work stealing: the most recently arrived requests move, so the
    /// victims' oldest (most aged) requests keep their position.
    pub(crate) fn steal_back(&mut self, max: usize) -> Vec<QueuedRequest> {
        let take = max.min(self.queue.len());
        let mut stolen: Vec<QueuedRequest> =
            (0..take).filter_map(|_| self.queue.pop_back()).collect();
        // Preserve arrival order among the moved requests.
        stolen.reverse();
        stolen
    }

    /// Advances the wall clock to at least `ms` without doing work — the
    /// router fast-forwards idle workers through global time this way (a
    /// scheduler's clock only moves while it ticks).
    pub(crate) fn sync_wall_to(&mut self, ms: f64) {
        self.wall_ms = self.wall_ms.max(ms);
    }

    /// Runs one scheduler iteration: admit → draft → grouped verify → retire.
    ///
    /// Returns the requests that finished this tick, in retirement order.
    pub fn tick(&mut self) -> Vec<RequestOutcome> {
        self.admit();
        if self.active.is_empty() {
            return Vec::new();
        }

        // Draft phase: every active session speculates its next round.  The
        // per-session draft device time is read off the session clock delta.
        let mut drafted = Vec::with_capacity(self.active.len());
        let mut draft_ms = Vec::with_capacity(self.active.len());
        let mut verify_widths = Vec::with_capacity(self.active.len());
        for session in &mut self.active {
            let before = session.decode.clock().breakdown().draft_ms;
            let round = session.decode.draft_round(&self.draft);
            draft_ms.push(session.decode.clock().breakdown().draft_ms - before);
            verify_widths.push(round.verify_tokens());
            drafted.push(round);
        }

        // Advance the shared wall clock by the batched tick cost: drafting in
        // parallel, then one grouped verification pass over all sessions.
        let cost = TickCost::of_round(&draft_ms, &verify_widths, self.target.profile().latency());
        self.wall_ms += cost.wall_ms;
        self.stats.record_tick(cost, self.active.len());

        // Verification + commit per session (the grouped pass was costed
        // above; per-session acceptance decisions are independent).
        for (session, round) in self.active.iter_mut().zip(drafted) {
            session.decode.verify_round(&self.target, round);
            if session.first_token_ms.is_none() && !session.decode.tokens().is_empty() {
                session.first_token_ms = Some(self.wall_ms);
            }
        }

        // Retire finished sessions; their batch slots refill next tick.
        let (finished, active): (Vec<ServerSession>, Vec<ServerSession>) = self
            .active
            .drain(..)
            .partition(|session| session.decode.is_finished());
        self.active = active;
        finished
            .into_iter()
            .map(|session| self.retire(session))
            .collect()
    }

    /// Ticks until every queued and in-flight request has completed, and
    /// returns all outcomes in completion order.
    pub fn run_until_idle(&mut self) -> Vec<RequestOutcome> {
        let mut outcomes = Vec::new();
        while !self.is_idle() {
            outcomes.extend(self.tick());
        }
        outcomes
    }

    /// Fills free batch slots from the wait queue (iteration-level
    /// admission).
    ///
    /// Under shortest-audio-first, a request's effective priority is its
    /// audio length minus an aging credit (`age × aging_rate`), so long
    /// utterances cannot be starved by a sustained stream of short arrivals:
    /// their credit grows while fresh arrivals start from zero.
    fn admit(&mut self) {
        while self.active.len() < self.config.max_batch && !self.queue.is_empty() {
            let index = match self.config.admission {
                AdmissionPolicy::Fifo => 0,
                AdmissionPolicy::ShortestAudioFirst => {
                    let wall_ms = self.wall_ms;
                    let aging_rate = self.config.aging_rate;
                    self.queue
                        .iter()
                        .enumerate()
                        .min_by(|(_, a), (_, b)| {
                            let priority = |request: &QueuedRequest| {
                                let age_ms = (wall_ms - request.arrival_ms).max(0.0);
                                request.audio_seconds - age_ms * aging_rate
                            };
                            priority(a)
                                .partial_cmp(&priority(b))
                                .expect("durations and ages are finite")
                        })
                        .map(|(index, _)| index)
                        .expect("queue is non-empty")
                }
            };
            let request = self.queue.remove(index).expect("index is in range");
            self.active.push(request.admit(self.wall_ms));
        }
    }

    /// Converts a finished session into its outcome and records statistics.
    ///
    /// Time-to-first-token falls back to completion time for transcripts that
    /// turned out empty (EOS on the very first verification).
    ///
    /// Queueing and first-token spans are clamped at zero: a router can stamp
    /// an arrival on the fleet timeline slightly ahead of a lagging worker's
    /// clock (interleaved `Router::submit`/`Router::tick`), and a request
    /// admitted "before" it arrived must report zero queue delay, not a
    /// negative sample that corrupts the latency histograms.
    fn retire(&mut self, session: ServerSession) -> RequestOutcome {
        let first_token_ms = session.first_token_ms.unwrap_or(self.wall_ms);
        let latency = RequestLatency {
            queue_ms: (session.admitted_ms - session.arrival_ms).max(0.0),
            encoder_ms: session.encoder_ms,
            decode_wall_ms: self.wall_ms - session.admitted_ms,
            time_to_first_token_ms: (first_token_ms - session.arrival_ms).max(0.0)
                + session.encoder_ms,
        };
        let outcome = session.decode.into_outcome();
        let text = self
            .binding
            .tokenizer()
            .decode(&outcome.tokens)
            .expect("decoded tokens always come from the shared vocabulary");
        let outcome = RequestOutcome {
            id: session.id,
            policy: session.policy,
            utterance_id: session.utterance_id,
            text,
            outcome,
            latency,
            audio_seconds: session.audio_seconds,
        };
        self.stats.record_completion(&outcome);
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use specasr::{AdaptiveConfig, SparseTreeConfig, SpeculativeConfig};
    use specasr_audio::Corpus;
    use specasr_audio::Split;
    use specasr_models::{ModelProfile, SimulatedAsrModel};

    fn scheduler(
        config: ServerConfig,
    ) -> (Scheduler<SimulatedAsrModel, SimulatedAsrModel>, Corpus) {
        let corpus = Corpus::librispeech_like(88, 12);
        let binding = TokenizerBinding::for_corpus(&corpus);
        let target = SimulatedAsrModel::target(ModelProfile::whisper_medium_en(), 7);
        let draft = SimulatedAsrModel::draft_paired(ModelProfile::whisper_tiny_en(), 8, &target);
        (
            Scheduler::new(
                draft,
                target,
                binding,
                EncoderProfile::whisper_medium_encoder(),
                config,
            ),
            corpus,
        )
    }

    #[test]
    fn iteration_level_admission_refills_freed_slots() {
        let (mut scheduler, corpus) = scheduler(ServerConfig::default().with_max_batch(4));
        let policy = Policy::Speculative(SpeculativeConfig::short_single());
        for utterance in corpus.split(Split::TestClean) {
            scheduler.submit(policy, utterance).expect("queue has room");
        }
        assert_eq!(scheduler.queued(), 12);
        let first = scheduler.tick();
        assert!(
            first.is_empty() || first.len() < 4,
            "nothing should drain the whole batch at once"
        );
        assert_eq!(scheduler.in_flight() + first.len(), 4);
        // Keep ticking: as soon as any session retires, the next tick admits
        // replacements without waiting for the others.
        let mut completed = first.len();
        let mut refilled = false;
        while !scheduler.is_idle() {
            let before_queue = scheduler.queued();
            let outcomes = scheduler.tick();
            completed += outcomes.len();
            if !outcomes.is_empty() && before_queue > 0 {
                refilled = true;
            }
        }
        assert_eq!(completed, 12);
        assert!(
            refilled,
            "freed slots should be refilled while requests are queued"
        );
        assert_eq!(scheduler.stats().peak_in_flight(), 4);
    }

    #[test]
    fn fifo_admission_preserves_arrival_order() {
        let (mut scheduler, corpus) = scheduler(ServerConfig::default().with_max_batch(1));
        let policy = Policy::Autoregressive;
        let mut submitted = Vec::new();
        for utterance in corpus.split(Split::DevClean).iter().take(5) {
            submitted.push(scheduler.submit(policy, utterance).expect("queue has room"));
        }
        let outcomes = scheduler.run_until_idle();
        let finished: Vec<RequestId> = outcomes.iter().map(|o| o.id).collect();
        assert_eq!(
            finished, submitted,
            "batch of 1 under FIFO must complete in arrival order"
        );
    }

    #[test]
    fn shortest_audio_first_prefers_short_utterances() {
        let (mut scheduler, corpus) = scheduler(
            ServerConfig::default()
                .with_max_batch(1)
                .with_admission(AdmissionPolicy::ShortestAudioFirst),
        );
        let policy = Policy::Autoregressive;
        for utterance in corpus.split(Split::DevClean).iter().take(6) {
            scheduler.submit(policy, utterance).expect("queue has room");
        }
        // The first admitted (hence first completed) request must be the
        // shortest of the queued six.
        let shortest = corpus.split(Split::DevClean)[..6]
            .iter()
            .map(|u| u.duration_seconds())
            .fold(f64::INFINITY, f64::min);
        let outcomes = scheduler.run_until_idle();
        assert!((outcomes[0].audio_seconds - shortest).abs() < 1e-12);
    }

    /// Drives a batch-1 shortest-audio-first scheduler under sustained
    /// short-utterance pressure: one long utterance is queued up front, and a
    /// fresh short arrival replaces every completed request so the queue
    /// always holds a shorter competitor.  Returns how many ticks the long
    /// utterance needed to complete, or `None` if it starved for `budget`
    /// ticks.
    fn ticks_until_long_completes(aging_rate: f64, budget: usize) -> Option<usize> {
        let (mut scheduler, corpus) = scheduler(
            ServerConfig::default()
                .with_max_batch(1)
                .with_admission(AdmissionPolicy::ShortestAudioFirst)
                .with_aging_rate(aging_rate),
        );
        let policy = Policy::Speculative(SpeculativeConfig::short_single());
        let pool = corpus.split(Split::TestClean);
        let long = pool
            .iter()
            .max_by(|a, b| {
                a.duration_seconds()
                    .partial_cmp(&b.duration_seconds())
                    .expect("durations are finite")
            })
            .expect("split is non-empty");
        let short = pool
            .iter()
            .min_by(|a, b| {
                a.duration_seconds()
                    .partial_cmp(&b.duration_seconds())
                    .expect("durations are finite")
            })
            .expect("split is non-empty");
        assert!(long.duration_seconds() > 2.0 * short.duration_seconds());

        let long_id = scheduler.submit(policy, long).expect("queue has room");
        for _ in 0..4 {
            scheduler.submit(policy, short).expect("queue has room");
        }
        for tick in 0..budget {
            let outcomes = scheduler.tick();
            if outcomes.iter().any(|o| o.id == long_id) {
                return Some(tick + 1);
            }
            // Sustained load: replace every completion with a new short.
            for _ in 0..outcomes.len() {
                let _ = scheduler.submit(policy, short);
            }
        }
        None
    }

    #[test]
    fn aging_admits_long_utterances_under_sustained_short_load() {
        let admitted_after = ticks_until_long_completes(ServerConfig::default().aging_rate, 400);
        assert!(
            admitted_after.is_some(),
            "with aging, the long utterance must complete despite sustained short arrivals"
        );
    }

    #[test]
    fn zero_aging_rate_starves_long_utterances() {
        assert_eq!(
            ticks_until_long_completes(0.0, 400),
            None,
            "pure shortest-audio-first must starve the long utterance while shorts keep arriving"
        );
    }

    #[test]
    fn queue_depth_applies_backpressure() {
        let (mut scheduler, corpus) = scheduler(ServerConfig::default().with_queue_depth(2));
        let policy = Policy::Autoregressive;
        let split = corpus.split(Split::TestOther);
        assert!(scheduler.submit(policy, &split[0]).is_ok());
        assert!(scheduler.submit(policy, &split[1]).is_ok());
        let rejected = scheduler.submit(policy, &split[2]);
        assert_eq!(rejected, Err(SubmitError::QueueFull { queue_depth: 2 }));
        assert_eq!(scheduler.stats().rejected(), 1);
        // Draining the queue frees room again.
        scheduler.run_until_idle();
        assert!(scheduler.submit(policy, &split[2]).is_ok());
    }

    #[test]
    fn latency_breakdown_is_consistent() {
        let (mut scheduler, corpus) = scheduler(ServerConfig::default().with_max_batch(2));
        let policy = Policy::AdaptiveSingleSequence(AdaptiveConfig::paper());
        for utterance in corpus.split(Split::TestClean).iter().take(6) {
            scheduler.submit(policy, utterance).expect("queue has room");
        }
        let outcomes = scheduler.run_until_idle();
        assert_eq!(outcomes.len(), 6);
        for outcome in &outcomes {
            let latency = outcome.latency;
            assert!(latency.queue_ms >= 0.0);
            assert!(latency.encoder_ms > 0.0);
            assert!(latency.decode_wall_ms > 0.0);
            assert!(latency.time_to_first_token_ms > 0.0);
            assert!(latency.time_to_first_token_ms <= latency.e2e_ms() + 1e-9);
            assert!((outcome.e2e_ms() - latency.e2e_ms()).abs() < 1e-12);
        }
        // Later-admitted requests queued strictly longer under a batch of 2.
        assert!(outcomes.iter().any(|o| o.latency.queue_ms > 0.0));
    }

    #[test]
    fn batching_amortises_verification_cost() {
        let policy = Policy::TwoPassSparseTree(SparseTreeConfig::paper());
        let (mut batched, corpus) = scheduler(ServerConfig::default().with_max_batch(8));
        for utterance in corpus.split(Split::TestClean) {
            batched.submit(policy, utterance).expect("queue has room");
        }
        batched.run_until_idle();

        let (mut solo, corpus) = scheduler(ServerConfig::default().with_max_batch(1));
        for utterance in corpus.split(Split::TestClean) {
            solo.submit(policy, utterance).expect("queue has room");
        }
        solo.run_until_idle();

        assert!(batched.stats().batching_speedup() > 1.2);
        assert!((solo.stats().batching_speedup() - 1.0).abs() < 1e-9);
        assert!(
            batched.stats().wall_ms() < solo.stats().wall_ms(),
            "batched wall time ({:.0} ms) must undercut solo serving ({:.0} ms)",
            batched.stats().wall_ms(),
            solo.stats().wall_ms()
        );
        assert!(batched.stats().utterances_per_second() > solo.stats().utterances_per_second());
    }

    #[test]
    fn mixed_policy_batches_complete() {
        let (mut scheduler, corpus) = scheduler(ServerConfig::default());
        let policies = [
            Policy::Autoregressive,
            Policy::Speculative(SpeculativeConfig::short_single()),
            Policy::AdaptiveSingleSequence(AdaptiveConfig::paper()),
            Policy::TwoPassSparseTree(SparseTreeConfig::paper()),
        ];
        for (index, utterance) in corpus.split(Split::TestOther).iter().enumerate() {
            scheduler
                .submit(policies[index % policies.len()], utterance)
                .expect("queue has room");
        }
        let outcomes = scheduler.run_until_idle();
        assert_eq!(outcomes.len(), 12);
        assert_eq!(scheduler.stats().completed(), 12);
        let acceptance = scheduler.stats().mean_acceptance();
        assert!(
            (0.0..=1.0).contains(&acceptance) && acceptance > 0.2,
            "pooled acceptance should be meaningful, got {acceptance:.3}"
        );
        assert!(scheduler.stats().e2e_p99_ms() >= scheduler.stats().e2e_p50_ms());
    }
}
