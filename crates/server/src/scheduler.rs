//! The continuous-batching scheduler: iteration-level memory-aware admission,
//! per-session draft phases, one grouped verification pass per tick, and
//! KV-pool preemption when memory runs out.

use std::collections::VecDeque;
use std::sync::Arc;

use specasr::{DecodeOutcome, Drafter, DrafterKind, Policy};
use specasr_audio::{chunk_schedule, EncoderProfile, Utterance};
use specasr_models::{
    splitmix64, AsrBackend, AsrDecoderModel, BackendBatch, BackendCounters, DeviceTimeline,
    ForwardResult, InFlightSimBackend, ModelProfile, RpcBackend, SyncBackendAdapter, Ticket,
    TokenizerBinding,
};
use specasr_runtime::KvPool;
use specasr_stream::{StreamConfig, StreamingSession};
use specasr_trace::{FlightRecording, ShedReason, TraceConfig, TraceEvent, Tracer};

use crate::batch::{plan_verify_waves, plan_verify_waves_pipelined, TickCost};
use crate::config::{AdmissionOrdering, AdmissionPolicy, PreemptPolicy, ServerConfig};
use crate::request::{
    PartialSpan, RequestId, RequestLatency, RequestOutcome, SloClass, SubmitError,
};
use crate::session::{QueuedRequest, ServerSession, StreamState};
use crate::stats::ServerStats;

/// The scheduler's verification backend: the in-process simulated device, or
/// the same device behind a process boundary.
///
/// The two variants are observably identical — same timing, same tickets,
/// same counters — because the RPC worker prices batches with the same
/// [`InFlightSimBackend`] timeline.  The enum exists so the choice threads
/// through [`Scheduler`]/[`crate::Router`]/bench bins as configuration
/// rather than as a type parameter every caller must name.
#[derive(Debug)]
pub enum VerifyBackend<T> {
    /// The in-process simulated device.
    Sim(InFlightSimBackend<T>),
    /// A worker thread behind the serialized wire protocol.
    Rpc(RpcBackend),
}

impl<T: AsrDecoderModel> VerifyBackend<T> {
    /// The per-batch dispatch overhead of the underlying device timeline.
    pub fn dispatch_overhead_ms(&self) -> f64 {
        match self {
            VerifyBackend::Sim(backend) => backend.dispatch_overhead_ms(),
            VerifyBackend::Rpc(backend) => backend.dispatch_overhead_ms(),
        }
    }

    /// The wall time the device backlog drains (the pipelined wave
    /// planner's cross-tick carry).
    pub fn device_free_ms(&self) -> f64 {
        match self {
            VerifyBackend::Sim(backend) => backend.device_free_ms(),
            VerifyBackend::Rpc(backend) => backend.device_free_ms(),
        }
    }

    /// Enables (or disables) the device-side batch log.  The RPC variant
    /// propagates the flag across the wire, so both variants log the same
    /// events — the trace-stitching identity `+rpc` runs rely on.
    pub fn set_device_tracing(&mut self, enabled: bool) {
        match self {
            VerifyBackend::Sim(backend) => backend.set_device_tracing(enabled),
            VerifyBackend::Rpc(backend) => backend.set_device_tracing(enabled),
        }
    }

    /// Drains the device-side batch log accumulated since the last drain.
    pub fn take_device_events(&mut self) -> Vec<specasr_models::DeviceEvent> {
        match self {
            VerifyBackend::Sim(backend) => backend.take_device_events(),
            VerifyBackend::Rpc(backend) => backend.take_device_events(),
        }
    }
}

impl<T: AsrDecoderModel> AsrBackend for VerifyBackend<T> {
    fn profile(&self) -> &ModelProfile {
        match self {
            VerifyBackend::Sim(backend) => backend.profile(),
            VerifyBackend::Rpc(backend) => backend.profile(),
        }
    }

    fn submit(&mut self, batch: BackendBatch, now_ms: f64) -> Vec<Ticket> {
        match self {
            VerifyBackend::Sim(backend) => backend.submit(batch, now_ms),
            VerifyBackend::Rpc(backend) => backend.submit(batch, now_ms),
        }
    }

    fn poll(&mut self) -> Vec<ForwardResult> {
        match self {
            VerifyBackend::Sim(backend) => backend.poll(),
            VerifyBackend::Rpc(backend) => backend.poll(),
        }
    }

    fn complete(&mut self, ticket: Ticket) -> Option<ForwardResult> {
        match self {
            VerifyBackend::Sim(backend) => backend.complete(ticket),
            VerifyBackend::Rpc(backend) => backend.complete(ticket),
        }
    }

    fn counters(&self) -> BackendCounters {
        match self {
            VerifyBackend::Sim(backend) => backend.counters(),
            VerifyBackend::Rpc(backend) => backend.counters(),
        }
    }
}

/// How one in-flight session leaves (or stays in) the batch at tick end.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Removal {
    /// Still decoding (or finished and heading for retirement).
    Keep,
    /// Evicted to free KV blocks; re-queued for a deterministic restore.
    Preempted,
    /// Its KV demand can never be met; dropped with a memory rejection.
    Rejected,
}

/// A continuous-batching serving scheduler over a draft/target model pair.
///
/// Requests are [`Scheduler::submit`]ted with their own [`Policy`] (different
/// policies batch together) and decoded round by round: every
/// [`Scheduler::tick`] admits queued requests into free batch slots
/// (iteration-level scheduling — finished sessions free their slots without
/// waiting for the batch to drain), runs each active session's draft phase,
/// verifies all drafted material in one grouped target pass, and retires the
/// sessions that reached EOS.
///
/// Time is simulated: the scheduler advances a wall clock by each tick's
/// batched cost (see [`crate::batch::TickCost`]), which makes every
/// throughput/latency number deterministic and reproducible.  The audio
/// encoder is modelled as a concurrent pool: its latency counts toward each
/// request's end-to-end and first-token latency but does not serialise the
/// decoder timeline.
///
/// # Example
///
/// ```
/// use specasr::{AdaptiveConfig, Policy};
/// use specasr_audio::{Corpus, EncoderProfile, Split};
/// use specasr_models::{ModelProfile, SimulatedAsrModel, TokenizerBinding};
/// use specasr_server::{Scheduler, ServerConfig};
///
/// let corpus = Corpus::librispeech_like(5, 4);
/// let binding = TokenizerBinding::for_corpus(&corpus);
/// let target = SimulatedAsrModel::target(ModelProfile::whisper_medium_en(), 7);
/// let draft = SimulatedAsrModel::draft_paired(ModelProfile::whisper_tiny_en(), 8, &target);
///
/// let mut scheduler = Scheduler::new(
///     draft,
///     target,
///     binding,
///     EncoderProfile::whisper_medium_encoder(),
///     ServerConfig::default(),
/// );
/// let policy = Policy::AdaptiveSingleSequence(AdaptiveConfig::paper());
/// for utterance in corpus.split(Split::TestClean) {
///     scheduler.submit(policy, utterance).expect("queue has room");
/// }
/// let outcomes = scheduler.run_until_idle();
/// assert_eq!(outcomes.len(), 4);
/// assert!(scheduler.stats().utterances_per_second() > 0.0);
/// ```
#[derive(Debug)]
pub struct Scheduler<D, T> {
    /// The draft backend: per-session draft chains run through it as
    /// single-token `ForwardRequest`s.  The blanket adapter has no shared
    /// device timeline — sessions draft in parallel, the model for a pool of
    /// draft-sized accelerators.
    draft: SyncBackendAdapter<D>,
    /// The target backend: cross-session verification batches run through
    /// it.  One serialised device timeline, so verification waves submitted
    /// while straggler draft phases still run genuinely overlap them.
    target: VerifyBackend<T>,
    /// The modeled draft-device budget: when `config.draft_lanes > 0`,
    /// every model-draft session's round reserves a timed span here, so
    /// draft rounds contend for lanes like real hardware (0 lanes =
    /// unconstrained, the historical pool-of-accelerators model).
    draft_timeline: DeviceTimeline,
    /// Completion times of verification waves submitted but possibly not
    /// yet drained past, oldest first — the scheduler-owned in-flight
    /// window.  A new wave may not be submitted while
    /// `config.max_in_flight_waves` waves are still outstanding.
    outstanding_waves: VecDeque<f64>,
    binding: TokenizerBinding,
    encoder: EncoderProfile,
    config: ServerConfig,
    /// Installed draft-free draft sources, one per [`DrafterKind`].
    /// Model-draft sessions go through the draft backend instead; draft-free
    /// sessions dispatch their draft phase to the matching entry here (and
    /// never touch the draft backend or the draft KV sub-pool).
    drafters: Vec<(DrafterKind, Arc<dyn Drafter + Send + Sync>)>,
    queue: VecDeque<QueuedRequest>,
    /// Streaming requests parked between chunks: their current view is fully
    /// decoded (or not yet audible) and the next chunk has not arrived.
    waiting: Vec<QueuedRequest>,
    active: Vec<ServerSession>,
    kv: KvPool,
    wall_ms: f64,
    next_id: u64,
    stats: ServerStats,
    /// Flight recorder; the no-op sink unless [`Scheduler::set_trace`]
    /// enabled it.
    tracer: Tracer,
    /// Ticks executed so far (the flight recorder's tick sequence).
    ticks_seen: u64,
    /// Copy-on-write copies already reported to the recorder.
    cow_reported: u64,
}

impl<D, T> Scheduler<D, T>
where
    D: AsrDecoderModel,
    T: AsrDecoderModel,
{
    /// Creates a scheduler.
    ///
    /// # Panics
    ///
    /// Panics if `config` is invalid (see [`ServerConfig::validate`]).
    pub fn new(
        draft: D,
        target: T,
        binding: TokenizerBinding,
        encoder: EncoderProfile,
        config: ServerConfig,
    ) -> Self {
        Self::with_target_backend(
            draft,
            VerifyBackend::Sim(InFlightSimBackend::new(target)),
            binding,
            encoder,
            config,
        )
    }

    /// Like [`Scheduler::new`], but the target model runs behind a
    /// process-boundary [`RpcBackend`]: a worker thread owns the device and
    /// every verification batch crosses the serialized wire protocol.
    /// Timing, tickets, and transcripts are identical to the in-process
    /// backend — this constructor exists to prove it (and to smoke the wire
    /// path in benches and CI).
    ///
    /// # Panics
    ///
    /// Panics if `config` is invalid (see [`ServerConfig::validate`]).
    pub fn with_rpc_target(
        draft: D,
        target: T,
        binding: TokenizerBinding,
        encoder: EncoderProfile,
        config: ServerConfig,
    ) -> Self
    where
        T: Send + 'static,
    {
        Self::with_target_backend(
            draft,
            VerifyBackend::Rpc(RpcBackend::spawn(target)),
            binding,
            encoder,
            config,
        )
    }

    fn with_target_backend(
        draft: D,
        target: VerifyBackend<T>,
        binding: TokenizerBinding,
        encoder: EncoderProfile,
        config: ServerConfig,
    ) -> Self {
        config.validate();
        let mut stats = ServerStats::new();
        stats.set_kv_capacity(2 * config.kv_blocks);
        Scheduler {
            draft: SyncBackendAdapter::new(draft),
            target,
            draft_timeline: DeviceTimeline::new(config.draft_lanes),
            outstanding_waves: VecDeque::new(),
            binding,
            encoder,
            config,
            drafters: Vec::new(),
            queue: VecDeque::new(),
            waiting: Vec::new(),
            active: Vec::with_capacity(config.max_batch),
            kv: KvPool::bounded(config.kv_blocks, config.block_size),
            wall_ms: 0.0,
            next_id: 0,
            stats,
            tracer: Tracer::disabled(),
            ticks_seen: 0,
            cow_reported: 0,
        }
    }

    /// Enables (or re-arms) the flight recorder.  Tracing is purely
    /// observational: it reads the same simulated clock the scheduler
    /// advances, so enabling it changes no decision, latency, or transcript.
    pub fn set_trace(&mut self, config: TraceConfig) {
        self.target.set_device_tracing(config.enabled);
        self.tracer = Tracer::new(config);
    }

    /// Installs (or replaces) a draft-free draft source.  Sessions submitted
    /// with the matching [`DrafterKind`] dispatch their draft phases to it;
    /// they submit no draft-lane backend batches and demand zero draft
    /// sub-pool blocks, so admission and preemption see roughly double the
    /// effective pool capacity for them.
    ///
    /// # Panics
    ///
    /// Panics if the drafter reports [`DrafterKind::ModelDraft`] — the model
    /// draft path runs through the scheduler's draft backend, not an
    /// installed drafter.
    pub fn install_drafter(&mut self, drafter: Arc<dyn Drafter + Send + Sync>) {
        let kind = drafter.kind();
        assert!(
            kind != DrafterKind::ModelDraft,
            "model drafting runs through the draft backend; install draft-free drafters only"
        );
        if let Some(slot) = self.drafters.iter_mut().find(|(k, _)| *k == kind) {
            slot.1 = drafter;
        } else {
            self.drafters.push((kind, drafter));
        }
    }

    /// The installed draft source for `kind`, if any.
    fn drafter_for(&self, kind: DrafterKind) -> Option<&Arc<dyn Drafter + Send + Sync>> {
        self.drafters
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|(_, drafter)| drafter)
    }

    /// The flight recording so far, when tracing is enabled.
    pub fn trace_recording(&self) -> Option<&FlightRecording> {
        self.tracer.recording()
    }

    /// Takes the recording out, leaving the recorder armed with a fresh
    /// empty ring.  `None` when tracing is disabled.
    pub fn take_trace_recording(&mut self) -> Option<FlightRecording> {
        self.tracer.take_recording()
    }

    /// The paged KV pool this scheduler allocates session caches from.
    pub fn kv_pool(&self) -> &KvPool {
        &self.kv
    }

    /// The draft model (behind its backend adapter).
    pub fn draft_model(&self) -> &D {
        self.draft.model()
    }

    /// The target model (behind its in-flight backend).
    ///
    /// # Panics
    ///
    /// Panics when the target runs behind the RPC boundary — the worker
    /// thread owns the model, and nothing in-process can reference it
    /// (which is the point of the boundary).
    pub fn target_model(&self) -> &T {
        match &self.target {
            VerifyBackend::Sim(backend) => backend.model(),
            VerifyBackend::Rpc(_) => {
                panic!("the RPC worker owns the target model; only its profile crosses the wire")
            }
        }
    }

    /// The backend the per-session draft chains are submitted through.
    pub fn draft_backend(&self) -> &SyncBackendAdapter<D> {
        &self.draft
    }

    /// The backend the cross-session verification batches are submitted
    /// through.
    pub fn target_backend(&self) -> &VerifyBackend<T> {
        &self.target
    }

    /// The scheduler configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// Aggregate statistics accumulated so far.
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    /// Current simulated wall-clock time in milliseconds.
    pub fn wall_ms(&self) -> f64 {
        self.wall_ms
    }

    /// Number of requests waiting for admission.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Number of streaming requests parked between chunks.
    pub fn waiting_streams(&self) -> usize {
        self.waiting.len()
    }

    /// Number of sessions decoding right now.
    pub fn in_flight(&self) -> usize {
        self.active.len()
    }

    /// `true` when no request is queued, in flight, or awaiting a chunk.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty() && self.active.is_empty() && self.waiting.is_empty()
    }

    /// Submits one utterance for transcription under `policy`.
    ///
    /// The request is timestamped at the current wall time and queued;
    /// admission happens on the next [`Scheduler::tick`].  Returns the
    /// request id, or [`SubmitError::QueueFull`] once `queue_depth` requests
    /// are already waiting (backpressure — the caller decides whether to
    /// retry, shed, or block).
    pub fn submit(
        &mut self,
        policy: Policy,
        utterance: &Utterance,
    ) -> Result<RequestId, SubmitError> {
        self.submit_with_budget(policy, utterance, None)
    }

    /// Like [`Scheduler::submit`], with an optional time-to-first-token
    /// budget: if the request is still unadmitted once its queue wait
    /// exceeds the budget, it is shed with a `rejected_deadline` count
    /// instead of being served uselessly late (latency-SLO admission
    /// groundwork; the admission ordering itself stays policy-driven).
    pub fn submit_with_budget(
        &mut self,
        policy: Policy,
        utterance: &Utterance,
        ttft_budget_ms: Option<f64>,
    ) -> Result<RequestId, SubmitError> {
        self.submit_request(policy, DrafterKind::ModelDraft, utterance, ttft_budget_ms)
    }

    /// Like [`Scheduler::submit`], with an explicit draft source for this
    /// request (per-request drafter selection — different drafters batch
    /// together just like different policies do).
    ///
    /// # Panics
    ///
    /// Panics if `drafter` names a draft-free kind without a matching
    /// [`Scheduler::install_drafter`] call — drafter installation is server
    /// configuration, not request payload, exactly like policy validation.
    pub fn submit_with_drafter(
        &mut self,
        policy: Policy,
        drafter: DrafterKind,
        utterance: &Utterance,
    ) -> Result<RequestId, SubmitError> {
        self.submit_request(policy, drafter, utterance, None)
    }

    fn submit_request(
        &mut self,
        policy: Policy,
        drafter: DrafterKind,
        utterance: &Utterance,
        ttft_budget_ms: Option<f64>,
    ) -> Result<RequestId, SubmitError> {
        assert!(
            drafter == DrafterKind::ModelDraft || self.drafter_for(drafter).is_some(),
            "no {} drafter installed; call install_drafter first",
            drafter.label()
        );
        // Reject before tokenizing: under overload, rejected submissions are
        // the common case and must not pay for work that gets dropped.
        if self.queue.len() >= self.config.queue_depth {
            return Err(self.reject());
        }
        let id = RequestId::new(self.next_id);
        let audio = self.binding.bind(utterance);
        self.enqueue(QueuedRequest {
            id,
            policy,
            drafter,
            audio,
            utterance_id: utterance.id(),
            audio_seconds: utterance.duration_seconds(),
            encoder_ms: self
                .encoder
                .latency_ms_for_audio(utterance.duration_seconds()),
            arrival_ms: self.wall_ms,
            preemptions: 0,
            ttft_budget_ms,
            first_output_emitted: false,
            stream: None,
        })?;
        self.next_id += 1;
        Ok(id)
    }

    /// Submits one utterance as a *streaming* request: its audio arrives in
    /// chunks on the timed schedule derived from `stream.chunk` (jitter
    /// seeded per utterance), each chunk triggers a re-decode of the audio
    /// heard so far from the committed prefix, and partial transcripts are
    /// emitted under the stream's commit rule.  The request re-enters the
    /// admission queue for every chunk and competes with offline requests
    /// under the configured admission policy; the final transcript is
    /// byte-identical to an offline decode of the full utterance.
    ///
    /// Backpressure counts parked streams against the queue depth, so an
    /// accepted stream is never shed by *queue* pressure mid-utterance.  A
    /// KV pool too small for the stream's grown footprint (the committed
    /// prefix is re-appended on every per-chunk resume) can still drop it
    /// mid-utterance with a `rejected_memory` count — in that case no final
    /// outcome is produced and already-emitted partials stay with the
    /// caller; size `ServerConfig::kv_blocks` so a full utterance fits.
    pub fn submit_streaming(
        &mut self,
        policy: Policy,
        utterance: &Utterance,
        stream: StreamConfig,
    ) -> Result<RequestId, SubmitError> {
        self.submit_streaming_with_budget(policy, utterance, stream, None)
    }

    /// [`Scheduler::submit_streaming`] with a first-partial deadline budget
    /// (see [`Scheduler::submit_with_budget`]; the budget only applies until
    /// the first partial is emitted).
    pub fn submit_streaming_with_budget(
        &mut self,
        policy: Policy,
        utterance: &Utterance,
        stream: StreamConfig,
        ttft_budget_ms: Option<f64>,
    ) -> Result<RequestId, SubmitError> {
        stream.validate();
        if self.queue.len() + self.waiting.len() >= self.config.queue_depth {
            return Err(self.reject());
        }
        let id = RequestId::new(self.next_id);
        let audio = self.binding.bind(utterance);
        // Per-utterance jitter: the same utterance streams identically for a
        // given seed, and distinct requests decorrelate through their id.
        let seeded = stream.with_seed(splitmix64(
            stream.chunk.seed ^ utterance.id().value() ^ (id.value() << 17),
        ));
        let chunks = chunk_schedule(utterance.duration_seconds(), &seeded.chunk);
        let chunk_encoder_ms = chunks
            .iter()
            .map(|chunk| {
                self.encoder
                    .incremental_latency_ms(chunk.duration_seconds(), chunk.index == 0)
            })
            .collect();
        let state = StreamState {
            session: StreamingSession::new(policy, audio.clone(), seeded),
            chunks,
            chunk_encoder_ms,
            submitted_ms: self.wall_ms,
            delivered: 0,
            newest_chunk_arrival_ms: self.wall_ms,
            pending_encoder_ms: 0.0,
            first_admitted_ms: None,
            partials: Vec::new(),
        };
        let encoder_ms = self
            .encoder
            .latency_ms_for_audio(utterance.duration_seconds());
        let arrival_ms = self.wall_ms;
        let audio_seconds = utterance.duration_seconds();
        self.tracer.record_with(|| TraceEvent::RequestSubmitted {
            ts_ms: arrival_ms,
            request: id.value(),
            encoder_ms,
            audio_seconds,
            streaming: true,
            policy: policy.name(),
            drafter: DrafterKind::ModelDraft.label().to_string(),
        });
        self.waiting.push(QueuedRequest {
            id,
            policy,
            drafter: DrafterKind::ModelDraft,
            audio,
            utterance_id: utterance.id(),
            audio_seconds,
            encoder_ms,
            arrival_ms,
            preemptions: 0,
            ttft_budget_ms,
            first_output_emitted: false,
            stream: Some(Box::new(state)),
        });
        self.next_id += 1;
        Ok(id)
    }

    /// Enqueues an externally built request (the router path: the
    /// [`crate::Router`] assigns fleet-unique ids and arrival timestamps
    /// itself).  Applies the same queue-depth backpressure as
    /// [`Scheduler::submit`].
    pub(crate) fn enqueue(&mut self, request: QueuedRequest) -> Result<(), SubmitError> {
        if self.queue.len() >= self.config.queue_depth {
            return Err(self.reject());
        }
        self.tracer.record_with(|| TraceEvent::RequestSubmitted {
            ts_ms: request.arrival_ms,
            request: request.id.value(),
            encoder_ms: request.encoder_ms,
            audio_seconds: request.audio_seconds,
            streaming: request.stream.is_some(),
            policy: request.policy.name(),
            drafter: request.drafter.label().to_string(),
        });
        self.queue.push_back(request);
        Ok(())
    }

    /// Records a queue-full rejection on this worker's statistics and builds
    /// the error (the router's cheap pre-bind backpressure path).
    pub(crate) fn reject(&mut self) -> SubmitError {
        self.stats.record_rejection();
        let wall_ms = self.wall_ms;
        self.tracer.record_with(|| TraceEvent::RequestShed {
            ts_ms: wall_ms,
            request: None,
            reason: ShedReason::QueueFull,
        });
        SubmitError::QueueFull {
            queue_depth: self.config.queue_depth,
        }
    }

    /// Removes up to `max` requests from the *back* of the wait queue, for
    /// work stealing: the most recently arrived requests move, so the
    /// victims' oldest (most aged) requests keep their position.
    pub(crate) fn steal_back(&mut self, max: usize) -> Vec<QueuedRequest> {
        let take = max.min(self.queue.len());
        let mut stolen: Vec<QueuedRequest> =
            (0..take).filter_map(|_| self.queue.pop_back()).collect();
        // Preserve arrival order among the moved requests.
        stolen.reverse();
        stolen
    }

    /// Advances the wall clock to at least `ms` without doing work — the
    /// router fast-forwards idle workers through global time this way (a
    /// scheduler's clock only moves while it ticks).
    pub(crate) fn sync_wall_to(&mut self, ms: f64) {
        self.wall_ms = self.wall_ms.max(ms);
    }

    /// Drains every waiting request out of the admission queue — a worker
    /// entering `Draining` stops admitting, and the router re-routes its
    /// queue through the ring.  Parked streams (in `waiting`) stay: their
    /// chunk timetable and committed prefix live on this worker until the
    /// stream finishes.
    pub(crate) fn drain_queue(&mut self) -> Vec<QueuedRequest> {
        self.queue.drain(..).collect()
    }

    /// Extracts the in-flight sessions a draining worker can migrate:
    /// offline sessions between ticks.  Streaming sessions stay and finish
    /// on the draining worker (their per-chunk state does not move).
    pub(crate) fn extract_migratable(&mut self) -> Vec<ServerSession> {
        let mut migrated = Vec::new();
        let mut index = 0;
        while index < self.active.len() {
            if self.active[index].stream.is_none() {
                migrated.push(self.active.remove(index));
            } else {
                index += 1;
            }
        }
        migrated
    }

    /// Admits a migrated session whose KV blocks already live in this
    /// worker's pool (the hand-off fast path; see
    /// [`specasr::DecodeSession::migrate_kv`]).  The caller checked
    /// [`Scheduler::has_batch_room`] and moved the blocks first.
    pub(crate) fn adopt_session(&mut self, mut session: ServerSession) {
        debug_assert!(self.active.len() < self.config.max_batch);
        // The migrated session resumes on this worker's clock: its next
        // round starts no earlier than now (clocks never run backwards) and
        // no earlier than its own outstanding wave's completion.
        session.ready_ms = session.ready_ms.max(self.wall_ms);
        self.active.push(session);
    }

    /// Enqueues a request displaced by a drain, bypassing the queue-depth
    /// check: a migration must never drop a request, so a destination under
    /// backpressure absorbs the transient overflow instead of shedding it.
    /// No submission event is recorded — the request already was submitted
    /// once, on the worker it is leaving.
    pub(crate) fn enqueue_migrated(&mut self, request: QueuedRequest) {
        self.queue.push_back(request);
    }

    /// Whether the batch has room for one more in-flight session.
    pub(crate) fn has_batch_room(&self) -> bool {
        self.active.len() < self.config.max_batch
    }

    /// The paged KV pool, mutably — the router moves block tables between
    /// two workers' pools during a hand-off migration.
    pub(crate) fn kv_pool_mut(&mut self) -> &mut KvPool {
        &mut self.kv
    }

    /// Records a migrated-in session on this worker's statistics (the
    /// destination side counts, so fleet-merged totals count each migration
    /// exactly once).
    pub(crate) fn record_migration_in(&mut self, handoff: bool) {
        self.stats.record_migration(handoff);
    }

    /// Runs one scheduler iteration: deliver due stream chunks → admit →
    /// draft → grouped verify (with KV-pool preemption when memory runs
    /// out) → retire / emit partials.
    ///
    /// Returns the requests that finished this tick, in retirement order.
    pub fn tick(&mut self) -> Vec<RequestOutcome> {
        self.release_due_streams();
        // With nothing decodable but streams parked between chunks, the only
        // next event is a chunk arrival: fast-forward the wall clock to it
        // (a real server would sleep here).
        if self.active.is_empty() && self.queue.is_empty() && !self.waiting.is_empty() {
            if let Some(next) = self.next_chunk_arrival_ms() {
                self.wall_ms = self.wall_ms.max(next);
                self.release_due_streams();
            }
        }
        self.admit();
        if self.active.is_empty() {
            return Vec::new();
        }

        // Draft phase: every active session speculates its next round
        // through the draft backend (each draft query is a single-probe
        // `ForwardRequest` submit + complete).  The per-session draft device
        // time is read off the session clock delta; sessions draft in
        // parallel on the accelerator.
        let tick_start = self.wall_ms;
        self.ticks_seen += 1;
        let tick = self.ticks_seen;
        {
            let active = self.active.len() as u64;
            let queued = self.queue.len() as u64;
            self.tracer.record_with(|| TraceEvent::TickStart {
                ts_ms: tick_start,
                tick,
                active,
                queued,
            });
        }
        // Pipelined scheduling (`max_in_flight_waves ≥ 2`) starts each
        // session's draft phase at its *own* readiness — the completion of
        // its previous verification wave, which can precede this tick's
        // start.  That head start is the cross-tick overlap: the next
        // round's draft work runs while the previous tick's later waves are
        // still draining on the device.  Depth 1 is the classic
        // drain-per-tick schedule (everything starts at `tick_start`).
        let pipeline_depth = self.config.max_in_flight_waves;
        let pipelined = pipeline_depth > 1;
        let sessions = self.active.len();
        let ready: Vec<f64> = self
            .active
            .iter()
            .map(|session| {
                if pipelined {
                    session.ready_ms
                } else {
                    tick_start
                }
            })
            .collect();
        // Draft rounds reserve modeled draft-device time in readiness order
        // (ties by batch index), so lane contention under a bounded
        // `draft_lanes` budget is deterministic.
        let mut order: Vec<usize> = (0..sessions).collect();
        order.sort_by(|&a, &b| {
            ready[a]
                .partial_cmp(&ready[b])
                .expect("wall clocks are finite")
                .then(a.cmp(&b))
        });
        let mut drafted: Vec<Option<specasr::DraftedRound>> = (0..sessions).map(|_| None).collect();
        let mut spent_ms = vec![0.0; sessions];
        let mut draft_done = vec![0.0; sessions];
        let mut verify_widths = vec![0usize; sessions];
        for &index in &order {
            let session = &mut self.active[index];
            let before = session.decode.clock().breakdown().draft_ms;
            // Model-draft sessions run their draft chains through the draft
            // backend; draft-free sessions dispatch to the installed drafter
            // (no backend batches, no draft latency charged — their `spent`
            // stays 0.0 and the verify planner sorts them first).
            let round = match session.decode.drafter() {
                DrafterKind::ModelDraft => session
                    .decode
                    .draft_round_via(&mut self.draft, ready[index]),
                kind => {
                    let drafter = self
                        .drafters
                        .iter()
                        .find(|(k, _)| *k == kind)
                        .map(|(_, drafter)| drafter)
                        .expect("draft-free sessions are only admitted with an installed drafter");
                    session.decode.draft_round_with(drafter.as_ref())
                }
            };
            let spent = session.decode.clock().breakdown().draft_ms - before;
            // Draft rounds occupy the modeled draft device; with bounded
            // lanes a round queues behind earlier rounds, pushing its
            // verify submission later exactly like contended hardware.
            let (draft_start, done) = if spent > 0.0 {
                self.draft_timeline.occupy(ready[index], spent)
            } else {
                (ready[index], ready[index])
            };
            let request = session.id.value();
            self.tracer.record_with(|| TraceEvent::DraftPhase {
                start_ms: draft_start,
                end_ms: done,
                tick,
                request,
            });
            spent_ms[index] = spent;
            draft_done[index] = done;
            verify_widths[index] = round.verify_tokens();
            drafted[index] = Some(round);
        }

        // Verification schedule: collect every session's verify request into
        // cross-session `BackendBatch` waves.  Sessions whose drafts
        // finished early can have their wave submitted — and executing in
        // flight — while the slowest draft phases are still running; the
        // plan keeps the single grouped batch whenever overlap cannot win,
        // so the tick never costs more than the historical
        // wait-for-all-then-verify schedule.
        let target_latency = self.target.profile().latency().clone();
        let plan = if pipelined {
            // Absolute submit times: each cohort's wave goes out the moment
            // its slowest draft finishes, queueing behind whatever the
            // device is already running from earlier ticks.
            plan_verify_waves_pipelined(
                &draft_done,
                &verify_widths,
                &target_latency,
                self.target.dispatch_overhead_ms(),
                pipeline_depth,
                self.target.device_free_ms(),
            )
        } else {
            // Drain-per-tick: the legacy 1–2 wave split over draft times
            // relative to the tick start.
            let relative: Vec<f64> = draft_done.iter().map(|done| done - tick_start).collect();
            plan_verify_waves(
                &relative,
                &verify_widths,
                &target_latency,
                self.target.dispatch_overhead_ms(),
            )
        };
        let mut ticket_owner = Vec::with_capacity(self.active.len());
        let mut wave_of = vec![0usize; sessions];
        for (wave_index, (wave, offset)) in
            plan.waves.iter().zip(&plan.submit_offsets_ms).enumerate()
        {
            let mut batch = BackendBatch::new();
            for &index in wave {
                let round = drafted[index]
                    .as_ref()
                    .expect("every planned session drafted this tick");
                batch.push(self.active[index].decode.verify_request(round));
                wave_of[index] = wave_index;
            }
            // The in-flight window: with `max_in_flight_waves` batches
            // already outstanding, the next submission stalls until the
            // oldest one completes — bounded speculation ahead of the
            // device, not an unbounded queue.
            let mut submit_at = if pipelined {
                *offset
            } else {
                tick_start + offset
            };
            while self.outstanding_waves.len() >= pipeline_depth {
                let oldest = self
                    .outstanding_waves
                    .pop_front()
                    .expect("the window length was just checked");
                submit_at = submit_at.max(oldest);
            }
            let tickets = self.target.submit(batch, submit_at);
            if pipelined {
                self.outstanding_waves
                    .push_back(self.target.device_free_ms());
            }
            if self.tracer.is_enabled() {
                let ts_ms = submit_at;
                let ticket_ids: Vec<u64> = tickets.iter().map(|t| t.value()).collect();
                let requests: Vec<u64> = wave
                    .iter()
                    .map(|&index| self.active[index].id.value())
                    .collect();
                self.tracer.record_with(|| TraceEvent::VerifyWaveSubmitted {
                    ts_ms,
                    tick,
                    wave: wave_index as u64,
                    tickets: ticket_ids,
                    requests,
                });
            }
            ticket_owner.extend(
                tickets
                    .into_iter()
                    .zip(wave.iter().copied())
                    .map(|(ticket, owner)| (ticket, owner, wave_index)),
            );
        }
        let mut results: Vec<Option<ForwardResult>> = self.active.iter().map(|_| None).collect();
        let mut tick_end = tick_start;
        let mut wave_completed = vec![tick_start; plan.waves.len()];
        // Per-wave device spans for the recorder: every request of a wave
        // shares its batch's (submitted, started, completed) triple.
        let mut wave_spans: Vec<Option<(f64, f64, f64)>> = if self.tracer.is_enabled() {
            vec![None; plan.waves.len()]
        } else {
            Vec::new()
        };
        for result in self.target.poll() {
            tick_end = tick_end.max(result.completed_ms);
            let &(_, owner, wave_index) = ticket_owner
                .iter()
                .find(|(ticket, _, _)| *ticket == result.ticket)
                .expect("every completion answers a ticket submitted this tick");
            wave_completed[wave_index] = wave_completed[wave_index].max(result.completed_ms);
            if let Some(span) = wave_spans.get_mut(wave_index) {
                *span = Some((result.submitted_ms, result.started_ms, result.completed_ms));
            }
            results[owner] = Some(result);
        }
        if self.tracer.is_enabled() {
            for (wave_index, span) in wave_spans.into_iter().enumerate() {
                let Some((submitted_ms, started_ms, completed_ms)) = span else {
                    continue;
                };
                let ticket_ids: Vec<u64> = ticket_owner
                    .iter()
                    .filter(|&&(_, _, wave)| wave == wave_index)
                    .map(|&(ticket, _, _)| ticket.value())
                    .collect();
                let requests: Vec<u64> = ticket_owner
                    .iter()
                    .filter(|&&(_, _, wave)| wave == wave_index)
                    .map(|&(_, owner, _)| self.active[owner].id.value())
                    .collect();
                self.tracer.record_with(|| TraceEvent::VerifyWaveCompleted {
                    tick,
                    wave: wave_index as u64,
                    submitted_ms,
                    started_ms,
                    completed_ms,
                    tickets: ticket_ids,
                    requests,
                });
            }
        }

        // Advance the shared wall clock to the measured completion of the
        // last verification wave (drafting in parallel, verification
        // overlapping the stragglers).  (A session preempted below still
        // paid for its draft and its share of the verification pass —
        // evicted speculation is wasted device time, exactly as on real
        // hardware.)
        let analytic = TickCost::of_round(&spent_ms, &verify_widths, &target_latency);
        let cost = TickCost {
            wall_ms: (tick_end - tick_start).max(0.0),
            sequential_ms: analytic.sequential_ms,
        };
        self.wall_ms = self.wall_ms.max(tick_end);
        self.stats.record_tick(cost, self.active.len());

        // Commit per session from its pre-scored verification completion
        // (acceptance decisions are independent, and the models are pure, so
        // committing from the backend results is byte-identical to querying
        // the target inline).  Before each session's commit its round's
        // block demand is checked against the pool; on exhaustion the
        // preemption policy evicts sessions until the round fits — or, when
        // nothing is left to evict, the triggering request itself is dropped
        // with a memory rejection.
        let target_profile = self.target.profile().clone();
        let mut removal = vec![Removal::Keep; self.active.len()];
        // Billed width of each wave (= its backend batch's `charge_tokens`):
        // the denominator of the per-token device-time share that both the
        // serving stats and the trace-analysis ledger charge speculation
        // outcomes at, so the two layers agree digit for digit.
        let wave_charges: Vec<u64> = plan
            .waves
            .iter()
            .map(|wave| wave.iter().map(|&i| verify_widths[i] as u64).sum())
            .collect();
        for (index, round) in drafted.into_iter().enumerate() {
            let round = round.expect("every active session drafted this tick");
            if removal[index] != Removal::Keep {
                continue; // evicted by an earlier session's memory pressure
            }
            self.ensure_round_headroom(index, &round, &mut removal);
            if removal[index] != Removal::Keep {
                continue;
            }
            let result = results[index]
                .take()
                .expect("every drafted session was scored by a verification wave");
            // Commit stamps: under pipelined scheduling each session's
            // round lands the moment its own wave completes (first tokens
            // and KV frees carry per-wave timestamps); drain-per-tick
            // stamps everything at the tick's end, as before.
            let commit_ms = if pipelined {
                wave_completed[wave_of[index]].max(tick_start)
            } else {
                tick_end
            };
            let wave_service_ms = (result.completed_ms - result.started_ms).max(0.0);
            let session = &mut self.active[index];
            let rounds_before = session.decode.stats().rounds_detail.len();
            session
                .decode
                .verify_round_from_in(&mut self.kv, &target_profile, &result, round)
                .expect("headroom was ensured before verification");
            // Speculation accounting: the round's drafted/accepted counts
            // (everything the verify pass just recorded) and its share of
            // the wave's device service time, priced per billed token.
            let (round_drafted, round_accepted) = session.decode.stats().rounds_detail
                [rounds_before..]
                .iter()
                .fold((0usize, 0usize), |(d, a), r| {
                    (d + r.predicted, a + r.accepted)
                });
            let wave_index = wave_of[index];
            let per_token_ms = wave_service_ms / wave_charges[wave_index].max(1) as f64;
            let policy_name = session.policy.name();
            let drafter_label = session.decode.drafter().label();
            self.stats.record_verify_outcome(
                &policy_name,
                drafter_label,
                round_drafted,
                round_accepted,
                verify_widths[index],
                per_token_ms,
            );
            let request = session.id.value();
            let charged = verify_widths[index] as u64;
            self.tracer.record_with(|| TraceEvent::VerifyOutcome {
                ts_ms: commit_ms,
                tick,
                wave: wave_index as u64,
                request,
                drafted: round_drafted as u64,
                accepted: round_accepted as u64,
                charged,
            });
            session.ready_ms = commit_ms;
            if session.first_token_ms.is_none() && !session.decode.tokens().is_empty() {
                session.first_token_ms = Some(commit_ms);
            }
            if session.decode.is_finished() {
                // A finished session keeps only its position bookkeeping;
                // releasing its blocks eagerly gives later sessions in this
                // same tick the headroom first.
                let request = session.id.value();
                let blocks = session.decode.kv_blocks_held() as u64;
                session.decode.release_kv(&mut self.kv);
                self.tracer.record_with(|| TraceEvent::KvFree {
                    ts_ms: commit_ms,
                    request,
                    blocks,
                });
            }
        }
        // Draft-lane device time lives in the scheduler's modeled timeline
        // (the draft backend itself only counts batch traffic), so fold it
        // into the draft counters before publishing the gauges.
        let mut draft_counters = self.draft.counters();
        draft_counters.device_busy_ms = self.draft_timeline.busy_ms();
        draft_counters.device_idle_ms = self.draft_timeline.idle_ms();
        let target_counters = self.target.counters();
        self.stats
            .sync_backend_gauges(&draft_counters, &target_counters);
        self.tracer.record_with(|| TraceEvent::DeviceUtilization {
            ts_ms: tick_end,
            draft_busy_ms: draft_counters.device_busy_ms,
            draft_idle_ms: draft_counters.device_idle_ms,
            target_busy_ms: target_counters.device_busy_ms,
            target_idle_ms: target_counters.device_idle_ms,
        });
        // Stitch the device-side batch log into the recording.  Both backend
        // variants produce the same log (the RPC worker ships it over the
        // wire verbatim), so an `--rpc` trace carries digit-for-digit the
        // same device timeline as an in-process one.
        if self.tracer.is_enabled() {
            for event in self.target.take_device_events() {
                self.tracer.record_with(|| TraceEvent::DeviceBatch {
                    ts_ms: event.submitted_ms,
                    seq: event.seq,
                    started_ms: event.started_ms,
                    completed_ms: event.completed_ms,
                    requests: event.requests,
                    charge_tokens: event.charge_tokens,
                    verify: event.verify,
                });
            }
        }

        // Mirror the allocator's exact gauges into the statistics: the
        // per-sub-pool high-water marks catch intra-tick peaks (before
        // rollbacks and finishing sessions released), the per-tick sample
        // feeds the steady-state average.
        self.stats.record_kv_occupancy(self.kv.used_blocks());
        let counters = self.kv.counters();
        self.stats.sync_pool_gauges(
            self.kv.draft().peak_used_blocks() + self.kv.target().peak_used_blocks(),
            counters.prefix_lookups,
            counters.shared_hits,
            counters.cow_copies,
        );
        if self.tracer.is_enabled() {
            let (draft_blocks, target_blocks) = self.kv.sub_pool_used_blocks();
            self.tracer.record_with(|| TraceEvent::KvOccupancy {
                ts_ms: tick_end,
                draft_blocks: draft_blocks as u64,
                target_blocks: target_blocks as u64,
            });
            let cow_copies = counters.cow_copies as u64;
            let fresh_copies = cow_copies - self.cow_reported;
            if fresh_copies > 0 {
                self.tracer.record_with(|| TraceEvent::CowCopy {
                    ts_ms: tick_end,
                    copies: fresh_copies,
                });
            }
            self.cow_reported = cow_copies;
        }

        // Retire finished sessions (their batch slots refill next tick;
        // streaming sessions whose *view* finished emit a partial and either
        // retire or park for their next chunk) and re-queue preempted ones
        // at the front, preserving admission order among them.
        let drained: Vec<(ServerSession, Removal)> = self.active.drain(..).zip(removal).collect();
        let mut outcomes = Vec::new();
        let mut kept = Vec::with_capacity(drained.len());
        let mut requeued = Vec::new();
        for (session, removal) in drained {
            match removal {
                Removal::Keep if session.decode.is_finished() => {
                    if session.stream.is_some() {
                        outcomes.extend(self.finish_stream_view(session));
                    } else {
                        outcomes.push(self.retire(session));
                    }
                }
                Removal::Keep => kept.push(session),
                Removal::Preempted => requeued.push(session.into_requeued(true)),
                Removal::Rejected => {}
            }
        }
        self.active = kept;
        for request in requeued.into_iter().rev() {
            self.queue.push_front(request);
        }
        let completed = outcomes.len() as u64;
        self.tracer.record_with(|| TraceEvent::TickEnd {
            ts_ms: tick_end,
            tick,
            completed,
        });
        outcomes
    }

    /// Delivers every due chunk into the parked streams and moves the ones
    /// that gained decodable audio back into the admission queue.
    fn release_due_streams(&mut self) {
        let wall = self.wall_ms;
        let mut index = 0;
        while index < self.waiting.len() {
            let request = &mut self.waiting[index];
            let id = request.id;
            let stream = request
                .stream
                .as_mut()
                .expect("only streaming requests park between chunks");
            let delivered = stream.deliver_due(wall, id, &mut self.tracer);
            if delivered && stream.decodable() {
                let mut request = self.waiting.remove(index);
                request.refresh_stream_view();
                self.queue.push_back(request);
            } else {
                index += 1;
            }
        }
    }

    /// Wall time of the earliest undelivered chunk across parked streams.
    fn next_chunk_arrival_ms(&self) -> Option<f64> {
        self.waiting
            .iter()
            .filter_map(|request| {
                request
                    .stream
                    .as_ref()
                    .and_then(|stream| stream.next_arrival_ms())
            })
            .min_by(|a, b| a.partial_cmp(b).expect("wall clocks are finite"))
    }

    /// Absorbs a streaming session whose current-view decode completed:
    /// applies the commit rule, records the partial span, and either retires
    /// the request (final partial) or parks it for the next chunk.
    fn finish_stream_view(&mut self, mut session: ServerSession) -> Option<RequestOutcome> {
        let mut stream = session.stream.take().expect("caller checked the stream");
        // The finished session is cheap to clone here: a pooled session's KV
        // blocks were already released, leaving tokens and bookkeeping.
        let view_outcome = session.decode.clone().into_outcome();
        let partial = stream.session.absorb(&view_outcome);
        let span = PartialSpan {
            partial_index: partial.partial_index,
            chunk_index: stream.delivered.saturating_sub(1),
            chunk_arrival_ms: stream.newest_chunk_arrival_ms,
            emitted_ms: self.wall_ms,
            encoder_ms: stream.pending_encoder_ms,
            committed_tokens: partial.committed_tokens,
            newly_committed: partial.newly_committed,
            hypothesis_tokens: partial.hypothesis_tokens,
            retracted_tokens: partial.retracted_tokens,
            is_final: partial.is_final,
        };
        stream.pending_encoder_ms = 0.0;
        if self.tracer.is_enabled() {
            let ts_ms = self.wall_ms;
            let request = session.id.value();
            let partial_index = span.partial_index as u64;
            let committed = span.committed_tokens as u64;
            let hypothesis = span.hypothesis_tokens as u64;
            let retracted = span.retracted_tokens as u64;
            let is_final = span.is_final;
            self.tracer.record_with(|| TraceEvent::PartialEmitted {
                ts_ms,
                request,
                partial: partial_index,
                committed,
                hypothesis,
                is_final,
            });
            if retracted > 0 {
                self.tracer.record_with(|| TraceEvent::Retraction {
                    ts_ms,
                    request,
                    tokens: retracted,
                });
            }
        }
        stream.partials.push(span);
        if partial.is_final {
            return Some(self.retire_stream(session, *stream, view_outcome));
        }
        // Park for the next chunk; the original arrival keeps accumulating
        // aging credit across re-entries, and the emitted partial keeps the
        // request exempt from deadline shedding.
        session.stream = Some(stream);
        self.waiting.push(session.into_requeued(false));
        None
    }

    /// Builds the final outcome of a completed stream: the committed
    /// transcript (byte-identical to the offline decode), the decode
    /// statistics pooled across every per-chunk re-decode, and the full
    /// partial-span history.  Time-to-first-token is the first partial's
    /// arrival-to-emission latency.
    fn retire_stream(
        &mut self,
        session: ServerSession,
        stream: StreamState,
        last_view_outcome: DecodeOutcome,
    ) -> RequestOutcome {
        let arrival_ms = session.arrival_ms;
        let first_admitted = stream.first_admitted_ms.unwrap_or(arrival_ms);
        let first_partial = stream
            .partials
            .first()
            .expect("a finished stream emitted at least one partial");
        let latency = RequestLatency {
            queue_ms: (first_admitted - arrival_ms).max(0.0),
            encoder_ms: session.encoder_ms,
            decode_wall_ms: self.wall_ms - first_admitted,
            time_to_first_token_ms: (first_partial.emitted_ms - arrival_ms).max(0.0)
                + first_partial.encoder_ms,
        };
        let outcome = DecodeOutcome {
            tokens: stream.session.final_tokens().to_vec(),
            stats: stream.session.decode_stats().clone(),
            clock: stream.session.clock().clone(),
            draft_cache: last_view_outcome.draft_cache,
            target_cache: last_view_outcome.target_cache,
        };
        let text = self
            .binding
            .tokenizer()
            .decode(&outcome.tokens)
            .expect("decoded tokens always come from the shared vocabulary");
        let outcome = RequestOutcome {
            id: session.id,
            policy: session.policy,
            utterance_id: session.utterance_id,
            text,
            outcome,
            latency,
            audio_seconds: session.audio_seconds,
            preemptions: session.preemptions,
            slo: SloClass::of_budget(session.ttft_budget_ms),
            partials: stream.partials,
        };
        self.stats.record_completion(&outcome);
        let ts_ms = self.wall_ms;
        let request = outcome.id.value();
        let tokens = outcome.token_count() as u64;
        self.tracer.record_with(|| TraceEvent::RequestCompleted {
            ts_ms,
            request,
            tokens,
        });
        outcome
    }

    /// Advances the scheduler to wall time `ms`, ticking while there is work
    /// (the open-loop driver: submit at arrival timestamps, advance between
    /// them).  Never fast-forwards a chunk arrival later than `ms`.
    pub fn advance_to(&mut self, ms: f64) -> Vec<RequestOutcome> {
        let mut outcomes = Vec::new();
        while !self.is_idle() && self.wall_ms < ms {
            if self.active.is_empty() && self.queue.is_empty() {
                // Only a chunk arrival can create work; don't jump past
                // `ms` to reach one.
                match self.next_chunk_arrival_ms() {
                    Some(next) if next <= ms => {}
                    _ => break,
                }
            }
            outcomes.extend(self.tick());
        }
        self.sync_wall_to(ms);
        outcomes
    }

    /// Frees enough pool blocks for `round`'s verification at `index`,
    /// evicting victims under the configured preemption policy.  Marks the
    /// evictions (including, possibly, `index` itself) in `removal`.
    fn ensure_round_headroom(
        &mut self,
        index: usize,
        round: &specasr::DraftedRound,
        removal: &mut [Removal],
    ) {
        loop {
            let demand = self.active[index].decode.round_kv_demand(&self.kv, round);
            if demand.draft_blocks <= self.kv.draft().free_blocks()
                && demand.target_blocks <= self.kv.target().free_blocks()
            {
                return;
            }
            let victim = self.pick_victim(removal);
            // Evicting the triggering session only helps if some *other*
            // session still holds blocks that later rounds can use: a
            // restored session re-decodes deterministically to this exact
            // state, so with the pool otherwise empty the same exhaustion
            // would repeat forever (admit → decode → self-evict livelock).
            // In that case the session's footprint simply exceeds the pool:
            // shed it.
            let other_holds_blocks = self.active.iter().enumerate().any(|(other, session)| {
                other != index
                    && removal[other] == Removal::Keep
                    && session.decode.kv_blocks_held() > 0
            });
            match victim {
                Some(victim) if victim != index || other_holds_blocks => {
                    let request = self.active[victim].id.value();
                    let blocks = self.active[victim].decode.kv_blocks_held() as u64;
                    self.active[victim].decode.release_kv(&mut self.kv);
                    removal[victim] = Removal::Preempted;
                    self.stats.record_preemption();
                    let ts_ms = self.wall_ms;
                    self.tracer.record_with(|| TraceEvent::KvPreempt {
                        ts_ms,
                        request,
                        blocks,
                    });
                    if victim == index {
                        return; // the triggering session evicted itself
                    }
                }
                _ => {
                    // Nothing (useful) left to evict: this round can never
                    // fit, now or after any deterministic restore.
                    let request = self.active[index].id.value();
                    let blocks = self.active[index].decode.kv_blocks_held() as u64;
                    self.active[index].decode.release_kv(&mut self.kv);
                    removal[index] = Removal::Rejected;
                    self.stats.record_memory_rejection();
                    let ts_ms = self.wall_ms;
                    self.tracer.record_with(|| TraceEvent::KvFree {
                        ts_ms,
                        request,
                        blocks,
                    });
                    self.tracer.record_with(|| TraceEvent::RequestShed {
                        ts_ms,
                        request: Some(request),
                        reason: ShedReason::Memory,
                    });
                    return;
                }
            }
        }
    }

    /// The session the preemption policy evicts next: among live,
    /// unfinished, block-holding sessions, the newest admission
    /// ([`PreemptPolicy::NewestAdmitted`]) or the largest block holder
    /// ([`PreemptPolicy::LargestKv`]), with deterministic tie-breaks on
    /// admission time and request id.
    fn pick_victim(&self, removal: &[Removal]) -> Option<usize> {
        self.active
            .iter()
            .enumerate()
            .filter(|(index, session)| {
                removal[*index] == Removal::Keep
                    && !session.decode.is_finished()
                    && session.decode.kv_blocks_held() > 0
            })
            .max_by(|(_, a), (_, b)| {
                let key = |session: &ServerSession| match self.config.preempt_policy {
                    PreemptPolicy::NewestAdmitted => {
                        (0usize, session.admitted_ms, session.id.value())
                    }
                    PreemptPolicy::LargestKv => (
                        session.decode.kv_blocks_held(),
                        session.admitted_ms,
                        session.id.value(),
                    ),
                };
                let (ka, kb) = (key(a), key(b));
                ka.0.cmp(&kb.0)
                    .then(ka.1.partial_cmp(&kb.1).expect("wall clocks are finite"))
                    .then(ka.2.cmp(&kb.2))
            })
            .map(|(index, _)| index)
    }

    /// Ticks until every queued and in-flight request has completed, and
    /// returns all outcomes in completion order.
    pub fn run_until_idle(&mut self) -> Vec<RequestOutcome> {
        let mut outcomes = Vec::new();
        while !self.is_idle() {
            outcomes.extend(self.tick());
        }
        outcomes
    }

    /// Fills free batch slots from the wait queue (iteration-level,
    /// memory-aware admission).
    ///
    /// Under shortest-audio-first, a request's effective priority is its
    /// audio length minus an aging credit (`age × aging_rate`), so long
    /// utterances cannot be starved by a sustained stream of short arrivals:
    /// their credit grows while fresh arrivals start from zero.
    ///
    /// Admission is additionally gated on KV-pool headroom: a request is
    /// only admitted if its prefill blocks (after prefix sharing with
    /// resident sessions) fit the pool right now.  When the head request
    /// does not fit, admission stops until blocks free up — unless the
    /// request could never fit even an empty pool, in which case it is
    /// dropped with a memory rejection instead of deadlocking the queue.
    fn admit(&mut self) {
        while self.active.len() < self.config.max_batch && !self.queue.is_empty() {
            let index = match self.config.ordering {
                // Budget-aware ordering overrides the queue discipline:
                // admit the request closest to its absolute deadline, so
                // urgent requests stop expiring behind patient ones (the
                // deadline *shedding* in the loop below then fires far less
                // often — that gap is the goodput gain under overload).
                AdmissionOrdering::EarliestDeadlineFirst => self
                    .queue
                    .iter()
                    .enumerate()
                    .min_by(|(_, a), (_, b)| {
                        let deadline = |request: &QueuedRequest| {
                            request
                                .ttft_budget_ms
                                .map_or(f64::INFINITY, |budget| request.arrival_ms + budget)
                        };
                        deadline(a)
                            .partial_cmp(&deadline(b))
                            .expect("deadlines are finite or +inf")
                            .then(
                                a.arrival_ms
                                    .partial_cmp(&b.arrival_ms)
                                    .expect("arrivals are finite"),
                            )
                            .then(a.id.value().cmp(&b.id.value()))
                    })
                    .map(|(index, _)| index)
                    .expect("queue is non-empty"),
                AdmissionOrdering::Queue => match self.config.admission {
                    AdmissionPolicy::Fifo => 0,
                    AdmissionPolicy::ShortestAudioFirst => {
                        let wall_ms = self.wall_ms;
                        let aging_rate = self.config.aging_rate;
                        self.queue
                            .iter()
                            .enumerate()
                            .min_by(|(_, a), (_, b)| {
                                let priority = |request: &QueuedRequest| {
                                    let age_ms = (wall_ms - request.arrival_ms).max(0.0);
                                    request.audio_seconds - age_ms * aging_rate
                                };
                                priority(a)
                                    .partial_cmp(&priority(b))
                                    .expect("durations and ages are finite")
                            })
                            .map(|(index, _)| index)
                            .expect("queue is non-empty")
                    }
                },
            };
            let request = self.queue.remove(index).expect("index is in range");
            // Latency-SLO shedding: a request whose queue wait already blew
            // its TTFT budget is served uselessly late — drop it (per-class
            // `rejected_deadline` accounting) and admit the next one.  Only
            // applies before the first output; a stream that already emitted
            // a partial is never shed mid-utterance.
            if let Some(budget) = request.ttft_budget_ms {
                if !request.first_output_emitted() && self.wall_ms - request.arrival_ms > budget {
                    self.stats
                        .record_deadline_rejection(SloClass::of_budget(request.ttft_budget_ms));
                    let ts_ms = self.wall_ms;
                    let shed = request.id.value();
                    self.tracer.record_with(|| TraceEvent::RequestShed {
                        ts_ms,
                        request: Some(shed),
                        reason: ShedReason::Deadline,
                    });
                    continue;
                }
            }
            let restored = request.preemptions > 0;
            match request.try_admit(self.wall_ms, &mut self.kv) {
                Ok(session) => {
                    if self.tracer.is_enabled() {
                        let ts_ms = self.wall_ms;
                        let admitted = session.id.value();
                        let kv_blocks = session.decode.kv_blocks_held() as u64;
                        self.tracer.record_with(|| TraceEvent::RequestAdmitted {
                            ts_ms,
                            request: admitted,
                            kv_blocks,
                            restored,
                        });
                        if restored {
                            self.tracer.record_with(|| TraceEvent::KvRestore {
                                ts_ms,
                                request: admitted,
                            });
                        }
                        self.tracer.record_with(|| TraceEvent::KvAlloc {
                            ts_ms,
                            request: admitted,
                            blocks: kv_blocks,
                        });
                    }
                    self.active.push(session);
                }
                Err(returned) => {
                    let (request, _error) = *returned;
                    if self.prefill_can_ever_fit(&request) {
                        // Not enough headroom right now: put the request
                        // back where it was and wait for blocks to free up.
                        self.queue.insert(index.min(self.queue.len()), request);
                    } else {
                        self.stats.record_memory_rejection();
                        let ts_ms = self.wall_ms;
                        let shed = request.id.value();
                        self.tracer.record_with(|| TraceEvent::RequestShed {
                            ts_ms,
                            request: Some(shed),
                            reason: ShedReason::Memory,
                        });
                    }
                    break;
                }
            }
        }
    }

    /// Whether the request's admission footprint could fit an otherwise
    /// empty pool (with one block of generation headroom; draft and target
    /// sub-pools carry the same budget).  Requests failing this can never be
    /// admitted and must be shed rather than parked — for a streaming
    /// request the footprint includes the committed prefix it re-appends on
    /// resume, which grows chunk by chunk, so a stream can become
    /// unfittable mid-utterance on a pool that admitted its first chunks.
    fn prefill_can_ever_fit(&self, request: &QueuedRequest) -> bool {
        let mut admission_tokens = request.audio.prefill_tokens();
        if let Some(stream) = &request.stream {
            admission_tokens += stream.session.committed().len();
        }
        let admission_blocks = self.kv.target().blocks_for(admission_tokens);
        admission_blocks < self.config.kv_blocks
    }

    /// Converts a finished session into its outcome and records statistics.
    ///
    /// Time-to-first-token falls back to completion time for transcripts that
    /// turned out empty (EOS on the very first verification).
    ///
    /// Queueing and first-token spans are clamped at zero: a router can stamp
    /// an arrival on the fleet timeline slightly ahead of a lagging worker's
    /// clock (interleaved `Router::submit`/`Router::tick`), and a request
    /// admitted "before" it arrived must report zero queue delay, not a
    /// negative sample that corrupts the latency histograms.
    fn retire(&mut self, mut session: ServerSession) -> RequestOutcome {
        session.decode.release_kv(&mut self.kv);
        let first_token_ms = session.first_token_ms.unwrap_or(self.wall_ms);
        let latency = RequestLatency {
            queue_ms: (session.admitted_ms - session.arrival_ms).max(0.0),
            encoder_ms: session.encoder_ms,
            decode_wall_ms: self.wall_ms - session.admitted_ms,
            time_to_first_token_ms: (first_token_ms - session.arrival_ms).max(0.0)
                + session.encoder_ms,
        };
        let outcome = session.decode.into_outcome();
        let text = self
            .binding
            .tokenizer()
            .decode(&outcome.tokens)
            .expect("decoded tokens always come from the shared vocabulary");
        let outcome = RequestOutcome {
            id: session.id,
            policy: session.policy,
            utterance_id: session.utterance_id,
            text,
            outcome,
            latency,
            audio_seconds: session.audio_seconds,
            preemptions: session.preemptions,
            slo: SloClass::of_budget(session.ttft_budget_ms),
            partials: Vec::new(),
        };
        self.stats.record_completion(&outcome);
        let ts_ms = self.wall_ms;
        let request = outcome.id.value();
        let tokens = outcome.token_count() as u64;
        self.tracer.record_with(|| TraceEvent::RequestCompleted {
            ts_ms,
            request,
            tokens,
        });
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use specasr::{AdaptiveConfig, SparseTreeConfig, SpeculativeConfig};
    use specasr_audio::Corpus;
    use specasr_audio::Split;
    use specasr_models::{CtcDrafter, ModelProfile, SimulatedAsrModel};

    fn scheduler(
        config: ServerConfig,
    ) -> (Scheduler<SimulatedAsrModel, SimulatedAsrModel>, Corpus) {
        let corpus = Corpus::librispeech_like(88, 12);
        let binding = TokenizerBinding::for_corpus(&corpus);
        let target = SimulatedAsrModel::target(ModelProfile::whisper_medium_en(), 7);
        let draft = SimulatedAsrModel::draft_paired(ModelProfile::whisper_tiny_en(), 8, &target);
        (
            Scheduler::new(
                draft,
                target,
                binding,
                EncoderProfile::whisper_medium_encoder(),
                config,
            ),
            corpus,
        )
    }

    #[test]
    fn iteration_level_admission_refills_freed_slots() {
        let (mut scheduler, corpus) = scheduler(ServerConfig::default().with_max_batch(4));
        let policy = Policy::Speculative(SpeculativeConfig::short_single());
        for utterance in corpus.split(Split::TestClean) {
            scheduler.submit(policy, utterance).expect("queue has room");
        }
        assert_eq!(scheduler.queued(), 12);
        let first = scheduler.tick();
        assert!(
            first.is_empty() || first.len() < 4,
            "nothing should drain the whole batch at once"
        );
        assert_eq!(scheduler.in_flight() + first.len(), 4);
        // Keep ticking: as soon as any session retires, the next tick admits
        // replacements without waiting for the others.
        let mut completed = first.len();
        let mut refilled = false;
        while !scheduler.is_idle() {
            let before_queue = scheduler.queued();
            let outcomes = scheduler.tick();
            completed += outcomes.len();
            if !outcomes.is_empty() && before_queue > 0 {
                refilled = true;
            }
        }
        assert_eq!(completed, 12);
        assert!(
            refilled,
            "freed slots should be refilled while requests are queued"
        );
        assert_eq!(scheduler.stats().peak_in_flight(), 4);
    }

    #[test]
    fn fifo_admission_preserves_arrival_order() {
        let (mut scheduler, corpus) = scheduler(ServerConfig::default().with_max_batch(1));
        let policy = Policy::Autoregressive;
        let mut submitted = Vec::new();
        for utterance in corpus.split(Split::DevClean).iter().take(5) {
            submitted.push(scheduler.submit(policy, utterance).expect("queue has room"));
        }
        let outcomes = scheduler.run_until_idle();
        let finished: Vec<RequestId> = outcomes.iter().map(|o| o.id).collect();
        assert_eq!(
            finished, submitted,
            "batch of 1 under FIFO must complete in arrival order"
        );
    }

    #[test]
    fn shortest_audio_first_prefers_short_utterances() {
        let (mut scheduler, corpus) = scheduler(
            ServerConfig::default()
                .with_max_batch(1)
                .with_admission(AdmissionPolicy::ShortestAudioFirst),
        );
        let policy = Policy::Autoregressive;
        for utterance in corpus.split(Split::DevClean).iter().take(6) {
            scheduler.submit(policy, utterance).expect("queue has room");
        }
        // The first admitted (hence first completed) request must be the
        // shortest of the queued six.
        let shortest = corpus.split(Split::DevClean)[..6]
            .iter()
            .map(|u| u.duration_seconds())
            .fold(f64::INFINITY, f64::min);
        let outcomes = scheduler.run_until_idle();
        assert!((outcomes[0].audio_seconds - shortest).abs() < 1e-12);
    }

    /// Drives a batch-1 shortest-audio-first scheduler under sustained
    /// short-utterance pressure: one long utterance is queued up front, and a
    /// fresh short arrival replaces every completed request so the queue
    /// always holds a shorter competitor.  Returns how many ticks the long
    /// utterance needed to complete, or `None` if it starved for `budget`
    /// ticks.
    fn ticks_until_long_completes(aging_rate: f64, budget: usize) -> Option<usize> {
        let (mut scheduler, corpus) = scheduler(
            ServerConfig::default()
                .with_max_batch(1)
                .with_admission(AdmissionPolicy::ShortestAudioFirst)
                .with_aging_rate(aging_rate),
        );
        let policy = Policy::Speculative(SpeculativeConfig::short_single());
        let pool = corpus.split(Split::TestClean);
        let long = pool
            .iter()
            .max_by(|a, b| {
                a.duration_seconds()
                    .partial_cmp(&b.duration_seconds())
                    .expect("durations are finite")
            })
            .expect("split is non-empty");
        let short = pool
            .iter()
            .min_by(|a, b| {
                a.duration_seconds()
                    .partial_cmp(&b.duration_seconds())
                    .expect("durations are finite")
            })
            .expect("split is non-empty");
        assert!(long.duration_seconds() > 2.0 * short.duration_seconds());

        let long_id = scheduler.submit(policy, long).expect("queue has room");
        for _ in 0..4 {
            scheduler.submit(policy, short).expect("queue has room");
        }
        for tick in 0..budget {
            let outcomes = scheduler.tick();
            if outcomes.iter().any(|o| o.id == long_id) {
                return Some(tick + 1);
            }
            // Sustained load: replace every completion with a new short.
            for _ in 0..outcomes.len() {
                let _ = scheduler.submit(policy, short);
            }
        }
        None
    }

    #[test]
    fn aging_admits_long_utterances_under_sustained_short_load() {
        let admitted_after = ticks_until_long_completes(ServerConfig::default().aging_rate, 400);
        assert!(
            admitted_after.is_some(),
            "with aging, the long utterance must complete despite sustained short arrivals"
        );
    }

    #[test]
    fn zero_aging_rate_starves_long_utterances() {
        assert_eq!(
            ticks_until_long_completes(0.0, 400),
            None,
            "pure shortest-audio-first must starve the long utterance while shorts keep arriving"
        );
    }

    #[test]
    fn queue_depth_applies_backpressure() {
        let (mut scheduler, corpus) = scheduler(ServerConfig::default().with_queue_depth(2));
        let policy = Policy::Autoregressive;
        let split = corpus.split(Split::TestOther);
        assert!(scheduler.submit(policy, &split[0]).is_ok());
        assert!(scheduler.submit(policy, &split[1]).is_ok());
        let rejected = scheduler.submit(policy, &split[2]);
        assert_eq!(rejected, Err(SubmitError::QueueFull { queue_depth: 2 }));
        assert_eq!(scheduler.stats().rejected(), 1);
        // Draining the queue frees room again.
        scheduler.run_until_idle();
        assert!(scheduler.submit(policy, &split[2]).is_ok());
    }

    #[test]
    fn latency_breakdown_is_consistent() {
        let (mut scheduler, corpus) = scheduler(ServerConfig::default().with_max_batch(2));
        let policy = Policy::AdaptiveSingleSequence(AdaptiveConfig::paper());
        for utterance in corpus.split(Split::TestClean).iter().take(6) {
            scheduler.submit(policy, utterance).expect("queue has room");
        }
        let outcomes = scheduler.run_until_idle();
        assert_eq!(outcomes.len(), 6);
        for outcome in &outcomes {
            let latency = outcome.latency;
            assert!(latency.queue_ms >= 0.0);
            assert!(latency.encoder_ms > 0.0);
            assert!(latency.decode_wall_ms > 0.0);
            assert!(latency.time_to_first_token_ms > 0.0);
            assert!(latency.time_to_first_token_ms <= latency.e2e_ms() + 1e-9);
            assert!((outcome.e2e_ms() - latency.e2e_ms()).abs() < 1e-12);
        }
        // Later-admitted requests queued strictly longer under a batch of 2.
        assert!(outcomes.iter().any(|o| o.latency.queue_ms > 0.0));
    }

    #[test]
    fn batching_amortises_verification_cost() {
        let policy = Policy::TwoPassSparseTree(SparseTreeConfig::paper());
        let (mut batched, corpus) = scheduler(ServerConfig::default().with_max_batch(8));
        for utterance in corpus.split(Split::TestClean) {
            batched.submit(policy, utterance).expect("queue has room");
        }
        batched.run_until_idle();

        let (mut solo, corpus) = scheduler(ServerConfig::default().with_max_batch(1));
        for utterance in corpus.split(Split::TestClean) {
            solo.submit(policy, utterance).expect("queue has room");
        }
        solo.run_until_idle();

        assert!(batched.stats().batching_speedup() > 1.2);
        assert!((solo.stats().batching_speedup() - 1.0).abs() < 1e-9);
        assert!(
            batched.stats().wall_ms() < solo.stats().wall_ms(),
            "batched wall time ({:.0} ms) must undercut solo serving ({:.0} ms)",
            batched.stats().wall_ms(),
            solo.stats().wall_ms()
        );
        assert!(batched.stats().utterances_per_second() > solo.stats().utterances_per_second());
    }

    #[test]
    fn constrained_pool_preempts_without_changing_transcripts() {
        let policy = Policy::AdaptiveSingleSequence(AdaptiveConfig::paper());
        // Reference: the same workload on an effectively unconstrained pool.
        let (mut unconstrained, corpus) = scheduler(ServerConfig::default().with_max_batch(8));
        for utterance in corpus.split(Split::TestClean) {
            unconstrained
                .submit(policy, utterance)
                .expect("queue has room");
        }
        let mut reference = unconstrained.run_until_idle();
        assert_eq!(unconstrained.stats().memory().preemptions(), 0);

        // Constrained: a pool too small for a full batch of prefills.
        let (mut constrained, corpus) =
            scheduler(ServerConfig::default().with_max_batch(8).with_kv_blocks(28));
        for utterance in corpus.split(Split::TestClean) {
            constrained
                .submit(policy, utterance)
                .expect("queue has room");
        }
        let mut outcomes = constrained.run_until_idle();
        let memory = constrained.stats().memory();
        assert!(
            memory.preemptions() > 0,
            "a 28-block pool must preempt under a batch of 8"
        );
        assert_eq!(constrained.stats().rejected_memory(), 0);
        assert_eq!(outcomes.len(), reference.len());
        assert!(outcomes.iter().any(|o| o.preemptions > 0));

        // Zero transcript divergence after deterministic restore.
        reference.sort_by_key(|o| o.id);
        outcomes.sort_by_key(|o| o.id);
        for (constrained, unconstrained) in outcomes.iter().zip(&reference) {
            assert_eq!(constrained.id, unconstrained.id);
            assert_eq!(constrained.text, unconstrained.text);
            assert_eq!(constrained.outcome.tokens, unconstrained.outcome.tokens);
        }
        // The drained pool leaks nothing.
        assert_eq!(constrained.kv_pool().used_blocks(), 0);
        assert!(memory.peak_kv_blocks() <= memory.kv_capacity_blocks());
        assert!(memory.avg_kv_blocks() > 0.0);
    }

    #[test]
    fn both_preempt_policies_drain_a_tight_pool_losslessly() {
        for preempt in [PreemptPolicy::NewestAdmitted, PreemptPolicy::LargestKv] {
            let policy = Policy::Speculative(SpeculativeConfig::short_single());
            let (mut scheduler, corpus) = scheduler(
                ServerConfig::default()
                    .with_max_batch(6)
                    .with_kv_blocks(24)
                    .with_preempt_policy(preempt),
            );
            let split = corpus.split(Split::TestOther);
            for utterance in split {
                scheduler.submit(policy, utterance).expect("queue has room");
            }
            let outcomes = scheduler.run_until_idle();
            assert_eq!(outcomes.len(), split.len(), "policy {preempt:?}");
            assert_eq!(scheduler.kv_pool().used_blocks(), 0);
            assert!(scheduler.is_idle());
        }
    }

    #[test]
    fn unfittable_requests_are_shed_with_a_memory_rejection() {
        // 2 blocks × 16 positions per sub-pool cannot hold any real prefill
        // (the shortest utterance needs well over 32 positions).
        let (mut scheduler, corpus) = scheduler(ServerConfig::default().with_kv_blocks(2));
        let policy = Policy::Speculative(SpeculativeConfig::short_single());
        let utterance = &corpus.split(Split::DevClean)[0];
        scheduler.submit(policy, utterance).expect("queue has room");
        let outcomes = scheduler.run_until_idle();
        assert!(outcomes.is_empty(), "the request can never fit");
        assert_eq!(scheduler.stats().rejected_memory(), 1);
        assert_eq!(scheduler.stats().rejected(), 0, "not a queue rejection");
        assert!(scheduler.is_idle(), "shedding must not deadlock the queue");
        assert_eq!(scheduler.kv_pool().used_blocks(), 0);
    }

    #[test]
    fn oversized_decode_footprints_are_shed_instead_of_livelocking() {
        // The prefill fits the pool but the transcript's block demand never
        // will: the scheduler must shed the request (self-eviction would
        // deterministically re-create the same exhaustion forever).
        let (reference, corpus) = scheduler(ServerConfig::default());
        // The longest transcript in the corpus overflows the single spare
        // block (16 positions) plus the prefill tail slack by a wide margin.
        let utterance = Split::ALL
            .iter()
            .flat_map(|&split| corpus.split(split))
            .max_by_key(|u| reference.binding.bind(u).len())
            .expect("corpus is non-empty");
        let bound = reference.binding.bind(utterance);
        assert!(
            bound.len() > 40,
            "precondition: transcript must overflow the spare capacity"
        );
        let prefill_blocks = reference
            .kv_pool()
            .target()
            .blocks_for(bound.prefill_tokens());

        let (mut tight, _) = scheduler(ServerConfig::default().with_kv_blocks(prefill_blocks + 1));
        let policy = Policy::Speculative(SpeculativeConfig::short_single());
        tight.submit(policy, utterance).expect("queue has room");
        let outcomes = tight.run_until_idle();
        assert!(outcomes.is_empty(), "the footprint can never fit");
        assert_eq!(tight.stats().rejected_memory(), 1);
        assert!(tight.is_idle(), "shedding must terminate the run");
        assert_eq!(tight.kv_pool().used_blocks(), 0);
    }

    #[test]
    fn identical_audio_shares_prefix_blocks_across_sessions() {
        let (mut scheduler, corpus) = scheduler(ServerConfig::default().with_max_batch(8));
        let policy = Policy::Speculative(SpeculativeConfig::short_single());
        let utterance = &corpus.split(Split::TestClean)[0];
        for _ in 0..8 {
            scheduler.submit(policy, utterance).expect("queue has room");
        }
        scheduler.tick();
        let memory = scheduler.stats().memory();
        assert!(
            memory.prefix_hits() > 0,
            "eight copies of one utterance must share prefill blocks"
        );
        assert!(memory.shared_prefix_hit_rate() > 0.5);
        scheduler.run_until_idle();
        assert_eq!(scheduler.stats().completed(), 8);
        assert_eq!(scheduler.kv_pool().used_blocks(), 0);
    }

    #[test]
    fn streaming_requests_complete_losslessly_alongside_offline_traffic() {
        let policy = Policy::AdaptiveSingleSequence(AdaptiveConfig::paper());
        let (mut scheduler, corpus) = scheduler(ServerConfig::default().with_max_batch(4));
        let split = corpus.split(Split::TestClean);
        let stream_config = StreamConfig::default();
        let mut streaming_ids = Vec::new();
        for (index, utterance) in split.iter().take(8).enumerate() {
            if index % 2 == 0 {
                streaming_ids.push(
                    scheduler
                        .submit_streaming(policy, utterance, stream_config)
                        .expect("queue has room"),
                );
            } else {
                scheduler.submit(policy, utterance).expect("queue has room");
            }
        }
        let outcomes = scheduler.run_until_idle();
        assert_eq!(outcomes.len(), 8);
        assert!(scheduler.is_idle());
        assert_eq!(scheduler.kv_pool().used_blocks(), 0);
        assert_eq!(scheduler.stats().streaming_completed(), 4);
        assert!(scheduler.stats().partials_emitted() >= 4);
        assert!(scheduler.stats().first_partial_p99_ms() > 0.0);

        // Losslessness: every transcript (streamed or not) is byte-identical
        // to the offline decode of its utterance.
        for outcome in &outcomes {
            let utterance = split
                .iter()
                .find(|u| u.id() == outcome.utterance_id)
                .expect("known utterance");
            let audio = scheduler.binding.bind(utterance);
            let offline = policy.decode(scheduler.draft_model(), scheduler.target_model(), &audio);
            assert_eq!(outcome.outcome.tokens, offline.tokens);
            let streamed = streaming_ids.contains(&outcome.id);
            assert_eq!(outcome.is_streaming(), streamed);
            if streamed {
                // Commits only ever grow, and the last partial is final.
                for pair in outcome.partials.windows(2) {
                    assert!(pair[1].committed_tokens >= pair[0].committed_tokens);
                    assert!(pair[1].emitted_ms >= pair[0].emitted_ms);
                }
                let last = outcome.partials.last().expect("non-empty");
                assert!(last.is_final);
                assert_eq!(last.committed_tokens, outcome.outcome.tokens.len());
                // The first partial lands before the final transcript does.
                assert!(
                    outcome.latency.time_to_first_token_ms <= outcome.e2e_ms() + 1e-9,
                    "first partial cannot come after completion"
                );
                assert!(outcome.first_partial_span_ms().expect("streamed") >= 0.0);
            }
        }
    }

    #[test]
    fn streaming_first_partial_beats_offline_first_token_on_long_audio() {
        let policy = Policy::Speculative(SpeculativeConfig::short_single());
        let (mut offline, corpus) = scheduler(ServerConfig::default());
        let utterance = corpus
            .split(Split::TestClean)
            .iter()
            .max_by(|a, b| {
                a.duration_seconds()
                    .partial_cmp(&b.duration_seconds())
                    .expect("finite")
            })
            .expect("non-empty");
        offline.submit(policy, utterance).expect("queue has room");
        let offline_outcome = &offline.run_until_idle()[0];

        let (mut streaming, _) = scheduler(ServerConfig::default());
        streaming
            .submit_streaming(
                policy,
                utterance,
                StreamConfig::default().with_chunk_seconds(0.4),
            )
            .expect("queue has room");
        let streamed_outcome = &streaming.run_until_idle()[0];
        assert_eq!(
            streamed_outcome.outcome.tokens,
            offline_outcome.outcome.tokens
        );
        // The whole point of streaming: the first partial arrives long
        // before the offline pipeline has even finished hearing the audio.
        assert!(
            streamed_outcome.latency.time_to_first_token_ms
                < utterance.duration_seconds() * 1_000.0,
            "first partial ({:.0} ms) must precede the end of the {:.1} s utterance",
            streamed_outcome.latency.time_to_first_token_ms,
            utterance.duration_seconds()
        );
    }

    #[test]
    fn streaming_sessions_survive_constrained_pools_with_preemptions() {
        let policy = Policy::AdaptiveSingleSequence(AdaptiveConfig::paper());
        let (mut reference, corpus) = scheduler(ServerConfig::default().with_max_batch(8));
        let split = corpus.split(Split::TestOther);
        for utterance in split {
            reference
                .submit_streaming(policy, utterance, StreamConfig::default())
                .expect("queue has room");
        }
        let mut unconstrained = reference.run_until_idle();
        assert_eq!(reference.stats().memory().preemptions(), 0);

        let (mut constrained, _) =
            scheduler(ServerConfig::default().with_max_batch(8).with_kv_blocks(12));
        for utterance in split {
            constrained
                .submit_streaming(policy, utterance, StreamConfig::default())
                .expect("queue has room");
        }
        let mut outcomes = constrained.run_until_idle();
        assert!(
            constrained.stats().memory().preemptions() > 0,
            "a 12-block pool must preempt streaming sessions"
        );
        assert_eq!(constrained.stats().rejected_memory(), 0);
        assert_eq!(outcomes.len(), unconstrained.len());
        unconstrained.sort_by_key(|o| o.id);
        outcomes.sort_by_key(|o| o.id);
        for (constrained, unconstrained) in outcomes.iter().zip(&unconstrained) {
            assert_eq!(constrained.outcome.tokens, unconstrained.outcome.tokens);
            assert_eq!(constrained.text, unconstrained.text);
        }
        assert_eq!(constrained.kv_pool().used_blocks(), 0);
    }

    #[test]
    fn streaming_backpressure_counts_parked_streams() {
        let (mut scheduler, corpus) = scheduler(ServerConfig::default().with_queue_depth(2));
        let policy = Policy::Autoregressive;
        let split = corpus.split(Split::DevClean);
        assert!(scheduler
            .submit_streaming(policy, &split[0], StreamConfig::default())
            .is_ok());
        assert!(scheduler
            .submit_streaming(policy, &split[1], StreamConfig::default())
            .is_ok());
        assert_eq!(scheduler.waiting_streams(), 2);
        assert!(scheduler
            .submit_streaming(policy, &split[2], StreamConfig::default())
            .is_err());
        assert_eq!(scheduler.stats().rejected(), 1);
        scheduler.run_until_idle();
        assert_eq!(scheduler.stats().streaming_completed(), 2);
    }

    #[test]
    fn deadline_budgets_shed_requests_that_queued_too_long() {
        // A batch of 1 forces later submissions to queue behind a slow
        // autoregressive decode; a tight TTFT budget sheds them at admission.
        let (mut scheduler, corpus) = scheduler(ServerConfig::default().with_max_batch(1));
        let policy = Policy::Autoregressive;
        let split = corpus.split(Split::TestOther);
        scheduler
            .submit_with_budget(policy, &split[0], None)
            .expect("queue has room");
        scheduler
            .submit_with_budget(policy, &split[1], Some(1e9))
            .expect("generous budget");
        scheduler
            .submit_with_budget(policy, &split[2], Some(0.001))
            .expect("tight budget");
        let outcomes = scheduler.run_until_idle();
        assert_eq!(outcomes.len(), 2, "the blown-deadline request is shed");
        assert_eq!(scheduler.stats().rejected_deadline(), 1);
        assert_eq!(scheduler.stats().rejected(), 0);
        assert_eq!(
            scheduler.stats().rejected_total(),
            1,
            "deadline shedding counts toward total rejections"
        );
        assert!(scheduler.is_idle());
    }

    #[test]
    fn advance_to_never_jumps_past_the_target_time() {
        let (mut scheduler, corpus) = scheduler(ServerConfig::default());
        let policy = Policy::Speculative(SpeculativeConfig::short_single());
        scheduler
            .submit_streaming(
                policy,
                &corpus.split(Split::DevClean)[0],
                StreamConfig::default(),
            )
            .expect("queue has room");
        // The first chunk arrives hundreds of ms in; a short advance must
        // stop at the target, not leap to the chunk.
        let outcomes = scheduler.advance_to(1.0);
        assert!(outcomes.is_empty());
        assert!((scheduler.wall_ms() - 1.0).abs() < 1e-9);
        // Advancing far enough drains the stream completely.
        scheduler.advance_to(1e12);
        assert!(scheduler.is_idle());
        assert_eq!(scheduler.stats().streaming_completed(), 1);
    }

    #[test]
    fn preempted_requests_with_committed_output_stay_exempt_from_deadline_shedding() {
        let (scheduler, corpus) = scheduler(ServerConfig::default());
        let utterance = &corpus.split(Split::DevClean)[0];
        let request = crate::session::QueuedRequest {
            id: RequestId::new(0),
            policy: Policy::Autoregressive,
            drafter: DrafterKind::ModelDraft,
            audio: scheduler.binding.bind(utterance),
            utterance_id: utterance.id(),
            audio_seconds: utterance.duration_seconds(),
            encoder_ms: 1.0,
            arrival_ms: 0.0,
            preemptions: 0,
            ttft_budget_ms: Some(5.0),
            first_output_emitted: false,
            stream: None,
        };
        assert!(!request.first_output_emitted());
        let mut pool = KvPool::bounded(4096, 16);
        let mut session = request.try_admit(1.0, &mut pool).expect("pool has room");
        session.first_token_ms = Some(2.0); // the first token was committed
        session.decode.release_kv(&mut pool);
        let requeued = session.into_requeued(true);
        assert_eq!(requeued.preemptions, 1);
        assert!(
            requeued.first_output_emitted(),
            "a preempted request that already committed output must never be deadline-shed"
        );
        // The exemption survives further admission / park cycles.
        let mut session = requeued.try_admit(3.0, &mut pool).expect("pool has room");
        assert!(session.first_output_emitted);
        session.decode.release_kv(&mut pool);
        let parked = session.into_requeued(false);
        assert_eq!(parked.preemptions, 1, "parking counts no preemption");
        assert!(parked.first_output_emitted());
    }

    #[test]
    fn verification_batches_across_sessions_through_the_backend() {
        let (mut scheduler, corpus) = scheduler(ServerConfig::default().with_max_batch(8));
        let policy = Policy::AdaptiveSingleSequence(AdaptiveConfig::paper());
        for utterance in corpus.split(Split::TestClean) {
            scheduler.submit(policy, utterance).expect("queue has room");
        }
        scheduler.run_until_idle();
        let backend = scheduler.stats().backend();
        assert!(
            backend.verify_batch_occupancy() > 1.0,
            "verification must batch across sessions, got occupancy {:.2}",
            backend.verify_batch_occupancy()
        );
        assert!(
            backend.peak_in_flight() >= 2,
            "waves carry multiple requests"
        );
        assert!(
            backend.draft_requests() > 0,
            "draft chains go through the backend"
        );
        assert!(backend.verify_requests() >= scheduler.stats().completed());
        assert!(
            backend.verify_batches() <= scheduler.stats().ticks() * 2,
            "at most two verification waves per tick"
        );
    }

    #[test]
    fn solo_serving_submits_one_verification_request_per_batch() {
        let (mut scheduler, corpus) = scheduler(ServerConfig::default().with_max_batch(1));
        let policy = Policy::Speculative(SpeculativeConfig::short_single());
        for utterance in corpus.split(Split::DevClean).iter().take(3) {
            scheduler.submit(policy, utterance).expect("queue has room");
        }
        scheduler.run_until_idle();
        let backend = scheduler.stats().backend();
        assert!((backend.verify_batch_occupancy() - 1.0).abs() < 1e-12);
        assert_eq!(backend.verify_batches(), scheduler.stats().ticks());
    }

    #[test]
    fn completions_and_deadline_shedding_are_recorded_per_slo_class() {
        let (mut scheduler, corpus) = scheduler(ServerConfig::default().with_max_batch(1));
        let policy = Policy::Autoregressive;
        let split = corpus.split(Split::TestOther);
        scheduler
            .submit_with_budget(policy, &split[0], None)
            .expect("queue has room");
        scheduler
            .submit_with_budget(policy, &split[1], Some(1e9))
            .expect("generous budget: relaxed class");
        scheduler
            .submit_with_budget(policy, &split[2], Some(0.001))
            .expect("tight budget: interactive class, will be shed");
        let outcomes = scheduler.run_until_idle();
        assert_eq!(outcomes.len(), 2);
        let stats = scheduler.stats();
        let interactive = stats.slo_class(SloClass::Interactive);
        assert_eq!(interactive.rejected_deadline(), 1);
        assert_eq!(interactive.completed(), 0);
        let best_effort = stats.slo_class(SloClass::BestEffort);
        assert_eq!(best_effort.completed(), 1);
        assert!(best_effort.e2e_p99_ms() > 0.0);
        let relaxed = stats.slo_class(SloClass::Relaxed);
        assert_eq!(relaxed.completed(), 1);
        assert!(relaxed.ttft_p99_ms() > 0.0);
        assert_eq!(relaxed.rejected_deadline(), 0);
        // The per-class counters reconcile with the aggregate gauges.
        let class_completed: usize = SloClass::ALL
            .iter()
            .map(|&class| stats.slo_class(class).completed())
            .sum();
        assert_eq!(class_completed, stats.completed());
        assert_eq!(
            outcomes
                .iter()
                .filter(|o| o.slo == SloClass::Relaxed)
                .count(),
            1
        );
    }

    #[test]
    fn mixed_policy_batches_complete() {
        let (mut scheduler, corpus) = scheduler(ServerConfig::default());
        let policies = [
            Policy::Autoregressive,
            Policy::Speculative(SpeculativeConfig::short_single()),
            Policy::AdaptiveSingleSequence(AdaptiveConfig::paper()),
            Policy::TwoPassSparseTree(SparseTreeConfig::paper()),
        ];
        for (index, utterance) in corpus.split(Split::TestOther).iter().enumerate() {
            scheduler
                .submit(policies[index % policies.len()], utterance)
                .expect("queue has room");
        }
        let outcomes = scheduler.run_until_idle();
        assert_eq!(outcomes.len(), 12);
        assert_eq!(scheduler.stats().completed(), 12);
        let acceptance = scheduler.stats().mean_acceptance();
        assert!(
            (0.0..=1.0).contains(&acceptance) && acceptance > 0.2,
            "pooled acceptance should be meaningful, got {acceptance:.3}"
        );
        assert!(scheduler.stats().e2e_p99_ms() >= scheduler.stats().e2e_p50_ms());
    }

    /// Serves a mixed-policy, mixed-drafter workload under `config` and
    /// returns the transcripts in request-id order plus the final wall
    /// clock.
    fn transcripts_under(config: ServerConfig) -> (Vec<String>, f64) {
        let (mut scheduler, corpus) = scheduler(config);
        let target = SimulatedAsrModel::target(ModelProfile::whisper_medium_en(), 7);
        scheduler.install_drafter(Arc::new(CtcDrafter::paired(&target)));
        let policies = [
            Policy::Autoregressive,
            Policy::Speculative(SpeculativeConfig::short_single()),
            Policy::AdaptiveSingleSequence(AdaptiveConfig::paper()),
            Policy::TwoPassSparseTree(SparseTreeConfig::paper()),
        ];
        for split in [Split::TestClean, Split::TestOther] {
            for (index, utterance) in corpus.split(split).iter().enumerate() {
                let drafter = if index % 3 == 0 {
                    DrafterKind::CtcEncoder
                } else {
                    DrafterKind::ModelDraft
                };
                scheduler
                    .submit_with_drafter(policies[index % policies.len()], drafter, utterance)
                    .expect("queue has room");
            }
        }
        let mut outcomes = scheduler.run_until_idle();
        assert_eq!(outcomes.len(), 24);
        outcomes.sort_by_key(|outcome| outcome.id.value());
        let texts = outcomes.into_iter().map(|outcome| outcome.text).collect();
        (texts, scheduler.wall_ms())
    }

    #[test]
    fn pipelined_waves_keep_transcripts_byte_identical() {
        let base = ServerConfig::default().with_max_batch(8);
        let (reference, drained_wall) = transcripts_under(base);
        for depth in [2, 4, 8] {
            let (texts, wall) = transcripts_under(base.with_max_in_flight_waves(depth));
            assert_eq!(
                texts, reference,
                "an in-flight window of {depth} changed a transcript"
            );
            assert!(
                wall <= drained_wall + 1e-6,
                "pipelining at depth {depth} must never lose to drain-per-tick \
                 ({wall:.3} vs {drained_wall:.3})"
            );
        }
    }

    #[test]
    fn pipelining_overlaps_waves_and_finishes_sooner() {
        let run = |depth: usize| {
            let (mut scheduler, corpus) = scheduler(
                ServerConfig::default()
                    .with_max_batch(8)
                    .with_max_in_flight_waves(depth),
            );
            let policy = Policy::AdaptiveSingleSequence(AdaptiveConfig::paper());
            for utterance in corpus.split(Split::TestClean) {
                scheduler.submit(policy, utterance).expect("queue has room");
            }
            scheduler.run_until_idle();
            (
                scheduler.wall_ms(),
                scheduler.stats().backend().peak_in_flight(),
            )
        };
        let (drained_wall, drained_depth) = run(1);
        let (pipelined_wall, pipelined_depth) = run(4);
        assert!(
            pipelined_wall < drained_wall,
            "overlapping waves must shorten the serve ({pipelined_wall:.3} vs {drained_wall:.3})"
        );
        assert!(
            pipelined_depth >= drained_depth,
            "the in-flight depth cannot shrink under pipelining \
             ({pipelined_depth} vs {drained_depth})"
        );
    }

    #[test]
    fn a_bounded_draft_budget_only_slows_the_clock() {
        let run = |lanes: usize| {
            let (mut scheduler, corpus) = scheduler(
                ServerConfig::default()
                    .with_max_batch(8)
                    .with_max_in_flight_waves(4)
                    .with_draft_lanes(lanes),
            );
            let policy = Policy::Speculative(SpeculativeConfig::short_single());
            for utterance in corpus.split(Split::TestOther) {
                scheduler.submit(policy, utterance).expect("queue has room");
            }
            let outcomes = scheduler.run_until_idle();
            let texts: Vec<String> = outcomes.into_iter().map(|o| o.text).collect();
            (texts, scheduler.wall_ms())
        };
        let (unbounded_texts, unbounded_wall) = run(0);
        let (serialized_texts, serialized_wall) = run(1);
        assert_eq!(
            serialized_texts, unbounded_texts,
            "a draft budget reorders time, never tokens"
        );
        assert!(
            serialized_wall >= unbounded_wall,
            "a single draft lane cannot beat an unbounded pool \
             ({serialized_wall:.3} vs {unbounded_wall:.3})"
        );
    }

    #[test]
    fn an_rpc_target_serves_byte_identical_transcripts() {
        let corpus = Corpus::librispeech_like(88, 12);
        let binding = TokenizerBinding::for_corpus(&corpus);
        let make = || {
            let target = SimulatedAsrModel::target(ModelProfile::whisper_medium_en(), 7);
            let draft =
                SimulatedAsrModel::draft_paired(ModelProfile::whisper_tiny_en(), 8, &target);
            (draft, target)
        };
        let config = ServerConfig::default()
            .with_max_batch(4)
            .with_max_in_flight_waves(4);
        let (draft, target) = make();
        let mut local = Scheduler::new(
            draft,
            target,
            binding.clone(),
            EncoderProfile::whisper_medium_encoder(),
            config,
        );
        let (draft, target) = make();
        let mut remote = Scheduler::with_rpc_target(
            draft,
            target,
            binding,
            EncoderProfile::whisper_medium_encoder(),
            config,
        );
        let policy = Policy::TwoPassSparseTree(SparseTreeConfig::paper());
        for utterance in corpus.split(Split::DevClean) {
            local.submit(policy, utterance).expect("queue has room");
            remote.submit(policy, utterance).expect("queue has room");
        }
        let local_outcomes = local.run_until_idle();
        let remote_outcomes = remote.run_until_idle();
        assert_eq!(local_outcomes.len(), remote_outcomes.len());
        for (ours, theirs) in local_outcomes.iter().zip(&remote_outcomes) {
            assert_eq!(ours.id, theirs.id);
            assert_eq!(
                ours.text, theirs.text,
                "the process boundary must be invisible in the transcript"
            );
        }
        assert!(
            (local.wall_ms() - remote.wall_ms()).abs() < 1e-9,
            "the wire mirrors the in-process timing exactly"
        );
        assert_eq!(
            local.stats().backend().peak_in_flight(),
            remote.stats().backend().peak_in_flight()
        );
    }
}
