//! `specasr-server`: a continuous-batching serving subsystem for speculative
//! ASR decoding.
//!
//! The decoding policies in `specasr` accelerate *one* utterance; production
//! ASR serves *many* concurrently.  This crate adds the missing layer: a
//! [`Scheduler`] that owns a draft/target model pair and admits concurrent
//! transcription requests, keeping one round-steppable
//! [`specasr::DecodeSession`] per in-flight utterance.
//!
//! # Request lifecycle
//!
//! ```text
//! submit ─► wait queue ─► admission (FIFO / shortest-audio-first)
//!                              │ iteration-level: a slot frees as soon as
//!                              ▼ its session finishes — no batch drain
//!                        in-flight session
//!                              │  every tick:
//!                              │    1. draft phase per session (parallel)
//!                              │    2. ONE grouped verification pass
//!                              │    3. commit + retire finished sessions
//!                              ▼
//!                        RequestOutcome (text + latency breakdown + stats)
//! ```
//!
//! # What batching buys
//!
//! A verification forward pass costs `base + per_token · n`.  Verifying each
//! session alone pays `base` once per session and tick; the grouped pass pays
//! it once per *tick*.  [`ServerStats::batching_speedup`] reports the
//! realised gain, and the `serve_load` binary in `specasr-bench` sweeps it
//! across concurrency levels and policies.
//!
//! # Scaling out: the sharded router
//!
//! One scheduler models one accelerator.  The [`Router`] scales past that:
//! it owns N [`Worker`]s (independent schedulers with their own model
//! pairs), places requests by consistent hashing on the request id, steals
//! work across queues when they go imbalanced, and aggregates per-worker
//! [`ServerStats`] into fleet-wide throughput and latency percentiles.
//!
//! [`LoadGen`] complements the router with an *open-loop* seeded Poisson
//! arrival process ([`run_open_loop`]): unlike the closed-loop `serve_load`
//! sweep, arrivals keep coming at the offered rate no matter how far behind
//! the fleet falls, which is what exposes the queueing knee — latency is
//! flat below the fleet's saturation QPS and grows without bound above it.
//! The `serve_open_loop` binary in `specasr-bench` captures that curve.
//!
//! # Memory model: the paged KV pool
//!
//! Every scheduler owns a [`KvPool`] — draft and target block budgets
//! (`ServerConfig::{kv_blocks, block_size}`) carved into fixed-size,
//! ref-counted blocks.  Sessions allocate their caches from it through
//! per-session block tables:
//!
//! * **Memory-aware admission** — a request is only admitted when its
//!   prefill blocks fit the pool; requests that could never fit are shed
//!   with a distinct `rejected_memory` count.
//! * **Prefix sharing** — prefills are keyed on a content hash of the
//!   prompt+audio prefix, so concurrent requests for identical audio share
//!   physical blocks (copy-on-write protects divergent suffixes).
//! * **Preemption** — when a verification round cannot get blocks, the
//!   configured [`PreemptPolicy`] evicts an in-flight session: its blocks
//!   are released and the request re-queues; restore is a deterministic
//!   re-prefill + re-decode, so transcripts never diverge.
//!
//! [`MemoryStats`] (inside [`ServerStats`], fleet-mergeable) reports peak
//! and average block occupancy, preemptions, and the shared-prefix hit rate.
//!
//! # Losslessness
//!
//! Scheduling only interleaves rounds; each session runs exactly the code
//! path `Policy::decode` runs, and a preempted session restores by decoding
//! again from scratch against the same deterministic models.  Transcripts
//! under concurrent batched serving — constrained pool or not — are
//! therefore byte-identical to sequential [`specasr::AsrPipeline`]
//! transcription — the workspace-level `serving.rs` integration tests assert
//! this for every policy, including mixed-policy batches.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
mod config;
mod loadgen;
mod request;
mod router;
mod scheduler;
mod session;
mod stats;
mod worker;

pub use batch::{
    grouped_verify_ms, plan_verify_waves, plan_verify_waves_pipelined, TickCost, VerifyPlan,
};
pub use config::{
    AdmissionOrdering, AdmissionPolicy, PreemptPolicy, RouterConfig, ServerConfig, WorkerProfile,
};
pub use loadgen::{
    run_open_loop, run_open_loop_budgeted, run_open_loop_drafted, run_open_loop_streaming, LoadGen,
    OpenLoopReport,
};
pub use request::{PartialSpan, RequestId, RequestLatency, RequestOutcome, SloClass, SubmitError};
pub use router::Router;
pub use scheduler::Scheduler;
pub use stats::{BackendStats, MemoryStats, ServerStats, SloClassStats};
pub use worker::{Worker, WorkerId, WorkerState};

// Serving code configures and inspects the paged KV pool directly; re-export
// its runtime types so downstream users don't need the runtime crate.
pub use specasr_runtime::{KvPool, PoolCounters, PoolError};

// Streaming requests are configured with the stream crate's types; re-export
// them so callers can submit streams without a direct dependency.
pub use specasr_stream::{PartialTranscript, StreamConfig, StreamingSession};

// Observability rides on the trace crate: the scheduler records into its
// flight recorder and the stats publish into its metrics registry.
// Re-export the surface so serving callers enable tracing, export traces,
// and render metrics without a direct dependency.
pub use specasr_trace::{
    assemble_spans, chrome_trace, validate_chrome_trace, FlightRecording, MetricsRegistry,
    RequestSpans, RoundSpan, ShedReason, TraceConfig, TraceEvent, TraceSummary, Tracer,
};

// The latency percentiles above and the registry's histogram exposition are
// both built on the metrics crate's `Histogram`; re-export it so callers
// consume either without a direct metrics dependency.
pub use specasr_metrics::Histogram;
