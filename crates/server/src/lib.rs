//! `specasr-server`: a continuous-batching serving subsystem for speculative
//! ASR decoding.
//!
//! The decoding policies in `specasr` accelerate *one* utterance; production
//! ASR serves *many* concurrently.  This crate adds the missing layer: a
//! [`Scheduler`] that owns a draft/target model pair and admits concurrent
//! transcription requests, keeping one round-steppable
//! [`specasr::DecodeSession`] per in-flight utterance.
//!
//! # Request lifecycle
//!
//! ```text
//! submit ─► wait queue ─► admission (FIFO / shortest-audio-first)
//!                              │ iteration-level: a slot frees as soon as
//!                              ▼ its session finishes — no batch drain
//!                        in-flight session
//!                              │  every tick:
//!                              │    1. draft phase per session (parallel)
//!                              │    2. ONE grouped verification pass
//!                              │    3. commit + retire finished sessions
//!                              ▼
//!                        RequestOutcome (text + latency breakdown + stats)
//! ```
//!
//! # What batching buys
//!
//! A verification forward pass costs `base + per_token · n`.  Verifying each
//! session alone pays `base` once per session and tick; the grouped pass pays
//! it once per *tick*.  [`ServerStats::batching_speedup`] reports the
//! realised gain, and the `serve_load` binary in `specasr-bench` sweeps it
//! across concurrency levels and policies.
//!
//! # Scaling out: the sharded router
//!
//! One scheduler models one accelerator.  The [`Router`] scales past that:
//! it owns N [`Worker`]s (independent schedulers with their own model
//! pairs), places requests by consistent hashing on the request id, steals
//! work across queues when they go imbalanced, and aggregates per-worker
//! [`ServerStats`] into fleet-wide throughput and latency percentiles.
//!
//! [`LoadGen`] complements the router with an *open-loop* seeded Poisson
//! arrival process ([`run_open_loop`]): unlike the closed-loop `serve_load`
//! sweep, arrivals keep coming at the offered rate no matter how far behind
//! the fleet falls, which is what exposes the queueing knee — latency is
//! flat below the fleet's saturation QPS and grows without bound above it.
//! The `serve_open_loop` binary in `specasr-bench` captures that curve.
//!
//! # Losslessness
//!
//! Scheduling only interleaves rounds; each session runs exactly the code
//! path `Policy::decode` runs.  Transcripts under concurrent batched serving
//! are therefore byte-identical to sequential [`specasr::AsrPipeline`]
//! transcription — the workspace-level `serving.rs` integration tests assert
//! this for every policy, including mixed-policy batches.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
mod config;
mod loadgen;
mod request;
mod router;
mod scheduler;
mod session;
mod stats;
mod worker;

pub use batch::{grouped_verify_ms, TickCost};
pub use config::{AdmissionPolicy, RouterConfig, ServerConfig};
pub use loadgen::{run_open_loop, LoadGen, OpenLoopReport};
pub use request::{RequestId, RequestLatency, RequestOutcome, SubmitError};
pub use router::Router;
pub use scheduler::Scheduler;
pub use stats::ServerStats;
pub use worker::{Worker, WorkerId};
