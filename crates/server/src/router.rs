//! The sharded serving front end: consistent-hash placement over N
//! independent scheduler workers, with work stealing on queue imbalance.
//!
//! One [`crate::Scheduler`] owns one draft/target model pair — one
//! accelerator's worth of serving capacity.  A [`Router`] scales past that by
//! owning a fleet of [`Worker`]s and placing every incoming request:
//!
//! 1. **Consistent hashing** — the request id is hashed onto a ring of
//!    virtual nodes, so placement is deterministic, uniform, and stable as
//!    the request stream grows (the same id always lands on the same worker
//!    for a given fleet size).
//! 2. **Work stealing** — whenever one worker's queue is deeper than the
//!    shallowest queue by more than the configured threshold, the router
//!    moves the newest-arrived excess requests over, keeping the fleet
//!    load-balanced without sacrificing placement determinism for the
//!    common case.
//!
//! Workers run on simulated clocks that only advance while they tick.  The
//! router keeps those clocks coherent on a single global timeline: it always
//! ticks the busy worker furthest *behind* in wall time, and fast-forwards
//! idle workers when time passes them by ([`Router::advance_to`], the
//! open-loop load-generation entry point).

use std::sync::Arc;

use specasr::{Drafter, DrafterKind, Policy};
use specasr_audio::{EncoderProfile, Utterance};
use specasr_metrics::Histogram;
use specasr_models::{splitmix64, AsrDecoderModel, TokenizerBinding};

use crate::config::{RouterConfig, WorkerProfile};
use crate::request::{RequestId, RequestOutcome, SubmitError};
use crate::scheduler::Scheduler;
use crate::session::QueuedRequest;
use crate::stats::ServerStats;
use crate::worker::{Worker, WorkerId, WorkerState};
use specasr_trace::{FlightRecording, MetricsRegistry, TraceConfig, TraceEvent, Tracer};

/// A multi-worker sharded serving router.
///
/// # Example
///
/// ```
/// use specasr::{AdaptiveConfig, Policy};
/// use specasr_audio::{Corpus, EncoderProfile, Split};
/// use specasr_models::{ModelProfile, SimulatedAsrModel, TokenizerBinding};
/// use specasr_server::{Router, RouterConfig};
///
/// let corpus = Corpus::librispeech_like(5, 4);
/// let binding = TokenizerBinding::for_corpus(&corpus);
/// let target = SimulatedAsrModel::target(ModelProfile::whisper_medium_en(), 7);
/// let draft = SimulatedAsrModel::draft_paired(ModelProfile::whisper_tiny_en(), 8, &target);
///
/// let mut router = Router::new(
///     RouterConfig::default().with_workers(2),
///     binding,
///     EncoderProfile::whisper_medium_encoder(),
///     |_worker| (draft.clone(), target.clone()),
/// );
/// let policy = Policy::AdaptiveSingleSequence(AdaptiveConfig::paper());
/// for utterance in corpus.split(Split::TestClean) {
///     router.submit(policy, utterance).expect("queues have room");
/// }
/// let outcomes = router.run_until_idle();
/// assert_eq!(outcomes.len(), 4);
/// assert!(router.fleet_stats().utterances_per_second() > 0.0);
/// ```
#[derive(Debug)]
pub struct Router<D, T> {
    config: RouterConfig,
    binding: TokenizerBinding,
    encoder: EncoderProfile,
    workers: Vec<Worker<D, T>>,
    /// Sorted `(hash point, worker slot)` ring for consistent placement.
    /// Points derive from each worker's *stable id* (so membership changes
    /// only remap the departed/arrived worker's arc); slots index the
    /// current `workers` vector and the ring is rebuilt on every membership
    /// change.  Draining workers hold no points.
    ring: Vec<(u64, usize)>,
    /// Drafters installed fleet-wide (submission-time validation, and
    /// replayed onto workers that join later).
    installed: Vec<Arc<dyn Drafter + Send + Sync>>,
    next_id: u64,
    /// Next worker ordinal: ids are never reused, even after removal.
    next_ordinal: usize,
    now_ms: f64,
    /// The trace configuration applied fleet-wide (late joiners inherit it).
    trace: TraceConfig,
    /// Fleet-lifecycle lane: membership and migration events that belong to
    /// the router, not to any single worker.
    fleet_tracer: Tracer,
    /// Merged statistics of workers that drained and left the fleet.
    retired_stats: ServerStats,
    /// Per-worker e2e histograms of removed workers (the mergeable-sketch
    /// aggregation path keeps one sketch per worker that ever served).
    retired_histograms: Vec<Histogram>,
    /// Flight recordings of removed workers, kept until taken.
    retired_recordings: Vec<(String, FlightRecording)>,
    retired_stolen_in: usize,
    retired_stolen_out: usize,
}

/// Mutably borrows two distinct workers at once (the migration fast path
/// moves KV blocks from one worker's pool straight into another's).
fn two_mut<D, T>(
    workers: &mut [Worker<D, T>],
    a: usize,
    b: usize,
) -> (&mut Worker<D, T>, &mut Worker<D, T>) {
    assert_ne!(a, b, "cannot borrow one worker twice");
    if a < b {
        let (left, right) = workers.split_at_mut(b);
        (&mut left[a], &mut right[0])
    } else {
        let (left, right) = workers.split_at_mut(a);
        (&mut right[0], &mut left[b])
    }
}

impl<D, T> Router<D, T>
where
    D: AsrDecoderModel,
    T: AsrDecoderModel,
{
    /// Creates a router with `config.workers` schedulers, asking
    /// `make_models` for each worker's draft/target pair (workers model
    /// independent accelerators, so each gets its own pair).  With
    /// [`RouterConfig::rpc_backend`] set, every worker's target model moves
    /// behind an [`RpcBackend`](specasr_models::RpcBackend) process boundary
    /// (a worker thread speaking the serialized wire format) instead of the
    /// in-process simulator — transcripts are identical either way.
    ///
    /// # Panics
    ///
    /// Panics if `config` is invalid (see [`RouterConfig::validate`]).
    pub fn new(
        config: RouterConfig,
        binding: TokenizerBinding,
        encoder: EncoderProfile,
        make_models: impl FnMut(WorkerId) -> (D, T),
    ) -> Self
    where
        T: Send + 'static,
    {
        let profiles = vec![WorkerProfile::default(); config.workers];
        Router::with_profiles(config, binding, encoder, &profiles, make_models)
    }

    /// [`Router::new`] for a heterogeneous fleet: one [`WorkerProfile`] per
    /// worker.  A profile's `speed` weights the worker's share of the
    /// consistent-hash ring and normalizes its queue depth in the steal
    /// comparison; its overrides reshape that worker's scheduler
    /// configuration.  All-default profiles reproduce [`Router::new`]
    /// exactly — placement, stealing, and transcripts are unchanged.
    ///
    /// # Panics
    ///
    /// Panics if `config` or any profile is invalid, or if the profile count
    /// does not match `config.workers`.
    pub fn with_profiles(
        config: RouterConfig,
        binding: TokenizerBinding,
        encoder: EncoderProfile,
        profiles: &[WorkerProfile],
        mut make_models: impl FnMut(WorkerId) -> (D, T),
    ) -> Self
    where
        T: Send + 'static,
    {
        config.validate();
        assert_eq!(
            profiles.len(),
            config.workers,
            "heterogeneous fleets need exactly one profile per worker"
        );
        let workers: Vec<Worker<D, T>> = profiles
            .iter()
            .enumerate()
            .map(|(index, profile)| {
                profile.validate();
                let id = WorkerId::new(index);
                let (draft, target) = make_models(id);
                let worker_config = profile.apply(config.worker);
                worker_config.validate();
                let scheduler = if config.rpc_backend {
                    Scheduler::with_rpc_target(
                        draft,
                        target,
                        binding.clone(),
                        encoder.clone(),
                        worker_config,
                    )
                } else {
                    Scheduler::new(
                        draft,
                        target,
                        binding.clone(),
                        encoder.clone(),
                        worker_config,
                    )
                };
                Worker::new(id, *profile, scheduler)
            })
            .collect();
        let mut router = Router {
            config,
            binding,
            encoder,
            workers,
            ring: Vec::new(),
            installed: Vec::new(),
            next_id: 0,
            next_ordinal: config.workers,
            now_ms: 0.0,
            trace: TraceConfig::disabled(),
            fleet_tracer: Tracer::disabled(),
            retired_stats: ServerStats::new(),
            retired_histograms: Vec::new(),
            retired_recordings: Vec::new(),
            retired_stolen_in: 0,
            retired_stolen_out: 0,
        };
        router.rebuild_ring();
        router
    }

    /// Rebuilds the placement ring from the current membership: every
    /// *active* worker contributes `virtual_nodes × speed` points (at least
    /// one), each derived from its stable id.  Because points depend only on
    /// the id, a membership change remaps only the arcs the departed or
    /// arrived worker owned — roughly `1/N` of the key space — and every
    /// other placement stays put.
    fn rebuild_ring(&mut self) {
        let virtual_nodes = self.config.virtual_nodes;
        let mut ring: Vec<(u64, usize)> = self
            .workers
            .iter()
            .enumerate()
            .filter(|(_, worker)| worker.state() == WorkerState::Active)
            .flat_map(|(slot, worker)| {
                let nodes =
                    ((virtual_nodes as f64 * worker.profile().speed).round() as usize).max(1);
                let ordinal = worker.id().index() as u64;
                (0..nodes as u64).map(move |node| {
                    let point = splitmix64(splitmix64(ordinal ^ 0xace1_5ba7ed).wrapping_add(node));
                    (point, slot)
                })
            })
            .collect();
        ring.sort_unstable();
        self.ring = ring;
    }

    /// The router configuration.
    pub fn config(&self) -> &RouterConfig {
        &self.config
    }

    /// The fleet's workers, for per-worker inspection.
    pub fn workers(&self) -> &[Worker<D, T>] {
        &self.workers
    }

    /// The global timeline position in milliseconds: the latest of every
    /// arrival event and ticked worker clock seen so far.
    pub fn now_ms(&self) -> f64 {
        self.now_ms
    }

    /// Requests waiting in any worker's queue.
    pub fn queued(&self) -> usize {
        self.workers.iter().map(Worker::queue_depth).sum()
    }

    /// Sessions decoding right now across the fleet.
    pub fn in_flight(&self) -> usize {
        self.workers.iter().map(Worker::in_flight).sum()
    }

    /// `true` when no worker has anything queued or in flight.
    pub fn is_idle(&self) -> bool {
        self.workers.iter().all(Worker::is_idle)
    }

    /// Total requests moved between workers by stealing (including by
    /// workers that have since left the fleet).
    pub fn stolen(&self) -> usize {
        self.workers.iter().map(Worker::stolen_in).sum::<usize>() + self.retired_stolen_in
    }

    /// The worker the consistent-hash ring assigns to `id`.
    pub fn placement(&self, id: RequestId) -> WorkerId {
        self.workers[self.placement_slot(id)].id()
    }

    /// The `workers` slot the ring assigns to `id`.
    fn placement_slot(&self, id: RequestId) -> usize {
        assert!(
            !self.ring.is_empty(),
            "placement requires at least one active worker"
        );
        let hash = splitmix64(id.value());
        let index = match self.ring.binary_search(&(hash, usize::MAX)) {
            Ok(at) | Err(at) => at,
        };
        // Past the last point, wrap to the ring's first node.
        let (_, slot) = self.ring[index % self.ring.len()];
        slot
    }

    /// Submits one utterance, arriving now on the global timeline.
    ///
    /// Placement follows the consistent-hash ring; if the placed worker's
    /// queue is full the request spills to the shallowest queue instead, and
    /// only when that is also full is the request rejected (fleet-wide
    /// backpressure).
    pub fn submit(
        &mut self,
        policy: Policy,
        utterance: &Utterance,
    ) -> Result<RequestId, SubmitError> {
        self.submit_with_drafter(policy, DrafterKind::ModelDraft, utterance)
    }

    /// [`Router::submit`] with an explicit draft source for this request.
    ///
    /// # Panics
    ///
    /// Panics if `drafter` names a draft-free kind that was not installed
    /// fleet-wide with [`Router::install_drafter`].
    pub fn submit_with_drafter(
        &mut self,
        policy: Policy,
        drafter: DrafterKind,
        utterance: &Utterance,
    ) -> Result<RequestId, SubmitError> {
        self.submit_request(policy, drafter, utterance, None)
    }

    /// [`Router::submit`] with a time-to-first-token budget: requests whose
    /// queue wait exceeds the budget are shed at admission time, and the
    /// budget is the deadline [`crate::AdmissionOrdering::EarliestDeadlineFirst`]
    /// orders by.
    pub fn submit_with_budget(
        &mut self,
        policy: Policy,
        utterance: &Utterance,
        ttft_budget_ms: Option<f64>,
    ) -> Result<RequestId, SubmitError> {
        self.submit_request(policy, DrafterKind::ModelDraft, utterance, ttft_budget_ms)
    }

    fn submit_request(
        &mut self,
        policy: Policy,
        drafter: DrafterKind,
        utterance: &Utterance,
        ttft_budget_ms: Option<f64>,
    ) -> Result<RequestId, SubmitError> {
        assert!(
            drafter == DrafterKind::ModelDraft
                || self.installed.iter().any(|d| d.kind() == drafter),
            "no {} drafter installed; call install_drafter first",
            drafter.label()
        );
        let id = RequestId::new(self.next_id);
        let primary = self.placement_slot(id);
        let candidate = if self.workers[primary].queue_depth() < self.config.worker.queue_depth {
            primary
        } else {
            self.shallowest_active_queue()
        };
        if self.workers[candidate].queue_depth() >= self.config.worker.queue_depth {
            // Every queue is full: reject before tokenizing (the rejection
            // lands on the hash-placed worker, whose overload caused it).
            return Err(self.workers[primary].scheduler.reject());
        }
        let request = QueuedRequest {
            id,
            policy,
            drafter,
            audio: self.binding.bind(utterance),
            utterance_id: utterance.id(),
            audio_seconds: utterance.duration_seconds(),
            encoder_ms: self
                .encoder
                .latency_ms_for_audio(utterance.duration_seconds()),
            arrival_ms: self.now_ms,
            preemptions: 0,
            ttft_budget_ms,
            first_output_emitted: false,
            stream: None,
        };
        let worker = &mut self.workers[candidate];
        if worker.is_idle() {
            // An idle worker's clock lags the timeline; wake it at the
            // arrival instant so its queueing delay starts from zero.
            worker.scheduler.sync_wall_to(self.now_ms);
        }
        worker.scheduler.enqueue(request)?;
        self.next_id += 1;
        Ok(id)
    }

    /// Runs one fleet iteration: rebalance queues, then tick the busy worker
    /// furthest behind in wall time (event-driven, so worker clocks stay on
    /// one coherent global timeline).
    ///
    /// Returns the requests that finished this tick.
    pub fn tick(&mut self) -> Vec<RequestOutcome> {
        self.rebalance();
        let Some(index) = self.laggard() else {
            return Vec::new();
        };
        let outcomes = self.workers[index].scheduler.tick();
        self.now_ms = self.now_ms.max(self.workers[index].wall_ms());
        outcomes
    }

    /// Ticks until every queued and in-flight request has completed across
    /// the fleet, and returns all outcomes in completion order.
    pub fn run_until_idle(&mut self) -> Vec<RequestOutcome> {
        let mut outcomes = Vec::new();
        while !self.is_idle() {
            outcomes.extend(self.tick());
        }
        outcomes
    }

    /// Advances the global timeline to `deadline_ms`, ticking busy workers
    /// up to (at least) that instant and fast-forwarding idle workers.
    ///
    /// This is the open-loop entry point: between two Poisson arrivals the
    /// fleet keeps serving, and whatever completes is returned.
    pub fn advance_to(&mut self, deadline_ms: f64) -> Vec<RequestOutcome> {
        let mut outcomes = Vec::new();
        loop {
            self.rebalance();
            let behind = self
                .workers
                .iter()
                .enumerate()
                .filter(|(_, worker)| !worker.is_idle() && worker.wall_ms() < deadline_ms)
                .min_by(|(_, a), (_, b)| {
                    a.wall_ms()
                        .partial_cmp(&b.wall_ms())
                        .expect("wall clocks are finite")
                })
                .map(|(index, _)| index);
            let Some(index) = behind else { break };
            outcomes.extend(self.workers[index].scheduler.tick());
        }
        for worker in &mut self.workers {
            if worker.is_idle() {
                worker.scheduler.sync_wall_to(deadline_ms);
            }
        }
        self.now_ms = self.now_ms.max(deadline_ms);
        outcomes
    }

    /// Adds a worker to the fleet at the current timeline instant, with
    /// capacity `profile`, and returns its (never reused) id.
    ///
    /// The joiner starts on the fleet's *current* clock — not at zero — so
    /// the first requests it serves see correct queueing spans; it inherits
    /// the fleet's trace configuration and every drafter installed so far,
    /// and immediately takes its share of the placement ring.
    ///
    /// # Panics
    ///
    /// Panics if `profile` (or the worker configuration it produces) is
    /// invalid.
    pub fn add_worker(
        &mut self,
        profile: WorkerProfile,
        make_models: impl FnOnce(WorkerId) -> (D, T),
    ) -> WorkerId
    where
        T: Send + 'static,
    {
        profile.validate();
        let id = WorkerId::new(self.next_ordinal);
        self.next_ordinal += 1;
        let (draft, target) = make_models(id);
        let worker_config = profile.apply(self.config.worker);
        worker_config.validate();
        let mut scheduler = if self.config.rpc_backend {
            Scheduler::with_rpc_target(
                draft,
                target,
                self.binding.clone(),
                self.encoder.clone(),
                worker_config,
            )
        } else {
            Scheduler::new(
                draft,
                target,
                self.binding.clone(),
                self.encoder.clone(),
                worker_config,
            )
        };
        // A late joiner must start on the fleet timeline: left at zero, its
        // first arrivals would be stamped in its future and every latency
        // span would clamp to nothing.
        scheduler.sync_wall_to(self.now_ms);
        scheduler.set_trace(self.trace);
        for drafter in &self.installed {
            scheduler.install_drafter(Arc::clone(drafter));
        }
        self.workers.push(Worker::new(id, profile, scheduler));
        self.rebuild_ring();
        let ts_ms = self.now_ms;
        self.fleet_tracer.record_with(|| TraceEvent::WorkerAdded {
            ts_ms,
            worker: id.index() as u64,
        });
        id
    }

    /// Moves worker `id` from `Active` to `Draining`: it leaves the
    /// placement ring, its queued requests re-route through the ring, and
    /// its migratable in-flight sessions move to their new placements —
    /// via the same-machine block-table hand-off when the destination has
    /// batch and KV headroom (no re-prefill), via preempt-and-restore
    /// otherwise.  Streaming sessions finish on the draining worker (their
    /// chunk timetables are anchored to it); once it has nothing left,
    /// [`Router::reap_drained`] removes it.
    ///
    /// Returns the number of in-flight sessions migrated.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not in the fleet, is already draining, or is the
    /// last active worker.
    pub fn drain_worker(&mut self, id: WorkerId) -> usize {
        let slot = self
            .workers
            .iter()
            .position(|worker| worker.id() == id)
            .expect("cannot drain a worker that is not in the fleet");
        assert!(
            !self.workers[slot].is_draining(),
            "{id} is already draining"
        );
        let active = self
            .workers
            .iter()
            .filter(|worker| !worker.is_draining())
            .count();
        assert!(
            active > 1,
            "draining the last active worker would strand the fleet"
        );
        self.workers[slot].set_draining();
        self.rebuild_ring();
        let ts_ms = self.now_ms;
        self.fleet_tracer
            .record_with(|| TraceEvent::WorkerDraining {
                ts_ms,
                worker: id.index() as u64,
            });

        // Queued requests re-route through the (rebuilt) ring.  Migration
        // never drops a request, so re-admission bypasses the queue-depth
        // check — a transiently over-deep destination sheds load through
        // the ordinary admission path afterwards.
        let queued = self.workers[slot].scheduler.drain_queue();
        for request in queued {
            let dest = self.placement_slot(request.id);
            debug_assert_ne!(dest, slot, "a draining worker holds no ring points");
            if self.workers[dest].is_idle() && self.workers[dest].wall_ms() < request.arrival_ms {
                self.workers[dest]
                    .scheduler
                    .sync_wall_to(request.arrival_ms);
            }
            self.workers[dest].scheduler.enqueue_migrated(request);
        }

        // In-flight offline sessions migrate live.
        let sessions = self.workers[slot].scheduler.extract_migratable();
        let mut migrated = 0;
        for mut session in sessions {
            let dest = self.placement_slot(session.id);
            let request = session.id.value();
            if self.workers[dest].is_idle() && self.workers[dest].wall_ms() < self.now_ms {
                self.workers[dest].scheduler.sync_wall_to(self.now_ms);
            }
            // Fast path: hand the session's block tables to the destination
            // pool directly — decode state survives, no re-prefill.  Falls
            // back to preempt-and-restore when the destination lacks batch
            // room or KV headroom.
            let handoff = self.workers[dest].scheduler.has_batch_room() && {
                let (source, destination) = two_mut(&mut self.workers, slot, dest);
                session
                    .decode
                    .migrate_kv(
                        source.scheduler.kv_pool_mut(),
                        destination.scheduler.kv_pool_mut(),
                    )
                    .is_ok()
            };
            if handoff {
                self.workers[dest].scheduler.adopt_session(session);
            } else {
                session
                    .decode
                    .release_kv(self.workers[slot].scheduler.kv_pool_mut());
                let requeued = session.into_requeued(true);
                self.workers[dest].scheduler.enqueue_migrated(requeued);
            }
            self.workers[dest].scheduler.record_migration_in(handoff);
            migrated += 1;
            let to_worker = self.workers[dest].id().index() as u64;
            self.fleet_tracer
                .record_with(|| TraceEvent::SessionMigrated {
                    ts_ms,
                    request,
                    from_worker: id.index() as u64,
                    to_worker,
                    handoff,
                });
        }
        migrated
    }

    /// Removes every draining worker that has gone fully idle, preserving
    /// its statistics, latency sketch, and flight recording in the fleet
    /// aggregates.  Returns the removed ids (in fleet order).
    pub fn reap_drained(&mut self) -> Vec<WorkerId> {
        let mut removed = Vec::new();
        let mut slot = 0;
        while slot < self.workers.len() {
            if self.workers[slot].is_draining() && self.workers[slot].is_idle() {
                let mut worker = self.workers.remove(slot);
                self.retired_stats.merge(worker.stats());
                self.retired_histograms.push(worker.stats().e2e_histogram());
                self.retired_stolen_in += worker.stolen_in();
                self.retired_stolen_out += worker.stolen_out();
                if let Some(recording) = worker.scheduler.take_trace_recording() {
                    self.retired_recordings
                        .push((worker.id().to_string(), recording));
                }
                let ts_ms = self.now_ms;
                let ordinal = worker.id().index() as u64;
                self.fleet_tracer.record_with(|| TraceEvent::WorkerRemoved {
                    ts_ms,
                    worker: ordinal,
                });
                removed.push(worker.id());
            } else {
                slot += 1;
            }
        }
        if !removed.is_empty() {
            self.rebuild_ring();
        }
        removed
    }

    /// Workers currently serving (on the ring).
    pub fn active_workers(&self) -> usize {
        self.workers
            .iter()
            .filter(|worker| !worker.is_draining())
            .count()
    }

    /// Workers winding down (off the ring, finishing local work).
    pub fn draining_workers(&self) -> usize {
        self.workers
            .iter()
            .filter(|worker| worker.is_draining())
            .count()
    }

    /// Fleet-wide statistics: every worker's [`ServerStats`] merged with
    /// parallel-fleet semantics (see [`ServerStats::merge`]), including
    /// workers that have since drained and left the fleet.
    pub fn fleet_stats(&self) -> ServerStats {
        let mut merged = self.retired_stats.clone();
        for worker in &self.workers {
            merged.merge(worker.stats());
        }
        merged
    }

    /// Fleet-wide end-to-end latency histogram, built by merging the
    /// per-worker histograms (mismatched per-worker ranges re-bin over the
    /// union range — see [`Histogram::merge`]).
    ///
    /// This is the *mergeable-sketch* aggregation path: what a distributed
    /// fleet would do when workers ship fixed-size histograms instead of raw
    /// samples.  Re-binning at bin centres makes its percentiles approximate
    /// (off by up to one source bin width from
    /// `self.fleet_stats().e2e_histogram()`, which pools the exact samples);
    /// prefer the exact path when raw samples are at hand, and this one to
    /// model bounded-memory aggregation.
    pub fn fleet_e2e_histogram(&self) -> Histogram {
        self.workers
            .iter()
            .map(|worker| worker.stats().e2e_histogram())
            .chain(self.retired_histograms.iter().cloned())
            .reduce(|a, b| a.merge(&b))
            .expect("a router always has at least one worker")
    }

    /// Installs a draft-free draft source on every worker (workers share the
    /// `Arc`; drafters are immutable).  Required before submitting requests
    /// with the matching [`DrafterKind`] — stealing and spilling can land a
    /// request on any worker, so installation is fleet-wide by construction.
    pub fn install_drafter(&mut self, drafter: Arc<dyn Drafter + Send + Sync>) {
        for worker in &mut self.workers {
            worker.scheduler.install_drafter(Arc::clone(&drafter));
        }
        // Kept for submission-time validation and replayed onto late
        // joiners; re-installing a kind replaces it.
        if let Some(slot) = self
            .installed
            .iter_mut()
            .find(|installed| installed.kind() == drafter.kind())
        {
            *slot = drafter;
        } else {
            self.installed.push(drafter);
        }
    }

    /// Applies `config` to every worker's flight recorder.  Enabling starts
    /// a fresh ring on each worker; disabling drops any recorded events.
    pub fn set_trace(&mut self, config: TraceConfig) {
        self.trace = config;
        self.fleet_tracer = Tracer::new(config);
        for worker in &mut self.workers {
            worker.scheduler.set_trace(config);
        }
    }

    /// Takes every worker's flight recording, labelled by worker id (the
    /// Perfetto exporter's lane list).  Workers without tracing enabled are
    /// skipped; each enabled worker restarts with an empty ring.
    pub fn take_recordings(&mut self) -> Vec<(String, FlightRecording)> {
        let mut recordings = Vec::new();
        // The fleet lane (membership and migration events) leads, so the
        // Perfetto export shows lanes appearing and disappearing next to
        // the lifecycle instants that explain them.
        if let Some(recording) = self.fleet_tracer.take_recording() {
            if !recording.is_empty() {
                recordings.push(("fleet".to_string(), recording));
            }
        }
        recordings.append(&mut self.retired_recordings);
        recordings.extend(self.workers.iter_mut().filter_map(|worker| {
            let recording = worker.scheduler.take_trace_recording()?;
            Some((worker.id().to_string(), recording))
        }));
        recordings
    }

    /// Fleet-wide metrics registry: [`Self::fleet_stats`] published into a
    /// fresh [`MetricsRegistry`] (the Prometheus-style exposition source).
    pub fn fleet_metrics(&self) -> MetricsRegistry {
        let mut registry = MetricsRegistry::new();
        self.fleet_stats().publish_metrics(&mut registry);
        registry
    }

    /// The busy worker furthest behind in wall time.
    fn laggard(&self) -> Option<usize> {
        self.workers
            .iter()
            .enumerate()
            .filter(|(_, worker)| !worker.is_idle())
            .min_by(|(_, a), (_, b)| {
                a.wall_ms()
                    .partial_cmp(&b.wall_ms())
                    .expect("wall clocks are finite")
            })
            .map(|(index, _)| index)
    }

    /// The *active* worker with the shallowest queue (ties break to the
    /// lowest slot, keeping the fleet deterministic).  Draining workers
    /// never receive spilled or stolen requests.
    fn shallowest_active_queue(&self) -> usize {
        self.workers
            .iter()
            .enumerate()
            .filter(|(_, worker)| !worker.is_draining())
            .min_by_key(|(index, worker)| (worker.queue_depth(), *index))
            .map(|(index, _)| index)
            .expect("a router always has at least one active worker")
    }

    /// Work stealing: while the deepest queue exceeds the shallowest active
    /// queue by more than the steal threshold — both *speed-normalized*, so
    /// a 4× worker looks a quarter as deep as its raw count — move the
    /// newest half of the raw imbalance over.  With all-default profiles
    /// this is exactly the unweighted integer comparison.
    fn rebalance(&mut self) {
        if self.workers.len() < 2 {
            return;
        }
        loop {
            let deep = self
                .workers
                .iter()
                .enumerate()
                .max_by(|(slot_a, a), (slot_b, b)| {
                    a.normalized_depth()
                        .partial_cmp(&b.normalized_depth())
                        .expect("queue depths are finite")
                        .then(slot_b.cmp(slot_a))
                })
                .map(|(index, _)| index)
                .expect("fleet is non-empty");
            let shallow = self.shallowest_active_queue();
            if deep == shallow
                || self.workers[deep].normalized_depth()
                    <= self.workers[shallow].normalized_depth() + self.config.steal_threshold as f64
            {
                return;
            }
            let deep_depth = self.workers[deep].queue_depth();
            let shallow_depth = self.workers[shallow].queue_depth();
            let room = self.config.worker.queue_depth.saturating_sub(shallow_depth);
            let transfer = (deep_depth.saturating_sub(shallow_depth) / 2).min(room);
            if transfer == 0 {
                return;
            }
            let stolen = self.workers[deep].scheduler.steal_back(transfer);
            self.workers[deep].stolen_out += stolen.len();
            let thief_wall = self.workers[shallow].wall_ms();
            for request in stolen {
                if self.workers[shallow].is_idle() && thief_wall < request.arrival_ms {
                    self.workers[shallow]
                        .scheduler
                        .sync_wall_to(request.arrival_ms);
                }
                self.workers[shallow]
                    .scheduler
                    .enqueue(request)
                    .expect("transfer size was capped to the thief's free room");
                self.workers[shallow].stolen_in += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use specasr::{AdaptiveConfig, SpeculativeConfig};
    use specasr_audio::{Corpus, Split};
    use specasr_models::{ModelProfile, SimulatedAsrModel};

    use crate::config::ServerConfig;

    fn router(config: RouterConfig) -> (Router<SimulatedAsrModel, SimulatedAsrModel>, Corpus) {
        let corpus = Corpus::librispeech_like(88, 12);
        let binding = TokenizerBinding::for_corpus(&corpus);
        let target = SimulatedAsrModel::target(ModelProfile::whisper_medium_en(), 7);
        let draft = SimulatedAsrModel::draft_paired(ModelProfile::whisper_tiny_en(), 8, &target);
        let router = Router::new(
            config,
            binding,
            EncoderProfile::whisper_medium_encoder(),
            |_| (draft.clone(), target.clone()),
        );
        (router, corpus)
    }

    #[test]
    fn placement_is_deterministic_and_spread() {
        let (router, _) = router(RouterConfig::default().with_workers(4));
        let mut seen = [0usize; 4];
        for raw in 0..256u64 {
            let id = RequestId::new(raw);
            let a = router.placement(id);
            let b = router.placement(id);
            assert_eq!(a, b, "placement must be a pure function of the id");
            seen[a.index()] += 1;
        }
        for (worker, &count) in seen.iter().enumerate() {
            assert!(
                count > 16,
                "worker {worker} got only {count}/256 placements — ring is badly skewed"
            );
        }
    }

    #[test]
    fn fleet_completes_every_request_exactly_once() {
        let (mut router, corpus) = router(RouterConfig::default().with_workers(4));
        let policy = Policy::AdaptiveSingleSequence(AdaptiveConfig::paper());
        let mut ids = Vec::new();
        for split in Split::ALL {
            for utterance in corpus.split(split) {
                ids.push(router.submit(policy, utterance).expect("queues have room"));
            }
        }
        let outcomes = router.run_until_idle();
        assert_eq!(outcomes.len(), ids.len());
        let mut completed: Vec<u64> = outcomes.iter().map(|o| o.id.value()).collect();
        completed.sort_unstable();
        let mut expected: Vec<u64> = ids.iter().map(|id| id.value()).collect();
        expected.sort_unstable();
        assert_eq!(completed, expected);
        assert_eq!(router.fleet_stats().completed(), ids.len());
        assert!(router.is_idle());
    }

    #[test]
    fn work_stealing_rebalances_a_skewed_fleet() {
        // Tiny ring with a single virtual node per worker plus a depth-1
        // steal threshold makes imbalance easy to provoke.
        let (mut router, corpus) = router(
            RouterConfig::default()
                .with_workers(2)
                .with_steal_threshold(1)
                .with_worker_config(ServerConfig::default().with_max_batch(1)),
        );
        let policy = Policy::Speculative(SpeculativeConfig::short_single());
        for split in Split::ALL {
            for utterance in corpus.split(split) {
                router.submit(policy, utterance).expect("queues have room");
            }
        }
        router.tick();
        let depths: Vec<usize> = router.workers().iter().map(Worker::queue_depth).collect();
        let spread = depths.iter().max().unwrap() - depths.iter().min().unwrap();
        assert!(
            spread <= router.config().steal_threshold,
            "queues stay balanced after rebalancing, got depths {depths:?}"
        );
        router.run_until_idle();
        assert!(
            router.stolen() > 0,
            "hash placement of 48 requests over 2 workers must trigger stealing at threshold 1"
        );
        let stolen_out: usize = router.workers().iter().map(Worker::stolen_out).sum();
        assert_eq!(router.stolen(), stolen_out);
    }

    #[test]
    fn more_workers_serve_a_burst_faster() {
        let policy = Policy::AdaptiveSingleSequence(AdaptiveConfig::paper());
        let mut wall_by_fleet = Vec::new();
        for workers in [1usize, 4] {
            let (mut router, corpus) = router(
                RouterConfig::default()
                    .with_workers(workers)
                    .with_worker_config(ServerConfig::default().with_max_batch(4)),
            );
            for split in Split::ALL {
                for utterance in corpus.split(split) {
                    router.submit(policy, utterance).expect("queues have room");
                }
            }
            router.run_until_idle();
            wall_by_fleet.push(router.fleet_stats().wall_ms());
        }
        assert!(
            wall_by_fleet[1] < wall_by_fleet[0] / 2.0,
            "4 workers ({:.0} ms) should finish the burst well under half the 1-worker wall \
             time ({:.0} ms)",
            wall_by_fleet[1],
            wall_by_fleet[0]
        );
    }

    #[test]
    fn fleet_stats_and_histogram_aggregate_all_workers() {
        let (mut router, corpus) = router(RouterConfig::default().with_workers(3));
        let policy = Policy::Speculative(SpeculativeConfig::short_single());
        for utterance in corpus.split(Split::TestClean) {
            router.submit(policy, utterance).expect("queues have room");
        }
        router.run_until_idle();
        let fleet = router.fleet_stats();
        let per_worker: usize = router.workers().iter().map(|w| w.stats().completed()).sum();
        assert_eq!(fleet.completed(), per_worker);
        assert_eq!(fleet.completed(), 12);
        let merged = router.fleet_e2e_histogram();
        assert_eq!(merged.count(), 12);
        assert!(fleet.e2e_p99_ms() >= fleet.e2e_p50_ms());
        assert!(fleet.ttft_p99_ms() >= fleet.ttft_p50_ms());
    }

    #[test]
    fn advance_to_fast_forwards_idle_workers() {
        let (mut router, corpus) = router(RouterConfig::default().with_workers(2));
        let outcomes = router.advance_to(1_000.0);
        assert!(outcomes.is_empty());
        assert!((router.now_ms() - 1_000.0).abs() < 1e-12);
        for worker in router.workers() {
            assert!((worker.wall_ms() - 1_000.0).abs() < 1e-12);
        }
        // A request arriving at t=1000 on an idle fleet must see zero queue
        // delay even though the fleet clock started at zero.
        let policy = Policy::Speculative(SpeculativeConfig::short_single());
        let utterance = &corpus.split(Split::TestClean)[0];
        router.submit(policy, utterance).expect("queues have room");
        let outcomes = router.run_until_idle();
        assert_eq!(outcomes.len(), 1);
        assert!(outcomes[0].latency.queue_ms.abs() < 1e-9);
        assert!(outcomes[0].e2e_ms() > 0.0);
    }

    #[test]
    fn interleaved_submission_never_yields_negative_latency_samples() {
        // Interleaving submit with tick advances the fleet timeline past
        // lagging workers' clocks, so arrivals can be stamped "in a worker's
        // future"; every latency span must still come out non-negative.
        let (mut router, corpus) = router(
            RouterConfig::default()
                .with_workers(3)
                .with_worker_config(ServerConfig::default().with_max_batch(2)),
        );
        let policy = Policy::Speculative(SpeculativeConfig::short_single());
        let pool: Vec<_> = Split::ALL
            .iter()
            .flat_map(|&split| corpus.split(split))
            .collect();
        let mut outcomes = Vec::new();
        for (index, utterance) in pool.iter().enumerate() {
            router.submit(policy, utterance).expect("queues have room");
            // Uneven tick bursts maximise clock skew between workers.
            for _ in 0..(index % 4) {
                outcomes.extend(router.tick());
            }
        }
        outcomes.extend(router.run_until_idle());
        assert_eq!(outcomes.len(), pool.len());
        for outcome in &outcomes {
            assert!(outcome.latency.queue_ms >= 0.0, "negative queue delay");
            assert!(
                outcome.latency.decode_wall_ms >= 0.0,
                "negative decode wall"
            );
            assert!(
                outcome.latency.time_to_first_token_ms >= 0.0,
                "negative time to first token"
            );
            assert!(outcome.e2e_ms() > 0.0);
        }
    }

    #[test]
    fn full_primary_queue_spills_to_the_shallowest_worker() {
        let (mut router, corpus) = router(
            RouterConfig::default()
                .with_workers(2)
                // Steal threshold high enough that rebalancing never runs,
                // isolating the submit-time spill path.
                .with_steal_threshold(1_000)
                .with_worker_config(ServerConfig::default().with_queue_depth(2)),
        );
        let policy = Policy::Speculative(SpeculativeConfig::short_single());
        let mut accepted = 0;
        for split in Split::ALL {
            for utterance in corpus.split(split) {
                if router.submit(policy, utterance).is_ok() {
                    accepted += 1;
                }
            }
        }
        // Both queues fill before anything is rejected: 2 workers × depth 2.
        assert_eq!(accepted, 4);
        assert_eq!(router.queued(), 4);
        assert_eq!(router.fleet_stats().rejected(), 48 - 4);
    }
}
