//! Serving configuration: batch size, queue depth, and admission policy.

use serde::{Deserialize, Serialize};

/// How the scheduler picks the next request from the wait queue when a batch
/// slot frees up.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AdmissionPolicy {
    /// Strict arrival order.
    Fifo,
    /// Shortest audio first: minimises mean latency under load at the cost
    /// of fairness for long utterances (no starvation guard yet).
    ShortestAudioFirst,
}

/// Configuration of a [`crate::Scheduler`].
///
/// # Example
///
/// ```
/// use specasr_server::{AdmissionPolicy, ServerConfig};
///
/// let config = ServerConfig::default().with_max_batch(16);
/// assert_eq!(config.max_batch, 16);
/// assert_eq!(config.admission, AdmissionPolicy::Fifo);
/// config.validate();
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServerConfig {
    /// Maximum number of decode sessions in flight at once (the iteration
    /// batch size).
    pub max_batch: usize,
    /// Maximum number of requests waiting for admission; `submit` rejects
    /// beyond this (backpressure).
    pub queue_depth: usize,
    /// Queue discipline used at admission time.
    pub admission: AdmissionPolicy,
}

impl ServerConfig {
    /// Returns this configuration with a different batch size.
    pub fn with_max_batch(mut self, max_batch: usize) -> Self {
        self.max_batch = max_batch;
        self
    }

    /// Returns this configuration with a different queue depth.
    pub fn with_queue_depth(mut self, queue_depth: usize) -> Self {
        self.queue_depth = queue_depth;
        self
    }

    /// Returns this configuration with a different admission policy.
    pub fn with_admission(mut self, admission: AdmissionPolicy) -> Self {
        self.admission = admission;
        self
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics if the batch size or queue depth is zero.
    pub fn validate(&self) {
        assert!(self.max_batch > 0, "max_batch must be positive");
        assert!(self.queue_depth > 0, "queue_depth must be positive");
    }
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_batch: 8,
            queue_depth: 64,
            admission: AdmissionPolicy::Fifo,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_updates_preserve_other_fields() {
        let config = ServerConfig::default()
            .with_max_batch(4)
            .with_queue_depth(10)
            .with_admission(AdmissionPolicy::ShortestAudioFirst);
        assert_eq!(config.max_batch, 4);
        assert_eq!(config.queue_depth, 10);
        assert_eq!(config.admission, AdmissionPolicy::ShortestAudioFirst);
        config.validate();
    }

    #[test]
    #[should_panic(expected = "max_batch")]
    fn zero_batch_fails_validation() {
        ServerConfig::default().with_max_batch(0).validate();
    }

    #[test]
    #[should_panic(expected = "queue_depth")]
    fn zero_queue_depth_fails_validation() {
        ServerConfig::default().with_queue_depth(0).validate();
    }
}
