//! Serving configuration: batch size, queue depth, admission policy, and the
//! sharded-router fleet parameters.

use serde::{Deserialize, Serialize};

/// How the scheduler picks the next request from the wait queue when a batch
/// slot frees up.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AdmissionPolicy {
    /// Strict arrival order.
    Fifo,
    /// Shortest audio first: minimises mean latency under load.  Long
    /// utterances are protected from starvation by an aging credit (see
    /// [`ServerConfig::aging_rate`]): a request's effective priority is its
    /// audio length minus `age × aging_rate`, so every queued request's
    /// priority eventually beats any freshly arrived short utterance.
    ShortestAudioFirst,
}

/// Deadline-awareness of the admission order (`ServerConfig::ordering`).
///
/// [`AdmissionPolicy`] decides how requests compete on *workload* shape
/// (arrival order, audio length); this layer decides whether time-to-first-
/// token budgets override that competition.  With budgets the scheduler
/// already *sheds* requests whose wait blew their budget — ordering is the
/// other half: admit the request closest to its deadline first, so fewer
/// requests expire in the queue at all (goodput under overload).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AdmissionOrdering {
    /// Deadline-blind: defer entirely to the configured
    /// [`AdmissionPolicy`] (the historical behavior, and the default).
    Queue,
    /// Earliest deadline first: requests are admitted by absolute deadline
    /// (`arrival + ttft_budget`); budget-less requests order after every
    /// deadline-bearing request, by arrival.  Ties break on arrival time,
    /// then request id, so the order is deterministic.
    EarliestDeadlineFirst,
}

/// Which in-flight session a memory-exhausted scheduler evicts to free KV
/// blocks (the victim releases its blocks, re-queues, and restores
/// deterministically by re-prefilling on re-admission).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PreemptPolicy {
    /// Evict the most recently admitted session — the least sunk decode
    /// work is thrown away, and long-resident sessions are protected.
    NewestAdmitted,
    /// Evict the session holding the most KV blocks — frees the most memory
    /// per eviction at the price of redoing the largest decode.
    LargestKv,
}

/// Configuration of a [`crate::Scheduler`].
///
/// # Example
///
/// ```
/// use specasr_server::{AdmissionPolicy, PreemptPolicy, ServerConfig};
///
/// let config = ServerConfig::default().with_max_batch(16).with_kv_blocks(512);
/// assert_eq!(config.max_batch, 16);
/// assert_eq!(config.admission, AdmissionPolicy::Fifo);
/// assert_eq!(config.kv_blocks, 512);
/// assert_eq!(config.preempt_policy, PreemptPolicy::NewestAdmitted);
/// config.validate();
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServerConfig {
    /// Maximum number of decode sessions in flight at once (the iteration
    /// batch size).
    pub max_batch: usize,
    /// Maximum number of requests waiting for admission; `submit` rejects
    /// beyond this (backpressure).
    pub queue_depth: usize,
    /// Queue discipline used at admission time.
    pub admission: AdmissionPolicy,
    /// Whether time-to-first-token budgets override the queue discipline at
    /// admission time (earliest-deadline-first); see [`AdmissionOrdering`].
    pub ordering: AdmissionOrdering,
    /// Aging credit for [`AdmissionPolicy::ShortestAudioFirst`], in audio
    /// seconds of priority per millisecond spent queued.  `0.0` restores the
    /// starvation-prone pure shortest-audio-first ordering; the default of
    /// `0.005` forgives five audio seconds per queued second, so even a 30 s
    /// utterance outranks fresh 2 s arrivals after ~5.6 s of waiting.
    pub aging_rate: f64,
    /// KV-block budget of the paged pool, per model sub-pool (draft and
    /// target each get this many blocks).  The default is generous enough
    /// that a default batch never feels memory pressure; shrink it to study
    /// memory-aware admission and preemption.
    pub kv_blocks: usize,
    /// Positions per KV block.
    pub block_size: usize,
    /// Eviction policy when the KV pool is exhausted mid-decode.
    pub preempt_policy: PreemptPolicy,
    /// Verification-wave pipeline depth.  `1` is the classic drain-per-tick
    /// schedule: every wave of a tick is submitted and drained before the
    /// next tick begins.  `2` or more turns the tick submit-ahead /
    /// complete-behind: the wave planner may split a tick into up to this
    /// many waves, each session's next draft phase starts at its *own* wave's
    /// completion (not the tick's), and at most this many verification waves
    /// may be outstanding on the device at any submission instant.
    /// Transcripts are byte-identical at every depth — only the timeline
    /// compresses.
    pub max_in_flight_waves: usize,
    /// Modeled draft-device lanes.  `0` leaves per-session draft chains
    /// unconstrained (a pool of draft-sized accelerators, the historical
    /// model); `n > 0` serialises draft rounds onto `n` lanes so draft and
    /// verify work contend for modeled device time like real hardware.
    pub draft_lanes: usize,
}

impl ServerConfig {
    /// Returns this configuration with a different batch size.
    pub fn with_max_batch(mut self, max_batch: usize) -> Self {
        self.max_batch = max_batch;
        self
    }

    /// Returns this configuration with a different queue depth.
    pub fn with_queue_depth(mut self, queue_depth: usize) -> Self {
        self.queue_depth = queue_depth;
        self
    }

    /// Returns this configuration with a different admission policy.
    pub fn with_admission(mut self, admission: AdmissionPolicy) -> Self {
        self.admission = admission;
        self
    }

    /// Returns this configuration with a different deadline-awareness of
    /// the admission order.
    pub fn with_ordering(mut self, ordering: AdmissionOrdering) -> Self {
        self.ordering = ordering;
        self
    }

    /// Returns this configuration with a different aging rate (audio seconds
    /// of shortest-audio-first priority credit per queued millisecond).
    pub fn with_aging_rate(mut self, aging_rate: f64) -> Self {
        self.aging_rate = aging_rate;
        self
    }

    /// Returns this configuration with a different per-sub-pool KV-block
    /// budget.
    pub fn with_kv_blocks(mut self, kv_blocks: usize) -> Self {
        self.kv_blocks = kv_blocks;
        self
    }

    /// Returns this configuration with a different KV block size (positions
    /// per block).
    pub fn with_block_size(mut self, block_size: usize) -> Self {
        self.block_size = block_size;
        self
    }

    /// Returns this configuration with a different preemption policy.
    pub fn with_preempt_policy(mut self, preempt_policy: PreemptPolicy) -> Self {
        self.preempt_policy = preempt_policy;
        self
    }

    /// Returns this configuration with a different verification-wave
    /// pipeline depth (`1` = drain-per-tick, `n ≥ 2` = pipelined with at
    /// most `n` waves in flight).
    pub fn with_max_in_flight_waves(mut self, max_in_flight_waves: usize) -> Self {
        self.max_in_flight_waves = max_in_flight_waves;
        self
    }

    /// Returns this configuration with a different draft-device lane count
    /// (`0` = unconstrained).
    pub fn with_draft_lanes(mut self, draft_lanes: usize) -> Self {
        self.draft_lanes = draft_lanes;
        self
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics if the batch size, queue depth, KV-block budget, or block size
    /// is zero, or the aging rate is negative or non-finite.
    pub fn validate(&self) {
        assert!(self.max_batch > 0, "max_batch must be positive");
        assert!(self.queue_depth > 0, "queue_depth must be positive");
        assert!(
            self.aging_rate.is_finite() && self.aging_rate >= 0.0,
            "aging_rate must be finite and non-negative"
        );
        assert!(self.kv_blocks > 0, "kv_blocks must be positive");
        assert!(self.block_size > 0, "block_size must be positive");
        assert!(
            self.max_in_flight_waves > 0,
            "max_in_flight_waves must be positive"
        );
    }
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_batch: 8,
            queue_depth: 64,
            admission: AdmissionPolicy::Fifo,
            ordering: AdmissionOrdering::Queue,
            aging_rate: 0.005,
            // 4096 blocks × 16 positions = 65 536 positions per model — far
            // beyond what a default batch of 8 can hold, so the pool is
            // effectively unconstrained unless explicitly shrunk.
            kv_blocks: 4096,
            block_size: 16,
            preempt_policy: PreemptPolicy::NewestAdmitted,
            max_in_flight_waves: 1,
            draft_lanes: 0,
        }
    }
}

/// Configuration of a [`crate::Router`] fleet.
///
/// # Example
///
/// ```
/// use specasr_server::{RouterConfig, ServerConfig};
///
/// let config = RouterConfig::default()
///     .with_workers(4)
///     .with_worker_config(ServerConfig::default().with_max_batch(4));
/// assert_eq!(config.workers, 4);
/// config.validate();
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RouterConfig {
    /// Number of independent scheduler workers behind the router.
    pub workers: usize,
    /// Hash-ring points per worker: more virtual nodes smooth the
    /// consistent-hash placement across workers.
    pub virtual_nodes: usize,
    /// Work stealing triggers when a worker's queue is deeper than the
    /// shallowest worker's queue by more than this many requests.
    pub steal_threshold: usize,
    /// Configuration applied to every worker's scheduler.
    pub worker: ServerConfig,
    /// Run every worker's target model behind a process-boundary
    /// [`specasr_models::RpcBackend`] (a worker thread driven over the
    /// serialized wire protocol) instead of the in-process simulated
    /// backend.  Timing, tickets, and transcripts are identical either way;
    /// the flag exists to prove it.
    pub rpc_backend: bool,
}

impl RouterConfig {
    /// Returns this configuration with a different worker count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Returns this configuration with a different virtual-node count.
    pub fn with_virtual_nodes(mut self, virtual_nodes: usize) -> Self {
        self.virtual_nodes = virtual_nodes;
        self
    }

    /// Returns this configuration with a different steal threshold.
    pub fn with_steal_threshold(mut self, steal_threshold: usize) -> Self {
        self.steal_threshold = steal_threshold;
        self
    }

    /// Returns this configuration with a different per-worker scheduler
    /// configuration.
    pub fn with_worker_config(mut self, worker: ServerConfig) -> Self {
        self.worker = worker;
        self
    }

    /// Returns this configuration with the process-boundary RPC target
    /// backend enabled or disabled.
    pub fn with_rpc_backend(mut self, rpc_backend: bool) -> Self {
        self.rpc_backend = rpc_backend;
        self
    }

    /// Validates the configuration (including the per-worker one).
    ///
    /// # Panics
    ///
    /// Panics if the worker, virtual-node, or steal-threshold counts are
    /// zero, or the per-worker configuration is invalid.
    pub fn validate(&self) {
        assert!(self.workers > 0, "workers must be positive");
        assert!(self.virtual_nodes > 0, "virtual_nodes must be positive");
        assert!(self.steal_threshold > 0, "steal_threshold must be positive");
        self.worker.validate();
    }
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            workers: 2,
            virtual_nodes: 16,
            steal_threshold: 4,
            worker: ServerConfig::default(),
            rpc_backend: false,
        }
    }
}

/// Capacity description of one worker in a heterogeneous fleet.
///
/// A uniform fleet leaves every field at its default and behaves exactly
/// like the profile-less router.  A mixed fleet (say one big-batch worker
/// next to several small ones) sets `speed` to the worker's relative serving
/// capacity: the consistent-hash ring gives the worker proportionally more
/// virtual nodes (so placement routes more traffic where it runs fastest)
/// and work stealing compares *speed-normalized* queue depths (a queue of 8
/// on a 4× worker is as deep as a queue of 2 on a 1× worker).
///
/// `speed` is a routing hint; the worker's actual capacity comes from its
/// models and its scheduler overrides (`max_batch`, `kv_blocks`).
///
/// # Example
///
/// ```
/// use specasr_server::WorkerProfile;
///
/// let fast = WorkerProfile::default().with_speed(4.0).with_max_batch(16);
/// assert_eq!(fast.max_batch, Some(16));
/// fast.validate();
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkerProfile {
    /// Relative serving speed (`1.0` = a standard worker).  Scales the
    /// worker's virtual-node count on the ring and normalizes its queue
    /// depth in the steal comparison.
    pub speed: f64,
    /// Overrides [`ServerConfig::max_batch`] for this worker when set.
    pub max_batch: Option<usize>,
    /// Overrides [`ServerConfig::kv_blocks`] for this worker when set.
    pub kv_blocks: Option<usize>,
}

impl WorkerProfile {
    /// Returns this profile with a different relative speed.
    pub fn with_speed(mut self, speed: f64) -> Self {
        self.speed = speed;
        self
    }

    /// Returns this profile with a per-worker batch-size override.
    pub fn with_max_batch(mut self, max_batch: usize) -> Self {
        self.max_batch = Some(max_batch);
        self
    }

    /// Returns this profile with a per-worker KV-block budget override.
    pub fn with_kv_blocks(mut self, kv_blocks: usize) -> Self {
        self.kv_blocks = Some(kv_blocks);
        self
    }

    /// The worker's scheduler configuration: the fleet-wide `base` with this
    /// profile's overrides applied.
    pub fn apply(&self, base: ServerConfig) -> ServerConfig {
        let mut config = base;
        if let Some(max_batch) = self.max_batch {
            config = config.with_max_batch(max_batch);
        }
        if let Some(kv_blocks) = self.kv_blocks {
            config = config.with_kv_blocks(kv_blocks);
        }
        config
    }

    /// Validates the profile.
    ///
    /// # Panics
    ///
    /// Panics if `speed` is non-finite or non-positive, or an override is
    /// zero.
    pub fn validate(&self) {
        assert!(
            self.speed.is_finite() && self.speed > 0.0,
            "speed must be finite and positive"
        );
        assert!(
            self.max_batch != Some(0),
            "max_batch override must be positive"
        );
        assert!(
            self.kv_blocks != Some(0),
            "kv_blocks override must be positive"
        );
    }
}

impl Default for WorkerProfile {
    fn default() -> Self {
        WorkerProfile {
            speed: 1.0,
            max_batch: None,
            kv_blocks: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_updates_preserve_other_fields() {
        let config = ServerConfig::default()
            .with_max_batch(4)
            .with_queue_depth(10)
            .with_admission(AdmissionPolicy::ShortestAudioFirst)
            .with_aging_rate(0.25);
        assert_eq!(config.max_batch, 4);
        assert_eq!(config.queue_depth, 10);
        assert_eq!(config.admission, AdmissionPolicy::ShortestAudioFirst);
        assert!((config.aging_rate - 0.25).abs() < 1e-12);
        config.validate();
    }

    #[test]
    #[should_panic(expected = "max_batch")]
    fn zero_batch_fails_validation() {
        ServerConfig::default().with_max_batch(0).validate();
    }

    #[test]
    #[should_panic(expected = "queue_depth")]
    fn zero_queue_depth_fails_validation() {
        ServerConfig::default().with_queue_depth(0).validate();
    }

    #[test]
    #[should_panic(expected = "aging_rate")]
    fn negative_aging_rate_fails_validation() {
        ServerConfig::default().with_aging_rate(-0.1).validate();
    }

    #[test]
    fn zero_aging_rate_is_allowed() {
        ServerConfig::default().with_aging_rate(0.0).validate();
    }

    #[test]
    fn kv_builders_update_the_pool_fields() {
        let config = ServerConfig::default()
            .with_kv_blocks(128)
            .with_block_size(32)
            .with_preempt_policy(PreemptPolicy::LargestKv);
        assert_eq!(config.kv_blocks, 128);
        assert_eq!(config.block_size, 32);
        assert_eq!(config.preempt_policy, PreemptPolicy::LargestKv);
        config.validate();
    }

    #[test]
    #[should_panic(expected = "kv_blocks")]
    fn zero_kv_blocks_fails_validation() {
        ServerConfig::default().with_kv_blocks(0).validate();
    }

    #[test]
    #[should_panic(expected = "block_size")]
    fn zero_block_size_fails_validation() {
        ServerConfig::default().with_block_size(0).validate();
    }

    #[test]
    fn pipeline_builders_update_the_wave_and_lane_fields() {
        let config = ServerConfig::default()
            .with_max_in_flight_waves(4)
            .with_draft_lanes(2);
        assert_eq!(config.max_in_flight_waves, 4);
        assert_eq!(config.draft_lanes, 2);
        config.validate();
    }

    #[test]
    fn the_default_schedule_is_drain_per_tick() {
        let config = ServerConfig::default();
        assert_eq!(config.max_in_flight_waves, 1);
        assert_eq!(config.draft_lanes, 0);
    }

    #[test]
    #[should_panic(expected = "max_in_flight_waves")]
    fn zero_in_flight_waves_fails_validation() {
        ServerConfig::default()
            .with_max_in_flight_waves(0)
            .validate();
    }

    #[test]
    fn unbounded_draft_lanes_are_allowed() {
        ServerConfig::default().with_draft_lanes(0).validate();
    }

    #[test]
    fn router_builder_updates_preserve_other_fields() {
        let config = RouterConfig::default()
            .with_workers(8)
            .with_virtual_nodes(32)
            .with_steal_threshold(2)
            .with_worker_config(ServerConfig::default().with_max_batch(2));
        assert_eq!(config.workers, 8);
        assert_eq!(config.virtual_nodes, 32);
        assert_eq!(config.steal_threshold, 2);
        assert_eq!(config.worker.max_batch, 2);
        config.validate();
    }

    #[test]
    fn the_rpc_backend_flag_defaults_off_and_toggles() {
        assert!(!RouterConfig::default().rpc_backend);
        assert!(RouterConfig::default().with_rpc_backend(true).rpc_backend);
    }

    #[test]
    #[should_panic(expected = "workers")]
    fn zero_workers_fails_validation() {
        RouterConfig::default().with_workers(0).validate();
    }

    #[test]
    #[should_panic(expected = "virtual_nodes")]
    fn zero_virtual_nodes_fails_validation() {
        RouterConfig::default().with_virtual_nodes(0).validate();
    }

    #[test]
    #[should_panic(expected = "steal_threshold")]
    fn zero_steal_threshold_fails_validation() {
        RouterConfig::default().with_steal_threshold(0).validate();
    }

    #[test]
    #[should_panic(expected = "max_batch")]
    fn router_validation_covers_the_worker_config() {
        RouterConfig::default()
            .with_worker_config(ServerConfig::default().with_max_batch(0))
            .validate();
    }

    #[test]
    fn the_default_ordering_is_deadline_blind() {
        let config = ServerConfig::default();
        assert_eq!(config.ordering, AdmissionOrdering::Queue);
        let edf = config.with_ordering(AdmissionOrdering::EarliestDeadlineFirst);
        assert_eq!(edf.ordering, AdmissionOrdering::EarliestDeadlineFirst);
        assert_eq!(
            edf.admission, config.admission,
            "ordering leaves the policy alone"
        );
        edf.validate();
    }

    #[test]
    fn worker_profile_overrides_apply_onto_the_base_config() {
        let base = ServerConfig::default().with_max_batch(8).with_kv_blocks(64);
        let uniform = WorkerProfile::default();
        assert_eq!(uniform.apply(base), base);
        uniform.validate();
        let fast = WorkerProfile::default()
            .with_speed(4.0)
            .with_max_batch(32)
            .with_kv_blocks(512);
        let applied = fast.apply(base);
        assert_eq!(applied.max_batch, 32);
        assert_eq!(applied.kv_blocks, 512);
        assert_eq!(applied.queue_depth, base.queue_depth);
        fast.validate();
    }

    #[test]
    #[should_panic(expected = "speed")]
    fn zero_speed_fails_profile_validation() {
        WorkerProfile::default().with_speed(0.0).validate();
    }

    #[test]
    #[should_panic(expected = "max_batch override")]
    fn zero_batch_override_fails_profile_validation() {
        WorkerProfile::default().with_max_batch(0).validate();
    }
}
