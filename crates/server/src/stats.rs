//! Aggregate serving statistics: throughput, acceptance, latency percentiles,
//! and the device time saved by batching.

use specasr::DecodeStats;
use specasr_metrics::Histogram;

use crate::batch::TickCost;
use crate::request::RequestOutcome;

/// Number of histogram bins used when summarising latency samples.
const LATENCY_BINS: usize = 512;

/// Aggregate statistics of one scheduler's lifetime.
///
/// Populated incrementally by the scheduler; latency percentiles are read
/// through [`specasr_metrics::Histogram`] built over the recorded samples.
#[derive(Debug, Clone, Default)]
pub struct ServerStats {
    completed: usize,
    rejected: usize,
    ticks: usize,
    wall_ms: f64,
    sequential_ms: f64,
    peak_in_flight: usize,
    total_tokens: usize,
    total_audio_seconds: f64,
    decode: DecodeStats,
    e2e_samples: Vec<f64>,
    ttft_samples: Vec<f64>,
    queue_samples: Vec<f64>,
}

impl ServerStats {
    /// Creates empty statistics.
    pub fn new() -> Self {
        ServerStats::default()
    }

    /// Records one scheduler tick over `in_flight` sessions.
    pub(crate) fn record_tick(&mut self, cost: TickCost, in_flight: usize) {
        self.ticks += 1;
        self.wall_ms += cost.wall_ms;
        self.sequential_ms += cost.sequential_ms;
        self.peak_in_flight = self.peak_in_flight.max(in_flight);
    }

    /// Records one completed request.
    pub(crate) fn record_completion(&mut self, outcome: &RequestOutcome) {
        self.completed += 1;
        self.total_tokens += outcome.token_count();
        self.total_audio_seconds += outcome.audio_seconds;
        self.decode.merge(&outcome.outcome.stats);
        self.e2e_samples.push(outcome.latency.e2e_ms());
        self.ttft_samples
            .push(outcome.latency.time_to_first_token_ms);
        self.queue_samples.push(outcome.latency.queue_ms);
    }

    /// Records one rejected submission (queue full).
    pub(crate) fn record_rejection(&mut self) {
        self.rejected += 1;
    }

    /// Merges another worker's statistics into this one, with
    /// parallel-fleet semantics: counters, samples, and device time sum,
    /// while wall time takes the maximum (workers run concurrently, so the
    /// fleet finishes when its slowest worker does) and peak concurrency
    /// adds (each worker contributes its own in-flight sessions).
    ///
    /// [`crate::Router::fleet_stats`] folds every worker's statistics
    /// through this to report fleet-wide throughput and latency percentiles.
    pub fn merge(&mut self, other: &ServerStats) {
        self.completed += other.completed;
        self.rejected += other.rejected;
        self.ticks += other.ticks;
        self.wall_ms = self.wall_ms.max(other.wall_ms);
        self.sequential_ms += other.sequential_ms;
        self.peak_in_flight += other.peak_in_flight;
        self.total_tokens += other.total_tokens;
        self.total_audio_seconds += other.total_audio_seconds;
        self.decode.merge(&other.decode);
        self.e2e_samples.extend_from_slice(&other.e2e_samples);
        self.ttft_samples.extend_from_slice(&other.ttft_samples);
        self.queue_samples.extend_from_slice(&other.queue_samples);
    }

    /// Number of completed requests.
    pub fn completed(&self) -> usize {
        self.completed
    }

    /// Number of submissions rejected for backpressure.
    pub fn rejected(&self) -> usize {
        self.rejected
    }

    /// Number of scheduler iterations executed.
    pub fn ticks(&self) -> usize {
        self.ticks
    }

    /// Total simulated wall-clock milliseconds the scheduler ran for.
    pub fn wall_ms(&self) -> f64 {
        self.wall_ms
    }

    /// Largest number of sessions that were in flight simultaneously.
    pub fn peak_in_flight(&self) -> usize {
        self.peak_in_flight
    }

    /// Total transcript tokens produced by completed requests.
    pub fn total_tokens(&self) -> usize {
        self.total_tokens
    }

    /// Total audio seconds transcribed by completed requests.
    pub fn total_audio_seconds(&self) -> f64 {
        self.total_audio_seconds
    }

    /// Pooled decode statistics across completed requests.
    pub fn decode_stats(&self) -> &DecodeStats {
        &self.decode
    }

    /// Completed utterances per simulated wall-clock second.
    pub fn utterances_per_second(&self) -> f64 {
        per_second(self.completed as f64, self.wall_ms)
    }

    /// Transcript tokens per simulated wall-clock second.
    pub fn tokens_per_second(&self) -> f64 {
        per_second(self.total_tokens as f64, self.wall_ms)
    }

    /// Mean draft-token acceptance ratio across completed requests.
    pub fn mean_acceptance(&self) -> f64 {
        self.decode.acceptance_ratio()
    }

    /// Device time saved by batching: sequential-equivalent milliseconds
    /// divided by the batched wall milliseconds (1.0 = no benefit).
    pub fn batching_speedup(&self) -> f64 {
        if self.wall_ms <= 0.0 {
            return 1.0;
        }
        self.sequential_ms / self.wall_ms
    }

    /// Histogram of end-to-end request latency (ms).
    pub fn e2e_histogram(&self) -> Histogram {
        Histogram::of_samples(LATENCY_BINS, &self.e2e_samples)
    }

    /// Histogram of time-to-first-token latency (ms).
    pub fn ttft_histogram(&self) -> Histogram {
        Histogram::of_samples(LATENCY_BINS, &self.ttft_samples)
    }

    /// Histogram of queueing latency (ms).
    pub fn queue_histogram(&self) -> Histogram {
        Histogram::of_samples(LATENCY_BINS, &self.queue_samples)
    }

    /// P50 of end-to-end latency in milliseconds.
    pub fn e2e_p50_ms(&self) -> f64 {
        self.e2e_histogram().percentile(0.50)
    }

    /// P99 of end-to-end latency in milliseconds.
    pub fn e2e_p99_ms(&self) -> f64 {
        self.e2e_histogram().percentile(0.99)
    }

    /// P50 of time-to-first-token latency in milliseconds.
    pub fn ttft_p50_ms(&self) -> f64 {
        self.ttft_histogram().percentile(0.50)
    }

    /// P99 of time-to-first-token latency in milliseconds.
    pub fn ttft_p99_ms(&self) -> f64 {
        self.ttft_histogram().percentile(0.99)
    }
}

fn per_second(count: f64, wall_ms: f64) -> f64 {
    if wall_ms <= 0.0 {
        0.0
    } else {
        count / (wall_ms / 1000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_report_zeroes() {
        let stats = ServerStats::new();
        assert_eq!(stats.completed(), 0);
        assert_eq!(stats.utterances_per_second(), 0.0);
        assert_eq!(stats.tokens_per_second(), 0.0);
        assert_eq!(stats.batching_speedup(), 1.0);
        assert_eq!(stats.e2e_p50_ms(), 0.0);
    }

    #[test]
    fn tick_recording_accumulates_wall_time_and_peaks() {
        let mut stats = ServerStats::new();
        stats.record_tick(
            TickCost {
                wall_ms: 10.0,
                sequential_ms: 25.0,
            },
            3,
        );
        stats.record_tick(
            TickCost {
                wall_ms: 5.0,
                sequential_ms: 5.0,
            },
            1,
        );
        assert_eq!(stats.ticks(), 2);
        assert!((stats.wall_ms() - 15.0).abs() < 1e-12);
        assert_eq!(stats.peak_in_flight(), 3);
        assert!((stats.batching_speedup() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn merge_uses_parallel_fleet_semantics() {
        let mut a = ServerStats::new();
        a.record_tick(
            TickCost {
                wall_ms: 100.0,
                sequential_ms: 150.0,
            },
            2,
        );
        a.record_rejection();
        a.e2e_samples.extend([10.0, 20.0]);
        a.completed = 2;
        let mut b = ServerStats::new();
        b.record_tick(
            TickCost {
                wall_ms: 40.0,
                sequential_ms: 40.0,
            },
            3,
        );
        b.e2e_samples.push(500.0);
        b.completed = 1;

        a.merge(&b);
        assert_eq!(a.completed(), 3);
        assert_eq!(a.rejected(), 1);
        assert_eq!(a.ticks(), 2);
        // Wall time is the slowest worker's, not the sum.
        assert!((a.wall_ms() - 100.0).abs() < 1e-12);
        assert!((a.sequential_ms - 190.0).abs() < 1e-12);
        // Fleet concurrency adds across workers.
        assert_eq!(a.peak_in_flight(), 5);
        assert_eq!(a.e2e_histogram().count(), 3);
        assert!(a.e2e_p99_ms() > 400.0);
    }
}
