//! Aggregate serving statistics: throughput, acceptance, latency percentiles,
//! and the device time saved by batching.

use std::collections::BTreeMap;

use specasr::DecodeStats;
use specasr_metrics::Histogram;
use specasr_models::BackendCounters;
use specasr_trace::MetricsRegistry;

use crate::batch::TickCost;
use crate::request::{RequestOutcome, SloClass};

/// Number of histogram bins used when summarising latency samples.
const LATENCY_BINS: usize = 512;

/// Paged KV-pool memory statistics of one scheduler (or, after
/// [`ServerStats::merge`], of a fleet).
///
/// The peak is the pool allocator's exact high-water mark (every block that
/// was ever simultaneously live counts, including blocks a rollback or a
/// finishing session released within the same tick); the average is sampled
/// once per tick after retirement, so it describes steady-state residency
/// between ticks.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MemoryStats {
    kv_capacity_blocks: usize,
    peak_kv_blocks: usize,
    occupancy_block_ticks: f64,
    occupancy_ticks: usize,
    preemptions: usize,
    prefix_lookups: usize,
    prefix_hits: usize,
    cow_copies: usize,
}

impl MemoryStats {
    /// Total KV-block budget (draft + target sub-pools; summed across
    /// workers after a merge — each worker owns its own pool).
    pub fn kv_capacity_blocks(&self) -> usize {
        self.kv_capacity_blocks
    }

    /// Largest sampled block occupancy (summed across workers after a
    /// merge: workers run concurrently, so their peaks coexist).
    pub fn peak_kv_blocks(&self) -> usize {
        self.peak_kv_blocks
    }

    /// Mean sampled block occupancy per tick.
    pub fn avg_kv_blocks(&self) -> f64 {
        if self.occupancy_ticks == 0 {
            return 0.0;
        }
        self.occupancy_block_ticks / self.occupancy_ticks as f64
    }

    /// Peak occupancy as a fraction of capacity (0.0 when unconstrained
    /// pools never reported a capacity).
    pub fn peak_utilization(&self) -> f64 {
        if self.kv_capacity_blocks == 0 {
            return 0.0;
        }
        self.peak_kv_blocks as f64 / self.kv_capacity_blocks as f64
    }

    /// Sessions evicted mid-decode to free pool blocks.
    pub fn preemptions(&self) -> usize {
        self.preemptions
    }

    /// Prefill blocks requested under a prefix key (sharing opportunities).
    pub fn prefix_lookups(&self) -> usize {
        self.prefix_lookups
    }

    /// Prefill blocks served by re-using a resident shared block.
    pub fn prefix_hits(&self) -> usize {
        self.prefix_hits
    }

    /// Fraction of keyed prefill blocks served from resident shared blocks.
    pub fn shared_prefix_hit_rate(&self) -> f64 {
        if self.prefix_lookups == 0 {
            return 0.0;
        }
        self.prefix_hits as f64 / self.prefix_lookups as f64
    }

    /// Copy-on-write block copies performed.
    pub fn cow_copies(&self) -> usize {
        self.cow_copies
    }

    /// Publishes the memory gauges and counters into `registry` under the
    /// `specasr_kv_*` namespace of the Prometheus-style exposition.
    pub fn publish_metrics(&self, registry: &mut MetricsRegistry) {
        registry.set_gauge(
            "specasr_kv_capacity_blocks",
            "Total KV-block budget across sub-pools.",
            &[],
            self.kv_capacity_blocks as f64,
        );
        registry.set_gauge(
            "specasr_kv_peak_blocks",
            "High-water mark of simultaneously live KV blocks.",
            &[],
            self.peak_kv_blocks as f64,
        );
        registry.set_gauge(
            "specasr_kv_avg_blocks",
            "Mean sampled KV-block occupancy per tick.",
            &[],
            self.avg_kv_blocks(),
        );
        registry.set_counter(
            "specasr_kv_preemptions_total",
            "Sessions evicted mid-decode to free pool blocks.",
            &[],
            self.preemptions as f64,
        );
        registry.set_counter(
            "specasr_kv_prefix_lookups_total",
            "Prefill blocks requested under a prefix key.",
            &[],
            self.prefix_lookups as f64,
        );
        registry.set_counter(
            "specasr_kv_prefix_hits_total",
            "Prefill blocks served from resident shared blocks.",
            &[],
            self.prefix_hits as f64,
        );
        registry.set_counter(
            "specasr_kv_cow_copies_total",
            "Copy-on-write block copies performed.",
            &[],
            self.cow_copies as f64,
        );
    }

    /// Folds another worker's memory statistics in (parallel-fleet
    /// semantics: everything sums — each worker owns an independent pool).
    fn merge(&mut self, other: &MemoryStats) {
        self.kv_capacity_blocks += other.kv_capacity_blocks;
        self.peak_kv_blocks += other.peak_kv_blocks;
        self.occupancy_block_ticks += other.occupancy_block_ticks;
        self.occupancy_ticks += other.occupancy_ticks;
        self.preemptions += other.preemptions;
        self.prefix_lookups += other.prefix_lookups;
        self.prefix_hits += other.prefix_hits;
        self.cow_copies += other.cow_copies;
    }
}

/// Decoder-backend statistics of one scheduler (or, after
/// [`ServerStats::merge`], of a fleet): how the scheduler's
/// [`specasr_models::AsrBackend`] was driven.
///
/// Verification is where cross-session batching lives, so the occupancy
/// gauge is computed over verify batches only — per-session draft chains
/// are inherently serial single-token requests and would wash the signal
/// out.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BackendStats {
    /// Summed counters of the draft and target backends, with
    /// `peak_in_flight` normalised to the target backend's depth (the draft
    /// adapter has no shared device timeline, so its "peak" is just the
    /// number of steps stamped at the same instant — not a depth signal).
    counters: BackendCounters,
}

impl BackendStats {
    /// Builds the gauge snapshot from the scheduler's two backend counters.
    pub(crate) fn from_counters(draft: &BackendCounters, target: &BackendCounters) -> Self {
        let mut counters = *draft;
        counters.absorb(target);
        // The verify backend owns the shared device timeline; its peak is
        // the meaningful concurrent-request depth.
        counters.peak_in_flight = target.peak_in_flight;
        BackendStats { counters }
    }

    /// Batches submitted across both backends.
    pub fn batches(&self) -> usize {
        self.counters.batches
    }

    /// Requests submitted across both backends.
    pub fn requests(&self) -> usize {
        self.counters.requests
    }

    /// Single-token draft-step requests submitted.
    pub fn draft_requests(&self) -> usize {
        self.counters.draft_requests
    }

    /// Verification requests submitted.
    pub fn verify_requests(&self) -> usize {
        self.counters.verify_requests
    }

    /// Cross-session verification batches submitted.
    pub fn verify_batches(&self) -> usize {
        self.counters.verify_batches
    }

    /// Mean verification requests per verification batch — the
    /// cross-session batching gauge (1.0 means every session verified
    /// alone; 0.0 before anything verified).  Delegates to
    /// [`BackendCounters::verify_batch_occupancy`], the single definition of
    /// the gauge.
    pub fn verify_batch_occupancy(&self) -> f64 {
        self.counters.verify_batch_occupancy()
    }

    /// Largest number of verification requests that were in flight on the
    /// target backend simultaneously (early waves executing while straggler
    /// draft phases still run push this above the batch size of a single
    /// wave).
    pub fn peak_in_flight(&self) -> usize {
        self.counters.peak_in_flight
    }

    /// Modeled milliseconds the device timelines spent executing batches.
    pub fn device_busy_ms(&self) -> f64 {
        self.counters.device_busy_ms
    }

    /// Modeled milliseconds the device timelines sat idle between
    /// consecutive spans — the gap pipelined scheduling exists to close.
    pub fn device_idle_ms(&self) -> f64 {
        self.counters.device_idle_ms
    }

    /// Publishes the backend counters and gauges into `registry` under the
    /// `specasr_backend_*` namespace of the Prometheus-style exposition.
    pub fn publish_metrics(&self, registry: &mut MetricsRegistry) {
        registry.set_counter(
            "specasr_backend_batches_total",
            "Batches submitted across draft and target backends.",
            &[],
            self.batches() as f64,
        );
        registry.set_counter(
            "specasr_backend_requests_total",
            "Forward requests submitted across both backends.",
            &[],
            self.requests() as f64,
        );
        registry.set_counter(
            "specasr_backend_draft_requests_total",
            "Single-token draft-step requests submitted.",
            &[],
            self.draft_requests() as f64,
        );
        registry.set_counter(
            "specasr_backend_verify_requests_total",
            "Verification requests submitted.",
            &[],
            self.verify_requests() as f64,
        );
        registry.set_counter(
            "specasr_backend_verify_batches_total",
            "Cross-session verification batches submitted.",
            &[],
            self.verify_batches() as f64,
        );
        registry.set_gauge(
            "specasr_backend_verify_batch_occupancy",
            "Mean verification requests per verification batch.",
            &[],
            self.verify_batch_occupancy(),
        );
        registry.set_gauge(
            "specasr_backend_peak_in_flight",
            "Peak simultaneous verification requests on the target backend.",
            &[],
            self.peak_in_flight() as f64,
        );
        registry.set_counter(
            "specasr_backend_device_busy_ms_total",
            "Modeled milliseconds the device timelines spent executing batches.",
            &[],
            self.device_busy_ms(),
        );
        registry.set_counter(
            "specasr_backend_device_idle_ms_total",
            "Modeled milliseconds the device timelines sat idle between spans.",
            &[],
            self.device_idle_ms(),
        );
    }

    /// Folds another worker's backend statistics in (parallel-fleet
    /// semantics: counters sum; workers run concurrently, so their in-flight
    /// peaks coexist and sum too).
    fn merge(&mut self, other: &BackendStats) {
        self.counters.absorb(&other.counters);
    }
}

/// Speculation-efficiency counters of one `(policy, drafter)` group: how
/// many draft tokens the group proposed, how many survived verification, and
/// how the group's share of target-device time splits between useful work
/// and waste.
///
/// The aggregate [`ServerStats::mean_acceptance`] averages over *everything*
/// the server ran; this split answers the per-configuration question — which
/// policy × drafter combination wastes device time on rejected drafts — and
/// is the serving-side mirror of the flight-recorder ledger
/// (`specasr_trace::analysis`), computed from the same per-wave
/// service-time shares.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SpeculationGroupStats {
    rounds: usize,
    drafted_tokens: usize,
    accepted_tokens: usize,
    charged_tokens: usize,
    accepted_work_ms: f64,
    probe_overhead_ms: f64,
    rejected_draft_ms: f64,
}

impl SpeculationGroupStats {
    /// Verify rounds the group committed.
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// Draft tokens the group proposed.
    pub fn drafted_tokens(&self) -> usize {
        self.drafted_tokens
    }

    /// Draft tokens the target accepted.
    pub fn accepted_tokens(&self) -> usize {
        self.accepted_tokens
    }

    /// Token width the group was billed on the device.
    pub fn charged_tokens(&self) -> usize {
        self.charged_tokens
    }

    /// Acceptance ratio (accepted / drafted; 0.0 before anything drafted).
    pub fn acceptance(&self) -> f64 {
        if self.drafted_tokens == 0 {
            0.0
        } else {
            self.accepted_tokens as f64 / self.drafted_tokens as f64
        }
    }

    /// Device milliseconds spent producing accepted tokens.
    pub fn accepted_work_ms(&self) -> f64 {
        self.accepted_work_ms
    }

    /// Device milliseconds spent on probe/bonus positions beyond the drafts.
    pub fn probe_overhead_ms(&self) -> f64 {
        self.probe_overhead_ms
    }

    /// Device milliseconds wasted on rejected draft tokens.
    pub fn rejected_draft_ms(&self) -> f64 {
        self.rejected_draft_ms
    }

    /// Wasted device milliseconds per rejected draft token.
    pub fn wasted_ms_per_rejected_token(&self) -> f64 {
        let rejected = self.drafted_tokens.saturating_sub(self.accepted_tokens);
        if rejected == 0 {
            0.0
        } else {
            self.rejected_draft_ms / rejected as f64
        }
    }

    fn merge(&mut self, other: &SpeculationGroupStats) {
        self.rounds += other.rounds;
        self.drafted_tokens += other.drafted_tokens;
        self.accepted_tokens += other.accepted_tokens;
        self.charged_tokens += other.charged_tokens;
        self.accepted_work_ms += other.accepted_work_ms;
        self.probe_overhead_ms += other.probe_overhead_ms;
        self.rejected_draft_ms += other.rejected_draft_ms;
    }
}

/// Latency statistics of one SLO class (see [`SloClass`]): completions,
/// deadline shedding, and the class's own latency histograms, merged
/// fleet-wide like every other gauge.
#[derive(Debug, Clone, Default)]
pub struct SloClassStats {
    completed: usize,
    rejected_deadline: usize,
    e2e_samples: Vec<f64>,
    ttft_samples: Vec<f64>,
}

impl SloClassStats {
    /// Completed requests of this class.
    pub fn completed(&self) -> usize {
        self.completed
    }

    /// Requests of this class shed because their queue wait exceeded their
    /// time-to-first-token budget.
    pub fn rejected_deadline(&self) -> usize {
        self.rejected_deadline
    }

    /// Histogram of this class's end-to-end latency (ms).
    pub fn e2e_histogram(&self) -> Histogram {
        Histogram::of_samples(LATENCY_BINS, &self.e2e_samples)
    }

    /// Histogram of this class's time-to-first-token latency (ms).
    pub fn ttft_histogram(&self) -> Histogram {
        Histogram::of_samples(LATENCY_BINS, &self.ttft_samples)
    }

    /// P50 of this class's end-to-end latency in milliseconds.
    pub fn e2e_p50_ms(&self) -> f64 {
        self.e2e_histogram().percentile(0.50)
    }

    /// P99 of this class's end-to-end latency in milliseconds.
    pub fn e2e_p99_ms(&self) -> f64 {
        self.e2e_histogram().percentile(0.99)
    }

    /// P99 of this class's time-to-first-token latency in milliseconds.
    pub fn ttft_p99_ms(&self) -> f64 {
        self.ttft_histogram().percentile(0.99)
    }

    fn merge(&mut self, other: &SloClassStats) {
        self.completed += other.completed;
        self.rejected_deadline += other.rejected_deadline;
        self.e2e_samples.extend_from_slice(&other.e2e_samples);
        self.ttft_samples.extend_from_slice(&other.ttft_samples);
    }
}

/// Aggregate statistics of one scheduler's lifetime.
///
/// Populated incrementally by the scheduler; latency percentiles are read
/// through [`specasr_metrics::Histogram`] built over the recorded samples.
#[derive(Debug, Clone, Default)]
pub struct ServerStats {
    completed: usize,
    rejected: usize,
    rejected_memory: usize,
    rejected_deadline: usize,
    streaming_completed: usize,
    partials_emitted: usize,
    retracted_tokens: usize,
    shown_hypothesis_tokens: usize,
    migrated_in_handoff: usize,
    migrated_in_restore: usize,
    memory: MemoryStats,
    backend: BackendStats,
    slo: [SloClassStats; 4],
    ticks: usize,
    wall_ms: f64,
    sequential_ms: f64,
    peak_in_flight: usize,
    total_tokens: usize,
    total_audio_seconds: f64,
    decode: DecodeStats,
    speculation: BTreeMap<(String, String), SpeculationGroupStats>,
    e2e_samples: Vec<f64>,
    ttft_samples: Vec<f64>,
    queue_samples: Vec<f64>,
    first_partial_samples: Vec<f64>,
    partial_span_samples: Vec<f64>,
}

impl ServerStats {
    /// Creates empty statistics.
    pub fn new() -> Self {
        ServerStats::default()
    }

    /// Records one scheduler tick over `in_flight` sessions.
    pub(crate) fn record_tick(&mut self, cost: TickCost, in_flight: usize) {
        self.ticks += 1;
        self.wall_ms += cost.wall_ms;
        self.sequential_ms += cost.sequential_ms;
        self.peak_in_flight = self.peak_in_flight.max(in_flight);
    }

    /// Records one completed request (offline or streaming; streaming
    /// requests additionally feed the partial-latency and stability gauges).
    pub(crate) fn record_completion(&mut self, outcome: &RequestOutcome) {
        self.completed += 1;
        self.total_tokens += outcome.token_count();
        self.total_audio_seconds += outcome.audio_seconds;
        self.decode.merge(&outcome.outcome.stats);
        self.e2e_samples.push(outcome.latency.e2e_ms());
        self.ttft_samples
            .push(outcome.latency.time_to_first_token_ms);
        self.queue_samples.push(outcome.latency.queue_ms);
        let slo = &mut self.slo[outcome.slo.index()];
        slo.completed += 1;
        slo.e2e_samples.push(outcome.latency.e2e_ms());
        slo.ttft_samples
            .push(outcome.latency.time_to_first_token_ms);
        if outcome.is_streaming() {
            self.streaming_completed += 1;
            // Streaming TTFT *is* the first-partial latency from arrival.
            self.first_partial_samples
                .push(outcome.latency.time_to_first_token_ms);
            for partial in &outcome.partials {
                self.partials_emitted += 1;
                self.partial_span_samples.push(partial.span_ms());
                self.retracted_tokens += partial.retracted_tokens;
                self.shown_hypothesis_tokens +=
                    partial.hypothesis_tokens - partial.committed_tokens;
            }
        }
    }

    /// Records one committed verify round against its `(policy, drafter)`
    /// group.  `per_token_ms` is the round's wave service time divided by
    /// the wave's billed width — the same device-time share the trace
    /// ledger charges, so serving stats and trace analysis agree.
    pub(crate) fn record_verify_outcome(
        &mut self,
        policy: &str,
        drafter: &str,
        drafted: usize,
        accepted: usize,
        charged: usize,
        per_token_ms: f64,
    ) {
        let group = self
            .speculation
            .entry((policy.to_string(), drafter.to_string()))
            .or_default();
        group.rounds += 1;
        group.drafted_tokens += drafted;
        group.accepted_tokens += accepted;
        group.charged_tokens += charged;
        group.accepted_work_ms += per_token_ms * accepted as f64;
        group.probe_overhead_ms += per_token_ms * charged.saturating_sub(drafted) as f64;
        group.rejected_draft_ms += per_token_ms * drafted.saturating_sub(accepted) as f64;
    }

    /// Records one rejected submission (queue full).
    pub(crate) fn record_rejection(&mut self) {
        self.rejected += 1;
    }

    /// Records one request dropped because it can never fit the KV pool.
    pub(crate) fn record_memory_rejection(&mut self) {
        self.rejected_memory += 1;
    }

    /// Records one request shed because its queue wait already exceeded its
    /// time-to-first-token budget, against its SLO class.
    pub(crate) fn record_deadline_rejection(&mut self, class: SloClass) {
        self.rejected_deadline += 1;
        self.slo[class.index()].rejected_deadline += 1;
    }

    /// Records one preemption (a session evicted to free pool blocks).
    pub(crate) fn record_preemption(&mut self) {
        self.memory.preemptions += 1;
    }

    /// Records one session migrated *into* this worker by a fleet drain —
    /// via the same-machine block-table hand-off (`handoff`) or the
    /// preempt/restore slow path.  Counted on the destination only, so
    /// fleet-merged totals count each migration exactly once.
    pub(crate) fn record_migration(&mut self, handoff: bool) {
        if handoff {
            self.migrated_in_handoff += 1;
        } else {
            self.migrated_in_restore += 1;
        }
    }

    /// Records this tick's sampled pool occupancy (for the average gauge).
    pub(crate) fn record_kv_occupancy(&mut self, used_blocks: usize) {
        self.memory.occupancy_block_ticks += used_blocks as f64;
        self.memory.occupancy_ticks += 1;
    }

    /// Registers the pool's block budget (at scheduler construction).
    pub(crate) fn set_kv_capacity(&mut self, capacity_blocks: usize) {
        self.memory.kv_capacity_blocks = capacity_blocks;
    }

    /// Overwrites the monotonic pool gauges from the pool's own accounting
    /// (called at tick boundaries; the allocator is the source of truth for
    /// this worker's peak and sharing counters).
    pub(crate) fn sync_pool_gauges(
        &mut self,
        peak_used: usize,
        lookups: usize,
        hits: usize,
        cow: usize,
    ) {
        self.memory.peak_kv_blocks = peak_used;
        self.memory.prefix_lookups = lookups;
        self.memory.prefix_hits = hits;
        self.memory.cow_copies = cow;
    }

    /// Overwrites the backend gauges from the backends' own cumulative
    /// counters (called at tick boundaries; the backends are the source of
    /// truth for this worker's submission accounting).
    pub(crate) fn sync_backend_gauges(
        &mut self,
        draft: &BackendCounters,
        target: &BackendCounters,
    ) {
        self.backend = BackendStats::from_counters(draft, target);
    }

    /// Merges another worker's statistics into this one, with
    /// parallel-fleet semantics: counters, samples, and device time sum,
    /// while wall time takes the maximum (workers run concurrently, so the
    /// fleet finishes when its slowest worker does) and peak concurrency
    /// adds (each worker contributes its own in-flight sessions).
    ///
    /// [`crate::Router::fleet_stats`] folds every worker's statistics
    /// through this to report fleet-wide throughput and latency percentiles.
    pub fn merge(&mut self, other: &ServerStats) {
        self.completed += other.completed;
        // Rejection reasons merge per class, so fleet stats can tell
        // queue-depth shedding and memory rejections apart.
        self.rejected += other.rejected;
        self.rejected_memory += other.rejected_memory;
        self.rejected_deadline += other.rejected_deadline;
        self.streaming_completed += other.streaming_completed;
        self.partials_emitted += other.partials_emitted;
        self.retracted_tokens += other.retracted_tokens;
        self.shown_hypothesis_tokens += other.shown_hypothesis_tokens;
        self.migrated_in_handoff += other.migrated_in_handoff;
        self.migrated_in_restore += other.migrated_in_restore;
        self.memory.merge(&other.memory);
        self.backend.merge(&other.backend);
        for (class, other_class) in self.slo.iter_mut().zip(&other.slo) {
            class.merge(other_class);
        }
        self.ticks += other.ticks;
        self.wall_ms = self.wall_ms.max(other.wall_ms);
        self.sequential_ms += other.sequential_ms;
        self.peak_in_flight += other.peak_in_flight;
        self.total_tokens += other.total_tokens;
        self.total_audio_seconds += other.total_audio_seconds;
        self.decode.merge(&other.decode);
        for (key, group) in &other.speculation {
            self.speculation
                .entry(key.clone())
                .or_default()
                .merge(group);
        }
        self.e2e_samples.extend_from_slice(&other.e2e_samples);
        self.ttft_samples.extend_from_slice(&other.ttft_samples);
        self.queue_samples.extend_from_slice(&other.queue_samples);
        self.first_partial_samples
            .extend_from_slice(&other.first_partial_samples);
        self.partial_span_samples
            .extend_from_slice(&other.partial_span_samples);
    }

    /// Number of completed requests.
    pub fn completed(&self) -> usize {
        self.completed
    }

    /// Number of submissions rejected for queue-depth backpressure.
    pub fn rejected(&self) -> usize {
        self.rejected
    }

    /// Number of requests dropped because their KV demand can never fit the
    /// pool (distinct from queue shedding, so overload diagnostics can tell
    /// "add workers" from "add memory").
    pub fn rejected_memory(&self) -> usize {
        self.rejected_memory
    }

    /// Number of requests shed because their queue wait already exceeded
    /// their time-to-first-token budget (reported separately so SLO tuning
    /// can tell deadline shedding from capacity shedding).
    pub fn rejected_deadline(&self) -> usize {
        self.rejected_deadline
    }

    /// All rejections, whatever the reason.
    pub fn rejected_total(&self) -> usize {
        self.rejected + self.rejected_memory + self.rejected_deadline
    }

    /// Completed requests that streamed their audio chunk by chunk.
    pub fn streaming_completed(&self) -> usize {
        self.streaming_completed
    }

    /// Partial transcripts emitted across completed streaming requests.
    pub fn partials_emitted(&self) -> usize {
        self.partials_emitted
    }

    /// Uncommitted hypothesis tokens shown across all partials (the
    /// denominator of [`ServerStats::retraction_rate`]).
    pub fn shown_hypothesis_tokens(&self) -> usize {
        self.shown_hypothesis_tokens
    }

    /// Hypothesis tokens retracted between consecutive partials.
    pub fn retracted_tokens(&self) -> usize {
        self.retracted_tokens
    }

    /// Fraction of shown (uncommitted) hypothesis tokens later retracted —
    /// the fleet-wide partial-stability metric (0.0 when nothing streamed).
    pub fn retraction_rate(&self) -> f64 {
        if self.shown_hypothesis_tokens == 0 {
            0.0
        } else {
            self.retracted_tokens as f64 / self.shown_hypothesis_tokens as f64
        }
    }

    /// Sessions migrated into this worker (or, fleet-merged, across the
    /// fleet) via the same-machine block-table hand-off fast path — no
    /// re-prefill, the block tables moved between pools.
    pub fn migrated_in_handoff(&self) -> usize {
        self.migrated_in_handoff
    }

    /// Sessions migrated into this worker (or, fleet-merged, across the
    /// fleet) via the preempt/restore slow path — blocks released at the
    /// source, deterministic re-prefill + re-decode here.
    pub fn migrated_in_restore(&self) -> usize {
        self.migrated_in_restore
    }

    /// All live-migrated sessions, whatever the path.
    pub fn migrations(&self) -> usize {
        self.migrated_in_handoff + self.migrated_in_restore
    }

    /// Paged KV-pool memory statistics.
    pub fn memory(&self) -> &MemoryStats {
        &self.memory
    }

    /// Decoder-backend submission statistics (batch occupancy, in-flight
    /// depth).
    pub fn backend(&self) -> &BackendStats {
        &self.backend
    }

    /// Latency statistics of one SLO class.
    pub fn slo_class(&self, class: SloClass) -> &SloClassStats {
        &self.slo[class.index()]
    }

    /// Number of scheduler iterations executed.
    pub fn ticks(&self) -> usize {
        self.ticks
    }

    /// Total simulated wall-clock milliseconds the scheduler ran for.
    pub fn wall_ms(&self) -> f64 {
        self.wall_ms
    }

    /// Largest number of sessions that were in flight simultaneously.
    pub fn peak_in_flight(&self) -> usize {
        self.peak_in_flight
    }

    /// Total transcript tokens produced by completed requests.
    pub fn total_tokens(&self) -> usize {
        self.total_tokens
    }

    /// Total audio seconds transcribed by completed requests.
    pub fn total_audio_seconds(&self) -> f64 {
        self.total_audio_seconds
    }

    /// Pooled decode statistics across completed requests.
    pub fn decode_stats(&self) -> &DecodeStats {
        &self.decode
    }

    /// Completed utterances per simulated wall-clock second.
    pub fn utterances_per_second(&self) -> f64 {
        per_second(self.completed as f64, self.wall_ms)
    }

    /// Transcript tokens per simulated wall-clock second.
    pub fn tokens_per_second(&self) -> f64 {
        per_second(self.total_tokens as f64, self.wall_ms)
    }

    /// Mean draft-token acceptance ratio across completed requests.
    pub fn mean_acceptance(&self) -> f64 {
        self.decode.acceptance_ratio()
    }

    /// Per `(policy, drafter)` speculation-efficiency groups, label-ordered.
    pub fn speculation_groups(&self) -> &BTreeMap<(String, String), SpeculationGroupStats> {
        &self.speculation
    }

    /// One group's acceptance ratio, if the combination ran.
    pub fn acceptance_for(&self, policy: &str, drafter: &str) -> Option<f64> {
        self.speculation
            .get(&(policy.to_string(), drafter.to_string()))
            .map(SpeculationGroupStats::acceptance)
    }

    /// Total device milliseconds wasted on rejected draft tokens across all
    /// groups — the bench-gated speculation-waste scalar.
    pub fn rejected_draft_device_ms(&self) -> f64 {
        self.speculation
            .values()
            .map(SpeculationGroupStats::rejected_draft_ms)
            .sum()
    }

    /// Device time saved by batching: sequential-equivalent milliseconds
    /// divided by the batched wall milliseconds (1.0 = no benefit).
    pub fn batching_speedup(&self) -> f64 {
        if self.wall_ms <= 0.0 {
            return 1.0;
        }
        self.sequential_ms / self.wall_ms
    }

    /// Histogram of end-to-end request latency (ms).
    pub fn e2e_histogram(&self) -> Histogram {
        Histogram::of_samples(LATENCY_BINS, &self.e2e_samples)
    }

    /// Histogram of time-to-first-token latency (ms).
    pub fn ttft_histogram(&self) -> Histogram {
        Histogram::of_samples(LATENCY_BINS, &self.ttft_samples)
    }

    /// Histogram of queueing latency (ms).
    pub fn queue_histogram(&self) -> Histogram {
        Histogram::of_samples(LATENCY_BINS, &self.queue_samples)
    }

    /// P50 of end-to-end latency in milliseconds.
    pub fn e2e_p50_ms(&self) -> f64 {
        self.e2e_histogram().percentile(0.50)
    }

    /// P99 of end-to-end latency in milliseconds.
    pub fn e2e_p99_ms(&self) -> f64 {
        self.e2e_histogram().percentile(0.99)
    }

    /// P50 of time-to-first-token latency in milliseconds.
    pub fn ttft_p50_ms(&self) -> f64 {
        self.ttft_histogram().percentile(0.50)
    }

    /// P99 of time-to-first-token latency in milliseconds.
    pub fn ttft_p99_ms(&self) -> f64 {
        self.ttft_histogram().percentile(0.99)
    }

    /// Histogram of first-partial latency (request arrival → first partial
    /// emission) across streaming requests.
    pub fn first_partial_histogram(&self) -> Histogram {
        Histogram::of_samples(LATENCY_BINS, &self.first_partial_samples)
    }

    /// Histogram of per-partial latency spans (chunk arrival → partial
    /// emission) across streaming requests.
    pub fn partial_span_histogram(&self) -> Histogram {
        Histogram::of_samples(LATENCY_BINS, &self.partial_span_samples)
    }

    /// P50 of streaming first-partial latency in milliseconds.
    pub fn first_partial_p50_ms(&self) -> f64 {
        self.first_partial_histogram().percentile(0.50)
    }

    /// P99 of streaming first-partial latency in milliseconds.
    pub fn first_partial_p99_ms(&self) -> f64 {
        self.first_partial_histogram().percentile(0.99)
    }

    /// P99 of per-partial latency spans in milliseconds.
    pub fn partial_span_p99_ms(&self) -> f64 {
        self.partial_span_histogram().percentile(0.99)
    }

    /// Publishes every served gauge, counter, and latency histogram into
    /// `registry` in the Prometheus-style exposition namespace
    /// (`specasr_*`).  Includes the [`MemoryStats`] and [`BackendStats`]
    /// families and a per-[`SloClass`] breakdown under a `class` label.
    ///
    /// Publishing the *merged* fleet stats and merging per-worker
    /// registries with [`MetricsRegistry::merge`] land on the same scalars;
    /// histograms published from merged stats re-bin over the pooled
    /// samples and are the exact path.
    pub fn publish_metrics(&self, registry: &mut MetricsRegistry) {
        registry.set_counter(
            "specasr_requests_completed_total",
            "Requests served to completion.",
            &[],
            self.completed as f64,
        );
        registry.set_counter(
            "specasr_requests_rejected_total",
            "Requests shed, by reason.",
            &[("reason", "queue_full")],
            self.rejected as f64,
        );
        registry.set_counter(
            "specasr_requests_rejected_total",
            "Requests shed, by reason.",
            &[("reason", "memory")],
            self.rejected_memory as f64,
        );
        registry.set_counter(
            "specasr_requests_rejected_total",
            "Requests shed, by reason.",
            &[("reason", "deadline")],
            self.rejected_deadline as f64,
        );
        registry.set_counter(
            "specasr_migrations_total",
            "Sessions live-migrated between workers, by path.",
            &[("path", "handoff")],
            self.migrated_in_handoff as f64,
        );
        registry.set_counter(
            "specasr_migrations_total",
            "Sessions live-migrated between workers, by path.",
            &[("path", "restore")],
            self.migrated_in_restore as f64,
        );
        registry.set_counter(
            "specasr_streaming_completed_total",
            "Streaming requests finalised.",
            &[],
            self.streaming_completed as f64,
        );
        registry.set_counter(
            "specasr_partials_emitted_total",
            "Partial transcripts emitted across streaming requests.",
            &[],
            self.partials_emitted as f64,
        );
        registry.set_counter(
            "specasr_hypothesis_tokens_total",
            "Hypothesis tokens shown ahead of commitment.",
            &[],
            self.shown_hypothesis_tokens as f64,
        );
        registry.set_counter(
            "specasr_retracted_tokens_total",
            "Shown hypothesis tokens later retracted.",
            &[],
            self.retracted_tokens as f64,
        );
        registry.set_counter(
            "specasr_ticks_total",
            "Scheduler ticks executed.",
            &[],
            self.ticks as f64,
        );
        registry.set_counter(
            "specasr_tokens_total",
            "Output tokens committed.",
            &[],
            self.total_tokens() as f64,
        );
        registry.set_counter(
            "specasr_audio_seconds_total",
            "Audio seconds served.",
            &[],
            self.total_audio_seconds(),
        );
        registry.set_gauge(
            "specasr_wall_ms",
            "Simulated wall-clock time spent ticking.",
            &[],
            self.wall_ms,
        );
        registry.set_gauge(
            "specasr_peak_in_flight",
            "Peak simultaneously decoding sessions.",
            &[],
            self.peak_in_flight as f64,
        );
        registry.set_gauge(
            "specasr_mean_acceptance",
            "Mean speculative acceptance rate.",
            &[],
            self.mean_acceptance(),
        );
        registry.set_counter(
            "specasr_rejected_draft_device_ms_total",
            "Device milliseconds wasted on rejected draft tokens.",
            &[],
            self.rejected_draft_device_ms(),
        );
        for ((policy, drafter), group) in &self.speculation {
            let labels = [("policy", policy.as_str()), ("drafter", drafter.as_str())];
            registry.set_gauge(
                "specasr_speculation_acceptance",
                "Acceptance ratio per policy and drafter.",
                &labels,
                group.acceptance(),
            );
            registry.set_counter(
                "specasr_speculation_rounds_total",
                "Committed verify rounds per policy and drafter.",
                &labels,
                group.rounds() as f64,
            );
            registry.set_counter(
                "specasr_speculation_drafted_tokens_total",
                "Draft tokens proposed per policy and drafter.",
                &labels,
                group.drafted_tokens() as f64,
            );
            registry.set_counter(
                "specasr_speculation_accepted_tokens_total",
                "Draft tokens accepted per policy and drafter.",
                &labels,
                group.accepted_tokens() as f64,
            );
            registry.set_counter(
                "specasr_speculation_rejected_draft_ms_total",
                "Device ms wasted on rejected drafts per policy and drafter.",
                &labels,
                group.rejected_draft_ms(),
            );
        }
        registry.set_gauge(
            "specasr_batching_speedup",
            "Sequential device time divided by batched wall time.",
            &[],
            self.batching_speedup(),
        );
        registry.set_histogram(
            "specasr_e2e_latency_ms",
            "End-to-end request latency in milliseconds.",
            &[],
            self.e2e_histogram(),
        );
        registry.set_histogram(
            "specasr_ttft_latency_ms",
            "Time-to-first-token latency in milliseconds.",
            &[],
            self.ttft_histogram(),
        );
        registry.set_histogram(
            "specasr_queue_latency_ms",
            "Admission-queue wait in milliseconds.",
            &[],
            self.queue_histogram(),
        );
        registry.set_histogram(
            "specasr_first_partial_latency_ms",
            "Streaming arrival-to-first-partial latency in milliseconds.",
            &[],
            self.first_partial_histogram(),
        );
        registry.set_histogram(
            "specasr_partial_span_latency_ms",
            "Streaming chunk-arrival-to-partial latency in milliseconds.",
            &[],
            self.partial_span_histogram(),
        );
        for class in SloClass::ALL {
            let stats = self.slo_class(class);
            let labels = [("class", class.name())];
            registry.set_counter(
                "specasr_slo_completed_total",
                "Completed requests per SLO class.",
                &labels,
                stats.completed() as f64,
            );
            registry.set_counter(
                "specasr_slo_rejected_deadline_total",
                "Deadline-shed requests per SLO class.",
                &labels,
                stats.rejected_deadline() as f64,
            );
            registry.set_histogram(
                "specasr_slo_e2e_latency_ms",
                "End-to-end latency per SLO class in milliseconds.",
                &labels,
                stats.e2e_histogram(),
            );
        }
        self.memory.publish_metrics(registry);
        self.backend.publish_metrics(registry);
    }

    /// Renders this worker's metrics as a Prometheus-style text snapshot —
    /// [`Self::publish_metrics`] into a fresh registry, then
    /// [`MetricsRegistry::render`].
    pub fn metrics_text(&self) -> String {
        let mut registry = MetricsRegistry::new();
        self.publish_metrics(&mut registry);
        registry.render()
    }
}

fn per_second(count: f64, wall_ms: f64) -> f64 {
    if wall_ms <= 0.0 {
        0.0
    } else {
        count / (wall_ms / 1000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_report_zeroes() {
        let stats = ServerStats::new();
        assert_eq!(stats.completed(), 0);
        assert_eq!(stats.utterances_per_second(), 0.0);
        assert_eq!(stats.tokens_per_second(), 0.0);
        assert_eq!(stats.batching_speedup(), 1.0);
        assert_eq!(stats.e2e_p50_ms(), 0.0);
    }

    #[test]
    fn tick_recording_accumulates_wall_time_and_peaks() {
        let mut stats = ServerStats::new();
        stats.record_tick(
            TickCost {
                wall_ms: 10.0,
                sequential_ms: 25.0,
            },
            3,
        );
        stats.record_tick(
            TickCost {
                wall_ms: 5.0,
                sequential_ms: 5.0,
            },
            1,
        );
        assert_eq!(stats.ticks(), 2);
        assert!((stats.wall_ms() - 15.0).abs() < 1e-12);
        assert_eq!(stats.peak_in_flight(), 3);
        assert!((stats.batching_speedup() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn merge_uses_parallel_fleet_semantics() {
        let mut a = ServerStats::new();
        a.record_tick(
            TickCost {
                wall_ms: 100.0,
                sequential_ms: 150.0,
            },
            2,
        );
        a.record_rejection();
        a.e2e_samples.extend([10.0, 20.0]);
        a.completed = 2;
        let mut b = ServerStats::new();
        b.record_tick(
            TickCost {
                wall_ms: 40.0,
                sequential_ms: 40.0,
            },
            3,
        );
        b.e2e_samples.push(500.0);
        b.completed = 1;

        a.merge(&b);
        assert_eq!(a.completed(), 3);
        assert_eq!(a.rejected(), 1);
        assert_eq!(a.ticks(), 2);
        assert_eq!(a.rejected_memory(), 0);
        // Wall time is the slowest worker's, not the sum.
        assert!((a.wall_ms() - 100.0).abs() < 1e-12);
        assert!((a.sequential_ms - 190.0).abs() < 1e-12);
        // Fleet concurrency adds across workers.
        assert_eq!(a.peak_in_flight(), 5);
        assert_eq!(a.e2e_histogram().count(), 3);
        assert!(a.e2e_p99_ms() > 400.0);
    }

    #[test]
    fn rejection_reasons_merge_per_class() {
        let mut a = ServerStats::new();
        a.record_rejection();
        a.record_rejection();
        a.record_memory_rejection();
        let mut b = ServerStats::new();
        b.record_rejection();
        b.record_memory_rejection();
        b.record_memory_rejection();
        a.merge(&b);
        assert_eq!(a.rejected(), 3);
        assert_eq!(a.rejected_memory(), 3);
        assert_eq!(a.rejected_total(), 6);
    }

    #[test]
    fn memory_stats_merge_with_parallel_fleet_semantics() {
        let mut a = ServerStats::new();
        a.set_kv_capacity(100);
        a.record_kv_occupancy(40);
        a.record_kv_occupancy(60);
        a.record_preemption();
        a.sync_pool_gauges(60, 10, 5, 1);
        let mut b = ServerStats::new();
        b.set_kv_capacity(100);
        b.record_kv_occupancy(20);
        b.record_preemption();
        b.record_preemption();
        b.sync_pool_gauges(20, 6, 3, 0);

        a.merge(&b);
        let memory = a.memory();
        assert_eq!(memory.kv_capacity_blocks(), 200);
        // Workers run concurrently: their peaks coexist, so peaks sum.
        assert_eq!(memory.peak_kv_blocks(), 80);
        assert!((memory.avg_kv_blocks() - 40.0).abs() < 1e-12);
        assert!((memory.peak_utilization() - 0.4).abs() < 1e-12);
        assert_eq!(memory.preemptions(), 3);
        assert_eq!(memory.prefix_lookups(), 16);
        assert_eq!(memory.prefix_hits(), 8);
        assert!((memory.shared_prefix_hit_rate() - 0.5).abs() < 1e-12);
        assert_eq!(memory.cow_copies(), 1);
    }

    #[test]
    fn empty_memory_stats_report_zero_rates() {
        let stats = ServerStats::new();
        assert_eq!(stats.memory().avg_kv_blocks(), 0.0);
        assert_eq!(stats.memory().shared_prefix_hit_rate(), 0.0);
        assert_eq!(stats.memory().peak_utilization(), 0.0);
    }

    #[test]
    fn backend_stats_merge_with_parallel_fleet_semantics() {
        use specasr_models::BackendCounters;
        let mut a = ServerStats::new();
        a.sync_backend_gauges(
            &BackendCounters {
                batches: 10,
                requests: 10,
                draft_requests: 10,
                ..BackendCounters::default()
            },
            &BackendCounters {
                batches: 4,
                requests: 12,
                verify_requests: 12,
                verify_batches: 4,
                peak_in_flight: 8,
                ..BackendCounters::default()
            },
        );
        let mut b = ServerStats::new();
        b.sync_backend_gauges(
            &BackendCounters::default(),
            &BackendCounters {
                batches: 2,
                requests: 4,
                verify_requests: 4,
                verify_batches: 2,
                peak_in_flight: 3,
                ..BackendCounters::default()
            },
        );
        assert!((a.backend().verify_batch_occupancy() - 3.0).abs() < 1e-12);
        a.merge(&b);
        let backend = a.backend();
        assert_eq!(backend.batches(), 16);
        assert_eq!(backend.requests(), 26);
        assert_eq!(backend.draft_requests(), 10);
        assert_eq!(backend.verify_requests(), 16);
        assert_eq!(backend.verify_batches(), 6);
        // Workers run concurrently: their in-flight peaks coexist and sum.
        assert_eq!(backend.peak_in_flight(), 11);
        assert!((backend.verify_batch_occupancy() - 16.0 / 6.0).abs() < 1e-12);
        // An idle fleet reports zero occupancy, not NaN.
        assert_eq!(ServerStats::new().backend().verify_batch_occupancy(), 0.0);
    }

    #[test]
    fn slo_class_stats_merge_per_class() {
        use crate::request::SloClass;
        let mut a = ServerStats::new();
        a.slo[SloClass::Interactive.index()].completed = 2;
        a.slo[SloClass::Interactive.index()]
            .e2e_samples
            .extend([10.0, 20.0]);
        a.record_deadline_rejection(SloClass::Interactive);
        let mut b = ServerStats::new();
        b.slo[SloClass::Interactive.index()].completed = 1;
        b.slo[SloClass::Interactive.index()].e2e_samples.push(400.0);
        b.record_deadline_rejection(SloClass::Standard);

        a.merge(&b);
        let interactive = a.slo_class(SloClass::Interactive);
        assert_eq!(interactive.completed(), 3);
        assert_eq!(interactive.rejected_deadline(), 1);
        assert_eq!(interactive.e2e_histogram().count(), 3);
        assert!(interactive.e2e_p99_ms() > 300.0);
        assert!(interactive.e2e_p50_ms() < 100.0);
        assert_eq!(a.slo_class(SloClass::Standard).rejected_deadline(), 1);
        assert_eq!(a.slo_class(SloClass::BestEffort).completed(), 0);
        // Per-class deadline rejections reconcile with the aggregate.
        let per_class: usize = SloClass::ALL
            .iter()
            .map(|&class| a.slo_class(class).rejected_deadline())
            .sum();
        assert_eq!(per_class, a.rejected_deadline());
        assert_eq!(
            a.slo_class(SloClass::Relaxed).ttft_p99_ms(),
            0.0,
            "empty class histograms read as zero"
        );
    }
}
