//! Per-request serving state: the queued form before admission and the
//! in-flight form wrapping a core [`DecodeSession`].

use specasr::{DecodeSession, Policy};
use specasr_audio::UtteranceId;
use specasr_models::UtteranceTokens;

use crate::request::RequestId;

/// A request waiting in the admission queue.
#[derive(Debug, Clone)]
pub(crate) struct QueuedRequest {
    pub id: RequestId,
    pub policy: Policy,
    pub audio: UtteranceTokens,
    pub utterance_id: UtteranceId,
    pub audio_seconds: f64,
    pub encoder_ms: f64,
    pub arrival_ms: f64,
}

/// A request admitted into the batch, decoding round by round.
#[derive(Debug, Clone)]
pub(crate) struct ServerSession {
    pub id: RequestId,
    pub policy: Policy,
    pub utterance_id: UtteranceId,
    pub audio_seconds: f64,
    pub encoder_ms: f64,
    pub arrival_ms: f64,
    pub admitted_ms: f64,
    /// Wall time at which the first transcript token was committed.
    pub first_token_ms: Option<f64>,
    pub decode: DecodeSession,
}

impl QueuedRequest {
    /// Admits this request at wall time `admitted_ms`, starting its decode
    /// session.
    pub fn admit(self, admitted_ms: f64) -> ServerSession {
        ServerSession {
            id: self.id,
            policy: self.policy,
            utterance_id: self.utterance_id,
            audio_seconds: self.audio_seconds,
            encoder_ms: self.encoder_ms,
            arrival_ms: self.arrival_ms,
            admitted_ms,
            first_token_ms: None,
            decode: DecodeSession::new(self.policy, self.audio),
        }
    }
}
