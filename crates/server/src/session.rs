//! Per-request serving state: the queued form before admission and the
//! in-flight form wrapping a core [`DecodeSession`].

use specasr::{DecodeSession, DrafterKind, Policy};
use specasr_audio::{StreamChunk, UtteranceId};
use specasr_models::UtteranceTokens;
use specasr_runtime::{KvPool, PoolError};
use specasr_stream::StreamingSession;
use specasr_trace::{TraceEvent, Tracer};

use crate::request::{PartialSpan, RequestId};

/// Serving-side state of one streaming request: the stream session (horizon,
/// committed tokens, commit rule) plus the chunk timetable and the partial
/// spans already emitted.
#[derive(Debug, Clone)]
pub(crate) struct StreamState {
    /// The streaming decode session (commit rule, committed prefix, stats).
    pub session: StreamingSession,
    /// The timed chunk plan (offsets relative to `submitted_ms`).
    pub chunks: Vec<StreamChunk>,
    /// Per-chunk incremental encoder latency (fixed overhead on chunk 0).
    pub chunk_encoder_ms: Vec<f64>,
    /// Wall time the stream was submitted (chunk offsets anchor here).
    pub submitted_ms: f64,
    /// Chunks already delivered into the session.
    pub delivered: usize,
    /// Wall arrival of the newest delivered chunk.
    pub newest_chunk_arrival_ms: f64,
    /// Incremental encoder ms of the chunks delivered since the last partial
    /// (charged into the next partial's span).
    pub pending_encoder_ms: f64,
    /// Wall time of the stream's first admission into the batch.
    pub first_admitted_ms: Option<f64>,
    /// Partials emitted so far, in order.
    pub partials: Vec<PartialSpan>,
}

impl StreamState {
    /// Wall time the next undelivered chunk arrives, if any chunk is left.
    pub fn next_arrival_ms(&self) -> Option<f64> {
        self.chunks
            .get(self.delivered)
            .map(|chunk| self.submitted_ms + chunk.arrival_offset_ms)
    }

    /// Delivers every chunk that has arrived by `wall_ms` into the stream
    /// session (extending the audio horizon) and returns whether anything
    /// was delivered.  Each delivery is recorded as a `ChunkArrived` event
    /// on `request`'s behalf, stamped at the chunk's true arrival time.
    pub fn deliver_due(&mut self, wall_ms: f64, request: RequestId, tracer: &mut Tracer) -> bool {
        let mut delivered_any = false;
        while let Some(chunk) = self.chunks.get(self.delivered) {
            let arrival = self.submitted_ms + chunk.arrival_offset_ms;
            if arrival > wall_ms {
                break;
            }
            self.session.push_audio(chunk.end_seconds);
            self.newest_chunk_arrival_ms = arrival;
            self.pending_encoder_ms += self.chunk_encoder_ms[self.delivered];
            let chunk_index = self.delivered as u64;
            tracer.record_with(|| TraceEvent::ChunkArrived {
                ts_ms: arrival,
                request: request.value(),
                chunk: chunk_index,
            });
            self.delivered += 1;
            delivered_any = true;
        }
        delivered_any
    }

    /// `true` once the audio received so far covers at least one reference
    /// token, i.e. a re-decode would produce a hypothesis.
    pub fn decodable(&self) -> bool {
        self.session.view().is_some()
    }
}

/// A request waiting in the admission queue (fresh, re-queued after a
/// preemption, or a streaming request re-entering with a new chunk).
#[derive(Debug, Clone)]
pub(crate) struct QueuedRequest {
    pub id: RequestId,
    pub policy: Policy,
    /// Which draft source the decode session will speculate from.
    /// Draft-free kinds admit with a target-only KV footprint.
    pub drafter: DrafterKind,
    /// The decode context: the full utterance for offline requests, the
    /// current audio-horizon view for streaming requests (refreshed each
    /// time a chunk is delivered).
    pub audio: UtteranceTokens,
    pub utterance_id: UtteranceId,
    pub audio_seconds: f64,
    pub encoder_ms: f64,
    pub arrival_ms: f64,
    /// Times this request was evicted mid-decode to free KV blocks.
    pub preemptions: usize,
    /// Optional time-to-first-token budget: requests whose queue wait has
    /// already exceeded it are shed at admission time (per-class
    /// `rejected_deadline` accounting).
    pub ttft_budget_ms: Option<f64>,
    /// Whether this request produced output before (re-)queueing: a partial
    /// for streams, a committed first token for preempted offline requests.
    /// Deadline shedding never applies once this is set — the TTFT the
    /// budget governs has already been achieved.
    pub first_output_emitted: bool,
    /// Streaming state, `None` for offline requests.
    pub stream: Option<Box<StreamState>>,
}

impl QueuedRequest {
    /// Re-syncs `audio` with the stream session's current view after chunk
    /// delivery (no-op for offline requests or inaudible streams).
    pub fn refresh_stream_view(&mut self) {
        if let Some(stream) = &self.stream {
            if let Some(view) = stream.session.view() {
                self.audio = view;
            }
        }
    }

    /// `true` once this request has delivered its first partial (or first
    /// token); deadline shedding only applies before that.
    pub fn first_output_emitted(&self) -> bool {
        self.first_output_emitted
            || self
                .stream
                .as_ref()
                .is_some_and(|stream| !stream.partials.is_empty())
    }

    /// Admits this request at wall time `admitted_ms`, starting (or, for
    /// streaming requests, resuming from the committed prefix) its decode
    /// session against `pool` (prefix blocks shared where possible).
    ///
    /// On allocation failure the request is handed back untouched so the
    /// caller can re-queue or reject it — a memory-starved admission must
    /// not lose the request or leak blocks.  (Boxed so the common `Ok` path
    /// does not carry the full request across the stack.)
    pub fn try_admit(
        mut self,
        admitted_ms: f64,
        pool: &mut KvPool,
    ) -> Result<ServerSession, Box<(QueuedRequest, PoolError)>> {
        let started = match &self.stream {
            None => DecodeSession::new_in_with_drafter(
                self.policy,
                self.audio.clone(),
                self.drafter,
                pool,
            ),
            Some(stream) => {
                let view = stream
                    .session
                    .view()
                    .expect("queued streaming requests always have a decodable view");
                DecodeSession::resume_in_with_drafter(
                    self.policy,
                    view,
                    self.drafter,
                    stream.session.committed(),
                    pool,
                )
            }
        };
        match started {
            Ok(decode) => {
                if let Some(stream) = self.stream.as_mut() {
                    stream.first_admitted_ms.get_or_insert(admitted_ms);
                }
                Ok(ServerSession {
                    id: self.id,
                    policy: self.policy,
                    drafter: self.drafter,
                    utterance_id: self.utterance_id,
                    audio_seconds: self.audio_seconds,
                    encoder_ms: self.encoder_ms,
                    arrival_ms: self.arrival_ms,
                    admitted_ms,
                    ready_ms: admitted_ms,
                    first_token_ms: None,
                    preemptions: self.preemptions,
                    ttft_budget_ms: self.ttft_budget_ms,
                    first_output_emitted: self.first_output_emitted,
                    stream: self.stream,
                    decode,
                })
            }
            Err(error) => Err(Box::new((self, error))),
        }
    }
}

/// A request admitted into the batch, decoding round by round against the
/// scheduler's shared KV pool.
#[derive(Debug, Clone)]
pub(crate) struct ServerSession {
    pub id: RequestId,
    pub policy: Policy,
    /// The draft source the decode session speculates from (mirrors
    /// [`DecodeSession::drafter`]; kept here for re-queueing).
    pub drafter: DrafterKind,
    pub utterance_id: UtteranceId,
    pub audio_seconds: f64,
    pub encoder_ms: f64,
    pub arrival_ms: f64,
    pub admitted_ms: f64,
    /// Wall time this session's next round may start: its own verification
    /// wave's completion under pipelined scheduling (which can precede the
    /// tick's end — that head start is the cross-tick overlap), the tick end
    /// under drain-per-tick scheduling.  Reset to the admission time on
    /// every (re-)admission.
    pub ready_ms: f64,
    /// Wall time at which the first transcript token was committed.
    pub first_token_ms: Option<f64>,
    pub preemptions: usize,
    pub ttft_budget_ms: Option<f64>,
    /// Whether the request had produced output before this admission.
    pub first_output_emitted: bool,
    /// Streaming state, `None` for offline requests.
    pub stream: Option<Box<StreamState>>,
    pub decode: DecodeSession,
}

impl ServerSession {
    /// Converts this session back into its queued form — after a preemption
    /// (`preempted`, counted; the decode progress of the current pass is
    /// discarded and restore is a deterministic re-prefill + re-decode, for
    /// streaming requests a resume from the committed prefix) or when a
    /// streaming view finished and the stream parks for its next chunk.
    /// The original arrival timestamp is kept so aging credit keeps
    /// accumulating, and output already produced (a committed first token,
    /// an emitted partial) keeps the request exempt from deadline shedding.
    ///
    /// The caller must have released the session's KV blocks already.
    pub fn into_requeued(self, preempted: bool) -> QueuedRequest {
        QueuedRequest {
            id: self.id,
            policy: self.policy,
            drafter: self.drafter,
            audio: self.decode.audio().clone(),
            utterance_id: self.utterance_id,
            audio_seconds: self.audio_seconds,
            encoder_ms: self.encoder_ms,
            arrival_ms: self.arrival_ms,
            preemptions: self.preemptions + usize::from(preempted),
            ttft_budget_ms: self.ttft_budget_ms,
            first_output_emitted: self.first_output_emitted
                || self.first_token_ms.is_some()
                || self
                    .stream
                    .as_ref()
                    .is_some_and(|stream| !stream.partials.is_empty()),
            stream: self.stream,
        }
    }
}
