//! Per-request serving state: the queued form before admission and the
//! in-flight form wrapping a core [`DecodeSession`].

use specasr::{DecodeSession, Policy};
use specasr_audio::UtteranceId;
use specasr_models::UtteranceTokens;
use specasr_runtime::{KvPool, PoolError};

use crate::request::RequestId;

/// A request waiting in the admission queue (fresh, or re-queued after a
/// preemption).
#[derive(Debug, Clone)]
pub(crate) struct QueuedRequest {
    pub id: RequestId,
    pub policy: Policy,
    pub audio: UtteranceTokens,
    pub utterance_id: UtteranceId,
    pub audio_seconds: f64,
    pub encoder_ms: f64,
    pub arrival_ms: f64,
    /// Times this request was evicted mid-decode to free KV blocks.
    pub preemptions: usize,
}

/// A request admitted into the batch, decoding round by round against the
/// scheduler's shared KV pool.
#[derive(Debug, Clone)]
pub(crate) struct ServerSession {
    pub id: RequestId,
    pub policy: Policy,
    pub utterance_id: UtteranceId,
    pub audio_seconds: f64,
    pub encoder_ms: f64,
    pub arrival_ms: f64,
    pub admitted_ms: f64,
    /// Wall time at which the first transcript token was committed.
    pub first_token_ms: Option<f64>,
    pub preemptions: usize,
    pub decode: DecodeSession,
}

impl QueuedRequest {
    /// Admits this request at wall time `admitted_ms`, starting its decode
    /// session against `pool` (prefix blocks shared where possible).
    ///
    /// On allocation failure the request is handed back untouched so the
    /// caller can re-queue or reject it — a memory-starved admission must
    /// not lose the request or leak blocks.  (Boxed so the common `Ok` path
    /// does not carry the full request across the stack.)
    pub fn try_admit(
        self,
        admitted_ms: f64,
        pool: &mut KvPool,
    ) -> Result<ServerSession, Box<(QueuedRequest, PoolError)>> {
        match DecodeSession::new_in(self.policy, self.audio.clone(), pool) {
            Ok(decode) => Ok(ServerSession {
                id: self.id,
                policy: self.policy,
                utterance_id: self.utterance_id,
                audio_seconds: self.audio_seconds,
                encoder_ms: self.encoder_ms,
                arrival_ms: self.arrival_ms,
                admitted_ms,
                first_token_ms: None,
                preemptions: self.preemptions,
                decode,
            }),
            Err(error) => Err(Box::new((self, error))),
        }
    }
}

impl ServerSession {
    /// Converts a preempted session back into its queued form: the decode
    /// progress is discarded (restore is a deterministic re-prefill +
    /// re-decode on the next admission), the original arrival timestamp is
    /// kept so aging credit keeps accumulating, and the preemption is
    /// counted.
    ///
    /// The caller must have released the session's KV blocks already.
    pub fn into_requeued(self) -> QueuedRequest {
        QueuedRequest {
            id: self.id,
            policy: self.policy,
            audio: self.decode.audio().clone(),
            utterance_id: self.utterance_id,
            audio_seconds: self.audio_seconds,
            encoder_ms: self.encoder_ms,
            arrival_ms: self.arrival_ms,
            preemptions: self.preemptions + 1,
        }
    }
}
