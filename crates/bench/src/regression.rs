//! Bench-regression comparison: fresh experiment records vs committed
//! baselines.
//!
//! The serving sweeps (`serve_load`, `serve_open_loop`) are deterministic,
//! so their committed `BENCH_*.json` records are exact perf baselines.  The
//! `bench_check` binary re-reads a freshly generated record from
//! `target/experiments/` and fails CI when any gated metric drifts outside
//! the tolerance band — throughput regressions and P99 latency blow-ups
//! alike, in either direction (an unexplained 40% "improvement" usually
//! means the benchmark stopped measuring what it used to).

use specasr_metrics::{ExperimentRecord, ReportRow};

/// Metrics gated by the regression check, when present in a row.
///
/// The memory metrics (`peak_kv_blocks`, `preemptions`) gate the paged
/// KV-pool behaviour: a silent growth in peak occupancy is a memory
/// regression even when throughput holds, and a baseline of zero
/// preemptions must stay at zero (any fresh preemption blows the relative
/// band wide open by construction).
///
/// The streaming metrics (`first_partial_p99_ms`, `retraction_rate`) gate
/// the `serve_streaming` sweep: first-partial latency is the product metric
/// streaming exists for, and the retraction rate is the partial-stability
/// contract — a commit-rule change that silently makes partials flickier is
/// a regression even when throughput holds.
///
/// `backend_batch_occupancy` gates the decoder-backend batching behaviour:
/// the mean verification requests per cross-session `BackendBatch`.  A drop
/// toward 1.0 means the scheduler quietly stopped grouping verification
/// across sessions — the throughput benefit may survive in a given sweep
/// (the cost model is affine), but the backend is no longer being driven in
/// the batched shape real accelerators need, and that is a regression in
/// its own right.
///
/// `in_flight_depth` gates the pipelined scheduler's submit-ahead window:
/// the peak number of forward requests simultaneously outstanding on the
/// target backend (by modeled timestamp overlap).  A collapse back toward
/// the batch width means waves stopped overlapping across tick boundaries —
/// the scheduler silently fell back to drain-per-tick and the device
/// timeline has idle gaps again.
///
/// `rejected_draft_device_ms` gates speculation efficiency: the device
/// milliseconds spent verifying draft tokens the target then rejected,
/// summed across every (policy, drafter) group.  Throughput can hold while
/// a drafter change quietly burns more device time on rejected drafts —
/// the waste only surfaces once the fleet saturates, so the ledger itself
/// is gated.
///
/// `migrations` gates the elastic-fleet drain path (`serve_elastic`): the
/// sessions moved off draining workers.  A drop to zero means drains
/// quietly stopped finding live sessions to migrate (the cell lost its
/// bite); growth means scale decisions or placement changed shape.  Either
/// way the behaviour the subsystem exists for moved, even if throughput
/// held.
///
/// `goodput_utps` gates what overload serving is *for*: completions that
/// still matter — within their TTFT budget in the ordering cells, per
/// second of the drain window in the elastic cells.  Raw throughput can
/// hold while an ordering or scaling change silently converts in-budget
/// completions into late ones; goodput is the metric that catches it.
pub const GATED_METRICS: [&str; 11] = [
    "throughput_utps",
    "e2e_p99_ms",
    "peak_kv_blocks",
    "preemptions",
    "first_partial_p99_ms",
    "retraction_rate",
    "backend_batch_occupancy",
    "in_flight_depth",
    "rejected_draft_device_ms",
    "migrations",
    "goodput_utps",
];

/// Default relative tolerance band (±15%).
pub const DEFAULT_TOLERANCE: f64 = 0.15;

/// One gated metric that drifted outside the tolerance band, or a row that
/// disappeared from the fresh record.
#[derive(Debug, Clone, PartialEq)]
pub enum Violation {
    /// The baseline row has no counterpart in the fresh record.
    MissingRow {
        /// The baseline row label.
        label: String,
    },
    /// The baseline row carries a gated metric the fresh row dropped.
    MissingMetric {
        /// The row label.
        label: String,
        /// The gated metric name.
        metric: String,
    },
    /// A gated metric moved outside the tolerance band.
    Drift {
        /// The row label.
        label: String,
        /// The gated metric name.
        metric: String,
        /// The committed baseline value.
        baseline: f64,
        /// The freshly measured value.
        fresh: f64,
        /// `(fresh - baseline) / baseline`.
        relative: f64,
    },
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::MissingRow { label } => {
                write!(f, "row `{label}` is missing from the fresh record")
            }
            Violation::MissingMetric { label, metric } => {
                write!(f, "row `{label}` lost gated metric `{metric}`")
            }
            Violation::Drift {
                label,
                metric,
                baseline,
                fresh,
                relative,
            } => write!(
                f,
                "row `{label}` metric `{metric}` drifted {:+.1}% (baseline {baseline:.4}, \
                 fresh {fresh:.4})",
                relative * 100.0
            ),
        }
    }
}

/// Compares a fresh record against its committed baseline.
///
/// Every baseline row must still exist, keep its gated metrics, and keep
/// each gated value within `tolerance` (relative) of the baseline.  Rows or
/// metrics that only exist in the fresh record are fine — adding coverage is
/// not a regression.
///
/// # Example
///
/// ```
/// use specasr_bench::regression::{compare_records, DEFAULT_TOLERANCE};
/// use specasr_metrics::{ExperimentRecord, ReportRow};
///
/// let baseline = ExperimentRecord::new("x", "t")
///     .with_row(ReportRow::new("a").with("throughput_utps", 10.0));
/// let fresh = ExperimentRecord::new("x", "t")
///     .with_row(ReportRow::new("a").with("throughput_utps", 10.5));
/// assert!(compare_records(&baseline, &fresh, DEFAULT_TOLERANCE).is_empty());
/// ```
///
/// # Panics
///
/// Panics if `tolerance` is not finite and non-negative.
pub fn compare_records(
    baseline: &ExperimentRecord,
    fresh: &ExperimentRecord,
    tolerance: f64,
) -> Vec<Violation> {
    assert!(
        tolerance.is_finite() && tolerance >= 0.0,
        "tolerance must be finite and non-negative"
    );
    let mut violations = Vec::new();
    for base_row in &baseline.rows {
        let Some(fresh_row) = fresh.row(&base_row.label) else {
            violations.push(Violation::MissingRow {
                label: base_row.label.clone(),
            });
            continue;
        };
        for metric in GATED_METRICS {
            let Some(base_value) = base_row.value(metric) else {
                continue;
            };
            let Some(fresh_value) = fresh_row.value(metric) else {
                violations.push(Violation::MissingMetric {
                    label: base_row.label.clone(),
                    metric: metric.to_owned(),
                });
                continue;
            };
            let scale = base_value.abs().max(f64::EPSILON);
            let relative = (fresh_value - base_value) / scale;
            if relative.abs() > tolerance {
                violations.push(Violation::Drift {
                    label: base_row.label.clone(),
                    metric: metric.to_owned(),
                    baseline: base_value,
                    fresh: fresh_value,
                    relative,
                });
            }
        }
    }
    violations
}

/// Formats the full gated-metric diagnostic table of one breached row:
/// every gated metric the baseline row carries, with its baseline value,
/// current value, relative delta, the allowed band, and a per-metric
/// verdict (`ok` / `DRIFT` / `MISSING`).
///
/// `bench_check` prints this for each row with at least one violation, so a
/// gate breach shows the whole row's health at a glance instead of only the
/// first metric that tripped.  `fresh_row` is `None` when the row vanished
/// from the fresh record entirely.
pub fn breach_table(base_row: &ReportRow, fresh_row: Option<&ReportRow>, tolerance: f64) -> String {
    let allowed = format!("\u{b1}{:.1}%", tolerance * 100.0);
    let mut lines = vec![format!(
        "{:<26} {:>14} {:>14} {:>9} {:>9}  status",
        "metric", "baseline", "current", "delta", "allowed"
    )];
    for metric in GATED_METRICS {
        let Some(base_value) = base_row.value(metric) else {
            continue;
        };
        match fresh_row.and_then(|row| row.value(metric)) {
            None => lines.push(format!(
                "{metric:<26} {base_value:>14.4} {:>14} {:>9} {allowed:>9}  MISSING",
                "-", "-"
            )),
            Some(fresh_value) => {
                let scale = base_value.abs().max(f64::EPSILON);
                let relative = (fresh_value - base_value) / scale;
                let status = if relative.abs() > tolerance {
                    "DRIFT"
                } else {
                    "ok"
                };
                lines.push(format!(
                    "{metric:<26} {base_value:>14.4} {fresh_value:>14.4} {:>+8.1}% {allowed:>9}  \
                     {status}",
                    relative * 100.0
                ));
            }
        }
    }
    lines.join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(throughput: f64, p99: f64) -> ExperimentRecord {
        ExperimentRecord::new("serve", "t").with_row(
            ReportRow::new("w1@q10")
                .with("throughput_utps", throughput)
                .with("e2e_p99_ms", p99)
                .with("ungated_metric", 1.0e9),
        )
    }

    #[test]
    fn identical_records_pass() {
        let base = record(20.0, 900.0);
        assert!(compare_records(&base, &base.clone(), DEFAULT_TOLERANCE).is_empty());
    }

    #[test]
    fn drift_within_tolerance_passes_and_ungated_metrics_are_ignored() {
        let base = record(20.0, 900.0);
        let mut fresh = record(20.0 * 1.14, 900.0 * 0.86);
        fresh.rows[0].values.insert("ungated_metric".into(), 0.0);
        assert!(compare_records(&base, &fresh, DEFAULT_TOLERANCE).is_empty());
    }

    #[test]
    fn drift_beyond_tolerance_fails_in_both_directions() {
        let base = record(20.0, 900.0);
        let slow = record(20.0 * 0.8, 900.0);
        let violations = compare_records(&base, &slow, DEFAULT_TOLERANCE);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].to_string().contains("throughput_utps"));
        assert!(violations[0].to_string().contains("-20.0%"));

        let spiky = record(20.0, 900.0 * 1.3);
        let violations = compare_records(&base, &spiky, DEFAULT_TOLERANCE);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].to_string().contains("e2e_p99_ms"));
    }

    #[test]
    fn missing_rows_and_metrics_are_violations() {
        let base = record(20.0, 900.0);
        let empty = ExperimentRecord::new("serve", "t");
        assert_eq!(
            compare_records(&base, &empty, DEFAULT_TOLERANCE),
            vec![Violation::MissingRow {
                label: "w1@q10".into()
            }]
        );

        let mut gutted = record(20.0, 900.0);
        gutted.rows[0].values.remove("e2e_p99_ms");
        let violations = compare_records(&base, &gutted, DEFAULT_TOLERANCE);
        assert_eq!(
            violations,
            vec![Violation::MissingMetric {
                label: "w1@q10".into(),
                metric: "e2e_p99_ms".into()
            }]
        );
    }

    #[test]
    fn breach_table_reports_every_gated_metric_with_verdicts() {
        let base = record(20.0, 900.0);
        let fresh = record(20.0 * 0.8, 900.0 * 1.05);
        let table = breach_table(&base.rows[0], fresh.row("w1@q10"), DEFAULT_TOLERANCE);
        let lines: Vec<&str> = table.lines().collect();
        // Header + the two gated metrics the row carries; the ungated
        // metric never appears.
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("baseline") && lines[0].contains("allowed"));
        assert!(lines[1].contains("throughput_utps"));
        assert!(lines[1].contains("-20.0%"));
        assert!(lines[1].ends_with("DRIFT"));
        assert!(lines[2].contains("e2e_p99_ms"));
        assert!(lines[2].contains("+5.0%"));
        assert!(lines[2].ends_with("ok"));
        assert!(!table.contains("ungated_metric"));
    }

    #[test]
    fn breach_table_marks_missing_metrics_and_rows() {
        let base = record(20.0, 900.0);
        let mut gutted = record(20.0, 900.0);
        gutted.rows[0].values.remove("e2e_p99_ms");
        let table = breach_table(&base.rows[0], gutted.row("w1@q10"), DEFAULT_TOLERANCE);
        assert!(table
            .lines()
            .any(|l| l.contains("e2e_p99_ms") && l.ends_with("MISSING")));

        let vanished = breach_table(&base.rows[0], None, DEFAULT_TOLERANCE);
        assert!(vanished
            .lines()
            .skip(1)
            .all(|line| line.ends_with("MISSING")));
    }

    #[test]
    fn memory_metrics_are_gated_when_present() {
        let base = ExperimentRecord::new("serve", "t").with_row(
            ReportRow::new("w2@q50-kv64")
                .with("peak_kv_blocks", 120.0)
                .with("preemptions", 0.0),
        );
        // Within band on occupancy, still zero preemptions: pass.
        let fresh = ExperimentRecord::new("serve", "t").with_row(
            ReportRow::new("w2@q50-kv64")
                .with("peak_kv_blocks", 130.0)
                .with("preemptions", 0.0),
        );
        assert!(compare_records(&base, &fresh, DEFAULT_TOLERANCE).is_empty());

        // Peak occupancy drift beyond the band fails.
        let bloated = ExperimentRecord::new("serve", "t").with_row(
            ReportRow::new("w2@q50-kv64")
                .with("peak_kv_blocks", 160.0)
                .with("preemptions", 0.0),
        );
        let violations = compare_records(&base, &bloated, DEFAULT_TOLERANCE);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].to_string().contains("peak_kv_blocks"));

        // A zero-preemption baseline must stay at zero: one fresh
        // preemption is an unbounded relative drift.
        let preempting = ExperimentRecord::new("serve", "t").with_row(
            ReportRow::new("w2@q50-kv64")
                .with("peak_kv_blocks", 120.0)
                .with("preemptions", 1.0),
        );
        let violations = compare_records(&base, &preempting, DEFAULT_TOLERANCE);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].to_string().contains("preemptions"));
    }

    #[test]
    fn streaming_metrics_are_gated_when_present() {
        let base = ExperimentRecord::new("serve_streaming", "t").with_row(
            ReportRow::new("adaptive-c300ms-b8")
                .with("first_partial_p99_ms", 400.0)
                .with("retraction_rate", 0.10),
        );
        let fresh_ok = ExperimentRecord::new("serve_streaming", "t").with_row(
            ReportRow::new("adaptive-c300ms-b8")
                .with("first_partial_p99_ms", 430.0)
                .with("retraction_rate", 0.11),
        );
        assert!(compare_records(&base, &fresh_ok, DEFAULT_TOLERANCE).is_empty());

        // A commit rule that makes partials flickier fails the gate even
        // when latency holds.
        let flicky = ExperimentRecord::new("serve_streaming", "t").with_row(
            ReportRow::new("adaptive-c300ms-b8")
                .with("first_partial_p99_ms", 400.0)
                .with("retraction_rate", 0.20),
        );
        let violations = compare_records(&base, &flicky, DEFAULT_TOLERANCE);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].to_string().contains("retraction_rate"));

        let slow = ExperimentRecord::new("serve_streaming", "t").with_row(
            ReportRow::new("adaptive-c300ms-b8")
                .with("first_partial_p99_ms", 600.0)
                .with("retraction_rate", 0.10),
        );
        let violations = compare_records(&base, &slow, DEFAULT_TOLERANCE);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].to_string().contains("first_partial_p99_ms"));
    }

    #[test]
    fn backend_occupancy_is_gated_when_present() {
        let base = ExperimentRecord::new("serve", "t").with_row(
            ReportRow::new("specasr-asp@c8")
                .with("throughput_utps", 25.0)
                .with("backend_batch_occupancy", 8.0),
        );
        let fresh_ok = ExperimentRecord::new("serve", "t").with_row(
            ReportRow::new("specasr-asp@c8")
                .with("throughput_utps", 25.0)
                .with("backend_batch_occupancy", 7.5),
        );
        assert!(compare_records(&base, &fresh_ok, DEFAULT_TOLERANCE).is_empty());

        // A scheduler that quietly stops batching verification across
        // sessions fails the gate even when throughput holds.
        let unbatched = ExperimentRecord::new("serve", "t").with_row(
            ReportRow::new("specasr-asp@c8")
                .with("throughput_utps", 25.0)
                .with("backend_batch_occupancy", 1.0),
        );
        let violations = compare_records(&base, &unbatched, DEFAULT_TOLERANCE);
        assert_eq!(violations.len(), 1);
        assert!(violations[0]
            .to_string()
            .contains("backend_batch_occupancy"));
    }

    #[test]
    fn rejected_draft_waste_is_gated_when_present() {
        let base = ExperimentRecord::new("serve", "t").with_row(
            ReportRow::new("specasr-asp@c8")
                .with("throughput_utps", 25.0)
                .with("rejected_draft_device_ms", 40.0),
        );
        let fresh_ok = ExperimentRecord::new("serve", "t").with_row(
            ReportRow::new("specasr-asp@c8")
                .with("throughput_utps", 25.0)
                .with("rejected_draft_device_ms", 43.0),
        );
        assert!(compare_records(&base, &fresh_ok, DEFAULT_TOLERANCE).is_empty());

        // A drafter change that burns more device time on rejected drafts
        // fails the gate even when throughput holds.
        let wasteful = ExperimentRecord::new("serve", "t").with_row(
            ReportRow::new("specasr-asp@c8")
                .with("throughput_utps", 25.0)
                .with("rejected_draft_device_ms", 60.0),
        );
        let violations = compare_records(&base, &wasteful, DEFAULT_TOLERANCE);
        assert_eq!(violations.len(), 1);
        assert!(violations[0]
            .to_string()
            .contains("rejected_draft_device_ms"));
    }

    #[test]
    fn migrations_and_goodput_are_gated_when_present() {
        let base = ExperimentRecord::new("serve_elastic", "t").with_row(
            ReportRow::new("drain-migrate@q60")
                .with("throughput_utps", 55.0)
                .with("migrations", 8.0)
                .with("goodput_utps", 55.0),
        );
        let fresh_ok = ExperimentRecord::new("serve_elastic", "t").with_row(
            ReportRow::new("drain-migrate@q60")
                .with("throughput_utps", 55.0)
                .with("migrations", 8.0)
                .with("goodput_utps", 54.0),
        );
        assert!(compare_records(&base, &fresh_ok, DEFAULT_TOLERANCE).is_empty());

        // A drain that silently stops migrating live sessions fails the
        // gate even when throughput holds, and so does a scaling change
        // that converts in-budget completions into late ones.
        let degraded = ExperimentRecord::new("serve_elastic", "t").with_row(
            ReportRow::new("drain-migrate@q60")
                .with("throughput_utps", 55.0)
                .with("migrations", 0.0)
                .with("goodput_utps", 30.0),
        );
        let violations = compare_records(&base, &degraded, DEFAULT_TOLERANCE);
        assert_eq!(violations.len(), 2);
        let rendered: Vec<String> = violations.iter().map(|v| v.to_string()).collect();
        assert!(rendered.iter().any(|line| line.contains("migrations")));
        assert!(rendered.iter().any(|line| line.contains("goodput_utps")));
    }

    #[test]
    fn extra_fresh_rows_are_not_violations() {
        let base = record(20.0, 900.0);
        let fresh = record(20.0, 900.0)
            .with_row(ReportRow::new("brand-new-cell").with("throughput_utps", 1.0));
        assert!(compare_records(&base, &fresh, DEFAULT_TOLERANCE).is_empty());
    }

    #[test]
    #[should_panic(expected = "tolerance")]
    fn negative_tolerance_panics() {
        compare_records(&record(1.0, 1.0), &record(1.0, 1.0), -0.1);
    }
}
