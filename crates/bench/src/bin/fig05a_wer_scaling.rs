//! Fig. 5a — WER of ASR models at multiple scales on the clean and other
//! splits: larger models reduce WER by roughly 20–33 %, while the small
//! models stay good enough (≈10 % or less) to serve as speculative drafts.

use specasr_audio::Split;
use specasr_bench::{emit, ExperimentContext};
use specasr_metrics::{wer_between, ExperimentRecord, ReportRow, WerMeasurement};
use specasr_models::{AsrDecoderModel, ModelProfile, ModelScale, SimulatedAsrModel};

fn main() {
    let context = ExperimentContext::standard();
    let mut record = ExperimentRecord::new("fig05a", "WER of ASR models at multiple scales");

    for scale in ModelScale::ALL {
        let profile = ModelProfile::for_scale(scale);
        let model = SimulatedAsrModel::target(profile.clone(), context.seed ^ 0x5a);
        let mut row = ReportRow::new(format!("whisper-{}", scale.name()))
            .with("parameters_M", profile.parameters() as f64 / 1e6);
        for split in Split::ALL {
            let mut wer = WerMeasurement::default();
            for utterance in context.corpus.split(split) {
                let audio = context.binding.bind(utterance);
                let hypothesis = context
                    .binding
                    .tokenizer()
                    .decode(&model.greedy_transcript(&audio))
                    .expect("transcript decodes");
                wer.accumulate(&wer_between(utterance.transcript(), &hypothesis));
            }
            row = row.with(format!("wer_{}", split.name()), wer.wer() * 100.0);
        }
        record.push_row(row);
    }
    emit(&record);
    println!("shape check: WER decreases monotonically with model scale and is higher on the *-other splits.");
}
