//! Fig. 6a — distribution of the per-round acceptance ratio for different
//! prediction lengths.
//!
//! A large share of rounds is fully accepted (ratio ≈ 1.0, motivating long
//! drafts), while the rest concentrates at low ratios (localised acoustic
//! difficulty), which is exactly what motivates adaptive truncation and
//! recycling.

use specasr::{Policy, SpeculativeConfig};
use specasr_audio::Split;
use specasr_bench::{emit, ExperimentContext};
use specasr_metrics::{ExperimentRecord, Histogram, ReportRow};

fn main() {
    let context = ExperimentContext::standard();
    let (draft, target) = context.whisper_pair();
    let mut record = ExperimentRecord::new(
        "fig06a",
        "Acceptance-ratio distribution for different prediction lengths (test-clean)",
    );

    for prediction_length in [4usize, 8, 16, 24] {
        let policy = Policy::Speculative(SpeculativeConfig::new(prediction_length, 1));
        let mut histogram = Histogram::new(0.0, 1.0, 5);
        for utterance in context.corpus.split(Split::TestClean) {
            let audio = context.binding.bind(utterance);
            let outcome = policy.decode(&draft, &target, &audio);
            for round in &outcome.stats.rounds_detail {
                if round.predicted > 0 {
                    histogram.record(round.accepted as f64 / round.predicted as f64);
                }
            }
        }
        let fractions = histogram.bin_fractions();
        let mut row = ReportRow::new(format!("length {prediction_length}"))
            .with("rounds", histogram.count() as f64)
            .with("mean_ratio", histogram.mean());
        for (bin, fraction) in fractions.iter().enumerate() {
            let (lo, hi) = histogram.bin_range(bin);
            row = row.with(format!("ratio_{lo:.1}-{hi:.1}"), *fraction);
        }
        record.push_row(row);
    }
    emit(&record);
    println!("shape check: mass concentrates at the fully-accepted bin and at low ratios, with little in between.");
}
