//! `trace_analyze` — attribution report over a flight-recorder JSONL dump.
//!
//! Reads the lane-tagged JSONL event dump a serving bin writes next to its
//! Perfetto trace (`--trace-out foo.json` also writes `foo.jsonl`), runs the
//! critical-path attribution and device-time ledger analysis over every
//! lane, and renders the merged report: per-request e2e decomposition into
//! queue / encoder / draft / draft-lane wait / device backlog / device
//! service / pipeline bubble / preemption penalty, the fleet device-time
//! ledger (accepted-token work vs rejected-draft waste vs probe overhead vs
//! idle), and per-policy × per-drafter speculation efficiency.
//!
//! ```text
//! # render the report for a traced smoke cell:
//! cargo run -p specasr-bench --release --bin trace_analyze -- \
//!     target/experiments/serve_open_loop_trace.jsonl
//!
//! # CI mode: also verify the exactness contracts (attribution folds land
//! # bitwise on each recorded e2e; the ledger folds bitwise to busy+idle)
//! # and write the report to a file for artifact upload:
//! cargo run -p specasr-bench --release --bin trace_analyze -- \
//!     target/experiments/serve_open_loop_trace.jsonl \
//!     --check --report-out target/experiments/serve_open_loop_attribution.txt
//! ```
//!
//! `--check` exits nonzero on any reconciliation mismatch, which is how CI
//! turns the attribution math itself into a gate: a scheduler change that
//! breaks the exact decomposition fails the job even when every latency
//! metric still looks healthy.

use std::process::ExitCode;

use specasr_trace::{analyze_events, parse_jsonl, TraceAnalysis};

struct Args {
    input: String,
    check: bool,
    report_out: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut input = None;
    let mut check = false;
    let mut report_out = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => check = true,
            "--report-out" => {
                report_out = Some(
                    args.next()
                        .ok_or_else(|| "--report-out needs a path".to_owned())?,
                );
            }
            "--help" | "-h" => {
                return Err(
                    "usage: trace_analyze <dump.jsonl> [--check] [--report-out <path>]".to_owned(),
                )
            }
            path if input.is_none() => input = Some(path.to_owned()),
            extra => return Err(format!("unexpected argument `{extra}`")),
        }
    }
    Ok(Args {
        input: input.ok_or_else(|| "missing input: trace_analyze <dump.jsonl>".to_owned())?,
        check,
        report_out,
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    let dump = match std::fs::read_to_string(&args.input) {
        Ok(dump) => dump,
        Err(error) => {
            eprintln!("trace_analyze: cannot read {}: {error}", args.input);
            return ExitCode::FAILURE;
        }
    };
    let lanes = match parse_jsonl(&dump) {
        Ok(lanes) => lanes,
        Err(error) => {
            eprintln!("trace_analyze: cannot parse {}: {error}", args.input);
            return ExitCode::FAILURE;
        }
    };

    let mut analysis = TraceAnalysis::default();
    for (_, events) in &lanes {
        analysis.merge(&analyze_events(events));
    }
    let lane_names: Vec<&str> = lanes.iter().map(|(name, _)| name.as_str()).collect();
    let report = format!(
        "trace_analyze: {} ({} lanes: {})\n\n{}",
        args.input,
        lanes.len(),
        lane_names.join(", "),
        analysis.render_report()
    );
    println!("{report}");

    if let Some(path) = &args.report_out {
        if let Err(error) = std::fs::write(path, format!("{report}\n")) {
            eprintln!("trace_analyze: cannot write {path}: {error}");
            return ExitCode::FAILURE;
        }
        println!("(report written to {path})");
    }

    if args.check {
        match analysis.reconcile() {
            Ok(()) => println!(
                "reconciliation OK: {} requests fold bitwise to their recorded e2e; ledger \
                 folds bitwise to busy+idle",
                analysis.requests.len()
            ),
            Err(message) => {
                eprintln!("trace_analyze: reconciliation FAILED: {message}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
