//! Fig. 13b — when the draft's top-1 token fails verification, at which rank
//! of the draft's output distribution does the target's actual token sit?
//!
//! The paper measures that over two thirds of these tokens are the draft's
//! second choice, which is why the sparse tree expands only the top-2
//! candidate at uncertain positions.

use specasr_audio::Split;
use specasr_bench::{emit, ExperimentContext};
use specasr_metrics::{ExperimentRecord, ReportRow};
use specasr_models::AsrDecoderModel;

fn main() {
    let context = ExperimentContext::standard();
    let (draft, target) = context.whisper_pair();

    let mut rank_counts = [0usize; 5]; // ranks 2..=5, and "absent"
    let mut rejected = 0usize;
    for split in [Split::TestClean, Split::TestOther] {
        for utterance in context.corpus.split(split) {
            let audio = context.binding.bind(utterance);
            let trajectory = target.greedy_transcript(&audio);
            for position in 0..trajectory.len() {
                let logits = draft.next_logits(&audio, &trajectory[..position]);
                let target_token = trajectory[position];
                if logits.top1().map(|c| c.token) == Some(target_token) {
                    continue;
                }
                rejected += 1;
                match logits.rank_of(target_token) {
                    Some(rank) if (2..=5).contains(&rank) => rank_counts[rank - 2] += 1,
                    _ => rank_counts[4] += 1,
                }
            }
        }
    }

    let mut record = ExperimentRecord::new(
        "fig13b",
        "Rank of the target token in the draft logits when top-1 fails",
    );
    let labels = [
        "rank 2",
        "rank 3",
        "rank 4",
        "rank 5",
        "beyond top-5 / absent",
    ];
    for (label, count) in labels.iter().zip(rank_counts.iter()) {
        record.push_row(
            ReportRow::new(*label)
                .with("count", *count as f64)
                .with("fraction", *count as f64 / rejected.max(1) as f64),
        );
    }
    emit(&record);
    println!(
        "shape check: rank 2 holds roughly two thirds of the {} rejected positions, so top-2 tree expansion is the sweet spot.",
        rejected
    );
}
