//! Extra ablations called out in DESIGN.md §5 (beyond the paper's figures):
//! sparse-tree branch width (top-k), maximum prediction length, and recycling
//! on/off at a fixed policy, all on test-clean with the Whisper pair.

use specasr::{AdaptiveConfig, Policy, SparseTreeConfig};
use specasr_audio::Split;
use specasr_bench::{emit, run_policy_on_split, ExperimentContext};
use specasr_metrics::{ExperimentRecord, ReportRow};

fn main() {
    let context = ExperimentContext::standard();
    let (draft, target) = context.whisper_pair();
    let split = Split::TestClean;

    // (1) Sparse-tree branch width.
    let mut widths = ExperimentRecord::new(
        "ablation_topk",
        "Sparse-tree branch width (top-k) sweep on test-clean",
    );
    for top_k in 2..=4usize {
        let run = run_policy_on_split(
            &context,
            &draft,
            &target,
            split,
            Policy::TwoPassSparseTree(SparseTreeConfig::paper().with_top_k(top_k)),
        );
        widths.push_row(
            ReportRow::new(format!("top-{top_k}"))
                .with("decode_ms_per_10s", run.per_10s().decode_ms())
                .with("draft_ms_per_10s", run.per_10s().draft_ms)
                .with("target_ms_per_10s", run.per_10s().target_ms)
                .with("accepted_per_round", run.stats.accepted_per_round()),
        );
    }
    emit(&widths);

    // (2) Maximum prediction length.
    let mut lengths = ExperimentRecord::new(
        "ablation_max_length",
        "Maximum prediction length sweep for adaptive single-sequence prediction",
    );
    for max_length in [8usize, 16, 24, 32] {
        let run = run_policy_on_split(
            &context,
            &draft,
            &target,
            split,
            Policy::AdaptiveSingleSequence(AdaptiveConfig::paper().with_max_length(max_length)),
        );
        lengths.push_row(
            ReportRow::new(format!("max length {max_length}"))
                .with("decode_ms_per_10s", run.per_10s().decode_ms())
                .with("rounds", run.stats.rounds as f64)
                .with("acceptance_ratio", run.stats.acceptance_ratio()),
        );
    }
    emit(&lengths);

    // (3) Recycling on/off.
    let mut recycling = ExperimentRecord::new(
        "ablation_recycling",
        "Draft sequence recycling on/off at fixed adaptive configuration",
    );
    for (label, config) in [
        ("recycling off", AdaptiveConfig::without_recycling()),
        ("recycling on", AdaptiveConfig::paper()),
    ] {
        let run = run_policy_on_split(
            &context,
            &draft,
            &target,
            split,
            Policy::AdaptiveSingleSequence(config),
        );
        recycling.push_row(
            ReportRow::new(label)
                .with("draft_ms_per_10s", run.per_10s().draft_ms)
                .with("target_ms_per_10s", run.per_10s().target_ms)
                .with("decode_ms_per_10s", run.per_10s().decode_ms())
                .with("recycled_tokens", run.stats.recycled_tokens as f64)
                .with("draft_steps", run.stats.draft_steps as f64),
        );
    }
    emit(&recycling);
}
