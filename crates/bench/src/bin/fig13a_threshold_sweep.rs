//! Fig. 13a — draft and target step counts as the truncation threshold of
//! adaptive single-sequence prediction is swept.
//!
//! Low thresholds change nothing (hardly any token falls below them); medium
//! thresholds cut draft steps while barely increasing verification rounds;
//! high thresholds truncate correct predictions and make verification rounds
//! blow up.  The paper finds 0.4 optimal.

use specasr::{AdaptiveConfig, Policy};
use specasr_audio::Split;
use specasr_bench::{emit, run_policy_on_split, ExperimentContext};
use specasr_metrics::{ExperimentRecord, ReportRow};

fn main() {
    let context = ExperimentContext::standard();
    let (draft, target) = context.whisper_pair();
    let mut record = ExperimentRecord::new(
        "fig13a",
        "Draft and target steps vs truncation threshold (test-clean)",
    );

    for threshold in [0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9] {
        let policy = Policy::AdaptiveSingleSequence(
            AdaptiveConfig::without_recycling().with_threshold(threshold),
        );
        let run = run_policy_on_split(&context, &draft, &target, Split::TestClean, policy);
        record.push_row(
            ReportRow::new(format!("threshold {threshold:.1}"))
                .with("draft_steps", run.stats.draft_steps as f64)
                .with("target_rounds", run.stats.rounds as f64)
                .with("truncations", run.stats.truncations as f64)
                .with("decode_ms_per_10s", run.per_10s().decode_ms()),
        );
    }
    emit(&record);
    println!("shape check: draft steps fall and target rounds rise as the threshold grows, with the total latency minimised at an intermediate threshold.");
}
