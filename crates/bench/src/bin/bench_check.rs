//! `bench_check` — the bench-regression gate.
//!
//! Compares freshly generated serving records under `target/experiments/`
//! against the committed `BENCH_*.json` baselines, failing (exit code 1)
//! when any gated metric (see [`GATED_METRICS`]: throughput, P99 latency,
//! KV-pool peaks/preemptions, streaming first-partial P99 and retraction
//! rate, decoder-backend verification batch occupancy, live-migration
//! counts and in-budget goodput) drifts outside the tolerance band in
//! either direction.
//!
//! ```text
//! # default pairs (serve_load + serve_open_loop + serve_streaming +
//! # serve_elastic), ±15% tolerance:
//! cargo run -p specasr-bench --release --bin bench_check
//!
//! # explicit pairs and tolerance:
//! cargo run -p specasr-bench --release --bin bench_check -- \
//!     --tolerance 0.10 BENCH_serve.json target/experiments/serve_load.json
//! ```
//!
//! To intentionally move a baseline, rerun the sweep with
//! `SPECASR_WRITE_BASELINE=1` and commit the updated `BENCH_*.json`.
//!
//! Pass `--attribution <dump.jsonl>` (repeatable) with a flight-recorder
//! dump from a traced cell (`--trace-out` writes one next to the Perfetto
//! trace) and a gate breach arrives with *where the time went*: the
//! critical-path attribution, device-time ledger, and speculation-efficiency
//! report for that dump is printed under the breach tables, so a drifted
//! `e2e_p99_ms` or `rejected_draft_device_ms` can be read against the
//! per-component decomposition instead of re-running the sweep by hand.

use std::process::ExitCode;

use specasr_bench::experiments_dir;
use specasr_bench::regression::{
    breach_table, compare_records, Violation, DEFAULT_TOLERANCE, GATED_METRICS,
};
use specasr_metrics::ExperimentRecord;
use specasr_trace::{analyze_events, parse_jsonl, TraceAnalysis};

fn load(path: &str) -> Result<ExperimentRecord, String> {
    let content =
        std::fs::read_to_string(path).map_err(|error| format!("cannot read {path}: {error}"))?;
    serde_json::from_str(&content).map_err(|error| format!("cannot parse {path}: {error}"))
}

fn default_pairs() -> Vec<(String, String)> {
    let experiments = experiments_dir();
    [
        "serve_load",
        "serve_open_loop",
        "serve_streaming",
        "serve_elastic",
    ]
    .into_iter()
    .map(|id| {
        let baseline = match id {
            "serve_load" => "BENCH_serve.json",
            "serve_streaming" => "BENCH_stream.json",
            "serve_elastic" => "BENCH_serve_elastic.json",
            _ => "BENCH_serve_open.json",
        };
        (
            baseline.to_owned(),
            experiments.join(format!("{id}.json")).display().to_string(),
        )
    })
    .collect()
}

struct Args {
    tolerance: f64,
    pairs: Vec<(String, String)>,
    attributions: Vec<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut tolerance = DEFAULT_TOLERANCE;
    let mut paths = Vec::new();
    let mut attributions = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--tolerance" => {
                let value = args
                    .next()
                    .ok_or_else(|| "--tolerance needs a value".to_owned())?;
                tolerance = value
                    .parse::<f64>()
                    .map_err(|_| format!("invalid tolerance `{value}`"))?;
                if !tolerance.is_finite() || tolerance < 0.0 {
                    return Err(format!("tolerance must be non-negative, got {value}"));
                }
            }
            "--attribution" => {
                attributions.push(
                    args.next()
                        .ok_or_else(|| "--attribution needs a path".to_owned())?,
                );
            }
            "--help" | "-h" => {
                return Err(
                    "usage: bench_check [--tolerance 0.15] [--attribution <dump.jsonl>]... \
                     [<baseline.json> <fresh.json>]..."
                        .to_owned(),
                )
            }
            path => paths.push(path.to_owned()),
        }
    }
    if paths.len() % 2 != 0 {
        return Err("paths must come in <baseline.json> <fresh.json> pairs".to_owned());
    }
    let pairs = if paths.is_empty() {
        default_pairs()
    } else {
        paths
            .chunks(2)
            .map(|pair| (pair[0].clone(), pair[1].clone()))
            .collect()
    };
    Ok(Args {
        tolerance,
        pairs,
        attributions,
    })
}

/// Prints the attribution report for one flight-recorder dump, indented
/// under the breach output, so a gate failure carries the per-component
/// "where the time went" decomposition of the traced cell.
fn print_attribution(path: &str) {
    let dump = match std::fs::read_to_string(path) {
        Ok(dump) => dump,
        Err(error) => {
            eprintln!("       (attribution dump {path} unreadable: {error})");
            return;
        }
    };
    let lanes = match parse_jsonl(&dump) {
        Ok(lanes) => lanes,
        Err(error) => {
            eprintln!("       (attribution dump {path} unparsable: {error})");
            return;
        }
    };
    let mut analysis = TraceAnalysis::default();
    for (_, events) in &lanes {
        analysis.merge(&analyze_events(events));
    }
    eprintln!("       where the time went ({path}):");
    for line in analysis.render_report().lines() {
        eprintln!("         {line}");
    }
    if let Err(message) = analysis.reconcile() {
        eprintln!("       (attribution dump {path} does not reconcile: {message})");
    }
}

fn main() -> ExitCode {
    let Args {
        tolerance,
        pairs,
        attributions,
    } = match parse_args() {
        Ok(parsed) => parsed,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "bench_check: gating {:?} at ±{:.0}%",
        GATED_METRICS,
        tolerance * 100.0
    );

    let mut failed = false;
    for (baseline_path, fresh_path) in pairs {
        let (baseline, fresh) = match (load(&baseline_path), load(&fresh_path)) {
            (Ok(baseline), Ok(fresh)) => (baseline, fresh),
            (baseline, fresh) => {
                for result in [baseline.map(|_| ()), fresh.map(|_| ())] {
                    if let Err(message) = result {
                        eprintln!("bench_check: {message}");
                    }
                }
                failed = true;
                continue;
            }
        };
        let violations = compare_records(&baseline, &fresh, tolerance);
        if violations.is_empty() {
            println!(
                "  OK   {fresh_path} vs {baseline_path} ({} rows gated)",
                baseline.rows.len()
            );
        } else {
            failed = true;
            eprintln!("  FAIL {fresh_path} vs {baseline_path}:");
            // One full diagnostic table per breached row (not just the
            // tripped metrics), so the whole row's health is visible.
            let mut reported: Vec<&str> = Vec::new();
            for violation in &violations {
                let label = match violation {
                    Violation::MissingRow { label: _ } => {
                        eprintln!("       {violation}");
                        continue;
                    }
                    Violation::MissingMetric { label, .. } | Violation::Drift { label, .. } => {
                        label.as_str()
                    }
                };
                if reported.contains(&label) {
                    continue;
                }
                reported.push(label);
                let base_row = baseline
                    .row(label)
                    .expect("violation labels come from baseline rows");
                eprintln!("       row `{label}`:");
                for line in breach_table(base_row, fresh.row(label), tolerance).lines() {
                    eprintln!("         {line}");
                }
            }
        }
    }

    if failed {
        // A breach arrives with the traced cells' attribution so the drift
        // can be read against where the time actually went.
        for path in &attributions {
            print_attribution(path);
        }
        eprintln!(
            "bench_check: regression gate FAILED — if the change is intentional, regenerate \
             baselines with SPECASR_WRITE_BASELINE=1 and commit them"
        );
        ExitCode::FAILURE
    } else {
        println!("bench_check: all baselines within tolerance");
        ExitCode::SUCCESS
    }
}
