//! `serve_load` — closed-loop load generator for the continuous-batching
//! serving scheduler.
//!
//! Sweeps concurrency (batch size) × decoding policy over a fixed request
//! set, reporting for every cell: throughput (utterances/s and tokens/s on
//! the simulated wall clock), mean draft-acceptance ratio, the device-time
//! speedup realised by grouped verification, and end-to-end latency
//! percentiles (P50/P99) plus median time-to-first-token.
//!
//! A second block of cells re-serves every policy with the two draft-free
//! drafters (CTC-encoder collapse and the token-map index) at a fixed
//! concurrency, so the record directly compares acceptance and throughput of
//! model-draft vs `+ctc` vs `+token-map` speculation per policy. Draft-free
//! sessions hold no draft KV sub-pool blocks and dispatch no draft-lane
//! backend batches, which is visible in the occupancy/throughput columns.
//!
//! Every cell serves under a depth-4 in-flight window
//! (`max_in_flight_waves`), so verify waves and next-round drafts overlap
//! across tick boundaries; a final `specasr-asp+rpc@c8` cell re-serves the
//! adaptive operating point with the target model behind the `RpcBackend`
//! process boundary and must match the in-process row digit for digit.
//!
//! The whole simulation is deterministic, so the emitted record doubles as a
//! perf baseline: the run is always written to `target/experiments/` (like
//! every figure binary), and additionally to the committed
//! `BENCH_serve.json` baseline when the `SPECASR_WRITE_BASELINE` environment
//! variable is set — the CI bench-regression gate (`bench_check`) compares
//! the fresh record against the committed file, so regenerating the
//! baseline is an explicit act, never a side effect of running the sweep.
//!
//! Run with: `cargo run -p specasr-bench --release --bin serve_load`
//!
//! Pass `--trace-out <path>` to record one cell (default `specasr-asp@c8`,
//! override with `--trace-cell <label>`) in the flight recorder and write
//! its Chrome/Perfetto trace JSON.

use std::sync::Arc;

use specasr::{
    AdaptiveConfig, DrafterKind, Policy, SparseTreeConfig, SpeculativeConfig, TokenMapDrafter,
};
use specasr_audio::{EncoderProfile, Split};
use specasr_bench::{emit, ExperimentContext, TraceArgs};
use specasr_metrics::{ExperimentRecord, ReportRow};
use specasr_models::CtcDrafter;
use specasr_server::{FlightRecording, Scheduler, ServerConfig, ServerStats};
use specasr_tokenizer::TokenMapIndex;

/// Utterances per split in the serving corpus (all four splits are served,
/// mixing clean and noisy audio as production traffic would).
const UTTERANCES_PER_SPLIT: usize = 12;

/// Concurrency levels swept (scheduler `max_batch`).
const CONCURRENCY_LEVELS: [usize; 4] = [1, 4, 8, 16];

fn policies() -> Vec<(&'static str, Policy)> {
    vec![
        (
            "spec-8-1",
            Policy::Speculative(SpeculativeConfig::short_single()),
        ),
        (
            "specasr-asp",
            Policy::AdaptiveSingleSequence(AdaptiveConfig::paper()),
        ),
        (
            "specasr-tsp",
            Policy::TwoPassSparseTree(SparseTreeConfig::paper()),
        ),
    ]
}

/// Concurrency at which the drafter-comparison cells run: high enough for the
/// freed draft sub-pool to matter, low enough to keep the sweep cheap.
const DRAFTER_CONCURRENCY: usize = 8;

/// In-flight window every cell serves under (`max_in_flight_waves`): deep
/// enough that the next round's drafts and verify waves submit while the
/// previous tick's waves drain, which is where the c≥8 throughput comes
/// from.  Transcripts are byte-identical to drain-per-tick at any depth.
const PIPELINE_DEPTH: usize = 4;

/// Draft-free drafter kinds compared against the model-draft baseline.
const DRAFT_FREE_KINDS: [DrafterKind; 2] = [DrafterKind::CtcEncoder, DrafterKind::TokenMap];

#[allow(clippy::too_many_arguments)]
fn run_cell(
    context: &ExperimentContext,
    policy: Policy,
    drafter: DrafterKind,
    token_map: &Arc<TokenMapIndex>,
    concurrency: usize,
    rpc: bool,
    trace: &TraceArgs,
    label: &str,
) -> (ServerStats, Option<FlightRecording>) {
    let (draft, target) = context.whisper_pair();
    let ctc = CtcDrafter::paired(&target);
    let config = ServerConfig::default()
        .with_max_batch(concurrency)
        .with_max_in_flight_waves(PIPELINE_DEPTH)
        .with_queue_depth(4 * Split::ALL.len() * UTTERANCES_PER_SPLIT);
    let mut scheduler = if rpc {
        Scheduler::with_rpc_target(
            draft,
            target,
            context.binding.clone(),
            EncoderProfile::whisper_medium_encoder(),
            config,
        )
    } else {
        Scheduler::new(
            draft,
            target,
            context.binding.clone(),
            EncoderProfile::whisper_medium_encoder(),
            config,
        )
    };
    match drafter {
        DrafterKind::ModelDraft => {}
        DrafterKind::CtcEncoder => scheduler.install_drafter(Arc::new(ctc)),
        DrafterKind::TokenMap => {
            scheduler.install_drafter(Arc::new(TokenMapDrafter::new(Arc::clone(token_map))));
        }
    }
    if trace.wants(label) {
        scheduler.set_trace(trace.config());
    }
    for split in Split::ALL {
        for utterance in context.corpus.split(split) {
            scheduler
                .submit_with_drafter(policy, drafter, utterance)
                .expect("queue depth covers the whole request set");
        }
    }
    scheduler.run_until_idle();
    let recording = scheduler.take_trace_recording();
    (scheduler.stats().clone(), recording)
}

fn main() {
    let trace = TraceArgs::parse("specasr-asp@c8");
    let context = ExperimentContext::with_size(UTTERANCES_PER_SPLIT);
    let total_requests = Split::ALL.len() * UTTERANCES_PER_SPLIT;
    let mut record = ExperimentRecord::new(
        "serve_load",
        format!(
            "Serving throughput/latency, {total_requests} requests, concurrency × policy sweep"
        ),
    );

    let token_map = context.token_map_index();
    let run_one = |record: &mut ExperimentRecord,
                   policy: Policy,
                   drafter: DrafterKind,
                   concurrency: usize,
                   rpc: bool,
                   label: String| {
        let (stats, recording) = run_cell(
            &context,
            policy,
            drafter,
            &token_map,
            concurrency,
            rpc,
            &trace,
            &label,
        );
        if let Some(recording) = &recording {
            trace.write(&[("worker-0", recording)]);
        }
        assert_eq!(stats.completed(), total_requests);
        let e2e = stats.e2e_histogram();
        let ttft = stats.ttft_histogram();
        record.push_row(
            ReportRow::new(label)
                .with("concurrency", concurrency as f64)
                .with("drafter", drafter as u8 as f64)
                .with("throughput_utps", stats.utterances_per_second())
                .with("tokens_per_s", stats.tokens_per_second())
                .with("acceptance", stats.mean_acceptance())
                .with("rejected_draft_device_ms", stats.rejected_draft_device_ms())
                .with("batch_speedup", stats.batching_speedup())
                .with("e2e_p50_ms", e2e.percentile(0.50))
                .with("e2e_p99_ms", e2e.percentile(0.99))
                .with("ttft_p50_ms", ttft.percentile(0.50))
                .with(
                    "backend_batch_occupancy",
                    stats.backend().verify_batch_occupancy(),
                )
                .with("in_flight_depth", stats.backend().peak_in_flight() as f64)
                .with("wall_ms", stats.wall_ms()),
        );
    };

    for (name, policy) in policies() {
        for concurrency in CONCURRENCY_LEVELS {
            let label = format!("{name}@c{concurrency}");
            run_one(
                &mut record,
                policy,
                DrafterKind::ModelDraft,
                concurrency,
                false,
                label,
            );
        }
    }

    // Drafter comparison: the same policies re-served with draft-free
    // speculation at one fixed concurrency. The model-draft rows above
    // (`<policy>@c8`) are the baseline these compare against.
    for (name, policy) in policies() {
        for kind in DRAFT_FREE_KINDS {
            let label = format!("{name}+{}@c{DRAFTER_CONCURRENCY}", kind.label());
            run_one(&mut record, policy, kind, DRAFTER_CONCURRENCY, false, label);
        }
    }

    // Process-boundary comparison: the adaptive c=8 operating point with
    // the target model behind the RPC worker thread instead of in-process.
    // The wire mirrors the in-process backend's modeled timing exactly, so
    // against `specasr-asp@c8` every column must match to the digit — the
    // row exists to prove the boundary costs nothing it shouldn't.
    run_one(
        &mut record,
        Policy::AdaptiveSingleSequence(AdaptiveConfig::paper()),
        DrafterKind::ModelDraft,
        DRAFTER_CONCURRENCY,
        true,
        format!("specasr-asp+rpc@c{DRAFTER_CONCURRENCY}"),
    );

    emit(&record);
    if std::env::var_os("SPECASR_WRITE_BASELINE").is_some() {
        match std::fs::write("BENCH_serve.json", record.to_json()) {
            Ok(()) => println!("(baseline record written to BENCH_serve.json)"),
            Err(error) => eprintln!("warning: could not write BENCH_serve.json: {error}"),
        }
    }
    println!(
        "shape check: throughput rises with concurrency while P99 latency trades \
         off; adaptive drafting wins at low concurrency, while at high concurrency \
         its longer draft phases become the batched-tick bottleneck — the scheduling \
         headroom the ROADMAP's async-backend item targets."
    );
}
