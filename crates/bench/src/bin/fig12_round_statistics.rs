//! Fig. 12 — round-level statistics on test-clean: (a) the number of draft
//! prediction and target verification rounds, (b) the average number of draft
//! decoding steps, predicted tokens per round, and accepted tokens per round.
//!
//! Adaptive single-sequence prediction removes most ineffective draft steps
//! (the paper reports a 74.1 % reduction and a 94.4 % decoding-acceptance
//! ratio); two-pass sparse-tree prediction raises the accepted length per
//! round (+106.6 % in the paper) at a slight acceptance-ratio cost.

use specasr::{AdaptiveConfig, Policy, SparseTreeConfig, SpeculativeConfig};
use specasr_audio::Split;
use specasr_bench::{emit, run_policy_on_split, ExperimentContext};
use specasr_metrics::{ExperimentRecord, ReportRow};

fn main() {
    let context = ExperimentContext::standard();
    let (draft, target) = context.whisper_pair();
    let policies = [
        Policy::Speculative(SpeculativeConfig::short_single()),
        Policy::Speculative(SpeculativeConfig::long_single()),
        Policy::AdaptiveSingleSequence(AdaptiveConfig::paper()),
        Policy::TwoPassSparseTree(SparseTreeConfig::paper()),
    ];

    let mut record = ExperimentRecord::new(
        "fig12",
        "Rounds, draft steps, predicted and accepted tokens per round (test-clean)",
    );
    for policy in policies {
        let run = run_policy_on_split(&context, &draft, &target, Split::TestClean, policy);
        record.push_row(
            ReportRow::new(policy.name())
                .with("rounds", run.stats.rounds as f64)
                .with("draft_steps", run.stats.draft_steps as f64)
                .with("draft_steps_per_round", run.stats.draft_steps_per_round())
                .with("predicted_per_round", run.stats.predicted_per_round())
                .with("accepted_per_round", run.stats.accepted_per_round())
                .with("acceptance_ratio", run.stats.acceptance_ratio())
                .with("recycled_tokens", run.stats.recycled_tokens as f64),
        );
    }
    emit(&record);
    println!("shape check: SpecASR policies need fewer rounds, ASP has the highest acceptance ratio, TSP the highest accepted length per round.");
}
