//! Fig. 7 — share of decoding latency contributed by draft prediction vs
//! target verification, as the prediction length and the draft/target size
//! ratio vary (LibriSpeech test-clean).
//!
//! Longer drafts shift the bottleneck towards the draft model; larger target
//! models shift it back towards verification — Observation 3 of the paper,
//! and the reason SpecASR needs both ASP and TSP.

use specasr::{Policy, SpeculativeConfig};
use specasr_audio::Split;
use specasr_bench::{emit, run_policy_on_split, ExperimentContext};
use specasr_metrics::{ExperimentRecord, ReportRow};
use specasr_models::ModelProfile;

fn main() {
    let context = ExperimentContext::standard();
    let pairs = [
        ("tiny→medium", None),
        ("tinyllama→llama-7b", Some(ModelProfile::llama_7b())),
        ("tinyllama→vicuna-13b", Some(ModelProfile::vicuna_13b())),
    ];
    let mut record = ExperimentRecord::new(
        "fig07",
        "Draft vs target share of decoding latency on test-clean",
    );

    for (pair_label, llm) in pairs {
        let (draft, target) = match &llm {
            None => context.whisper_pair(),
            Some(profile) => context.llm_pair(profile),
        };
        for prediction_length in [2usize, 4, 8, 16, 24] {
            let run = run_policy_on_split(
                &context,
                &draft,
                &target,
                Split::TestClean,
                Policy::Speculative(SpeculativeConfig::new(prediction_length, 1)),
            );
            let total = run.latency.decode_ms();
            record.push_row(
                ReportRow::new(format!("{pair_label}, length {prediction_length}"))
                    .with("draft_share", run.latency.draft_ms / total)
                    .with("target_share", run.latency.target_ms / total)
                    .with("decode_ms_per_10s", run.per_10s().decode_ms()),
            );
        }
    }
    emit(&record);
    println!("shape check: the draft share grows with the prediction length and shrinks as the target model gets larger.");
}
