//! Fig. 6b — alignment of *unaccepted* draft suffixes with the verified
//! (target) continuation.
//!
//! Even when a draft sequence fails verification, the tokens after the first
//! mismatch remain highly aligned with the target's continuation at the same
//! or an adjacent position — the property that makes draft sequence recycling
//! profitable.  The text-task pair is shown for contrast.

use specasr_audio::Split;
use specasr_bench::{emit, ExperimentContext};
use specasr_metrics::{ExperimentRecord, ReportRow};
use specasr_models::alignment::{suffix_alignment, AlignmentStats};
use specasr_models::{AsrDecoderModel, ModelProfile, TextTaskModel};
use specasr_tokenizer::TokenId;

/// Measures rejected-suffix alignment for a draft/target pair: for every
/// round of a fixed-length (16) speculative decode, take the draft tokens
/// after the first mismatch and compare them against the target's verified
/// continuation at offsets 0 and ±1.
fn rejected_suffix_alignment<M: AsrDecoderModel>(
    context: &ExperimentContext,
    draft: &M,
    target: &M,
    max_offset: usize,
) -> AlignmentStats {
    let mut stats = AlignmentStats::default();
    for utterance in context.corpus.split(Split::TestOther) {
        let audio = context.binding.bind(utterance);
        let trajectory = target.greedy_transcript(&audio);
        let mut position = 0usize;
        while position < trajectory.len() {
            // Draft 16 tokens from the committed prefix (= target trajectory).
            let mut draft_tokens: Vec<TokenId> = Vec::with_capacity(16);
            let mut prefix = trajectory[..position].to_vec();
            for _ in 0..16 {
                let token = draft.greedy_token(&audio, &prefix);
                draft_tokens.push(token);
                prefix.push(token);
                if token == audio.eos() {
                    break;
                }
            }
            // Find the first mismatch against the target continuation.
            let continuation = &trajectory[position..];
            let mismatch = draft_tokens
                .iter()
                .zip(continuation.iter())
                .position(|(d, t)| d != t);
            match mismatch {
                Some(k) => {
                    let rejected_suffix = &draft_tokens[k + 1..];
                    let target_continuation: Vec<TokenId> =
                        continuation.iter().skip(k + 1).copied().collect();
                    stats.accumulate(&suffix_alignment(
                        rejected_suffix,
                        &target_continuation,
                        max_offset,
                    ));
                    position += k + 1;
                }
                None => {
                    position += draft_tokens.len().max(1);
                }
            }
        }
    }
    stats
}

fn main() {
    let context = ExperimentContext::standard();
    let (asr_draft, asr_target) = context.whisper_pair();
    let text_target = TextTaskModel::target(ModelProfile::llama_7b(), context.seed ^ 0x71);
    let text_draft = TextTaskModel::draft_paired(
        ModelProfile::tiny_llama_1b(),
        context.seed ^ 0x72,
        &text_target,
    );

    let mut record = ExperimentRecord::new(
        "fig06b",
        "Alignment of rejected draft suffixes with the verified continuation (test-other)",
    );
    for max_offset in [0usize, 1, 2] {
        let asr = rejected_suffix_alignment(&context, &asr_draft, &asr_target, max_offset);
        let text = rejected_suffix_alignment(&context, &text_draft, &text_target, max_offset);
        record.push_row(
            ReportRow::new(format!("offset ≤ {max_offset}"))
                .with("asr_alignment", asr.rate())
                .with("asr_tokens", asr.total as f64)
                .with("text_alignment", text.rate())
                .with("text_tokens", text.total as f64),
        );
    }
    emit(&record);
    println!("shape check: rejected ASR suffixes re-align with the verified sequence far more often than text-task suffixes.");
}
