//! Fig. 5b — speculative acceptance when the target token may appear anywhere
//! in the draft's top-k candidates, for the ASR task vs a text task.
//!
//! The audio conditioning of ASR keeps the draft and target aligned, so the
//! acceptance curve sits clearly above the text-task curve at every k.

use specasr_audio::Split;
use specasr_bench::{emit, ExperimentContext};
use specasr_metrics::{ExperimentRecord, ReportRow};
use specasr_models::{AsrDecoderModel, ModelProfile, TextTaskModel};

/// Fraction of positions (along the target trajectory) where the target's
/// token appears within the draft's top-k candidates.
fn topk_acceptance<M: AsrDecoderModel>(
    context: &ExperimentContext,
    draft: &M,
    target: &M,
    k: usize,
) -> f64 {
    let mut hits = 0usize;
    let mut total = 0usize;
    for utterance in context.corpus.split(Split::TestClean) {
        let audio = context.binding.bind(utterance);
        let trajectory = target.greedy_transcript(&audio);
        for position in 0..trajectory.len() {
            let logits = draft.next_logits(&audio, &trajectory[..position]);
            total += 1;
            if logits
                .rank_of(trajectory[position])
                .map(|rank| rank <= k)
                .unwrap_or(false)
            {
                hits += 1;
            }
        }
    }
    hits as f64 / total.max(1) as f64
}

fn main() {
    let context = ExperimentContext::standard();
    let (asr_draft, asr_target) = context.whisper_pair();
    let text_target = TextTaskModel::target(ModelProfile::llama_7b(), context.seed ^ 0x71);
    let text_draft = TextTaskModel::draft_paired(
        ModelProfile::tiny_llama_1b(),
        context.seed ^ 0x72,
        &text_target,
    );

    let mut record = ExperimentRecord::new(
        "fig05b",
        "Speculative acceptance with top-k draft logits: ASR vs text task",
    );
    for k in 1..=4usize {
        let asr = topk_acceptance(&context, &asr_draft, &asr_target, k);
        let text = topk_acceptance(&context, &text_draft, &text_target, k);
        record.push_row(
            ReportRow::new(format!("top-{k}"))
                .with("asr_acceptance", asr)
                .with("text_acceptance", text)
                .with("gap", asr - text),
        );
    }
    emit(&record);
    println!("shape check: the ASR curve dominates the text curve at every k.");
}
