//! Fig. 1 — parameter ratio (a) and relative latency (b) of audio encoders vs
//! LLM decoders in LLM-based ASR models.
//!
//! The paper motivates SpecASR by showing that the LLM decoder holds almost
//! all the parameters and almost all the latency.  This binary reproduces the
//! comparison for three representative LLM-ASR configurations (a BESTOW-class
//! 1.1 B decoder, a Speech-Llama-class 7 B decoder, and a Seed-ASR-class 13 B
//! decoder) on 10 s of audio decoded autoregressively.

use specasr::Policy;
use specasr_audio::{EncoderProfile, Split};
use specasr_bench::{emit, run_policy_on_split, ExperimentContext};
use specasr_metrics::{ExperimentRecord, ReportRow};
use specasr_models::ModelProfile;

fn main() {
    let context = ExperimentContext::standard();
    let configurations = [
        (
            "bestow-class (1.1B)",
            EncoderProfile::conformer_large(),
            ModelProfile::tiny_llama_1b(),
        ),
        (
            "speech-llama-class (7B)",
            EncoderProfile::whisper_medium_encoder(),
            ModelProfile::llama_7b(),
        ),
        (
            "seed-asr-class (13B)",
            EncoderProfile::whisper_medium_encoder(),
            ModelProfile::vicuna_13b(),
        ),
    ];

    let mut record = ExperimentRecord::new(
        "fig01",
        "Parameter ratio and relative latency of audio encoder vs LLM decoder",
    );
    for (label, encoder, decoder) in configurations {
        // (a) parameter split.
        let encoder_params = encoder.parameters() as f64;
        let decoder_params = decoder.parameters() as f64;
        let decoder_param_share = decoder_params / (decoder_params + encoder_params);

        // (b) latency split on the split's audio, decoder run autoregressively
        // under the LLM latency profile.
        let (draft, target) = context.llm_pair(&decoder);
        let run = run_policy_on_split(
            &context,
            &draft,
            &target,
            Split::TestClean,
            Policy::Autoregressive,
        );
        let encoder_ms = encoder.latency_ms_for_audio(run.audio_seconds);
        let decoder_ms = run.latency.decode_ms();
        let decoder_latency_share = decoder_ms / (decoder_ms + encoder_ms);

        record.push_row(
            ReportRow::new(label)
                .with("encoder_params_M", encoder_params / 1e6)
                .with("decoder_params_M", decoder_params / 1e6)
                .with("decoder_param_share", decoder_param_share)
                .with("encoder_ms_per_split", encoder_ms)
                .with("decoder_ms_per_split", decoder_ms)
                .with("decoder_latency_share", decoder_latency_share),
        );
    }
    emit(&record);
    println!(
        "shape check: the decoder holds >85 % of parameters and latency in every configuration."
    );
}
