//! Fig. 11 — speedup of SpecASR (adaptive single-sequence prediction and
//! two-pass sparse-tree prediction) against autoregressive decoding and the
//! speculative baselines (8, 1) / (16, 1) / (8, 2), on all four LibriSpeech
//! splits, under the Llama-7B and Vicuna-13B target latency profiles.
//!
//! The paper reports 3.04×–3.79× over autoregressive decoding and
//! 1.25×–1.84× over the speculative baselines for Vicuna-13B (lower for
//! Llama-7B); the reproduced numbers should land in a similar band with the
//! same ordering.

use specasr::{AdaptiveConfig, Policy, SparseTreeConfig, SpeculativeConfig};
use specasr_audio::Split;
use specasr_bench::{emit, run_policy_on_split, ExperimentContext};
use specasr_metrics::{ExperimentRecord, ReportRow};
use specasr_models::ModelProfile;

fn main() {
    let context = ExperimentContext::standard();
    let targets = [
        ("llama-7b", ModelProfile::llama_7b()),
        ("vicuna-13b", ModelProfile::vicuna_13b()),
    ];
    let policies = [
        Policy::Autoregressive,
        Policy::Speculative(SpeculativeConfig::short_single()),
        Policy::Speculative(SpeculativeConfig::long_single()),
        Policy::Speculative(SpeculativeConfig::short_double_beam()),
        Policy::AdaptiveSingleSequence(AdaptiveConfig::paper()),
        Policy::TwoPassSparseTree(SparseTreeConfig::paper()),
    ];

    for (target_label, llm) in targets {
        for split in Split::ALL {
            let mut record = ExperimentRecord::new(
                format!("fig11_{}_{}", target_label, split.name()),
                format!("Speedup comparison on {split} with the {target_label} target"),
            );
            let (draft, target) = context.llm_pair(&llm);
            let autoregressive =
                run_policy_on_split(&context, &draft, &target, split, Policy::Autoregressive);
            let mut best_baseline_ms = f64::INFINITY;
            let mut runs = Vec::new();
            for policy in policies {
                let run = run_policy_on_split(&context, &draft, &target, split, policy);
                if matches!(policy, Policy::Speculative(_)) {
                    best_baseline_ms = best_baseline_ms.min(run.latency.decode_ms());
                }
                runs.push((policy, run));
            }
            for (policy, run) in &runs {
                let over_baseline = if matches!(
                    policy,
                    Policy::AdaptiveSingleSequence(_) | Policy::TwoPassSparseTree(_)
                ) {
                    best_baseline_ms / run.latency.decode_ms()
                } else {
                    f64::NAN
                };
                let mut row = ReportRow::new(policy.name())
                    .with("decode_ms_per_10s", run.per_10s().decode_ms())
                    .with(
                        "speedup_vs_autoregressive",
                        run.speedup_over(&autoregressive),
                    )
                    .with("wer_percent", run.wer.wer() * 100.0);
                if over_baseline.is_finite() {
                    row = row.with("speedup_vs_best_speculative", over_baseline);
                }
                record.push_row(row);
            }
            emit(&record);
        }
    }
    println!("shape check: SpecASR > speculative baselines > autoregressive on every split, with larger gains for vicuna-13b; WER identical across policies.");
}
