//! `serve_streaming` — the streaming-ASR serving sweep.
//!
//! Open-loop Poisson arrivals of *chunked* audio streams against one
//! continuous-batching scheduler: every request's audio lands chunk by chunk
//! (per-request cadence drawn by [`specasr_server::LoadGen`]), each chunk
//! triggers an incremental re-decode from the committed prefix, and partial
//! transcripts are emitted under the stream commit rule (horizon margin +
//! K-stability; final transcripts stay byte-identical to offline decoding).
//!
//! The sweep crosses chunk duration × batch concurrency × decode policy and
//! reports the numbers that matter for live captioning:
//!
//! * `first_partial_p50/p99_ms` — arrival → first partial (the streaming
//!   TTFT; the paper's latency target),
//! * `retraction_rate` — shown hypothesis tokens later retracted (partial
//!   stability),
//! * `final_e2e_p50/p99_ms` — arrival → final transcript,
//! * `partials_per_utt`, `throughput_utps`, and the KV-pool gauges.
//!
//! Deterministic end to end, so the record doubles as a perf baseline:
//! always written to `target/experiments/serve_streaming.json`, and to the
//! committed `BENCH_stream.json` when `SPECASR_WRITE_BASELINE` is set (the
//! CI gate compares fresh records against the committed baseline).
//!
//! Run with: `cargo run -p specasr-bench --release --bin serve_streaming`
//!
//! Pass `--trace-out <path>` to record one cell (default
//! `adaptive-c600ms-b8`, override with `--trace-cell <label>`) in the
//! flight recorder and write its Chrome/Perfetto trace JSON.

use specasr::{AdaptiveConfig, Policy, SpeculativeConfig};
use specasr_audio::{EncoderProfile, Split, Utterance};
use specasr_bench::{emit, ExperimentContext, TraceArgs, EXPERIMENT_SEED};
use specasr_metrics::{ExperimentRecord, ReportRow};
use specasr_server::{run_open_loop_streaming, LoadGen, Scheduler, ServerConfig, StreamConfig};

/// Utterances per split in the streaming corpus.
const UTTERANCES_PER_SPLIT: usize = 8;

/// Streams offered per cell (the corpus pool is cycled).
const REQUESTS_PER_CELL: usize = 32;

/// Offered stream-arrival rate (streams per second).  Streams are long-lived
/// (they span their audio duration), so even a modest rate keeps several
/// streams concurrently in flight.
const ARRIVAL_QPS: f64 = 12.0;

/// Chunk durations swept (milliseconds of audio per chunk).
const CHUNK_MS: [u64; 3] = [300, 600, 1_200];

/// Batch concurrency levels swept.
const BATCH_SIZES: [usize; 2] = [2, 8];

/// Per-request cadence spread around the nominal chunk duration.
const CADENCE_SPREAD: f64 = 0.25;

fn policies() -> Vec<(&'static str, Policy)> {
    vec![
        (
            "adaptive",
            Policy::AdaptiveSingleSequence(AdaptiveConfig::paper()),
        ),
        (
            "spec8",
            Policy::Speculative(SpeculativeConfig::short_single()),
        ),
    ]
}

fn run_cell(
    context: &ExperimentContext,
    pool: &[&Utterance],
    policy_name: &str,
    policy: Policy,
    chunk_ms: u64,
    max_batch: usize,
    trace: &TraceArgs,
) -> ReportRow {
    let label = format!("{policy_name}-c{chunk_ms}ms-b{max_batch}");
    let (draft, target) = context.whisper_pair();
    let mut scheduler = Scheduler::new(
        draft,
        target,
        context.binding.clone(),
        EncoderProfile::whisper_medium_encoder(),
        ServerConfig::default()
            .with_max_batch(max_batch)
            // Pipelined scheduling: overlap verify waves across ticks.
            .with_max_in_flight_waves(4)
            // Deep queue: this sweep measures partial latency, not shedding.
            .with_queue_depth(4 * REQUESTS_PER_CELL),
    );
    if trace.wants(&label) {
        scheduler.set_trace(trace.config());
    }
    let mut loadgen = LoadGen::new(EXPERIMENT_SEED ^ chunk_ms, ARRIVAL_QPS);
    let stream = StreamConfig::default()
        .with_chunk_seconds(chunk_ms as f64 / 1_000.0)
        .with_seed(EXPERIMENT_SEED);
    let workload = (0..REQUESTS_PER_CELL).map(|index| (policy, pool[index % pool.len()]));
    let report = run_open_loop_streaming(
        &mut scheduler,
        &mut loadgen,
        stream,
        CADENCE_SPREAD,
        workload,
    );
    assert_eq!(report.outcomes.len(), REQUESTS_PER_CELL);
    assert_eq!(report.rejected, 0, "deep queues must never shed");
    if let Some(recording) = scheduler.take_trace_recording() {
        trace.write(&[("worker-0", &recording)]);
    }

    let stats = scheduler.stats();
    assert_eq!(stats.streaming_completed(), REQUESTS_PER_CELL);
    let memory = stats.memory();
    ReportRow::new(label)
        .with("chunk_ms", chunk_ms as f64)
        .with("max_batch", max_batch as f64)
        .with("offered_qps", report.offered_qps())
        .with("throughput_utps", report.completed_qps())
        .with("first_partial_p50_ms", stats.first_partial_p50_ms())
        .with("first_partial_p99_ms", stats.first_partial_p99_ms())
        .with("partial_span_p99_ms", stats.partial_span_p99_ms())
        .with("retraction_rate", stats.retraction_rate())
        .with(
            "partials_per_utt",
            stats.partials_emitted() as f64 / REQUESTS_PER_CELL as f64,
        )
        .with("final_e2e_p50_ms", stats.e2e_p50_ms())
        .with("final_e2e_p99_ms", stats.e2e_p99_ms())
        .with("acceptance", stats.mean_acceptance())
        .with("rejected_draft_device_ms", stats.rejected_draft_device_ms())
        .with("peak_kv_blocks", memory.peak_kv_blocks() as f64)
        .with("preemptions", memory.preemptions() as f64)
}

fn main() {
    let trace = TraceArgs::parse("adaptive-c600ms-b8");
    let context = ExperimentContext::with_size(UTTERANCES_PER_SPLIT);
    let pool: Vec<&Utterance> = Split::ALL
        .iter()
        .flat_map(|&split| context.corpus.split(split))
        .collect();
    let mut record = ExperimentRecord::new(
        "serve_streaming",
        format!(
            "Open-loop streaming serving, {REQUESTS_PER_CELL} chunked streams/cell at \
             {ARRIVAL_QPS} QPS, chunk duration × batch × policy sweep"
        ),
    );
    for (policy_name, policy) in policies() {
        for chunk_ms in CHUNK_MS {
            for max_batch in BATCH_SIZES {
                record.push_row(run_cell(
                    &context,
                    &pool,
                    policy_name,
                    policy,
                    chunk_ms,
                    max_batch,
                    &trace,
                ));
            }
        }
    }

    emit(&record);
    if std::env::var_os("SPECASR_WRITE_BASELINE").is_some() {
        match std::fs::write("BENCH_stream.json", record.to_json()) {
            Ok(()) => println!("(baseline record written to BENCH_stream.json)"),
            Err(error) => eprintln!("warning: could not write BENCH_stream.json: {error}"),
        }
    }
    println!(
        "shape check: first-partial latency tracks the chunk duration (smaller chunks \
         hear a decodable prefix sooner), sitting far below the final-transcript \
         latency — the TTFT win streaming exists for.  The retraction rate stays in \
         the low single-digit percents across chunkings (only the boundary-window \
         tail ever flickers) and speculative policies keep their acceptance under \
         chunked re-decoding; committed transcripts are byte-identical to offline \
         decodes by construction."
    );
}
