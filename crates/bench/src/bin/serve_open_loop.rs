//! `serve_open_loop` — open-loop load generation against the sharded router.
//!
//! Sweeps fleet size (1/2/4/8 workers) × admission policy (FIFO /
//! aged shortest-audio-first) × offered QPS, with arrivals drawn from a
//! seeded Poisson process ([`specasr_server::LoadGen`]).  Unlike the
//! closed-loop `serve_load` sweep, the offered rate is independent of how far
//! behind the fleet falls, so each fleet size traces the queueing-theory
//! curve the closed loop hides: P99 latency stays near the no-load service
//! time while the offered rate is below the fleet's saturation QPS, then
//! grows by an order of magnitude once arrivals outpace service.
//!
//! Five companion studies ride along: a KV-budget sweep, a shallow-queue
//! shedding study, a drafter comparison (`w2-fifo+ctc@q50` /
//! `w2-fifo+token-map@q50`) that re-serves the 2-worker FIFO operating point
//! with draft-free speculation via [`specasr_server::Router::install_drafter`],
//! a process-boundary comparison (`w2-fifo+rpc@q50`, also reachable with
//! the `--rpc` flag) that re-serves it with every worker's target model
//! behind the `RpcBackend` worker thread, and an admission-ordering study
//! (`w1-{fifo,saf,edf}-b@q*-shallow4`) that re-serves the overload cells
//! with mixed TTFT budgets under FIFO, aged shortest-audio-first, and
//! earliest-deadline-first order, recording the in-budget goodput each
//! achieves.  All cells run under a depth-4 in-flight window
//! (`max_in_flight_waves`).
//!
//! The run is deterministic (seeded arrivals over a seeded corpus and model
//! pair), so the emitted record doubles as a perf baseline: it is always
//! written to `target/experiments/serve_open_loop.json`, and additionally to
//! the committed `BENCH_serve_open.json` baseline when the
//! `SPECASR_WRITE_BASELINE` environment variable is set (the CI
//! bench-regression gate compares the fresh record against the committed
//! one, so regenerating the baseline is an explicit act).
//!
//! Run with: `cargo run -p specasr-bench --release --bin serve_open_loop`
//!
//! Pass `--trace-out <path>` to record one cell (default `w2-fifo@q50`,
//! override with `--trace-cell <label>`) in the flight recorder and write
//! its Chrome/Perfetto trace JSON (one lane per worker).  `--smoke` runs
//! only the default trace cell and skips record emission — the CI trace
//! smoke step.

use std::sync::Arc;

use specasr::{AdaptiveConfig, DrafterKind, Policy, TokenMapDrafter};
use specasr_audio::{EncoderProfile, Split, Utterance};
use specasr_bench::{emit, ExperimentContext, TraceArgs, EXPERIMENT_SEED};
use specasr_metrics::{ExperimentRecord, ReportRow};
use specasr_models::CtcDrafter;
use specasr_server::{
    run_open_loop, run_open_loop_budgeted, run_open_loop_drafted, AdmissionOrdering,
    AdmissionPolicy, LoadGen, Router, RouterConfig, ServerConfig, SloClass,
};
use specasr_tokenizer::TokenMapIndex;

/// Utterances per split in the serving corpus.
const UTTERANCES_PER_SPLIT: usize = 12;

/// Open-loop requests offered per cell (the corpus pool is cycled).
const REQUESTS_PER_CELL: usize = 160;

/// Fleet sizes swept.
const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Offered request rates swept (requests per second).  One worker saturates
/// in the low tens of QPS, eight workers near two hundred, so every fleet
/// size crosses its knee inside this grid.
const QPS_LEVELS: [f64; 5] = [10.0, 25.0, 50.0, 100.0, 200.0];

/// Per-worker KV-pool budgets swept by the memory study (2 workers, FIFO,
/// 50 QPS): ample (effectively unconstrained, the default), constrained
/// (prefix sharing and occasional preemption), and tight (sustained
/// preemption pressure).  Every budget still admits any single request, so
/// the cell completes all 160 requests and the comparison is apples to
/// apples.
const KV_BLOCK_LEVELS: [usize; 3] = [4096, 96, 48];

/// Queue depth of the shedding companion study: production-depth queues (≤ 4
/// waiting requests per worker) trade the deep-queue P99 blow-up for
/// rejections, so the interesting numbers become the rejection rate and the
/// goodput under overload.
const SHALLOW_QUEUE_DEPTH: usize = 4;

/// Offered rates of the shedding study (1 worker saturates in the low tens
/// of QPS; both cells sit at or past the knee where shedding engages).
const SHED_QPS_LEVELS: [f64; 3] = [25.0, 50.0, 200.0];

/// TTFT budgets cycled by request index in the ordering study: one
/// Interactive, one Standard, one Relaxed request per cycle, so every
/// overload cell carries a deadline mix the admission order can exploit.
const TTFT_BUDGETS_MS: [f64; 3] = [500.0, 2_000.0, 8_000.0];

/// The budget a completed request was submitted with, recovered from its
/// SLO class (the classes are keyed exactly on the budget boundaries the
/// cycle uses).
fn budget_of(slo: SloClass) -> f64 {
    match slo {
        SloClass::Interactive => 500.0,
        SloClass::Standard => 2_000.0,
        SloClass::Relaxed => 8_000.0,
        SloClass::BestEffort => f64::INFINITY,
    }
}

/// In-flight window every cell serves under (`max_in_flight_waves`):
/// submit-ahead/complete-behind across tick boundaries, byte-identical
/// transcripts to drain-per-tick.
const PIPELINE_DEPTH: usize = 4;

fn admissions() -> Vec<(&'static str, AdmissionPolicy)> {
    vec![
        ("fifo", AdmissionPolicy::Fifo),
        ("saf", AdmissionPolicy::ShortestAudioFirst),
    ]
}

#[allow(clippy::too_many_arguments)]
fn run_cell(
    context: &ExperimentContext,
    pool: &[&Utterance],
    admission: AdmissionPolicy,
    workers: usize,
    qps: f64,
    kv_blocks: usize,
    rpc: bool,
    trace: &TraceArgs,
) -> ReportRow {
    let default_kv = ServerConfig::default().kv_blocks;
    let kv_suffix = if kv_blocks == default_kv {
        String::new()
    } else {
        format!("-kv{kv_blocks}")
    };
    let label = format!(
        "w{workers}-{}{}@q{qps:.0}{kv_suffix}",
        match admission {
            AdmissionPolicy::Fifo => "fifo",
            AdmissionPolicy::ShortestAudioFirst => "saf",
        },
        if rpc { "+rpc" } else { "" }
    );
    let policy = Policy::AdaptiveSingleSequence(AdaptiveConfig::paper());
    let mut router = Router::new(
        RouterConfig::default()
            .with_workers(workers)
            .with_rpc_backend(rpc)
            .with_worker_config(
                ServerConfig::default()
                    .with_admission(admission)
                    .with_kv_blocks(kv_blocks)
                    .with_max_in_flight_waves(PIPELINE_DEPTH)
                    // Deep queues: this sweep measures the latency knee, not
                    // queue-depth shedding, so nothing may be rejected.
                    .with_queue_depth(4 * REQUESTS_PER_CELL),
            ),
        context.binding.clone(),
        EncoderProfile::whisper_medium_encoder(),
        |_| context.whisper_pair(),
    );
    if trace.wants(&label) {
        router.set_trace(trace.config());
    }
    let mut loadgen = LoadGen::new(EXPERIMENT_SEED, qps);
    let workload = (0..REQUESTS_PER_CELL).map(|index| (policy, pool[index % pool.len()]));
    let report = run_open_loop(&mut router, &mut loadgen, workload);
    assert_eq!(report.outcomes.len(), REQUESTS_PER_CELL);
    assert_eq!(report.rejected, 0, "deep queues must never shed");
    let recordings = router.take_recordings();
    if !recordings.is_empty() {
        let lanes: Vec<(&str, &specasr_server::FlightRecording)> = recordings
            .iter()
            .map(|(name, recording)| (name.as_str(), recording))
            .collect();
        trace.write(&lanes);
    }

    let fleet = router.fleet_stats();
    assert_eq!(
        fleet.rejected_memory(),
        0,
        "every pool admits every request"
    );
    let memory = fleet.memory();
    ReportRow::new(label)
        .with("workers", workers as f64)
        .with("target_qps", qps)
        .with("offered_qps", report.offered_qps())
        .with("throughput_utps", report.completed_qps())
        .with("e2e_p50_ms", fleet.e2e_p50_ms())
        .with("e2e_p99_ms", fleet.e2e_p99_ms())
        .with("ttft_p50_ms", fleet.ttft_p50_ms())
        .with("acceptance", fleet.mean_acceptance())
        .with("rejected_draft_device_ms", fleet.rejected_draft_device_ms())
        .with("stolen", router.stolen() as f64)
        .with("wall_ms", fleet.wall_ms())
        .with("kv_blocks", kv_blocks as f64)
        .with("peak_kv_blocks", memory.peak_kv_blocks() as f64)
        .with("avg_kv_blocks", memory.avg_kv_blocks())
        .with("preemptions", memory.preemptions() as f64)
        .with("prefix_hit_rate", memory.shared_prefix_hit_rate())
        .with(
            "backend_batch_occupancy",
            fleet.backend().verify_batch_occupancy(),
        )
        .with("in_flight_depth", fleet.backend().peak_in_flight() as f64)
}

/// One drafter-comparison cell: the 2-worker FIFO fleet at 50 QPS re-served
/// with a draft-free drafter (CTC-encoder collapse or the token-map index).
/// The grid's `w2-fifo@q50` row is the model-draft baseline these compare
/// against: the lossless verifier commits byte-identical transcripts, so any
/// movement is pure serving economics — zero draft-lane backend batches and
/// zero draft KV sub-pool demand.
fn run_drafter_cell(
    context: &ExperimentContext,
    pool: &[&Utterance],
    kind: DrafterKind,
    token_map: &Arc<TokenMapIndex>,
    qps: f64,
) -> ReportRow {
    let policy = Policy::AdaptiveSingleSequence(AdaptiveConfig::paper());
    let mut router = Router::new(
        RouterConfig::default().with_workers(2).with_worker_config(
            ServerConfig::default()
                .with_admission(AdmissionPolicy::Fifo)
                .with_max_in_flight_waves(PIPELINE_DEPTH)
                .with_queue_depth(4 * REQUESTS_PER_CELL),
        ),
        context.binding.clone(),
        EncoderProfile::whisper_medium_encoder(),
        |_| context.whisper_pair(),
    );
    match kind {
        DrafterKind::ModelDraft => {}
        DrafterKind::CtcEncoder => {
            let (_, target) = context.whisper_pair();
            router.install_drafter(Arc::new(CtcDrafter::paired(&target)));
        }
        DrafterKind::TokenMap => {
            router.install_drafter(Arc::new(TokenMapDrafter::new(Arc::clone(token_map))));
        }
    }
    let mut loadgen = LoadGen::new(EXPERIMENT_SEED, qps);
    let workload = (0..REQUESTS_PER_CELL).map(|index| (policy, kind, pool[index % pool.len()]));
    let report = run_open_loop_drafted(&mut router, &mut loadgen, workload);
    assert_eq!(report.outcomes.len(), REQUESTS_PER_CELL);
    assert_eq!(report.rejected, 0, "deep queues must never shed");

    let fleet = router.fleet_stats();
    let memory = fleet.memory();
    ReportRow::new(format!("w2-fifo+{}@q{qps:.0}", kind.label()))
        .with("workers", 2.0)
        .with("drafter", kind as u8 as f64)
        .with("target_qps", qps)
        .with("offered_qps", report.offered_qps())
        .with("throughput_utps", report.completed_qps())
        .with("e2e_p50_ms", fleet.e2e_p50_ms())
        .with("e2e_p99_ms", fleet.e2e_p99_ms())
        .with("ttft_p50_ms", fleet.ttft_p50_ms())
        .with("acceptance", fleet.mean_acceptance())
        .with("rejected_draft_device_ms", fleet.rejected_draft_device_ms())
        .with("wall_ms", fleet.wall_ms())
        .with("peak_kv_blocks", memory.peak_kv_blocks() as f64)
        .with("preemptions", memory.preemptions() as f64)
        .with(
            "backend_batch_occupancy",
            fleet.backend().verify_batch_occupancy(),
        )
}

/// One shedding cell: a single FIFO worker with a production-depth queue
/// under overload.  Unlike [`run_cell`], rejections are the point — the row
/// reports the realised rejection rate and the goodput (completions per
/// second over the full drain window).
fn run_shed_cell(context: &ExperimentContext, pool: &[&Utterance], qps: f64) -> ReportRow {
    let policy = Policy::AdaptiveSingleSequence(AdaptiveConfig::paper());
    let mut router = Router::new(
        RouterConfig::default().with_workers(1).with_worker_config(
            ServerConfig::default()
                .with_admission(AdmissionPolicy::Fifo)
                .with_max_in_flight_waves(PIPELINE_DEPTH)
                .with_queue_depth(SHALLOW_QUEUE_DEPTH),
        ),
        context.binding.clone(),
        EncoderProfile::whisper_medium_encoder(),
        |_| context.whisper_pair(),
    );
    let mut loadgen = LoadGen::new(EXPERIMENT_SEED, qps);
    let workload = (0..REQUESTS_PER_CELL).map(|index| (policy, pool[index % pool.len()]));
    let report = run_open_loop(&mut router, &mut loadgen, workload);
    assert_eq!(
        report.outcomes.len() + report.rejected,
        REQUESTS_PER_CELL,
        "every request either completes or is shed"
    );

    let fleet = router.fleet_stats();
    let offered = report.submitted + report.rejected;
    ReportRow::new(format!("w1-fifo@q{qps:.0}-shallow{SHALLOW_QUEUE_DEPTH}"))
        .with("target_qps", qps)
        .with("offered_qps", report.offered_qps())
        .with("queue_depth", SHALLOW_QUEUE_DEPTH as f64)
        .with("rejection_rate", report.rejected as f64 / offered as f64)
        .with("goodput_utps", report.completed_qps())
        .with("throughput_utps", report.completed_qps())
        .with("e2e_p50_ms", fleet.e2e_p50_ms())
        .with("e2e_p99_ms", fleet.e2e_p99_ms())
        .with(
            "backend_batch_occupancy",
            fleet.backend().verify_batch_occupancy(),
        )
        .with("completed", report.outcomes.len() as f64)
        .with("rejected", report.rejected as f64)
}

/// One ordering cell: the shedding study's single shallow-queue worker
/// under overload, re-served with mixed TTFT budgets under one admission
/// order (FIFO arrival, aged shortest-audio-first, or earliest-deadline-
/// first).  The row's product metric is `goodput_utps` — completions that
/// arrived *within their budget*, per second of the drain window — next to
/// the raw rejection rate; EDF trades a little raw throughput for serving
/// urgent work while its deadline is still alive.
fn run_ordering_shed_cell(
    context: &ExperimentContext,
    pool: &[&Utterance],
    name: &str,
    admission: AdmissionPolicy,
    ordering: AdmissionOrdering,
    qps: f64,
) -> ReportRow {
    let policy = Policy::AdaptiveSingleSequence(AdaptiveConfig::paper());
    let mut router = Router::new(
        RouterConfig::default().with_workers(1).with_worker_config(
            ServerConfig::default()
                .with_admission(admission)
                .with_ordering(ordering)
                .with_max_in_flight_waves(PIPELINE_DEPTH)
                .with_queue_depth(SHALLOW_QUEUE_DEPTH),
        ),
        context.binding.clone(),
        EncoderProfile::whisper_medium_encoder(),
        |_| context.whisper_pair(),
    );
    let mut loadgen = LoadGen::new(EXPERIMENT_SEED, qps);
    let workload = (0..REQUESTS_PER_CELL).map(|index| {
        (
            policy,
            pool[index % pool.len()],
            Some(TTFT_BUDGETS_MS[index % TTFT_BUDGETS_MS.len()]),
        )
    });
    let report = run_open_loop_budgeted(&mut router, &mut loadgen, workload);
    let fleet = router.fleet_stats();
    let offered = report.submitted + report.rejected;
    let in_budget = report
        .outcomes
        .iter()
        .filter(|outcome| outcome.latency.time_to_first_token_ms <= budget_of(outcome.slo))
        .count();
    let goodput_utps = if report.drained_ms > 0.0 {
        in_budget as f64 * 1_000.0 / report.drained_ms
    } else {
        0.0
    };
    ReportRow::new(format!(
        "w1-{name}-b@q{qps:.0}-shallow{SHALLOW_QUEUE_DEPTH}"
    ))
    .with("target_qps", qps)
    .with("offered_qps", report.offered_qps())
    .with("queue_depth", SHALLOW_QUEUE_DEPTH as f64)
    .with("rejection_rate", report.rejected as f64 / offered as f64)
    .with("goodput_utps", goodput_utps)
    .with("throughput_utps", report.completed_qps())
    .with("e2e_p50_ms", fleet.e2e_p50_ms())
    .with("e2e_p99_ms", fleet.e2e_p99_ms())
    .with("completed", report.outcomes.len() as f64)
    .with("in_budget", in_budget as f64)
    .with("rejected", report.rejected as f64)
    .with(
        "rejected_deadline",
        SloClass::ALL
            .iter()
            .map(|&class| fleet.slo_class(class).rejected_deadline())
            .sum::<usize>() as f64,
    )
}

fn main() {
    // `--rpc` moves every worker's target model behind the RpcBackend
    // process boundary; the CI smoke job runs both ways.
    let rpc = std::env::args().skip(1).any(|arg| arg == "--rpc");
    let trace = TraceArgs::parse(if rpc {
        "w2-fifo+rpc@q50"
    } else {
        "w2-fifo@q50"
    });
    let context = ExperimentContext::with_size(UTTERANCES_PER_SPLIT);
    let pool: Vec<&Utterance> = Split::ALL
        .iter()
        .flat_map(|&split| context.corpus.split(split))
        .collect();
    let default_kv = specasr_server::ServerConfig::default().kv_blocks;
    if trace.smoke {
        // CI smoke: run only the default trace cell and dump its trace —
        // no record emission, no baseline comparison.
        let row = run_cell(
            &context,
            &pool,
            AdmissionPolicy::Fifo,
            2,
            50.0,
            default_kv,
            rpc,
            &trace,
        );
        println!(
            "smoke cell `{}` OK: {:.2} utt/s",
            row.label,
            row.value("throughput_utps").unwrap_or(0.0)
        );
        return;
    }
    let mut record = ExperimentRecord::new(
        "serve_open_loop",
        format!(
            "Open-loop Poisson serving, {REQUESTS_PER_CELL} requests/cell, \
             workers × admission × QPS sweep"
        ),
    );

    for (_, admission) in admissions() {
        for workers in WORKER_COUNTS {
            for qps in QPS_LEVELS {
                record.push_row(run_cell(
                    &context, &pool, admission, workers, qps, default_kv, false, &trace,
                ));
            }
        }
    }
    // Memory study: shrink the per-worker KV pool at a fixed operating point
    // and watch occupancy flatten against the budget while preemptions rise.
    for kv_blocks in KV_BLOCK_LEVELS {
        if kv_blocks == default_kv {
            continue; // the grid above already measured the ample pool
        }
        record.push_row(run_cell(
            &context,
            &pool,
            AdmissionPolicy::Fifo,
            2,
            50.0,
            kv_blocks,
            false,
            &trace,
        ));
    }
    // Drafter study: the same operating point served draft-free. Acceptance
    // moves with the draft source while transcripts stay byte-identical;
    // draft-lane batches and draft sub-pool demand drop to zero.
    let token_map = context.token_map_index();
    for kind in [DrafterKind::CtcEncoder, DrafterKind::TokenMap] {
        record.push_row(run_drafter_cell(&context, &pool, kind, &token_map, 50.0));
    }
    // Process-boundary study: the `w2-fifo@q50` operating point with every
    // worker's target behind the RPC worker thread.  The wire mirrors the
    // in-process backend's modeled timing exactly, so every column must
    // match the in-process row digit for digit.
    record.push_row(run_cell(
        &context,
        &pool,
        AdmissionPolicy::Fifo,
        2,
        50.0,
        default_kv,
        true,
        &trace,
    ));
    // Shedding study: production-depth queues under overload — P99 stays
    // bounded while the overflow turns into rejections, and goodput tracks
    // the worker's service capacity rather than collapsing.
    for qps in SHED_QPS_LEVELS {
        record.push_row(run_shed_cell(&context, &pool, qps));
    }
    // Ordering study: the same overload cells with mixed TTFT budgets under
    // three admission orders.  FIFO serves arrival order, aged SAF the
    // shortest audio, EDF the most urgent deadline — goodput (in-budget
    // completions per second) is what moves.
    for (name, admission, ordering) in [
        ("fifo", AdmissionPolicy::Fifo, AdmissionOrdering::Queue),
        (
            "saf",
            AdmissionPolicy::ShortestAudioFirst,
            AdmissionOrdering::Queue,
        ),
        (
            "edf",
            AdmissionPolicy::Fifo,
            AdmissionOrdering::EarliestDeadlineFirst,
        ),
    ] {
        for qps in SHED_QPS_LEVELS {
            record.push_row(run_ordering_shed_cell(
                &context, &pool, name, admission, ordering, qps,
            ));
        }
    }
    // The ordering study's headline claim is structural, not a tolerance
    // band: deadline-aware admission must win on goodput at every overload
    // level, or the sweep stopped measuring what it exists to show.
    for qps in SHED_QPS_LEVELS {
        let goodput = |name: &str| {
            record
                .row(&format!(
                    "w1-{name}-b@q{qps:.0}-shallow{SHALLOW_QUEUE_DEPTH}"
                ))
                .and_then(|row| row.value("goodput_utps"))
                .expect("ordering rows carry goodput")
        };
        assert!(
            goodput("edf") > goodput("fifo"),
            "EDF must beat FIFO on in-budget goodput at {qps} QPS"
        );
    }

    emit(&record);
    if std::env::var_os("SPECASR_WRITE_BASELINE").is_some() {
        match std::fs::write("BENCH_serve_open.json", record.to_json()) {
            Ok(()) => println!("(baseline record written to BENCH_serve_open.json)"),
            Err(error) => eprintln!("warning: could not write BENCH_serve_open.json: {error}"),
        }
    }
    println!(
        "shape check: for each fleet size, P99 latency sits near the no-load service \
         time below the saturation QPS and explodes past it, and the knee moves right \
         as workers are added; aged shortest-audio-first trades a lower P50 for the \
         same knee position.  In the kv sweep, shrinking the pool caps peak occupancy \
         at the budget and turns the shortfall into preemptions (throughput dips, P99 \
         grows) while the prefix hit rate stays put — sharing depends on the workload, \
         not the budget.  In the shallow-queue shedding rows, overload converts the \
         deep-queue P99 blow-up into a rising rejection rate while goodput plateaus \
         at the worker's service capacity.  In the ordering study, EDF beats FIFO \
         and aged-SAF on in-budget goodput at every overload level: serving the \
         most urgent deadline first converts the same completions into more \
         within-budget ones."
    );
}
