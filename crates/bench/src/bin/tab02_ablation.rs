//! Tab. II — ablation study: average decoding latency per 10 s of audio on
//! LibriSpeech test-clean under the Whisper tiny.en → medium.en pair, adding
//! the SpecASR techniques one at a time.
//!
//! Paper reference values (ms per 10 s): baseline speculative 231/254/486,
//! then adding adaptive single-sequence 236/191/427, draft recycling
//! 189/200/389, and two-pass sparse-tree 245/123/368.  The reproduction is
//! expected to match the *ordering and the direction of every delta*, not the
//! absolute numbers.

use specasr::{AdaptiveConfig, Policy, SparseTreeConfig, SpeculativeConfig};
use specasr_audio::Split;
use specasr_bench::{emit, run_policy_on_split, ExperimentContext};
use specasr_metrics::{ExperimentRecord, ReportRow};

fn main() {
    let context = ExperimentContext::standard();
    let (draft, target) = context.whisper_pair();
    let rows = [
        (
            "baseline speculative",
            Policy::Speculative(SpeculativeConfig::short_single()),
        ),
        (
            "+ adaptive single-sequence prediction",
            Policy::AdaptiveSingleSequence(AdaptiveConfig::without_recycling()),
        ),
        (
            "+ draft sequence recycling",
            Policy::AdaptiveSingleSequence(AdaptiveConfig::paper()),
        ),
        (
            "+ two-pass sparse-tree prediction",
            Policy::TwoPassSparseTree(SparseTreeConfig::paper()),
        ),
    ];

    let mut record = ExperimentRecord::new(
        "tab02",
        "Ablation: decoding latency per 10 s of audio on test-clean (Whisper tiny.en → medium.en)",
    );
    for (label, policy) in rows {
        let run = run_policy_on_split(&context, &draft, &target, Split::TestClean, policy);
        let per_10s = run.per_10s();
        record.push_row(
            ReportRow::new(label)
                .with("draft_ms", per_10s.draft_ms)
                .with("target_ms", per_10s.target_ms)
                .with("total_ms", per_10s.decode_ms())
                .with("wer_percent", run.wer.wer() * 100.0),
        );
    }
    emit(&record);
    println!("shape check: total decreases monotonically; ASP cuts target time, recycling cuts draft time, TSP cuts target time the most.");
}
