//! `serve_elastic` — the elastic-fleet serving benchmark.
//!
//! Four cells exercise the `specasr-fleet` control loop end to end:
//!
//! * **`static-w1@q120`** — the degenerate baseline: one worker, no
//!   controller, the same 120 QPS burst.  Everything completes (deep
//!   queues), but the queue grows without bound during the burst.
//! * **`elastic-burst@q120`** — the same burst through a
//!   [`FleetController`] bounded at 1–4 workers.  Queue pressure breaches
//!   the target, the fleet scales up, the burst drains faster, and once
//!   traffic quiets the fleet drains back down — migrating any still-live
//!   sessions — and reaps the drained workers.  The row records the scale
//!   decisions and migrations next to the serving metrics.
//! * **`hetero-weighted@q120` / `hetero-unweighted@q120`** — a fixed
//!   heterogeneous fleet (one big-batch worker declared 4× speed + three
//!   standard workers) with capacity-aware ring weighting on and off.
//!   Stealing is disabled (prohibitive threshold), so the difference is
//!   pure placement; the weighted ring must win on throughput.
//! * **`drain-migrate@q60`** — a four-worker fleet that loses one worker
//!   mid-burst via [`Router::drain_worker`]: its queue re-routes and its
//!   live sessions migrate (block-table hand-off where the destination has
//!   headroom, preempt/restore otherwise).  The row records both migration
//!   paths; every request still completes.
//!
//! The run is deterministic, so the record doubles as a perf baseline
//! (`BENCH_serve_elastic.json`, regenerated with `SPECASR_WRITE_BASELINE=1`)
//! gated by `bench_check` — the `migrations` and `goodput_utps` columns are
//! gated metrics, so a silent change in migration behaviour fails CI even
//! when throughput holds.
//!
//! Run with: `cargo run -p specasr-bench --release --bin serve_elastic`
//!
//! Pass `--trace-out <path>` to record the elastic cell (scale-ups, drains,
//! and migrations all land in the fleet lane as `worker_added` /
//! `worker_draining` / `worker_removed` / `session_migrated` instants) and
//! write its Chrome/Perfetto trace; `--smoke` runs only that cell — the CI
//! trace smoke step, which asserts the run contains at least one scale-up
//! *and* one drain.

use specasr::{AdaptiveConfig, Policy};
use specasr_audio::{EncoderProfile, Split, Utterance};
use specasr_bench::{emit, ExperimentContext, TraceArgs, EXPERIMENT_SEED};
use specasr_fleet::{FleetConfig, FleetController};
use specasr_metrics::{ExperimentRecord, ReportRow};
use specasr_server::{
    run_open_loop, LoadGen, Router, RouterConfig, ServerConfig, WorkerId, WorkerProfile,
};

/// Utterances per split in the serving corpus.
const UTTERANCES_PER_SPLIT: usize = 12;

/// Requests offered per cell (the corpus pool is cycled).
const REQUESTS_PER_CELL: usize = 160;

/// Offered rate of the burst cells — well past one worker's knee, inside
/// four workers' capacity.
const BURST_QPS: f64 = 120.0;

/// The elastic policy every cell's controller runs under.
fn fleet_config() -> FleetConfig {
    FleetConfig::default()
        .with_worker_bounds(1, 4)
        .with_evaluate_every_ms(100.0)
        .with_hysteresis(2, 6)
        .with_queue_target(4.0)
}

fn decode_policy() -> Policy {
    Policy::AdaptiveSingleSequence(AdaptiveConfig::paper())
}

fn worker_config() -> ServerConfig {
    ServerConfig::default().with_queue_depth(4 * REQUESTS_PER_CELL)
}

/// Serving columns shared by every cell.
fn base_row(
    label: String,
    completed: usize,
    goodput_utps: f64,
    fleet: &specasr_server::ServerStats,
) -> ReportRow {
    ReportRow::new(label)
        .with("completed", completed as f64)
        .with("throughput_utps", goodput_utps)
        .with("goodput_utps", goodput_utps)
        .with("e2e_p50_ms", fleet.e2e_p50_ms())
        .with("e2e_p99_ms", fleet.e2e_p99_ms())
        .with("ttft_p50_ms", fleet.ttft_p50_ms())
        .with("wall_ms", fleet.wall_ms())
        .with("migrations", fleet.migrations() as f64)
        .with("migrations_handoff", fleet.migrated_in_handoff() as f64)
        .with("migrations_restore", fleet.migrated_in_restore() as f64)
        .with(
            "backend_batch_occupancy",
            fleet.backend().verify_batch_occupancy(),
        )
}

/// The static one-worker baseline the elastic cell is read against.
fn run_static_cell(context: &ExperimentContext, pool: &[&Utterance]) -> ReportRow {
    let mut router = Router::new(
        RouterConfig::default()
            .with_workers(1)
            .with_worker_config(worker_config()),
        context.binding.clone(),
        EncoderProfile::whisper_medium_encoder(),
        |_| context.whisper_pair(),
    );
    let mut loadgen = LoadGen::new(EXPERIMENT_SEED, BURST_QPS);
    let report = run_open_loop(
        &mut router,
        &mut loadgen,
        (0..REQUESTS_PER_CELL).map(|i| (decode_policy(), pool[i % pool.len()])),
    );
    assert_eq!(report.outcomes.len(), REQUESTS_PER_CELL);
    let fleet = router.fleet_stats();
    base_row(
        format!("static-w1@q{BURST_QPS:.0}"),
        report.outcomes.len(),
        report.completed_qps(),
        &fleet,
    )
    .with("workers_peak", 1.0)
    .with("workers_final", 1.0)
}

/// The elastic burst: scale up under pressure, drain back down after, reap.
/// Returns the row plus whether the run saw at least one scale-up and one
/// scale-down (the smoke gate).
fn run_elastic_cell(
    context: &ExperimentContext,
    pool: &[&Utterance],
    trace: &TraceArgs,
) -> (ReportRow, bool) {
    let label = format!("elastic-burst@q{BURST_QPS:.0}");
    let router = Router::new(
        RouterConfig::default()
            .with_workers(1)
            .with_worker_config(worker_config()),
        context.binding.clone(),
        EncoderProfile::whisper_medium_encoder(),
        |_| context.whisper_pair(),
    );
    let mut fleet = FleetController::new(router, fleet_config(), |_| context.whisper_pair());
    if trace.wants(&label) {
        fleet.router_mut().set_trace(trace.config());
    }
    let mut loadgen = LoadGen::new(EXPERIMENT_SEED, BURST_QPS);
    let mut outcomes = Vec::new();
    let mut workers_peak = 1;
    for index in 0..REQUESTS_PER_CELL {
        outcomes.extend(fleet.advance_to(loadgen.next_arrival_ms()));
        fleet
            .submit(decode_policy(), pool[index % pool.len()])
            .expect("queues are deep");
        workers_peak = workers_peak.max(fleet.router().active_workers());
    }
    outcomes.extend(fleet.run_until_idle());
    // Quiet tail: give the controller enough idle evaluations to drain all
    // the way back to the minimum and reap, so the trace shows the full
    // worker lifecycle in one run.
    fleet.advance_to(fleet.router().now_ms() + 5_000.0);
    assert_eq!(outcomes.len(), REQUESTS_PER_CELL);
    let counters = fleet.counters();
    let stats = fleet.router().fleet_stats();
    let goodput = outcomes.len() as f64 * 1_000.0 / stats.wall_ms();

    let recordings = fleet.router_mut().take_recordings();
    if !recordings.is_empty() {
        let lanes: Vec<(&str, &specasr_server::FlightRecording)> = recordings
            .iter()
            .map(|(name, recording)| (name.as_str(), recording))
            .collect();
        trace.write(&lanes);
    }

    let row = base_row(label, outcomes.len(), goodput, &stats)
        .with("workers_peak", workers_peak as f64)
        .with("workers_final", fleet.router().active_workers() as f64)
        .with("scale_ups", counters.scale_ups as f64)
        .with("scale_downs", counters.scale_downs as f64)
        .with("workers_removed", counters.workers_removed as f64)
        .with("evaluations", counters.evaluations as f64);
    (row, counters.scale_ups > 0 && counters.scale_downs > 0)
}

/// One heterogeneous cell: a 1×fast (big-batch, declared 4× speed) + 3×slow
/// fleet, with the capacity hints feeding the ring (`weighted`) or withheld
/// (`unweighted`).  Stealing is disabled so placement alone decides.
fn run_hetero_cell(context: &ExperimentContext, pool: &[&Utterance], weighted: bool) -> ReportRow {
    let fast_speed = if weighted { 4.0 } else { 1.0 };
    let profiles = [
        WorkerProfile::default()
            .with_speed(fast_speed)
            .with_max_batch(16),
        WorkerProfile::default(),
        WorkerProfile::default(),
        WorkerProfile::default(),
    ];
    let mut router = Router::with_profiles(
        RouterConfig::default()
            .with_workers(4)
            .with_steal_threshold(10_000)
            .with_worker_config(worker_config().with_max_batch(2)),
        context.binding.clone(),
        EncoderProfile::whisper_medium_encoder(),
        &profiles,
        |_| context.whisper_pair(),
    );
    let mut loadgen = LoadGen::new(EXPERIMENT_SEED, BURST_QPS);
    let report = run_open_loop(
        &mut router,
        &mut loadgen,
        (0..REQUESTS_PER_CELL).map(|i| (decode_policy(), pool[i % pool.len()])),
    );
    assert_eq!(report.outcomes.len(), REQUESTS_PER_CELL);
    let fleet = router.fleet_stats();
    base_row(
        format!(
            "hetero-{}@q{BURST_QPS:.0}",
            if weighted { "weighted" } else { "unweighted" }
        ),
        report.outcomes.len(),
        report.completed_qps(),
        &fleet,
    )
    .with("fast_worker_speed", fast_speed)
    .with("workers_peak", 4.0)
    .with("workers_final", 4.0)
}

/// The forced-drain cell: a four-worker fleet loses one worker mid-burst;
/// its queue re-routes and its live sessions migrate, and every request
/// still completes.
fn run_drain_cell(context: &ExperimentContext, pool: &[&Utterance]) -> ReportRow {
    const DRAIN_QPS: f64 = 60.0;
    let mut router = Router::new(
        RouterConfig::default()
            .with_workers(4)
            .with_worker_config(worker_config()),
        context.binding.clone(),
        EncoderProfile::whisper_medium_encoder(),
        |_| context.whisper_pair(),
    );
    let mut loadgen = LoadGen::new(EXPERIMENT_SEED, DRAIN_QPS);
    let policy = decode_policy();
    let mut outcomes = Vec::new();
    let mut drained = false;
    for index in 0..REQUESTS_PER_CELL {
        outcomes.extend(router.advance_to(loadgen.next_arrival_ms()));
        if index == REQUESTS_PER_CELL / 2 {
            // Halfway through the burst, with queues and batches loaded,
            // worker 3 leaves the fleet.
            router.drain_worker(WorkerId::new(3));
            drained = true;
        }
        router
            .submit(policy, pool[index % pool.len()])
            .expect("queues are deep");
    }
    outcomes.extend(router.run_until_idle());
    router.reap_drained();
    assert!(drained);
    assert_eq!(outcomes.len(), REQUESTS_PER_CELL, "drains never drop work");
    let fleet = router.fleet_stats();
    assert!(
        fleet.migrations() > 0,
        "a mid-burst drain must migrate live sessions"
    );
    let goodput = outcomes.len() as f64 * 1_000.0 / fleet.wall_ms();
    base_row(
        format!("drain-migrate@q{DRAIN_QPS:.0}"),
        outcomes.len(),
        goodput,
        &fleet,
    )
    .with("workers_peak", 4.0)
    .with("workers_final", 3.0)
}

fn main() {
    let trace = TraceArgs::parse(&format!("elastic-burst@q{BURST_QPS:.0}"));
    let context = ExperimentContext::with_size(UTTERANCES_PER_SPLIT);
    let pool: Vec<&Utterance> = Split::ALL
        .iter()
        .flat_map(|&split| context.corpus.split(split))
        .collect();

    if trace.smoke {
        // CI smoke: only the elastic cell, which must contain a scale-up
        // and a drain in one traced run.
        let (row, scaled_both_ways) = run_elastic_cell(&context, &pool, &trace);
        assert!(
            scaled_both_ways,
            "the smoke run must scale up under the burst and drain after it"
        );
        println!(
            "smoke cell `{}` OK: {:.2} utt/s, {} scale-ups, {} scale-downs, {} migrations",
            row.label,
            row.value("goodput_utps").unwrap_or(0.0),
            row.value("scale_ups").unwrap_or(0.0),
            row.value("scale_downs").unwrap_or(0.0),
            row.value("migrations").unwrap_or(0.0),
        );
        return;
    }

    let mut record = ExperimentRecord::new(
        "serve_elastic",
        format!(
            "Elastic fleet control, {REQUESTS_PER_CELL} requests/cell: autoscaling burst, \
             capacity-aware heterogeneous placement, live drain + migration"
        ),
    );
    record.push_row(run_static_cell(&context, &pool));
    let (elastic, scaled_both_ways) = run_elastic_cell(&context, &pool, &trace);
    assert!(
        scaled_both_ways,
        "the burst must scale the fleet up and quiet traffic must drain it"
    );
    record.push_row(elastic);
    record.push_row(run_hetero_cell(&context, &pool, true));
    record.push_row(run_hetero_cell(&context, &pool, false));
    record.push_row(run_drain_cell(&context, &pool));

    // Structural claims the sweep exists to demonstrate — asserted, not
    // just recorded, so the bench fails loudly if a change erodes them.
    let throughput = |label: &str| {
        record
            .row(label)
            .and_then(|row| row.value("throughput_utps"))
            .expect("cells record throughput")
    };
    assert!(
        throughput(&format!("elastic-burst@q{BURST_QPS:.0}"))
            > throughput(&format!("static-w1@q{BURST_QPS:.0}")),
        "scaling up under the burst must beat the static single worker"
    );
    assert!(
        throughput(&format!("hetero-weighted@q{BURST_QPS:.0}"))
            > throughput(&format!("hetero-unweighted@q{BURST_QPS:.0}")),
        "capacity-aware ring weighting must beat the unweighted ring"
    );

    emit(&record);
    if std::env::var_os("SPECASR_WRITE_BASELINE").is_some() {
        match std::fs::write("BENCH_serve_elastic.json", record.to_json()) {
            Ok(()) => println!("(baseline record written to BENCH_serve_elastic.json)"),
            Err(error) => eprintln!("warning: could not write BENCH_serve_elastic.json: {error}"),
        }
    }
    println!(
        "shape check: the elastic fleet absorbs the burst the static worker drowns \
         under (higher throughput, bounded P99) and returns to one worker once \
         traffic quiets; weighting the ring toward the declared-fast big-batch \
         worker beats the unweighted placement; and the mid-burst drain migrates \
         every live session (hand-off where the destination has headroom, \
         preempt/restore otherwise) without losing a single request."
    );
}
