//! Tab. I — qualitative comparison of speculative-decoding families (draft
//! generation efficiency, target verification efficiency, draft sequence
//! length, target accept rate, flexibility), reproduced as the policy
//! taxonomy's feature matrix (scores: 1 = low, 2 = medium, 3 = high).

use specasr::Policy;
use specasr_bench::emit;
use specasr_metrics::{ExperimentRecord, ReportRow};

fn main() {
    let mut record = ExperimentRecord::new(
        "tab01",
        "Qualitative comparison of speculative decoding methods (1=low, 2=medium, 3=high)",
    );
    for row in Policy::feature_matrix() {
        record.push_row(
            ReportRow::new(row.method)
                .with(
                    "draft_generation_efficiency",
                    row.draft_generation_efficiency.score(),
                )
                .with(
                    "target_verification_efficiency",
                    row.target_verification_efficiency.score(),
                )
                .with("draft_sequence_length", row.draft_sequence_length.score())
                .with("target_accept_rate", row.target_accept_rate.score())
                .with("flexibility", row.flexibility.score()),
        );
    }
    emit(&record);
    println!("shape check: SpecASR is the only row rated high on every axis.");
}
