//! Shared harness for the figure/table reproduction binaries.
//!
//! Every binary in `src/bin/` reproduces one figure or table of the paper:
//! it builds an [`ExperimentContext`], sweeps the relevant configurations
//! with [`run_policy_on_split`], prints the rows/series the paper reports,
//! and writes a JSON record under `target/experiments/` via [`emit`].
//!
//! Run all of them with `scripts`-free cargo commands, e.g.:
//!
//! ```text
//! cargo run -p specasr-bench --release --bin fig11_speedup_comparison
//! cargo run -p specasr-bench --release --bin tab02_ablation
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod regression;

use std::path::PathBuf;

use specasr::{DecodeStats, Policy};
use specasr_audio::{Corpus, Split};
use specasr_metrics::{wer_between, ExperimentRecord, WerMeasurement};
use specasr_models::{LatencyBreakdown, ModelProfile, SimulatedAsrModel, TokenizerBinding};

/// Default number of utterances generated per split for the harness binaries.
pub const DEFAULT_UTTERANCES_PER_SPLIT: usize = 24;

/// Base seed shared by every experiment so the whole evaluation is
/// reproducible end to end.
pub const EXPERIMENT_SEED: u64 = 2025_0610;

/// Corpus + tokenizer shared by one experiment run.
#[derive(Debug, Clone)]
pub struct ExperimentContext {
    /// The synthetic LibriSpeech-like corpus.
    pub corpus: Corpus,
    /// Tokenizer binding trained on the corpus.
    pub binding: TokenizerBinding,
    /// The seed everything was derived from.
    pub seed: u64,
}

impl ExperimentContext {
    /// Builds the standard experiment context.
    pub fn standard() -> Self {
        ExperimentContext::with_size(DEFAULT_UTTERANCES_PER_SPLIT)
    }

    /// Builds a context with a custom number of utterances per split.
    pub fn with_size(utterances_per_split: usize) -> Self {
        let seed = EXPERIMENT_SEED;
        let corpus = Corpus::librispeech_like(seed, utterances_per_split);
        let binding = TokenizerBinding::for_corpus(&corpus);
        ExperimentContext {
            corpus,
            binding,
            seed,
        }
    }

    /// The Whisper tiny.en → medium.en pair the paper records trajectories
    /// with.
    pub fn whisper_pair(&self) -> (SimulatedAsrModel, SimulatedAsrModel) {
        let target = SimulatedAsrModel::target(ModelProfile::whisper_medium_en(), self.seed ^ 0x71);
        let draft = SimulatedAsrModel::draft_paired(
            ModelProfile::whisper_tiny_en(),
            self.seed ^ 0x72,
            &target,
        );
        (draft, target)
    }

    /// Builds the token-map drafting index from every corpus reference
    /// transcript (EOS-terminated) — the "decode history" a production
    /// deployment would mine offline for draft-free speculation.
    pub fn token_map_index(&self) -> std::sync::Arc<specasr_tokenizer::TokenMapIndex> {
        let mut sequences = Vec::new();
        for split in Split::ALL {
            for utt in self.binding.bind_all(self.corpus.split(split)) {
                let mut seq = utt.reference_tokens().to_vec();
                seq.push(utt.eos());
                sequences.push(seq);
            }
        }
        std::sync::Arc::new(specasr_tokenizer::TokenMapIndex::build_default(
            sequences.iter().map(Vec::as_slice),
        ))
    }

    /// The TinyLlama → `llm_target` replay pair used for Fig. 11: token
    /// decisions follow the Whisper-pair behaviour while latency follows the
    /// LLM profiles, exactly as the paper's replay methodology does.
    pub fn llm_pair(&self, llm_target: &ModelProfile) -> (SimulatedAsrModel, SimulatedAsrModel) {
        let target = SimulatedAsrModel::target(
            ModelProfile::whisper_medium_en().with_latency(llm_target.latency().clone()),
            self.seed ^ 0x71,
        );
        let draft = SimulatedAsrModel::draft_paired(
            ModelProfile::whisper_tiny_en()
                .with_latency(ModelProfile::tiny_llama_1b().latency().clone()),
            self.seed ^ 0x72,
            &target,
        );
        (draft, target)
    }
}

/// Pooled results of decoding one split with one policy.
#[derive(Debug, Clone, Default)]
pub struct SplitRun {
    /// Accumulated simulated latency.
    pub latency: LatencyBreakdown,
    /// Pooled round statistics.
    pub stats: DecodeStats,
    /// Pooled word-error-rate counts against the reference transcripts.
    pub wer: WerMeasurement,
    /// Total audio seconds decoded.
    pub audio_seconds: f64,
    /// Total output tokens produced.
    pub output_tokens: usize,
}

impl SplitRun {
    /// Decoder latency normalised per 10 s of audio (the unit of Tab. II).
    pub fn per_10s(&self) -> LatencyBreakdown {
        if self.audio_seconds <= 0.0 {
            return LatencyBreakdown::default();
        }
        self.latency.scaled(10.0 / self.audio_seconds)
    }

    /// Speedup of this run relative to `reference` (decoder time only).
    pub fn speedup_over(&self, reference: &SplitRun) -> f64 {
        if self.latency.decode_ms() <= 0.0 {
            return 0.0;
        }
        reference.latency.decode_ms() / self.latency.decode_ms()
    }
}

/// Decodes every utterance of `split` with `policy` and pools the results.
pub fn run_policy_on_split(
    context: &ExperimentContext,
    draft: &SimulatedAsrModel,
    target: &SimulatedAsrModel,
    split: Split,
    policy: Policy,
) -> SplitRun {
    let mut run = SplitRun::default();
    for utterance in context.corpus.split(split) {
        let audio = context.binding.bind(utterance);
        let outcome = policy.decode(draft, target, &audio);
        run.latency.accumulate(&outcome.latency());
        run.stats.merge(&outcome.stats);
        run.audio_seconds += utterance.duration_seconds();
        run.output_tokens += outcome.tokens.len();
        let hypothesis = context
            .binding
            .tokenizer()
            .decode(&outcome.tokens)
            .expect("transcript tokens decode");
        run.wer
            .accumulate(&wer_between(utterance.transcript(), &hypothesis));
    }
    run
}

/// The directory experiment JSON records are written to.
pub fn experiments_dir() -> PathBuf {
    let target_dir = std::env::var("CARGO_TARGET_DIR").unwrap_or_else(|_| "target".to_owned());
    PathBuf::from(target_dir).join("experiments")
}

/// Prints an experiment record as a table and writes its JSON file.
pub fn emit(record: &ExperimentRecord) {
    println!("{}", record.to_table());
    match record.write_json(experiments_dir()) {
        Ok(path) => println!("(json record written to {})", path.display()),
        Err(error) => eprintln!("warning: could not write JSON record: {error}"),
    }
}

/// Trace-capture CLI arguments shared by the serving binaries
/// (`serve_load`, `serve_open_loop`, `serve_streaming`):
///
/// * `--trace-out <path>` — enable the flight recorder for one sweep cell
///   and write its Chrome/Perfetto trace JSON to `path`.
/// * `--trace-cell <label>` — which cell to trace (row label, e.g.
///   `specasr-asp@c8`); each binary picks a representative default.
/// * `--smoke` — run only the traced cell and skip record emission
///   (`serve_open_loop` only; the CI trace smoke step).
#[derive(Debug, Clone)]
pub struct TraceArgs {
    out: Option<PathBuf>,
    cell: String,
    /// Run only the traced cell, skipping record emission.
    pub smoke: bool,
}

impl TraceArgs {
    /// Parses the process arguments, tracing `default_cell` unless
    /// `--trace-cell` overrides it.  Unknown arguments are ignored (each
    /// binary owns its remaining flags).
    ///
    /// # Panics
    ///
    /// Panics when `--trace-out` or `--trace-cell` is missing its value.
    pub fn parse(default_cell: &str) -> Self {
        Self::parse_from(default_cell, std::env::args().skip(1))
    }

    /// [`Self::parse`] over an explicit argument iterator (testable form).
    pub fn parse_from(default_cell: &str, args: impl IntoIterator<Item = String>) -> Self {
        let mut out = None;
        let mut cell = default_cell.to_owned();
        let mut smoke = false;
        let mut args = args.into_iter();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--trace-out" => {
                    let value = args.next().expect("--trace-out needs a path");
                    out = Some(PathBuf::from(value));
                }
                "--trace-cell" => {
                    cell = args.next().expect("--trace-cell needs a row label");
                }
                "--smoke" => smoke = true,
                _ => {}
            }
        }
        TraceArgs { out, cell, smoke }
    }

    /// Whether any cell should be traced at all.
    pub fn enabled(&self) -> bool {
        self.out.is_some()
    }

    /// The row label of the cell to trace.
    pub fn cell(&self) -> &str {
        &self.cell
    }

    /// Whether the cell labelled `label` should run with tracing on.
    pub fn wants(&self, label: &str) -> bool {
        self.enabled() && label == self.cell
    }

    /// The recorder configuration for a traced cell.
    pub fn config(&self) -> specasr_trace::TraceConfig {
        specasr_trace::TraceConfig::enabled()
    }

    /// Validates and writes the Chrome/Perfetto trace of the traced cell's
    /// recording lanes to the `--trace-out` path, plus a sibling `.jsonl`
    /// raw-event dump (`specasr_trace::jsonl_with_lanes`) that the
    /// `trace_analyze` binary re-analyzes bit-exactly.
    ///
    /// # Panics
    ///
    /// Panics when the exporter emits JSON the trace schema rejects (an
    /// exporter bug, never an input condition) or a file cannot be
    /// written.
    pub fn write(&self, lanes: &[(&str, &specasr_trace::FlightRecording)]) {
        let Some(path) = &self.out else {
            return;
        };
        let json = specasr_trace::chrome_trace(lanes);
        let summary = specasr_trace::validate_chrome_trace(&json)
            .expect("the exporter emits schema-valid traces");
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent).expect("trace output directory is creatable");
            }
        }
        std::fs::write(path, &json).expect("trace output path is writable");
        let dump_path = path.with_extension("jsonl");
        std::fs::write(&dump_path, specasr_trace::jsonl_with_lanes(lanes))
            .expect("trace dump path is writable");
        let dropped: u64 = lanes.iter().map(|(_, r)| r.dropped_events()).sum();
        println!(
            "(trace for cell `{}` written to {}: {} events, {} slices, {} counter samples, \
             {dropped} dropped; raw events in {})",
            self.cell,
            path.display(),
            summary.events,
            summary.duration_slices,
            summary.counter_samples,
            dump_path.display(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use specasr::SpeculativeConfig;

    #[test]
    fn trace_args_parse_flags_and_ignore_unknowns() {
        let args = TraceArgs::parse_from(
            "default@c8",
            ["--tolerance", "0.1", "--trace-out", "out.json", "--smoke"]
                .into_iter()
                .map(String::from),
        );
        assert!(args.enabled());
        assert!(args.smoke);
        assert!(args.wants("default@c8"));
        assert!(!args.wants("other@c1"));

        let overridden = TraceArgs::parse_from(
            "default@c8",
            ["--trace-out", "t.json", "--trace-cell", "other@c1"]
                .into_iter()
                .map(String::from),
        );
        assert!(overridden.wants("other@c1"));
        assert!(!overridden.wants("default@c8"));

        let off = TraceArgs::parse_from("default@c8", std::iter::empty());
        assert!(!off.enabled());
        assert!(!off.wants("default@c8"));
    }

    #[test]
    fn context_is_reproducible() {
        let a = ExperimentContext::with_size(2);
        let b = ExperimentContext::with_size(2);
        assert_eq!(a.corpus, b.corpus);
        assert_eq!(a.seed, b.seed);
    }

    #[test]
    fn split_runs_pool_latency_and_wer() {
        let context = ExperimentContext::with_size(2);
        let (draft, target) = context.whisper_pair();
        let run = run_policy_on_split(
            &context,
            &draft,
            &target,
            Split::TestClean,
            Policy::Speculative(SpeculativeConfig::short_single()),
        );
        assert!(run.audio_seconds > 0.0);
        assert!(run.latency.decode_ms() > 0.0);
        assert!(run.output_tokens > 0);
        assert!(run.per_10s().decode_ms() > 0.0);
        assert!(run.wer.wer() < 0.5);
    }

    #[test]
    fn speedup_is_relative_to_the_reference() {
        let context = ExperimentContext::with_size(2);
        let (draft, target) = context.whisper_pair();
        let ar = run_policy_on_split(
            &context,
            &draft,
            &target,
            Split::TestClean,
            Policy::Autoregressive,
        );
        let spec = run_policy_on_split(
            &context,
            &draft,
            &target,
            Split::TestClean,
            Policy::Speculative(SpeculativeConfig::short_single()),
        );
        assert!(spec.speedup_over(&ar) > 1.0);
        assert!((ar.speedup_over(&ar) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn llm_pair_changes_latency_but_not_decisions() {
        let context = ExperimentContext::with_size(1);
        let (wd, wt) = context.whisper_pair();
        let (ld, lt) = context.llm_pair(&ModelProfile::vicuna_13b());
        let policy = Policy::Speculative(SpeculativeConfig::short_single());
        let whisper = run_policy_on_split(&context, &wd, &wt, Split::DevClean, policy);
        let llm = run_policy_on_split(&context, &ld, &lt, Split::DevClean, policy);
        assert_eq!(whisper.output_tokens, llm.output_tokens);
        assert!(llm.latency.decode_ms() > whisper.latency.decode_ms());
    }
}
