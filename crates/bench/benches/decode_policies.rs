//! Criterion wall-clock benchmarks of the decoding policies themselves
//! (implementation throughput, complementary to the simulated-latency
//! figures): one group per paper experiment family.
//!
//! * `tab02/*` — the ablation rows (Whisper pair, test-clean utterance);
//! * `fig11/*` — the Fig. 11 policies under the Vicuna-13B latency profile;
//! * `fig07/*` — baseline speculative decoding across prediction lengths;
//! * `substrate/*` — tokenizer, WER, and tree-mask building blocks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use specasr::{AdaptiveConfig, Policy, SparseTreeConfig, SpeculativeConfig};
use specasr_audio::Split;
use specasr_bench::ExperimentContext;
use specasr_metrics::wer_between;
use specasr_models::ModelProfile;
use specasr_runtime::{NodeOrigin, TokenTree, TreeAttentionMask};
use specasr_tokenizer::TokenId;

fn bench_tab02_policies(c: &mut Criterion) {
    let context = ExperimentContext::with_size(2);
    let (draft, target) = context.whisper_pair();
    let utterance = &context.corpus.split(Split::TestClean)[0];
    let audio = context.binding.bind(utterance);

    let mut group = c.benchmark_group("tab02");
    group.sample_size(20);
    for (label, policy) in [
        (
            "baseline_spec_8_1",
            Policy::Speculative(SpeculativeConfig::short_single()),
        ),
        (
            "asp",
            Policy::AdaptiveSingleSequence(AdaptiveConfig::without_recycling()),
        ),
        (
            "asp_recycle",
            Policy::AdaptiveSingleSequence(AdaptiveConfig::paper()),
        ),
        ("tsp", Policy::TwoPassSparseTree(SparseTreeConfig::paper())),
    ] {
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter(|| policy.decode(&draft, &target, &audio))
        });
    }
    group.finish();
}

fn bench_fig11_policies(c: &mut Criterion) {
    let context = ExperimentContext::with_size(2);
    let (draft, target) = context.llm_pair(&ModelProfile::vicuna_13b());
    let utterance = &context.corpus.split(Split::TestOther)[0];
    let audio = context.binding.bind(utterance);

    let mut group = c.benchmark_group("fig11");
    group.sample_size(20);
    for policy in [
        Policy::Autoregressive,
        Policy::Speculative(SpeculativeConfig::long_single()),
        Policy::AdaptiveSingleSequence(AdaptiveConfig::paper()),
        Policy::TwoPassSparseTree(SparseTreeConfig::paper()),
    ] {
        group.bench_function(BenchmarkId::from_parameter(policy.name()), |b| {
            b.iter(|| policy.decode(&draft, &target, &audio))
        });
    }
    group.finish();
}

fn bench_fig07_prediction_lengths(c: &mut Criterion) {
    let context = ExperimentContext::with_size(2);
    let (draft, target) = context.whisper_pair();
    let utterance = &context.corpus.split(Split::TestClean)[1];
    let audio = context.binding.bind(utterance);

    let mut group = c.benchmark_group("fig07");
    group.sample_size(20);
    for length in [4usize, 8, 16, 24] {
        let policy = Policy::Speculative(SpeculativeConfig::new(length, 1));
        group.bench_with_input(BenchmarkId::from_parameter(length), &policy, |b, policy| {
            b.iter(|| policy.decode(&draft, &target, &audio))
        });
    }
    group.finish();
}

fn bench_substrates(c: &mut Criterion) {
    let context = ExperimentContext::with_size(2);
    let utterance = &context.corpus.split(Split::DevClean)[0];
    let transcript = utterance.transcript().to_owned();
    let tokenizer = context.binding.tokenizer().clone();

    let mut group = c.benchmark_group("substrate");
    group.sample_size(30);
    group.bench_function("tokenizer_encode", |b| {
        b.iter(|| tokenizer.encode(&transcript).expect("encode"))
    });
    let hypothesis = format!("{} extra words", transcript);
    group.bench_function("wer_alignment", |b| {
        b.iter(|| wer_between(&transcript, &hypothesis))
    });
    group.bench_function("tree_mask_64_nodes", |b| {
        b.iter(|| {
            let mut tree = TokenTree::new();
            let mut tip = tree.push_root(TokenId::new(10), 0.9, NodeOrigin::Trunk);
            for i in 0..63u32 {
                let origin = if i % 7 == 0 {
                    NodeOrigin::Branch
                } else {
                    NodeOrigin::Trunk
                };
                tip = tree.push_child(tip, TokenId::new(11 + i), 0.8, origin);
            }
            TreeAttentionMask::from_tree(&tree)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_tab02_policies,
    bench_fig11_policies,
    bench_fig07_prediction_lengths,
    bench_substrates
);
criterion_main!(benches);
