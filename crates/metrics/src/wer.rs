//! Word error rate (WER) and Levenshtein alignment counts.

use serde::{Deserialize, Serialize};

/// Counts from aligning a hypothesis against a reference.
///
/// WER = (S + D + I) / N, where N is the number of reference words.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct WerMeasurement {
    /// Substituted words.
    pub substitutions: usize,
    /// Deleted words (present in the reference, missing from the hypothesis).
    pub deletions: usize,
    /// Inserted words (absent from the reference, present in the hypothesis).
    pub insertions: usize,
    /// Number of words in the reference.
    pub reference_words: usize,
}

impl WerMeasurement {
    /// Total edit operations.
    pub fn errors(&self) -> usize {
        self.substitutions + self.deletions + self.insertions
    }

    /// Word error rate.  An empty reference with a non-empty hypothesis
    /// reports a WER equal to the number of insertions; an empty/empty pair
    /// reports 0.
    pub fn wer(&self) -> f64 {
        if self.reference_words == 0 {
            return self.errors() as f64;
        }
        self.errors() as f64 / self.reference_words as f64
    }

    /// Merges the counts of another measurement (corpus-level WER is computed
    /// by pooling counts, not by averaging per-utterance rates).
    pub fn accumulate(&mut self, other: &WerMeasurement) {
        self.substitutions += other.substitutions;
        self.deletions += other.deletions;
        self.insertions += other.insertions;
        self.reference_words += other.reference_words;
    }
}

/// Computes the WER alignment between two word sequences.
///
/// # Example
///
/// ```
/// use specasr_metrics::wer::wer_words;
///
/// let reference = ["a", "b", "c"];
/// let hypothesis = ["a", "x", "c", "d"];
/// let measurement = wer_words(&reference, &hypothesis);
/// assert_eq!(measurement.substitutions, 1);
/// assert_eq!(measurement.insertions, 1);
/// assert_eq!(measurement.deletions, 0);
/// ```
pub fn wer_words<R, H>(reference: &[R], hypothesis: &[H]) -> WerMeasurement
where
    R: AsRef<str>,
    H: AsRef<str>,
{
    align(
        &reference.iter().map(|w| w.as_ref()).collect::<Vec<_>>(),
        &hypothesis.iter().map(|w| w.as_ref()).collect::<Vec<_>>(),
    )
}

/// Computes the WER alignment between two whitespace-separated transcripts.
pub fn wer_between(reference: &str, hypothesis: &str) -> WerMeasurement {
    align(
        &reference.split_whitespace().collect::<Vec<_>>(),
        &hypothesis.split_whitespace().collect::<Vec<_>>(),
    )
}

/// Classic dynamic-programming Levenshtein alignment with backtrace to count
/// substitutions, deletions, and insertions separately.
fn align(reference: &[&str], hypothesis: &[&str]) -> WerMeasurement {
    let n = reference.len();
    let m = hypothesis.len();
    // cost[i][j]: minimal edits aligning reference[..i] to hypothesis[..j].
    let mut cost = vec![vec![0usize; m + 1]; n + 1];
    for (i, row) in cost.iter_mut().enumerate() {
        row[0] = i;
    }
    for (j, cell) in cost[0].iter_mut().enumerate() {
        *cell = j;
    }
    for i in 1..=n {
        for j in 1..=m {
            let substitution_cost = if reference[i - 1] == hypothesis[j - 1] {
                0
            } else {
                1
            };
            cost[i][j] = (cost[i - 1][j - 1] + substitution_cost)
                .min(cost[i - 1][j] + 1)
                .min(cost[i][j - 1] + 1);
        }
    }

    // Backtrace.
    let mut substitutions = 0usize;
    let mut deletions = 0usize;
    let mut insertions = 0usize;
    let (mut i, mut j) = (n, m);
    while i > 0 || j > 0 {
        if i > 0 && j > 0 {
            let substitution_cost = if reference[i - 1] == hypothesis[j - 1] {
                0
            } else {
                1
            };
            if cost[i][j] == cost[i - 1][j - 1] + substitution_cost {
                if substitution_cost == 1 {
                    substitutions += 1;
                }
                i -= 1;
                j -= 1;
                continue;
            }
        }
        if i > 0 && cost[i][j] == cost[i - 1][j] + 1 {
            deletions += 1;
            i -= 1;
        } else {
            insertions += 1;
            j -= 1;
        }
    }

    WerMeasurement {
        substitutions,
        deletions,
        insertions,
        reference_words: n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_transcripts_have_zero_wer() {
        let m = wer_between("hello world again", "hello world again");
        assert_eq!(m.errors(), 0);
        assert_eq!(m.wer(), 0.0);
        assert_eq!(m.reference_words, 3);
    }

    #[test]
    fn single_substitution() {
        let m = wer_between("the cat sat", "the dog sat");
        assert_eq!(m.substitutions, 1);
        assert_eq!(m.deletions, 0);
        assert_eq!(m.insertions, 0);
        assert!((m.wer() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn deletions_and_insertions_are_separated() {
        let deletion = wer_between("a b c d", "a b d");
        assert_eq!(deletion.deletions, 1);
        assert_eq!(deletion.insertions, 0);

        let insertion = wer_between("a b d", "a b c d");
        assert_eq!(insertion.insertions, 1);
        assert_eq!(insertion.deletions, 0);
    }

    #[test]
    fn empty_reference_counts_insertions() {
        let m = wer_between("", "one two");
        assert_eq!(m.insertions, 2);
        assert_eq!(m.reference_words, 0);
        assert_eq!(m.wer(), 2.0);

        let empty = wer_between("", "");
        assert_eq!(empty.wer(), 0.0);
    }

    #[test]
    fn empty_hypothesis_counts_deletions() {
        let m = wer_between("one two three", "");
        assert_eq!(m.deletions, 3);
        assert_eq!(m.wer(), 1.0);
    }

    #[test]
    fn total_errors_equal_edit_distance() {
        let m = wer_between("speech recognition is fun", "speech wreck a nation is fun");
        // Levenshtein distance between the word sequences is 3
        // (one substitution + two insertions).
        assert_eq!(m.errors(), 3);
    }

    #[test]
    fn accumulate_pools_counts() {
        let mut total = WerMeasurement::default();
        total.accumulate(&wer_between("a b", "a c"));
        total.accumulate(&wer_between("x y z", "x y z"));
        assert_eq!(total.reference_words, 5);
        assert_eq!(total.substitutions, 1);
        assert!((total.wer() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn word_slice_api_matches_string_api() {
        let a = wer_words(&["a", "b", "c"], &["a", "c"]);
        let b = wer_between("a b c", "a c");
        assert_eq!(a, b);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn words() -> impl Strategy<Value = Vec<String>> {
        proptest::collection::vec(
            prop::sample::select(vec!["a", "b", "c", "d", "e"]).prop_map(str::to_owned),
            0..12,
        )
    }

    proptest! {
        /// WER metric properties: identity is 0; errors are bounded by the
        /// larger sequence length; symmetry of the underlying edit distance.
        #[test]
        fn wer_properties(reference in words(), hypothesis in words()) {
            let identity = wer_words(&reference, &reference);
            prop_assert_eq!(identity.errors(), 0);

            let forward = wer_words(&reference, &hypothesis);
            let backward = wer_words(&hypothesis, &reference);
            prop_assert_eq!(forward.errors(), backward.errors());
            prop_assert!(forward.errors() <= reference.len().max(hypothesis.len()));
            prop_assert!(
                forward.errors() >= reference.len().abs_diff(hypothesis.len())
            );
            // Substitutions + deletions cannot exceed the reference length.
            prop_assert!(forward.substitutions + forward.deletions <= reference.len());
        }
    }
}
