//! Experiment records: labelled rows of named values.
//!
//! Every figure/table binary in `specasr-bench` produces one
//! [`ExperimentRecord`]: a set of rows (one per configuration or series
//! point), each carrying named numeric values.  The record renders as an
//! aligned text table for the console and serialises to JSON under
//! `target/experiments/` so that `EXPERIMENTS.md` can be regenerated and
//! diffed.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

/// One row of an experiment record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReportRow {
    /// Row label (e.g. a policy name or a parameter setting).
    pub label: String,
    /// Named numeric values; `BTreeMap` keeps the column order stable.
    pub values: BTreeMap<String, f64>,
}

impl ReportRow {
    /// Creates an empty row with the given label.
    pub fn new(label: impl Into<String>) -> Self {
        ReportRow {
            label: label.into(),
            values: BTreeMap::new(),
        }
    }

    /// Adds (or replaces) a named value, returning `self` for chaining.
    pub fn with(mut self, key: impl Into<String>, value: f64) -> Self {
        self.values.insert(key.into(), value);
        self
    }

    /// Reads a named value, if present.
    pub fn value(&self, key: &str) -> Option<f64> {
        self.values.get(key).copied()
    }
}

/// A complete experiment result (one paper figure or table).
///
/// # Example
///
/// ```
/// use specasr_metrics::{ExperimentRecord, ReportRow};
///
/// let record = ExperimentRecord::new("fig11a", "Speedup on test-clean")
///     .with_row(ReportRow::new("autoregressive").with("speedup", 1.0))
///     .with_row(ReportRow::new("specasr-tsp").with("speedup", 3.4));
/// let table = record.to_table();
/// assert!(table.contains("specasr-tsp"));
/// assert!(record.row("autoregressive").is_some());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentRecord {
    /// Short experiment id (e.g. `fig11a`, `tab02`).
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// Result rows.
    pub rows: Vec<ReportRow>,
}

impl ExperimentRecord {
    /// Creates an empty record.
    pub fn new(id: impl Into<String>, title: impl Into<String>) -> Self {
        ExperimentRecord {
            id: id.into(),
            title: title.into(),
            rows: Vec::new(),
        }
    }

    /// Appends a row, returning `self` for chaining.
    pub fn with_row(mut self, row: ReportRow) -> Self {
        self.rows.push(row);
        self
    }

    /// Appends a row in place.
    pub fn push_row(&mut self, row: ReportRow) {
        self.rows.push(row);
    }

    /// Finds a row by label.
    pub fn row(&self, label: &str) -> Option<&ReportRow> {
        self.rows.iter().find(|r| r.label == label)
    }

    /// All column names appearing in any row, in stable (sorted) order.
    pub fn columns(&self) -> Vec<String> {
        let mut columns: Vec<String> = self
            .rows
            .iter()
            .flat_map(|r| r.values.keys().cloned())
            .collect();
        columns.sort();
        columns.dedup();
        columns
    }

    /// Renders the record as an aligned text table.
    pub fn to_table(&self) -> String {
        let columns = self.columns();
        let mut label_width = self.rows.iter().map(|r| r.label.len()).max().unwrap_or(0);
        label_width = label_width.max("configuration".len());
        let mut out = String::new();
        let _ = writeln!(out, "# {} — {}", self.id, self.title);
        let mut header = format!("{:<label_width$}", "configuration");
        for column in &columns {
            let _ = write!(header, "  {column:>12}");
        }
        let _ = writeln!(out, "{header}");
        let _ = writeln!(out, "{}", "-".repeat(header.len()));
        for row in &self.rows {
            let _ = write!(out, "{:<label_width$}", row.label);
            for column in &columns {
                match row.value(column) {
                    Some(value) => {
                        let _ = write!(out, "  {value:>12.4}");
                    }
                    None => {
                        let _ = write!(out, "  {:>12}", "-");
                    }
                }
            }
            let _ = writeln!(out);
        }
        out
    }

    /// Serialises the record as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("experiment records are always serialisable")
    }

    /// Writes the JSON record to `<directory>/<id>.json`, creating the
    /// directory if needed, and returns the written path.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating the directory or writing the file.
    pub fn write_json(&self, directory: impl AsRef<Path>) -> io::Result<PathBuf> {
        let directory = directory.as_ref();
        fs::create_dir_all(directory)?;
        let path = directory.join(format!("{}.json", self.id));
        fs::write(&path, self.to_json())?;
        Ok(path)
    }
}

/// Builds a row of latency summary columns (mean, P50, P90, P99) from a
/// histogram of millisecond samples — the shape every serving report uses.
///
/// # Example
///
/// ```
/// use specasr_metrics::{latency_row, Histogram};
///
/// let histogram = Histogram::of_samples(64, &[10.0, 12.0, 14.0, 200.0]);
/// let row = latency_row("e2e", &histogram);
/// assert!(row.value("e2e_p99_ms").unwrap() > row.value("e2e_p50_ms").unwrap());
/// ```
pub fn latency_row(label: impl Into<String>, histogram: &crate::Histogram) -> ReportRow {
    let label = label.into();
    let column = |suffix: &str| format!("{label}_{suffix}");
    ReportRow::new(label.clone())
        .with(column("mean_ms"), histogram.mean())
        .with(column("p50_ms"), histogram.percentile(0.50))
        .with(column("p90_ms"), histogram.percentile(0.90))
        .with(column("p99_ms"), histogram.percentile(0.99))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_record() -> ExperimentRecord {
        ExperimentRecord::new("tab02", "Ablation on test-clean")
            .with_row(
                ReportRow::new("baseline speculative")
                    .with("draft_ms", 231.06)
                    .with("target_ms", 254.48),
            )
            .with_row(
                ReportRow::new("+ adaptive single-sequence")
                    .with("draft_ms", 236.23)
                    .with("target_ms", 191.20),
            )
    }

    #[test]
    fn rows_and_values_round_trip() {
        let record = sample_record();
        assert_eq!(record.rows.len(), 2);
        let row = record.row("baseline speculative").expect("row exists");
        assert_eq!(row.value("draft_ms"), Some(231.06));
        assert_eq!(row.value("missing"), None);
        assert!(record.row("unknown").is_none());
    }

    #[test]
    fn columns_are_sorted_and_deduplicated() {
        let record = sample_record();
        assert_eq!(
            record.columns(),
            vec!["draft_ms".to_owned(), "target_ms".to_owned()]
        );
    }

    #[test]
    fn table_contains_every_label_and_column() {
        let table = sample_record().to_table();
        assert!(table.contains("tab02"));
        assert!(table.contains("baseline speculative"));
        assert!(table.contains("draft_ms"));
        assert!(table.contains("254.4800"));
    }

    #[test]
    fn missing_values_render_as_dashes() {
        let record = ExperimentRecord::new("x", "t")
            .with_row(ReportRow::new("a").with("col1", 1.0))
            .with_row(ReportRow::new("b").with("col2", 2.0));
        let table = record.to_table();
        assert!(table.contains('-'));
    }

    #[test]
    fn json_round_trips() {
        let record = sample_record();
        let json = record.to_json();
        let parsed: ExperimentRecord = serde_json::from_str(&json).expect("valid JSON");
        assert_eq!(parsed, record);
    }

    #[test]
    fn write_json_creates_the_file() {
        let dir = std::env::temp_dir().join(format!("specasr-report-test-{}", std::process::id()));
        let path = sample_record().write_json(&dir).expect("write succeeds");
        assert!(path.exists());
        let content = std::fs::read_to_string(&path).expect("readable");
        assert!(content.contains("Ablation"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
