//! Fixed-bin histograms for acceptance-ratio and rank distributions.

use serde::{Deserialize, Serialize};

/// A histogram over `[lo, hi]` with equally sized bins.
///
/// Values outside the range are clamped into the first/last bin, so the
/// histogram always accounts for every observation (acceptance ratios of
/// exactly 1.0 land in the last bin).
///
/// # Example
///
/// ```
/// use specasr_metrics::Histogram;
///
/// let mut h = Histogram::new(0.0, 1.0, 4);
/// for v in [0.1, 0.3, 0.9, 1.0] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 4);
/// assert_eq!(h.bin_counts()[3], 2);
/// assert!((h.mean() - 0.575).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
    sum: f64,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi]` with `bins` bins.
    ///
    /// # Panics
    ///
    /// Panics if `bins` is zero or `hi <= lo`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "at least one bin is required");
        assert!(hi > lo, "the histogram range must be non-empty");
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            total: 0,
            sum: 0.0,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, value: f64) {
        let bins = self.counts.len();
        let span = self.hi - self.lo;
        let normalised = ((value - self.lo) / span).clamp(0.0, 1.0);
        let mut bin = (normalised * bins as f64).floor() as usize;
        if bin >= bins {
            bin = bins - 1;
        }
        self.counts[bin] += 1;
        self.total += 1;
        self.sum += value;
    }

    /// Records many observations.
    pub fn record_all<I: IntoIterator<Item = f64>>(&mut self, values: I) {
        for v in values {
            self.record(v);
        }
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Raw per-bin counts.
    pub fn bin_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Per-bin fractions of the total (all zeros if nothing was recorded).
    pub fn bin_fractions(&self) -> Vec<f64> {
        if self.total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts
            .iter()
            .map(|&c| c as f64 / self.total as f64)
            .collect()
    }

    /// The `(lower, upper)` bounds of bin `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn bin_range(&self, index: usize) -> (f64, f64) {
        assert!(index < self.counts.len(), "bin index out of range");
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        (
            self.lo + width * index as f64,
            self.lo + width * (index + 1) as f64,
        )
    }

    /// Total number of recorded observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Exact sum of the recorded observations (0 if none).
    ///
    /// Kept alongside the bin counts so exports that need `sum`/`count`
    /// pairs (e.g. Prometheus histogram exposition) do not round-trip
    /// through the mean.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of the recorded observations (0 if none).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum / self.total as f64
        }
    }

    /// Builds a histogram sized to cover `samples` exactly and records them
    /// all.  The range spans `[0, max]` (padded slightly so the maximum does
    /// not sit on the clamping edge), which is the shape latency samples
    /// need.
    ///
    /// # Panics
    ///
    /// Panics if `bins` is zero.
    pub fn of_samples(bins: usize, samples: &[f64]) -> Self {
        let max = samples.iter().copied().fold(0.0f64, f64::max);
        let hi = if max > 0.0 { max * 1.0001 } else { 1.0 };
        let mut histogram = Histogram::new(0.0, hi, bins);
        histogram.record_all(samples.iter().copied());
        histogram
    }

    /// Merges two histograms into one covering the union of their ranges.
    ///
    /// The result spans `[min(lo), max(hi)]` with the larger of the two bin
    /// counts; each source bin's observations are re-recorded at the source
    /// bin's centre.  The total count and sum (hence [`Histogram::mean`]) are
    /// preserved exactly; bin placement is approximate to within one source
    /// bin width, which is the usual trade of mergeable fixed-bin histograms.
    /// Merging with an empty histogram widens the range but adds no counts,
    /// and works for mismatched ranges (per-worker latency histograms whose
    /// maxima differ are the motivating case).
    ///
    /// # Example
    ///
    /// ```
    /// use specasr_metrics::Histogram;
    ///
    /// let a = Histogram::of_samples(64, &[10.0, 20.0]);
    /// let b = Histogram::of_samples(128, &[500.0]);
    /// let merged = a.merge(&b);
    /// assert_eq!(merged.count(), 3);
    /// assert!((merged.mean() - 530.0 / 3.0).abs() < 1e-9);
    /// ```
    pub fn merge(&self, other: &Histogram) -> Histogram {
        let lo = self.lo.min(other.lo);
        let hi = self.hi.max(other.hi);
        let bins = self.bins().max(other.bins());
        let mut merged = Histogram::new(lo, hi, bins);
        for source in [self, other] {
            for (index, &count) in source.counts.iter().enumerate() {
                if count == 0 {
                    continue;
                }
                let (bin_lo, bin_hi) = source.bin_range(index);
                let centre = 0.5 * (bin_lo + bin_hi);
                let normalised = ((centre - merged.lo) / (merged.hi - merged.lo)).clamp(0.0, 1.0);
                let target = ((normalised * bins as f64).floor() as usize).min(bins - 1);
                merged.counts[target] += count;
                merged.total += count;
            }
        }
        // Bin placement used bin centres; carry the exact sum over so the
        // merged mean matches the pooled observations.
        merged.sum = self.sum + other.sum;
        merged
    }

    /// The `quantile` (in `[0, 1]`) of the recorded distribution, estimated
    /// by linear interpolation inside the containing bin (0 if nothing was
    /// recorded).
    ///
    /// Serving reports read P50/P99 latency through this method.
    ///
    /// # Panics
    ///
    /// Panics if `quantile` is outside `[0, 1]`.
    pub fn percentile(&self, quantile: f64) -> f64 {
        assert!(
            (0.0..=1.0).contains(&quantile),
            "quantile must lie in [0, 1]"
        );
        if self.total == 0 {
            return 0.0;
        }
        let target = quantile * self.total as f64;
        let mut cumulative = 0.0f64;
        for (index, &count) in self.counts.iter().enumerate() {
            let next = cumulative + count as f64;
            if next >= target && count > 0 {
                let (lower, upper) = self.bin_range(index);
                let within = ((target - cumulative) / count as f64).clamp(0.0, 1.0);
                return lower + (upper - lower) * within;
            }
            cumulative = next;
        }
        self.hi
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_land_in_the_right_bins() {
        let mut h = Histogram::new(0.0, 1.0, 10);
        h.record(0.05);
        h.record(0.55);
        h.record(0.95);
        assert_eq!(h.bin_counts()[0], 1);
        assert_eq!(h.bin_counts()[5], 1);
        assert_eq!(h.bin_counts()[9], 1);
        assert_eq!(h.count(), 3);
    }

    #[test]
    fn out_of_range_values_are_clamped() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.record(-3.0);
        h.record(7.0);
        h.record(1.0);
        assert_eq!(h.bin_counts()[0], 1);
        assert_eq!(h.bin_counts()[3], 2);
    }

    #[test]
    fn fractions_sum_to_one_when_nonempty() {
        let mut h = Histogram::new(0.0, 24.0, 6);
        h.record_all([1.0, 5.0, 9.0, 13.0, 20.0, 23.9]);
        let total: f64 = h.bin_fractions().iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_histogram_reports_zeroes() {
        let h = Histogram::new(0.0, 1.0, 3);
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert!(h.bin_fractions().iter().all(|&f| f == 0.0));
    }

    #[test]
    fn bin_ranges_partition_the_interval() {
        let h = Histogram::new(0.0, 1.0, 4);
        assert_eq!(h.bin_range(0), (0.0, 0.25));
        assert_eq!(h.bin_range(3), (0.75, 1.0));
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_panics() {
        Histogram::new(0.0, 1.0, 0);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn inverted_range_panics() {
        Histogram::new(1.0, 0.0, 3);
    }

    #[test]
    #[should_panic(expected = "bin index out of range")]
    fn bad_bin_index_panics() {
        Histogram::new(0.0, 1.0, 3).bin_range(3);
    }

    #[test]
    fn percentiles_bracket_the_distribution() {
        let samples: Vec<f64> = (1..=100).map(|v| v as f64).collect();
        let h = Histogram::of_samples(200, &samples);
        let p50 = h.percentile(0.50);
        let p90 = h.percentile(0.90);
        let p99 = h.percentile(0.99);
        assert!((p50 - 50.0).abs() < 2.0, "p50 ≈ 50, got {p50}");
        assert!((p90 - 90.0).abs() < 2.0, "p90 ≈ 90, got {p90}");
        assert!((p99 - 99.0).abs() < 2.0, "p99 ≈ 99, got {p99}");
        assert!(p50 <= p90 && p90 <= p99);
        // Quantile 0 lands at the lower edge of the minimum's bin; quantile 1
        // at the upper edge of the maximum's.
        assert!(h.percentile(0.0) <= 1.0);
        assert!(h.percentile(1.0) >= 100.0);
    }

    #[test]
    fn percentile_of_empty_histogram_is_zero() {
        let h = Histogram::new(0.0, 1.0, 4);
        assert_eq!(h.percentile(0.5), 0.0);
    }

    #[test]
    fn skewed_tails_separate_p50_from_p99() {
        // 99 fast requests and one straggler: P50 stays near the fast mode
        // while P99 reaches into the tail.
        let mut samples = vec![10.0; 99];
        samples.push(1000.0);
        let h = Histogram::of_samples(500, &samples);
        assert!(h.percentile(0.50) < 20.0);
        assert!(h.percentile(0.995) > 500.0);
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn out_of_range_quantile_panics() {
        Histogram::new(0.0, 1.0, 4).percentile(1.5);
    }

    #[test]
    fn merging_two_empty_histograms_stays_empty() {
        let a = Histogram::new(0.0, 1.0, 4);
        let b = Histogram::new(0.0, 2.0, 8);
        let merged = a.merge(&b);
        assert_eq!(merged.count(), 0);
        assert_eq!(merged.mean(), 0.0);
        assert_eq!(merged.bins(), 8);
        assert_eq!(merged.percentile(0.99), 0.0);
    }

    #[test]
    fn merging_with_an_empty_histogram_preserves_the_distribution() {
        let mut a = Histogram::new(0.0, 100.0, 10);
        a.record_all([10.0, 50.0, 90.0]);
        let empty = Histogram::new(0.0, 100.0, 10);
        for merged in [a.merge(&empty), empty.merge(&a)] {
            assert_eq!(merged.count(), 3);
            assert!((merged.mean() - 50.0).abs() < 1e-12);
            assert_eq!(merged.bin_counts(), a.bin_counts());
        }
    }

    #[test]
    fn single_sample_merge_lands_in_the_right_bin() {
        let mut a = Histogram::new(0.0, 100.0, 10);
        a.record(95.0);
        let mut b = Histogram::new(0.0, 100.0, 10);
        b.record(5.0);
        let merged = a.merge(&b);
        assert_eq!(merged.count(), 2);
        assert_eq!(merged.bin_counts()[0], 1);
        assert_eq!(merged.bin_counts()[9], 1);
        assert!((merged.mean() - 50.0).abs() < 1e-12);
    }

    #[test]
    fn mismatched_ranges_merge_over_the_union() {
        // Per-worker latency histograms: one fast worker, one straggler.
        let fast = Histogram::of_samples(64, &[10.0, 12.0, 14.0]);
        let slow = Histogram::of_samples(64, &[900.0, 1000.0]);
        let merged = fast.merge(&slow);
        assert_eq!(merged.count(), 5);
        assert!((merged.mean() - (10.0 + 12.0 + 14.0 + 900.0 + 1000.0) / 5.0).abs() < 1e-9);
        // The fast samples stay in the low tail, the stragglers in the high
        // tail, so the percentiles separate.
        assert!(merged.percentile(0.50) < 100.0);
        assert!(merged.percentile(0.99) > 800.0);
        // Union range covers both sources.
        assert_eq!(merged.bin_range(0).0, 0.0);
        assert!(merged.bin_range(merged.bins() - 1).1 >= 1000.0);
    }

    #[test]
    fn merge_is_commutative_in_count_and_mean() {
        let a = Histogram::of_samples(32, &[1.0, 2.0, 3.0]);
        let b = Histogram::of_samples(16, &[100.0, 200.0]);
        let ab = a.merge(&b);
        let ba = b.merge(&a);
        assert_eq!(ab.count(), ba.count());
        assert!((ab.mean() - ba.mean()).abs() < 1e-12);
        assert_eq!(ab.bins(), ba.bins());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn every_observation_is_counted(values in proptest::collection::vec(-2.0f64..3.0, 0..200)) {
            let mut h = Histogram::new(0.0, 1.0, 8);
            h.record_all(values.iter().copied());
            prop_assert_eq!(h.count(), values.len() as u64);
            prop_assert_eq!(h.bin_counts().iter().sum::<u64>(), values.len() as u64);
        }
    }
}
