//! Evaluation metrics and experiment reporting for the SpecASR reproduction.
//!
//! * [`wer`] — word-error-rate and edit-distance computation (Fig. 5a and the
//!   iso-accuracy checks behind every speedup claim),
//! * [`histogram`] — fixed-bin histograms (Fig. 6a acceptance-ratio
//!   distributions, Fig. 13b rank histograms),
//! * [`report`] — experiment records: labelled rows of named values that can
//!   be rendered as a text table (what the harness prints) and serialised as
//!   JSON (what `EXPERIMENTS.md` is regenerated from).
//!
//! # Example
//!
//! ```
//! use specasr_metrics::wer::wer_between;
//!
//! let reference = "the cat sat on the mat";
//! let hypothesis = "the cat sat on a mat";
//! let measurement = wer_between(reference, hypothesis);
//! assert_eq!(measurement.substitutions, 1);
//! assert!((measurement.wer() - 1.0 / 6.0).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod histogram;
pub mod report;
pub mod wer;

pub use histogram::Histogram;
pub use report::{latency_row, ExperimentRecord, ReportRow};
pub use wer::{wer_between, WerMeasurement};
