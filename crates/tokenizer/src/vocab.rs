//! Vocabulary: the id ↔ subword-piece table shared by every model in the
//! workspace.

use std::collections::HashMap;
use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of a single vocabulary entry.
///
/// `TokenId` is a newtype over `u32` so that token indices cannot be confused
/// with positions, ranks, or other integers flowing through the decoding
/// pipeline.
///
/// # Example
///
/// ```
/// use specasr_tokenizer::TokenId;
///
/// let id = TokenId::new(42);
/// assert_eq!(id.value(), 42);
/// assert_eq!(u32::from(id), 42);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct TokenId(u32);

impl TokenId {
    /// Creates a token id from its raw index.
    pub const fn new(raw: u32) -> Self {
        TokenId(raw)
    }

    /// Returns the raw index of this token id.
    pub const fn value(self) -> u32 {
        self.0
    }

    /// Returns the raw index as a `usize`, convenient for table lookups.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TokenId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

impl From<TokenId> for u32 {
    fn from(id: TokenId) -> Self {
        id.0
    }
}

impl From<u32> for TokenId {
    fn from(raw: u32) -> Self {
        TokenId(raw)
    }
}

/// The special (non-text) tokens every model in the workspace understands.
///
/// # Example
///
/// ```
/// use specasr_tokenizer::{SpecialToken, Vocabulary};
///
/// let vocab = Vocabulary::with_pieces(["hello"]);
/// assert_eq!(vocab.piece(vocab.special(SpecialToken::Bos)), Some("<bos>"));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SpecialToken {
    /// Beginning-of-sequence marker, prepended to every decode.
    Bos,
    /// End-of-sequence marker, terminates autoregressive decoding.
    Eos,
    /// Padding token used when batching sequences of unequal length.
    Pad,
    /// Unknown-piece fallback emitted for characters outside the vocabulary.
    Unk,
}

impl SpecialToken {
    /// All special tokens in their canonical (id) order.
    pub const ALL: [SpecialToken; 4] = [
        SpecialToken::Bos,
        SpecialToken::Eos,
        SpecialToken::Pad,
        SpecialToken::Unk,
    ];

    /// The textual surface form used for this special token.
    pub const fn piece(self) -> &'static str {
        match self {
            SpecialToken::Bos => "<bos>",
            SpecialToken::Eos => "<eos>",
            SpecialToken::Pad => "<pad>",
            SpecialToken::Unk => "<unk>",
        }
    }
}

impl fmt::Display for SpecialToken {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.piece())
    }
}

/// Marker prefix that denotes a piece starting a new word (the `▁` convention
/// from SentencePiece, spelled in ASCII so logs stay readable).
pub(crate) const WORD_BOUNDARY: char = '\u{2581}';

/// An immutable id ↔ piece table.
///
/// The first four ids are always the [`SpecialToken`]s in the order given by
/// [`SpecialToken::ALL`]; text pieces follow.  Pieces that begin a word carry a
/// leading `▁` marker internally; [`crate::Tokenizer::decode`] converts the
/// marker back into spaces.
///
/// # Example
///
/// ```
/// use specasr_tokenizer::Vocabulary;
///
/// let vocab = Vocabulary::with_pieces(["\u{2581}hello", "\u{2581}world"]);
/// assert_eq!(vocab.len(), 4 + 2);
/// assert!(vocab.id_of("\u{2581}hello").is_some());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Vocabulary {
    pieces: Vec<String>,
    lookup: HashMap<String, TokenId>,
}

impl Vocabulary {
    /// Builds a vocabulary from an iterator of text pieces.
    ///
    /// Special tokens are inserted automatically in front of the supplied
    /// pieces.  Duplicate pieces are ignored (first occurrence wins), so the
    /// resulting table is always a bijection.
    pub fn with_pieces<I, S>(pieces: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut vocab = Vocabulary {
            pieces: Vec::new(),
            lookup: HashMap::new(),
        };
        for special in SpecialToken::ALL {
            vocab.push_piece(special.piece().to_owned());
        }
        for piece in pieces {
            let piece = piece.into();
            if !vocab.lookup.contains_key(&piece) {
                vocab.push_piece(piece);
            }
        }
        vocab
    }

    fn push_piece(&mut self, piece: String) {
        let id = TokenId::new(self.pieces.len() as u32);
        self.lookup.insert(piece.clone(), id);
        self.pieces.push(piece);
    }

    /// Number of entries in the vocabulary, including special tokens.
    pub fn len(&self) -> usize {
        self.pieces.len()
    }

    /// Returns `true` if the vocabulary holds only the special tokens.
    pub fn is_empty(&self) -> bool {
        self.pieces.len() <= SpecialToken::ALL.len()
    }

    /// Returns the id of `piece`, if present.
    pub fn id_of(&self, piece: &str) -> Option<TokenId> {
        self.lookup.get(piece).copied()
    }

    /// Returns the surface form of `id`, if `id` is in range.
    pub fn piece(&self, id: TokenId) -> Option<&str> {
        self.pieces.get(id.index()).map(String::as_str)
    }

    /// Returns the id reserved for `special`.
    pub fn special(&self, special: SpecialToken) -> TokenId {
        // Specials are always inserted first, in ALL order.
        let position = SpecialToken::ALL
            .iter()
            .position(|s| *s == special)
            .expect("special token list is exhaustive");
        TokenId::new(position as u32)
    }

    /// Returns `true` if `id` refers to one of the special tokens.
    pub fn is_special(&self, id: TokenId) -> bool {
        id.index() < SpecialToken::ALL.len()
    }

    /// Iterates over `(id, piece)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (TokenId, &str)> {
        self.pieces
            .iter()
            .enumerate()
            .map(|(i, piece)| (TokenId::new(i as u32), piece.as_str()))
    }
}

impl Default for Vocabulary {
    fn default() -> Self {
        Vocabulary::with_pieces(Vec::<String>::new())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specials_are_first_and_stable() {
        let vocab = Vocabulary::default();
        assert_eq!(vocab.special(SpecialToken::Bos).value(), 0);
        assert_eq!(vocab.special(SpecialToken::Eos).value(), 1);
        assert_eq!(vocab.special(SpecialToken::Pad).value(), 2);
        assert_eq!(vocab.special(SpecialToken::Unk).value(), 3);
        for special in SpecialToken::ALL {
            let id = vocab.special(special);
            assert!(vocab.is_special(id));
            assert_eq!(vocab.piece(id), Some(special.piece()));
        }
    }

    #[test]
    fn duplicate_pieces_are_deduplicated() {
        let vocab = Vocabulary::with_pieces(["a", "b", "a"]);
        assert_eq!(vocab.len(), SpecialToken::ALL.len() + 2);
    }

    #[test]
    fn lookup_round_trips() {
        let vocab = Vocabulary::with_pieces(["\u{2581}hello", "ing", "\u{2581}w"]);
        for (id, piece) in vocab.iter() {
            assert_eq!(vocab.id_of(piece), Some(id));
        }
    }

    #[test]
    fn out_of_range_piece_is_none() {
        let vocab = Vocabulary::default();
        assert_eq!(vocab.piece(TokenId::new(1000)), None);
    }

    #[test]
    fn token_id_display_and_conversions() {
        let id = TokenId::new(7);
        assert_eq!(id.to_string(), "#7");
        assert_eq!(TokenId::from(7u32), id);
        assert_eq!(u32::from(id), 7);
        assert_eq!(id.index(), 7usize);
    }

    #[test]
    fn empty_vocabulary_reports_empty() {
        assert!(Vocabulary::default().is_empty());
        assert!(!Vocabulary::with_pieces(["x"]).is_empty());
    }
}
