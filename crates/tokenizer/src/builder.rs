//! Deterministic frequency-based subword vocabulary construction.
//!
//! The builder implements a simplified byte-pair-encoding procedure: the seed
//! alphabet is the set of characters observed in the corpus (with a
//! word-boundary marker on word-initial characters) and the most frequent
//! adjacent pair is merged repeatedly until the target vocabulary size is
//! reached.  Ties are broken lexicographically so the result is a pure
//! function of the corpus and configuration.

use std::collections::HashMap;

use crate::vocab::{Vocabulary, WORD_BOUNDARY};

/// Builder for a [`Vocabulary`] learned from a text corpus.
///
/// # Example
///
/// ```
/// use specasr_tokenizer::VocabularyBuilder;
///
/// let vocab = VocabularyBuilder::new()
///     .target_size(120)
///     .min_pair_frequency(2)
///     .build_from_corpus(["low lower lowest", "new newer newest"]);
/// assert!(vocab.len() <= 120);
/// ```
#[derive(Debug, Clone)]
pub struct VocabularyBuilder {
    target_size: usize,
    min_pair_frequency: usize,
    lowercase: bool,
}

impl VocabularyBuilder {
    /// Creates a builder with the default configuration
    /// (`target_size = 1024`, `min_pair_frequency = 2`, lowercasing on).
    pub fn new() -> Self {
        VocabularyBuilder {
            target_size: 1024,
            min_pair_frequency: 2,
            lowercase: true,
        }
    }

    /// Sets the maximum vocabulary size (including special tokens).
    pub fn target_size(mut self, size: usize) -> Self {
        self.target_size = size;
        self
    }

    /// Sets the minimum frequency an adjacent pair must reach to be merged.
    pub fn min_pair_frequency(mut self, frequency: usize) -> Self {
        self.min_pair_frequency = frequency.max(1);
        self
    }

    /// Controls whether the corpus is lowercased before learning pieces.
    pub fn lowercase(mut self, lowercase: bool) -> Self {
        self.lowercase = lowercase;
        self
    }

    /// Learns a vocabulary from the given corpus lines.
    ///
    /// The procedure is deterministic: identical corpora and configurations
    /// always produce identical vocabularies.
    pub fn build_from_corpus<I, S>(&self, corpus: I) -> Vocabulary
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        // 1. Count word frequencies.
        let mut word_counts: HashMap<String, usize> = HashMap::new();
        for line in corpus {
            let line = if self.lowercase {
                line.as_ref().to_lowercase()
            } else {
                line.as_ref().to_owned()
            };
            for word in line.split_whitespace() {
                *word_counts.entry(word.to_owned()).or_insert(0) += 1;
            }
        }

        // 2. Represent each word as a sequence of pieces, starting from
        //    characters with a word-boundary marker on the first character.
        let mut words: Vec<(Vec<String>, usize)> = word_counts
            .into_iter()
            .map(|(word, count)| (segment_characters(&word), count))
            .collect();
        // Deterministic ordering independent of HashMap iteration order.
        words.sort_by(|a, b| a.0.cmp(&b.0));

        // 3. Collect the seed alphabet.
        let mut pieces: Vec<String> = Vec::new();
        let mut seen: HashMap<String, ()> = HashMap::new();
        for (segments, _) in &words {
            for segment in segments {
                if seen.insert(segment.clone(), ()).is_none() {
                    pieces.push(segment.clone());
                }
            }
        }
        pieces.sort();

        // 4. Iteratively merge the most frequent adjacent pair.
        let special_count = crate::SpecialToken::ALL.len();
        while pieces.len() + special_count < self.target_size {
            let Some((left, right, frequency)) = most_frequent_pair(&words) else {
                break;
            };
            if frequency < self.min_pair_frequency {
                break;
            }
            let merged = format!("{left}{right}");
            if seen.insert(merged.clone(), ()).is_none() {
                pieces.push(merged.clone());
            }
            apply_merge(&mut words, &left, &right, &merged);
        }

        Vocabulary::with_pieces(pieces)
    }
}

impl Default for VocabularyBuilder {
    fn default() -> Self {
        VocabularyBuilder::new()
    }
}

/// Splits a word into single-character pieces, marking the first character
/// with the word-boundary marker.
fn segment_characters(word: &str) -> Vec<String> {
    let mut segments = Vec::new();
    for (i, ch) in word.chars().enumerate() {
        if i == 0 {
            segments.push(format!("{WORD_BOUNDARY}{ch}"));
        } else {
            segments.push(ch.to_string());
        }
    }
    segments
}

/// Finds the most frequent adjacent piece pair across all words.
///
/// Ties are broken by lexicographic order of `(left, right)` so the merge
/// sequence is deterministic.
fn most_frequent_pair(words: &[(Vec<String>, usize)]) -> Option<(String, String, usize)> {
    let mut counts: HashMap<(String, String), usize> = HashMap::new();
    for (segments, count) in words {
        for window in segments.windows(2) {
            let key = (window[0].clone(), window[1].clone());
            *counts.entry(key).or_insert(0) += count;
        }
    }
    counts
        .into_iter()
        .max_by(|a, b| a.1.cmp(&b.1).then_with(|| b.0.cmp(&a.0)))
        .map(|((left, right), frequency)| (left, right, frequency))
}

/// Replaces every adjacent `(left, right)` occurrence with the merged piece.
fn apply_merge(words: &mut [(Vec<String>, usize)], left: &str, right: &str, merged: &str) {
    for (segments, _) in words.iter_mut() {
        let mut output: Vec<String> = Vec::with_capacity(segments.len());
        let mut i = 0;
        while i < segments.len() {
            if i + 1 < segments.len() && segments[i] == left && segments[i + 1] == right {
                output.push(merged.to_owned());
                i += 2;
            } else {
                output.push(segments[i].clone());
                i += 1;
            }
        }
        *segments = output;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SpecialToken;

    #[test]
    fn builds_deterministically() {
        let corpus = ["the cat sat on the mat", "the cat ran"];
        let a = VocabularyBuilder::new()
            .target_size(64)
            .build_from_corpus(corpus);
        let b = VocabularyBuilder::new()
            .target_size(64)
            .build_from_corpus(corpus);
        assert_eq!(a, b);
    }

    #[test]
    fn target_size_stops_merges_beyond_seed_alphabet() {
        // The seed alphabet (one piece per observed character position kind)
        // is a floor on the vocabulary size; the target size only limits how
        // many *merged* multi-character pieces are added on top of it.
        let corpus = ["aaa bbb ccc ddd eee fff ggg hhh iii jjj"];
        let vocab = VocabularyBuilder::new()
            .target_size(16)
            .min_pair_frequency(1)
            .build_from_corpus(corpus);
        let longest = vocab
            .iter()
            .filter(|(id, _)| !vocab.is_special(*id))
            .map(|(_, piece)| piece.trim_start_matches(WORD_BOUNDARY).chars().count())
            .max()
            .unwrap_or(0);
        assert_eq!(
            longest, 1,
            "no merges should be applied when the seed exceeds the target"
        );

        let generous = VocabularyBuilder::new()
            .target_size(64)
            .min_pair_frequency(1)
            .build_from_corpus(corpus);
        assert!(generous.len() <= 64);
        assert!(
            generous.len() > vocab.len(),
            "a generous target should allow merges"
        );
    }

    #[test]
    fn seed_alphabet_covers_corpus_characters() {
        let corpus = ["xyzzy plugh"];
        let vocab = VocabularyBuilder::new()
            .target_size(1000)
            .build_from_corpus(corpus);
        for ch in "xyzplugh".chars() {
            let single = ch.to_string();
            let word_initial = format!("{WORD_BOUNDARY}{ch}");
            assert!(
                vocab.id_of(&single).is_some() || vocab.id_of(&word_initial).is_some(),
                "character {ch:?} is not covered"
            );
        }
    }

    #[test]
    fn merges_frequent_words_into_single_pieces() {
        let corpus = vec!["hello hello hello hello hello world"; 8];
        let vocab = VocabularyBuilder::new()
            .target_size(512)
            .build_from_corpus(corpus);
        assert!(
            vocab.id_of(&format!("{WORD_BOUNDARY}hello")).is_some(),
            "frequent word should become a single piece"
        );
    }

    #[test]
    fn lowercase_flag_controls_casing() {
        let corpus = ["HELLO HELLO HELLO HELLO"];
        let lower = VocabularyBuilder::new()
            .target_size(256)
            .build_from_corpus(corpus);
        let cased = VocabularyBuilder::new()
            .lowercase(false)
            .target_size(256)
            .build_from_corpus(corpus);
        assert!(lower.id_of(&format!("{WORD_BOUNDARY}hello")).is_some());
        assert!(cased.id_of(&format!("{WORD_BOUNDARY}HELLO")).is_some());
    }

    #[test]
    fn empty_corpus_yields_only_specials() {
        let vocab = VocabularyBuilder::new().build_from_corpus(Vec::<&str>::new());
        assert_eq!(vocab.len(), SpecialToken::ALL.len());
        assert!(vocab.is_empty());
    }

    #[test]
    fn min_pair_frequency_limits_merges() {
        let corpus = ["ab ab cd"];
        let strict = VocabularyBuilder::new()
            .target_size(1000)
            .min_pair_frequency(5)
            .build_from_corpus(corpus);
        let relaxed = VocabularyBuilder::new()
            .target_size(1000)
            .min_pair_frequency(1)
            .build_from_corpus(corpus);
        assert!(strict.len() <= relaxed.len());
    }
}
