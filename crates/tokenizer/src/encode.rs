//! Greedy longest-match encoding and lossless decoding.

use std::sync::Arc;

use crate::error::TokenizeError;
use crate::vocab::{SpecialToken, TokenId, Vocabulary, WORD_BOUNDARY};

/// Encoder/decoder over a shared [`Vocabulary`].
///
/// Encoding uses greedy longest-match over the vocabulary pieces; characters
/// that cannot be covered fall back to the `<unk>` token, so encoding never
/// fails for well-formed UTF-8 input (an error variant exists only for the
/// strict API, [`Tokenizer::encode_strict`]).
///
/// The tokenizer is cheap to clone: the vocabulary is reference-counted.
///
/// # Example
///
/// ```
/// use specasr_tokenizer::{Tokenizer, VocabularyBuilder};
///
/// # fn main() -> Result<(), specasr_tokenizer::TokenizeError> {
/// let vocab = VocabularyBuilder::new()
///     .target_size(300)
///     .build_from_corpus(["speech recognition is audio conditioned"]);
/// let tok = Tokenizer::new(vocab);
/// let ids = tok.encode("speech recognition")?;
/// assert_eq!(tok.decode(&ids)?, "speech recognition");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Tokenizer {
    vocab: Arc<Vocabulary>,
    max_piece_chars: usize,
    lowercase: bool,
}

impl Tokenizer {
    /// Creates a tokenizer over `vocab`.
    pub fn new(vocab: Vocabulary) -> Self {
        let max_piece_chars = vocab
            .iter()
            .map(|(_, piece)| piece.chars().count())
            .max()
            .unwrap_or(1);
        Tokenizer {
            vocab: Arc::new(vocab),
            max_piece_chars,
            lowercase: true,
        }
    }

    /// Disables input lowercasing (the default matches
    /// [`crate::VocabularyBuilder`]'s default of lowercasing).
    pub fn preserve_case(mut self) -> Self {
        self.lowercase = false;
        self
    }

    /// Returns the underlying vocabulary.
    pub fn vocabulary(&self) -> &Vocabulary {
        &self.vocab
    }

    /// Number of entries in the vocabulary.
    pub fn vocab_size(&self) -> usize {
        self.vocab.len()
    }

    /// Id of the beginning-of-sequence token.
    pub fn bos(&self) -> TokenId {
        self.vocab.special(SpecialToken::Bos)
    }

    /// Id of the end-of-sequence token.
    pub fn eos(&self) -> TokenId {
        self.vocab.special(SpecialToken::Eos)
    }

    /// Id of the padding token.
    pub fn pad(&self) -> TokenId {
        self.vocab.special(SpecialToken::Pad)
    }

    /// Id of the unknown token.
    pub fn unk(&self) -> TokenId {
        self.vocab.special(SpecialToken::Unk)
    }

    /// Encodes `text` into token ids, mapping uncoverable characters to
    /// `<unk>`.
    ///
    /// # Errors
    ///
    /// This lenient variant never returns an error for valid UTF-8 input; the
    /// `Result` return type exists for signature symmetry with
    /// [`Tokenizer::decode`] and future vocabulary-free configurations.
    pub fn encode(&self, text: &str) -> Result<Vec<TokenId>, TokenizeError> {
        self.encode_impl(text, false)
    }

    /// Encodes `text`, returning an error on the first character that cannot
    /// be covered by the vocabulary.
    ///
    /// # Errors
    ///
    /// Returns [`TokenizeError::UncoverableInput`] if a character has no
    /// covering piece (not even as a single character).
    pub fn encode_strict(&self, text: &str) -> Result<Vec<TokenId>, TokenizeError> {
        self.encode_impl(text, true)
    }

    fn encode_impl(&self, text: &str, strict: bool) -> Result<Vec<TokenId>, TokenizeError> {
        let text = if self.lowercase {
            text.to_lowercase()
        } else {
            text.to_owned()
        };
        let mut ids = Vec::new();
        for word in text.split_whitespace() {
            self.encode_word(word, strict, &mut ids)?;
        }
        Ok(ids)
    }

    /// Encodes a single whitespace-free word using greedy longest match.
    fn encode_word(
        &self,
        word: &str,
        strict: bool,
        out: &mut Vec<TokenId>,
    ) -> Result<(), TokenizeError> {
        // Work on the marked form: word-initial pieces carry the boundary marker.
        let marked: Vec<char> = std::iter::once(WORD_BOUNDARY).chain(word.chars()).collect();
        let mut start = 0;
        while start < marked.len() {
            // The boundary marker alone is not a piece; skip it if stranded.
            let remaining = marked.len() - start;
            let mut matched: Option<(usize, TokenId)> = None;
            let max_len = remaining.min(self.max_piece_chars);
            for len in (1..=max_len).rev() {
                let candidate: String = marked[start..start + len].iter().collect();
                if let Some(id) = self.vocab.id_of(&candidate) {
                    matched = Some((len, id));
                    break;
                }
            }
            match matched {
                Some((len, id)) => {
                    out.push(id);
                    start += len;
                }
                None => {
                    let ch = marked[start];
                    if ch == WORD_BOUNDARY {
                        // No word-initial piece matched; retry the word body
                        // without the marker.
                        start += 1;
                        continue;
                    }
                    if strict {
                        return Err(TokenizeError::UncoverableInput {
                            character: ch,
                            offset: start.saturating_sub(1),
                        });
                    }
                    out.push(self.unk());
                    start += 1;
                }
            }
        }
        Ok(())
    }

    /// Decodes token ids back into text.
    ///
    /// Special tokens are skipped; word-boundary markers become single spaces.
    ///
    /// # Errors
    ///
    /// Returns [`TokenizeError::UnknownTokenId`] if any id is outside the
    /// vocabulary.
    pub fn decode(&self, ids: &[TokenId]) -> Result<String, TokenizeError> {
        let mut text = String::new();
        for &id in ids {
            let piece = self
                .vocab
                .piece(id)
                .ok_or(TokenizeError::UnknownTokenId { id })?;
            if self.vocab.is_special(id) {
                continue;
            }
            for ch in piece.chars() {
                if ch == WORD_BOUNDARY {
                    if !text.is_empty() {
                        text.push(' ');
                    }
                } else {
                    text.push(ch);
                }
            }
        }
        Ok(text)
    }

    /// Decodes token ids into whitespace-separated words.
    ///
    /// Convenience wrapper over [`Tokenizer::decode`] used by the WER metric.
    ///
    /// # Errors
    ///
    /// Returns [`TokenizeError::UnknownTokenId`] if any id is outside the
    /// vocabulary.
    pub fn decode_words(&self, ids: &[TokenId]) -> Result<Vec<String>, TokenizeError> {
        Ok(self
            .decode(ids)?
            .split_whitespace()
            .map(str::to_owned)
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VocabularyBuilder;

    fn sample_tokenizer() -> Tokenizer {
        let corpus = [
            "the quick brown fox jumps over the lazy dog",
            "speech recognition with large language models",
            "speculative decoding accelerates autoregressive inference",
            "audio conditioned generation keeps draft and target aligned",
        ];
        let vocab = VocabularyBuilder::new()
            .target_size(400)
            .min_pair_frequency(1)
            .build_from_corpus(corpus);
        Tokenizer::new(vocab)
    }

    #[test]
    fn encode_decode_round_trip() {
        let tok = sample_tokenizer();
        let text = "the quick brown fox";
        let ids = tok.encode(text).expect("encode");
        assert_eq!(tok.decode(&ids).expect("decode"), text);
    }

    #[test]
    fn round_trip_normalises_whitespace_and_case() {
        let tok = sample_tokenizer();
        let ids = tok.encode("  The   QUICK fox ").expect("encode");
        assert_eq!(tok.decode(&ids).expect("decode"), "the quick fox");
    }

    #[test]
    fn unknown_characters_map_to_unk() {
        let tok = sample_tokenizer();
        let ids = tok.encode("fox 模型").expect("encode");
        assert!(ids.contains(&tok.unk()));
    }

    #[test]
    fn strict_encoding_rejects_unknown_characters() {
        let tok = sample_tokenizer();
        let err = tok.encode_strict("模型").expect_err("should fail");
        assert!(matches!(err, TokenizeError::UncoverableInput { .. }));
    }

    #[test]
    fn decode_rejects_out_of_range_ids() {
        let tok = sample_tokenizer();
        let err = tok
            .decode(&[TokenId::new(u32::MAX)])
            .expect_err("should fail");
        assert!(matches!(err, TokenizeError::UnknownTokenId { .. }));
    }

    #[test]
    fn specials_are_skipped_when_decoding() {
        let tok = sample_tokenizer();
        let mut ids = vec![tok.bos()];
        ids.extend(tok.encode("lazy dog").expect("encode"));
        ids.push(tok.eos());
        assert_eq!(tok.decode(&ids).expect("decode"), "lazy dog");
    }

    #[test]
    fn decode_words_splits_on_boundaries() {
        let tok = sample_tokenizer();
        let ids = tok.encode("speech recognition models").expect("encode");
        let words = tok.decode_words(&ids).expect("decode");
        assert_eq!(words, vec!["speech", "recognition", "models"]);
    }

    #[test]
    fn empty_input_encodes_to_empty() {
        let tok = sample_tokenizer();
        assert!(tok.encode("").expect("encode").is_empty());
        assert_eq!(tok.decode(&[]).expect("decode"), "");
    }

    #[test]
    fn tokenizer_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Tokenizer>();
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::VocabularyBuilder;
    use proptest::prelude::*;

    fn word_strategy() -> impl Strategy<Value = String> {
        proptest::collection::vec(prop::sample::select(vec!['a', 'b', 'c', 'd', 'e']), 1..8)
            .prop_map(|chars| chars.into_iter().collect())
    }

    fn sentence_strategy() -> impl Strategy<Value = String> {
        proptest::collection::vec(word_strategy(), 1..12).prop_map(|words| words.join(" "))
    }

    proptest! {
        /// Any sentence drawn from the training alphabet round-trips exactly.
        #[test]
        fn round_trip_over_training_alphabet(sentence in sentence_strategy()) {
            // Every alphabet letter must appear both word-initially and in an
            // interior position so the seed alphabet covers all encodings.
            let vocab = VocabularyBuilder::new()
                .target_size(200)
                .min_pair_frequency(1)
                .build_from_corpus(["abcde eabcd deabc cdeab bcdea a b c d e"]);
            let tok = Tokenizer::new(vocab);
            let ids = tok.encode(&sentence).expect("encode");
            prop_assert_eq!(tok.decode(&ids).expect("decode"), sentence);
        }

        /// Encoding never produces ids outside the vocabulary.
        #[test]
        fn encoded_ids_are_in_range(sentence in sentence_strategy()) {
            let vocab = VocabularyBuilder::new()
                .target_size(64)
                .build_from_corpus(["a b c d e"]);
            let tok = Tokenizer::new(vocab);
            for id in tok.encode(&sentence).expect("encode") {
                prop_assert!(id.index() < tok.vocab_size());
            }
        }
    }
}
