//! Error type for tokenisation failures.

use std::error::Error;
use std::fmt;

use crate::TokenId;

/// Errors produced while encoding text or decoding token ids.
///
/// # Example
///
/// ```
/// use specasr_tokenizer::{TokenId, TokenizeError};
///
/// let err = TokenizeError::UnknownTokenId { id: TokenId::new(9999) };
/// assert!(err.to_string().contains("9999"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenizeError {
    /// A character in the input could not be covered by any vocabulary piece
    /// and the tokenizer was configured to reject unknown characters.
    UncoverableInput {
        /// The character that could not be encoded.
        character: char,
        /// Byte offset of the character within the input string.
        offset: usize,
    },
    /// A token id outside the vocabulary was passed to `decode`.
    UnknownTokenId {
        /// The offending token id.
        id: TokenId,
    },
}

impl fmt::Display for TokenizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenizeError::UncoverableInput { character, offset } => write!(
                f,
                "character {character:?} at byte offset {offset} is not covered by the vocabulary"
            ),
            TokenizeError::UnknownTokenId { id } => {
                write!(
                    f,
                    "token id {} is not present in the vocabulary",
                    id.value()
                )
            }
        }
    }
}

impl Error for TokenizeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e1 = TokenizeError::UncoverableInput {
            character: 'ß',
            offset: 3,
        };
        assert!(e1.to_string().contains("offset 3"));
        let e2 = TokenizeError::UnknownTokenId {
            id: TokenId::new(5),
        };
        assert!(e2.to_string().contains('5'));
    }

    #[test]
    fn error_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TokenizeError>();
    }
}
