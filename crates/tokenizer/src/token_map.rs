//! Precomputed n-gram token-map index for model-free draft generation.
//!
//! Ho et al. (*Model-free Speculative Decoding with Token Map Drafting*)
//! replace the draft model with a table: over a domain corpus, record which
//! token most often follows each short token context, then at decode time
//! walk the table from the committed prefix to produce draft tokens — zero
//! forward passes, zero draft KV cache.  Drafting simply stops ("falls
//! off-map") when the current context was never seen or its continuation is
//! ambiguous, which yields shorter drafts on out-of-domain audio instead of
//! wrong ones.
//!
//! [`TokenMapIndex`] is that table: counts of next-token continuations for
//! every context window up to a configurable order, queried with
//! longest-suffix backoff and a majority rule.  Construction is fully
//! deterministic (ties break toward the smallest token id), so the same
//! corpus always yields the same index — the reproducibility bar every other
//! component of this workspace meets.
//!
//! The index is pure token-sequence machinery, which is why it lives in
//! `specasr-tokenizer`; the drafter that walks it during decoding is
//! `specasr::TokenMapDrafter` in the core crate.

use std::collections::HashMap;

use crate::vocab::TokenId;

/// Default maximum context length (n-gram order minus one).
const DEFAULT_MAX_CONTEXT: usize = 3;

/// How often each token followed one context, plus the running best.
#[derive(Debug, Clone, Default)]
struct ContinuationCounts {
    /// Total continuations observed after this context.
    total: usize,
    /// Count per continuation token.
    counts: HashMap<TokenId, usize>,
}

impl ContinuationCounts {
    fn record(&mut self, token: TokenId) {
        self.total += 1;
        *self.counts.entry(token).or_insert(0) += 1;
    }

    /// The majority continuation, if one token accounts for more than half of
    /// everything seen after this context (ties cannot reach a majority, so
    /// the argmax is unique; the smallest token id is still used as a
    /// deterministic tie-break for the argmax scan itself).
    fn majority(&self) -> Option<TokenId> {
        let (&token, &count) = self
            .counts
            .iter()
            .max_by(|(ta, ca), (tb, cb)| ca.cmp(cb).then(tb.cmp(ta)))?;
        (count * 2 > self.total).then_some(token)
    }
}

/// A precomputed n-gram/trie index over a domain token corpus, mapping short
/// contexts to their dominant continuation.
///
/// # Example
///
/// ```
/// use specasr_tokenizer::{TokenId, TokenMapIndex};
///
/// let t = |raw: u32| TokenId::new(raw);
/// // A tiny "domain corpus" where 5 always follows [3, 4].
/// let sequences = [vec![t(3), t(4), t(5), t(6)], vec![t(2), t(3), t(4), t(5)]];
/// let index = TokenMapIndex::build(sequences.iter().map(Vec::as_slice), 2);
///
/// assert_eq!(index.predict(&[t(3), t(4)]), Some(t(5)));
/// assert_eq!(index.predict(&[t(99)]), None); // off-map
/// ```
#[derive(Debug, Clone)]
pub struct TokenMapIndex {
    max_context: usize,
    map: HashMap<Vec<TokenId>, ContinuationCounts>,
}

impl TokenMapIndex {
    /// Builds the index from domain token sequences, recording continuation
    /// counts for every context window of length `1..=max_context`.
    ///
    /// Sequences should be terminated the way decoding terminates (i.e.
    /// include the EOS token) if the index is meant to predict end-of-
    /// transcript; the builder itself is agnostic.
    ///
    /// # Panics
    ///
    /// Panics if `max_context` is zero.
    pub fn build<'a, I>(sequences: I, max_context: usize) -> Self
    where
        I: IntoIterator<Item = &'a [TokenId]>,
    {
        assert!(max_context > 0, "context length must be positive");
        let mut map: HashMap<Vec<TokenId>, ContinuationCounts> = HashMap::new();
        for sequence in sequences {
            for end in 1..sequence.len() {
                let next = sequence[end];
                let longest = end.min(max_context);
                for order in 1..=longest {
                    let context = sequence[end - order..end].to_vec();
                    map.entry(context).or_default().record(next);
                }
            }
        }
        TokenMapIndex { max_context, map }
    }

    /// Builds the index with the default context length (3, i.e. 4-grams).
    pub fn build_default<'a, I>(sequences: I) -> Self
    where
        I: IntoIterator<Item = &'a [TokenId]>,
    {
        Self::build(sequences, DEFAULT_MAX_CONTEXT)
    }

    /// Predicts the continuation of `context` with longest-suffix backoff:
    /// the longest recorded suffix (up to the index's context length) whose
    /// continuation counts yield a majority token wins.  Returns `None` when
    /// every suffix is off-map or ambiguous — the signal to stop drafting.
    pub fn predict(&self, context: &[TokenId]) -> Option<TokenId> {
        let longest = context.len().min(self.max_context);
        for order in (1..=longest).rev() {
            let suffix = &context[context.len() - order..];
            if let Some(counts) = self.map.get(suffix) {
                match counts.majority() {
                    Some(token) => return Some(token),
                    // An ambiguous long context is not rescued by a shorter
                    // one: the longer window is strictly better informed, so
                    // backing off would trade signal for noise.
                    None => return None,
                }
            }
        }
        None
    }

    /// Maximum context length the index was built with.
    pub fn max_context(&self) -> usize {
        self.max_context
    }

    /// Number of distinct contexts recorded.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Returns `true` if the index recorded no contexts at all.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(raw: u32) -> TokenId {
        TokenId::new(raw)
    }

    fn seq(raw: &[u32]) -> Vec<TokenId> {
        raw.iter().copied().map(TokenId::new).collect()
    }

    #[test]
    fn predicts_the_dominant_continuation() {
        let sequences = [seq(&[1, 2, 3]), seq(&[1, 2, 3]), seq(&[1, 2, 4])];
        let index = TokenMapIndex::build(sequences.iter().map(Vec::as_slice), 2);
        assert_eq!(index.predict(&[t(1), t(2)]), Some(t(3)));
        assert_eq!(index.predict(&[t(1)]), Some(t(2)));
    }

    #[test]
    fn ambiguous_contexts_are_off_map() {
        // After [1], tokens 2 and 3 each appear half the time: no majority.
        let sequences = [seq(&[1, 2]), seq(&[1, 3])];
        let index = TokenMapIndex::build(sequences.iter().map(Vec::as_slice), 2);
        assert_eq!(index.predict(&[t(1)]), None);
    }

    #[test]
    fn unseen_contexts_back_off_to_shorter_suffixes() {
        let sequences = [seq(&[5, 6, 7])];
        let index = TokenMapIndex::build(sequences.iter().map(Vec::as_slice), 2);
        // [9, 6] was never recorded, but the suffix [6] was.
        assert_eq!(index.predict(&[t(9), t(6)]), Some(t(7)));
        assert_eq!(index.predict(&[t(42)]), None);
    }

    #[test]
    fn longer_contexts_override_shorter_ones() {
        // After [2], token 9 dominates globally, but after [1, 2] it is
        // always 3 — the longer window must win.
        let sequences = [seq(&[1, 2, 3]), seq(&[4, 2, 9]), seq(&[5, 2, 9])];
        let index = TokenMapIndex::build(sequences.iter().map(Vec::as_slice), 2);
        assert_eq!(index.predict(&[t(1), t(2)]), Some(t(3)));
        assert_eq!(index.predict(&[t(4), t(2)]), Some(t(9)));
        assert_eq!(index.predict(&[t(2)]), Some(t(9)));
    }

    #[test]
    fn construction_is_deterministic() {
        let sequences = [seq(&[1, 2, 3, 4, 5]), seq(&[2, 3, 4, 6])];
        let a = TokenMapIndex::build(sequences.iter().map(Vec::as_slice), 3);
        let b = TokenMapIndex::build(sequences.iter().map(Vec::as_slice), 3);
        assert_eq!(a.len(), b.len());
        for context in [&[t(2), t(3)][..], &[t(3)][..], &[t(2), t(3), t(4)][..]] {
            assert_eq!(a.predict(context), b.predict(context));
        }
    }

    #[test]
    fn empty_corpus_yields_an_empty_index() {
        let index = TokenMapIndex::build(std::iter::empty(), 3);
        assert!(index.is_empty());
        assert_eq!(index.len(), 0);
        assert_eq!(index.predict(&[t(1)]), None);
        assert_eq!(index.predict(&[]), None);
    }

    #[test]
    fn default_order_is_four_grams() {
        let index = TokenMapIndex::build_default(std::iter::empty());
        assert_eq!(index.max_context(), 3);
    }

    #[test]
    #[should_panic(expected = "context length must be positive")]
    fn zero_context_panics() {
        let _ = TokenMapIndex::build(std::iter::empty(), 0);
    }
}
