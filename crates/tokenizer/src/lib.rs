//! Subword tokenizer substrate for the SpecASR reproduction.
//!
//! LLM-based ASR models decode *text tokens*, not characters, so every other
//! crate in this workspace manipulates [`TokenId`] sequences.  This crate
//! provides the minimal but complete tokenizer stack the paper's pipeline
//! depends on:
//!
//! * [`Vocabulary`] — an id ↔ piece table with the usual special tokens
//!   (`<bos>`, `<eos>`, `<pad>`, `<unk>`) and word-boundary markers,
//! * [`VocabularyBuilder`] — deterministic frequency-based subword vocabulary
//!   construction (BPE-style merges) from a text corpus,
//! * [`Tokenizer`] — greedy longest-match encoding and lossless decoding,
//! * [`TokenMapIndex`] — a precomputed n-gram index over domain token
//!   sequences, the substrate of model-free token-map drafting.
//!
//! The tokenizer is intentionally deterministic: the same corpus and
//! configuration always produce the same vocabulary, which is required for the
//! reproducibility of every figure and table in the benchmark harness.
//!
//! # Example
//!
//! ```
//! use specasr_tokenizer::{Tokenizer, VocabularyBuilder};
//!
//! # fn main() -> Result<(), specasr_tokenizer::TokenizeError> {
//! let corpus = ["the quick brown fox", "the lazy dog", "quick quick fox"];
//! let vocab = VocabularyBuilder::new()
//!     .target_size(200)
//!     .build_from_corpus(corpus.iter().copied());
//! let tokenizer = Tokenizer::new(vocab);
//!
//! let ids = tokenizer.encode("the quick fox")?;
//! assert_eq!(tokenizer.decode(&ids)?, "the quick fox");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod encode;
mod error;
mod token_map;
mod vocab;

pub use builder::VocabularyBuilder;
pub use encode::Tokenizer;
pub use error::TokenizeError;
pub use token_map::TokenMapIndex;
pub use vocab::{SpecialToken, TokenId, Vocabulary};
