//! Per-word acoustic-difficulty modelling.
//!
//! The paper's Observation 2 attributes low-acceptance draft rounds to
//! "variations in pronunciation and acoustic quality across specific speech
//! segments", i.e. difficulty is *bursty and localised* rather than uniform.
//! The model below produces a per-word difficulty value in `[0, 1]` by mixing
//! a split-level noise floor with a two-state (easy/hard) Markov process, so
//! hard words cluster into short segments exactly as the paper describes.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Configuration of the bursty difficulty process.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DifficultyModel {
    /// Baseline difficulty applied to every word (the split noise floor).
    pub noise_floor: f64,
    /// Additional difficulty applied while the process is in the hard state.
    pub burst_level: f64,
    /// Probability of entering the hard state from the easy state per word.
    pub burst_start_probability: f64,
    /// Probability of leaving the hard state per word.
    pub burst_stop_probability: f64,
    /// Standard deviation of per-word jitter added on top of the state level.
    pub jitter: f64,
}

impl DifficultyModel {
    /// Difficulty profile of the LibriSpeech `*-clean` splits: low noise
    /// floor, short and rare hard bursts.
    pub fn clean() -> Self {
        DifficultyModel {
            noise_floor: 0.06,
            burst_level: 0.45,
            burst_start_probability: 0.05,
            burst_stop_probability: 0.45,
            jitter: 0.04,
        }
    }

    /// Difficulty profile of the LibriSpeech `*-other` splits: higher noise
    /// floor and longer, more frequent hard bursts.
    pub fn other() -> Self {
        DifficultyModel {
            noise_floor: 0.14,
            burst_level: 0.55,
            burst_start_probability: 0.10,
            burst_stop_probability: 0.32,
            jitter: 0.06,
        }
    }

    /// A synthetic profile with no hard bursts at all, useful in tests.
    pub fn uniform(noise_floor: f64) -> Self {
        DifficultyModel {
            noise_floor,
            burst_level: 0.0,
            burst_start_probability: 0.0,
            burst_stop_probability: 1.0,
            jitter: 0.0,
        }
    }

    /// Samples a difficulty value for each of `word_count` words.
    ///
    /// The returned values are clamped to `[0, 1]`.  The same `(seed,
    /// word_count)` pair always produces the same difficulties.
    pub fn sample(&self, seed: u64, word_count: usize) -> Vec<f64> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x00d1_ff1c_u64);
        let mut difficulties = Vec::with_capacity(word_count);
        let mut in_burst = false;
        for _ in 0..word_count {
            if in_burst {
                if rng.gen::<f64>() < self.burst_stop_probability {
                    in_burst = false;
                }
            } else if rng.gen::<f64>() < self.burst_start_probability {
                in_burst = true;
            }
            let level = self.noise_floor + if in_burst { self.burst_level } else { 0.0 };
            let jitter = if self.jitter > 0.0 {
                // Box-Muller transform for a cheap gaussian jitter.
                let u1: f64 = rng.gen::<f64>().max(1e-12);
                let u2: f64 = rng.gen();
                (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos() * self.jitter
            } else {
                0.0
            };
            difficulties.push((level + jitter).clamp(0.0, 1.0));
        }
        difficulties
    }

    /// Mean difficulty of a sampled sequence (used to report per-split
    /// statistics in the corpus summary).
    pub fn expected_mean(&self) -> f64 {
        // Stationary probability of the hard state.
        let p_start = self.burst_start_probability;
        let p_stop = self.burst_stop_probability;
        let hard_fraction = if p_start + p_stop > 0.0 {
            p_start / (p_start + p_stop)
        } else {
            0.0
        };
        (self.noise_floor + hard_fraction * self.burst_level).clamp(0.0, 1.0)
    }
}

impl Default for DifficultyModel {
    fn default() -> Self {
        DifficultyModel::clean()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_are_deterministic() {
        let model = DifficultyModel::clean();
        assert_eq!(model.sample(9, 40), model.sample(9, 40));
    }

    #[test]
    fn samples_are_clamped() {
        let model = DifficultyModel::other();
        for d in model.sample(3, 500) {
            assert!((0.0..=1.0).contains(&d), "difficulty {d} out of range");
        }
    }

    #[test]
    fn other_split_is_harder_than_clean() {
        let clean: f64 = DifficultyModel::clean().sample(1, 2000).iter().sum();
        let other: f64 = DifficultyModel::other().sample(1, 2000).iter().sum();
        assert!(
            other > clean,
            "other ({other}) should exceed clean ({clean})"
        );
    }

    #[test]
    fn bursts_are_localised() {
        // Count transitions between easy (< 0.3) and hard (>= 0.3) regions:
        // with bursty structure the number of hard words greatly exceeds the
        // number of easy→hard transitions (hard words come in runs).
        let model = DifficultyModel::other();
        let sample = model.sample(17, 4000);
        let hard: Vec<bool> = sample.iter().map(|&d| d >= 0.3).collect();
        let hard_count = hard.iter().filter(|&&h| h).count();
        let transitions = hard.windows(2).filter(|w| !w[0] && w[1]).count();
        assert!(hard_count > 0);
        assert!(
            hard_count as f64 > 1.5 * transitions as f64,
            "hard words ({hard_count}) should cluster into runs (transitions: {transitions})"
        );
    }

    #[test]
    fn uniform_profile_has_no_bursts() {
        let model = DifficultyModel::uniform(0.2);
        let sample = model.sample(5, 100);
        assert!(sample.iter().all(|&d| (d - 0.2).abs() < 1e-9));
    }

    #[test]
    fn expected_mean_tracks_profiles() {
        assert!(
            DifficultyModel::other().expected_mean() > DifficultyModel::clean().expected_mean()
        );
        assert!((DifficultyModel::uniform(0.3).expected_mean() - 0.3).abs() < 1e-9);
    }

    #[test]
    fn word_count_is_respected() {
        assert_eq!(DifficultyModel::clean().sample(0, 0).len(), 0);
        assert_eq!(DifficultyModel::clean().sample(0, 13).len(), 13);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn sampled_difficulties_always_in_unit_interval(
            seed in any::<u64>(),
            count in 0usize..300,
            floor in 0.0f64..0.5,
            burst in 0.0f64..0.8,
        ) {
            let model = DifficultyModel {
                noise_floor: floor,
                burst_level: burst,
                burst_start_probability: 0.1,
                burst_stop_probability: 0.3,
                jitter: 0.05,
            };
            let sample = model.sample(seed, count);
            prop_assert_eq!(sample.len(), count);
            for d in sample {
                prop_assert!((0.0..=1.0).contains(&d));
            }
        }
    }
}
