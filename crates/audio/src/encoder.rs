//! The audio encoder: frame stacking + projection into the LLM hidden space,
//! plus the encoder cost profiles used by the Fig. 1 reproduction.
//!
//! In an LLM-based ASR system the audio encoder (Conformer / Whisper encoder)
//! compresses the acoustic frame sequence and projects it into the decoder's
//! hidden dimension so it can be prefix-filled alongside the text prompt.  The
//! encoder here performs the same two stages — temporal stacking/downsampling
//! and a deterministic linear projection — and carries a parameter/latency
//! profile so the paper's encoder-vs-decoder comparison (Fig. 1) can be
//! regenerated.

use serde::{Deserialize, Serialize};

use crate::features::LogMelSpectrogram;

/// Cost profile of an audio encoder: parameter count and per-second-of-audio
/// compute latency.
///
/// # Example
///
/// ```
/// use specasr_audio::EncoderProfile;
///
/// let whisper = EncoderProfile::whisper_medium_encoder();
/// assert!(whisper.parameters() < 1_000_000_000);
/// assert!(whisper.latency_ms_for_audio(10.0) > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EncoderProfile {
    name: String,
    parameters: u64,
    latency_ms_per_audio_second: f64,
    fixed_overhead_ms: f64,
}

impl EncoderProfile {
    /// Creates a custom encoder profile.
    ///
    /// # Panics
    ///
    /// Panics if the latency coefficient is negative.
    pub fn new(
        name: impl Into<String>,
        parameters: u64,
        latency_ms_per_audio_second: f64,
        fixed_overhead_ms: f64,
    ) -> Self {
        assert!(latency_ms_per_audio_second >= 0.0 && fixed_overhead_ms >= 0.0);
        EncoderProfile {
            name: name.into(),
            parameters,
            latency_ms_per_audio_second,
            fixed_overhead_ms,
        }
    }

    /// Whisper tiny.en encoder (≈ 8 M parameters).
    pub fn whisper_tiny_encoder() -> Self {
        EncoderProfile::new("whisper-tiny.en-encoder", 8_000_000, 0.9, 1.0)
    }

    /// Whisper medium.en encoder (≈ 300 M parameters).
    pub fn whisper_medium_encoder() -> Self {
        EncoderProfile::new("whisper-medium.en-encoder", 307_000_000, 3.2, 2.5)
    }

    /// A Conformer-style encoder of the size used by BESTOW-class models
    /// (≈ 110 M parameters).
    pub fn conformer_large() -> Self {
        EncoderProfile::new("conformer-large-encoder", 110_000_000, 1.8, 1.5)
    }

    /// Human-readable profile name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Parameter count.
    pub fn parameters(&self) -> u64 {
        self.parameters
    }

    /// Encoder latency (ms) for `audio_seconds` of input audio.
    pub fn latency_ms_for_audio(&self, audio_seconds: f64) -> f64 {
        self.fixed_overhead_ms + self.latency_ms_per_audio_second * audio_seconds.max(0.0)
    }
}

/// Audio embeddings produced by the encoder: `frames × hidden_dim` vectors in
/// the LLM hidden space.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AudioEmbedding {
    vectors: Vec<Vec<f64>>,
    hidden_dim: usize,
}

impl AudioEmbedding {
    /// Number of embedded (downsampled) frames.
    pub fn frame_count(&self) -> usize {
        self.vectors.len()
    }

    /// Hidden dimension of each embedding vector.
    pub fn hidden_dim(&self) -> usize {
        self.hidden_dim
    }

    /// Returns embedded frame `index`, if in range.
    pub fn frame(&self, index: usize) -> Option<&[f64]> {
        self.vectors.get(index).map(Vec::as_slice)
    }

    /// Iterates over embedding vectors in time order.
    pub fn iter(&self) -> impl Iterator<Item = &[f64]> {
        self.vectors.iter().map(Vec::as_slice)
    }
}

/// The audio encoder: stacks `stack_factor` consecutive mel frames and
/// projects them into `hidden_dim` dimensions with a fixed deterministic
/// projection.
///
/// # Example
///
/// ```
/// use specasr_audio::{AudioEncoder, Corpus, FeatureConfig, FeatureExtractor, Split, Waveform};
///
/// let corpus = Corpus::librispeech_like(5, 1);
/// let wave = Waveform::synthesize(&corpus.split(Split::TestClean)[0]);
/// let mel = FeatureExtractor::new(FeatureConfig::tiny()).extract(&wave);
/// let encoder = AudioEncoder::new(4, 32);
/// let embedding = encoder.encode(&mel);
/// assert_eq!(embedding.hidden_dim(), 32);
/// assert!(embedding.frame_count() <= mel.frame_count() / 4 + 1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AudioEncoder {
    stack_factor: usize,
    hidden_dim: usize,
    profile: EncoderProfile,
}

impl AudioEncoder {
    /// Creates an encoder with the given temporal stacking factor and hidden
    /// dimension, using the Whisper-medium encoder cost profile.
    ///
    /// # Panics
    ///
    /// Panics if `stack_factor` or `hidden_dim` is zero.
    pub fn new(stack_factor: usize, hidden_dim: usize) -> Self {
        AudioEncoder::with_profile(
            stack_factor,
            hidden_dim,
            EncoderProfile::whisper_medium_encoder(),
        )
    }

    /// Creates an encoder with an explicit cost profile.
    ///
    /// # Panics
    ///
    /// Panics if `stack_factor` or `hidden_dim` is zero.
    pub fn with_profile(stack_factor: usize, hidden_dim: usize, profile: EncoderProfile) -> Self {
        assert!(stack_factor > 0, "stack factor must be positive");
        assert!(hidden_dim > 0, "hidden dimension must be positive");
        AudioEncoder {
            stack_factor,
            hidden_dim,
            profile,
        }
    }

    /// The temporal stacking (downsampling) factor.
    pub fn stack_factor(&self) -> usize {
        self.stack_factor
    }

    /// The output hidden dimension.
    pub fn hidden_dim(&self) -> usize {
        self.hidden_dim
    }

    /// The encoder cost profile.
    pub fn profile(&self) -> &EncoderProfile {
        &self.profile
    }

    /// Number of embedded frames produced for `mel_frames` input frames.
    pub fn output_frames(&self, mel_frames: usize) -> usize {
        mel_frames / self.stack_factor
    }

    /// Encodes a log-mel spectrogram into audio embeddings.
    ///
    /// Stage 1 stacks `stack_factor` consecutive frames; stage 2 applies a
    /// fixed sinusoidal projection into the hidden dimension (a stand-in for
    /// the learned projection layer; the downstream simulation only requires
    /// determinism and dimensional correctness).
    pub fn encode(&self, mel: &LogMelSpectrogram) -> AudioEmbedding {
        let stacked_dim = mel.mel_channels() * self.stack_factor;
        let frames = self.output_frames(mel.frame_count());
        let mut vectors = Vec::with_capacity(frames);
        for out_frame in 0..frames {
            // Stage 1: stack consecutive frames.
            let mut stacked = Vec::with_capacity(stacked_dim);
            for k in 0..self.stack_factor {
                let frame = mel
                    .frame(out_frame * self.stack_factor + k)
                    .expect("frame index is within the downsampled range");
                stacked.extend_from_slice(frame);
            }
            // Stage 2: fixed projection into the hidden dimension.
            let mut projected = vec![0.0f64; self.hidden_dim];
            for (j, value) in stacked.iter().enumerate() {
                for (h, out) in projected.iter_mut().enumerate() {
                    *out += value * projection_weight(j, h, stacked_dim, self.hidden_dim);
                }
            }
            let norm = (stacked_dim as f64).sqrt();
            for out in &mut projected {
                *out /= norm;
            }
            vectors.push(projected);
        }
        AudioEmbedding {
            vectors,
            hidden_dim: self.hidden_dim,
        }
    }

    /// Encoder latency (ms) for processing `audio_seconds` of audio.
    pub fn latency_ms(&self, audio_seconds: f64) -> f64 {
        self.profile.latency_ms_for_audio(audio_seconds)
    }
}

/// Deterministic pseudo-random projection weight for input index `j` and
/// output index `h`.
fn projection_weight(j: usize, h: usize, in_dim: usize, out_dim: usize) -> f64 {
    let phase = (j as f64 + 1.0) * (h as f64 + 1.0) / (in_dim as f64 + out_dim as f64);
    (std::f64::consts::TAU * phase).sin()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{Corpus, Split};
    use crate::features::{FeatureConfig, FeatureExtractor};
    use crate::waveform::Waveform;

    fn sample_mel() -> LogMelSpectrogram {
        let corpus = Corpus::librispeech_like(13, 1);
        let wave = Waveform::synthesize(&corpus.split(Split::TestClean)[0]);
        FeatureExtractor::new(FeatureConfig::tiny()).extract(&wave)
    }

    #[test]
    fn downsampling_matches_stack_factor() {
        let mel = sample_mel();
        for factor in [1usize, 2, 4, 8] {
            let encoder = AudioEncoder::new(factor, 16);
            let embedding = encoder.encode(&mel);
            assert_eq!(embedding.frame_count(), mel.frame_count() / factor);
            assert_eq!(
                encoder.output_frames(mel.frame_count()),
                embedding.frame_count()
            );
        }
    }

    #[test]
    fn embeddings_have_hidden_dim_and_are_finite() {
        let mel = sample_mel();
        let encoder = AudioEncoder::new(4, 24);
        let embedding = encoder.encode(&mel);
        for frame in embedding.iter() {
            assert_eq!(frame.len(), 24);
            assert!(frame.iter().all(|v| v.is_finite()));
        }
        assert_eq!(embedding.frame(embedding.frame_count()), None);
    }

    #[test]
    fn encoding_is_deterministic() {
        let mel = sample_mel();
        let encoder = AudioEncoder::new(2, 8);
        assert_eq!(encoder.encode(&mel), encoder.encode(&mel));
    }

    #[test]
    fn encoder_latency_scales_with_audio_length() {
        let encoder = AudioEncoder::new(4, 32);
        assert!(encoder.latency_ms(10.0) > encoder.latency_ms(1.0));
        assert!(encoder.latency_ms(0.0) >= 0.0);
    }

    #[test]
    fn encoder_profiles_are_ordered_by_size() {
        let tiny = EncoderProfile::whisper_tiny_encoder();
        let conformer = EncoderProfile::conformer_large();
        let medium = EncoderProfile::whisper_medium_encoder();
        assert!(tiny.parameters() < conformer.parameters());
        assert!(conformer.parameters() < medium.parameters());
        assert!(tiny.latency_ms_for_audio(10.0) < medium.latency_ms_for_audio(10.0));
    }

    #[test]
    #[should_panic(expected = "stack factor")]
    fn zero_stack_factor_panics() {
        AudioEncoder::new(0, 8);
    }

    #[test]
    #[should_panic(expected = "hidden dimension")]
    fn zero_hidden_dim_panics() {
        AudioEncoder::new(2, 0);
    }
}
