//! The audio encoder: frame stacking + projection into the LLM hidden space,
//! plus the encoder cost profiles used by the Fig. 1 reproduction.
//!
//! In an LLM-based ASR system the audio encoder (Conformer / Whisper encoder)
//! compresses the acoustic frame sequence and projects it into the decoder's
//! hidden dimension so it can be prefix-filled alongside the text prompt.  The
//! encoder here performs the same two stages — temporal stacking/downsampling
//! and a deterministic linear projection — and carries a parameter/latency
//! profile so the paper's encoder-vs-decoder comparison (Fig. 1) can be
//! regenerated.

use serde::{Deserialize, Serialize};

use crate::features::LogMelSpectrogram;

/// Cost profile of an audio encoder: parameter count and per-second-of-audio
/// compute latency.
///
/// # Example
///
/// ```
/// use specasr_audio::EncoderProfile;
///
/// let whisper = EncoderProfile::whisper_medium_encoder();
/// assert!(whisper.parameters() < 1_000_000_000);
/// assert!(whisper.latency_ms_for_audio(10.0) > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EncoderProfile {
    name: String,
    parameters: u64,
    latency_ms_per_audio_second: f64,
    fixed_overhead_ms: f64,
}

impl EncoderProfile {
    /// Creates a custom encoder profile.
    ///
    /// # Panics
    ///
    /// Panics if the latency coefficient is negative.
    pub fn new(
        name: impl Into<String>,
        parameters: u64,
        latency_ms_per_audio_second: f64,
        fixed_overhead_ms: f64,
    ) -> Self {
        assert!(latency_ms_per_audio_second >= 0.0 && fixed_overhead_ms >= 0.0);
        EncoderProfile {
            name: name.into(),
            parameters,
            latency_ms_per_audio_second,
            fixed_overhead_ms,
        }
    }

    /// Whisper tiny.en encoder (≈ 8 M parameters).
    pub fn whisper_tiny_encoder() -> Self {
        EncoderProfile::new("whisper-tiny.en-encoder", 8_000_000, 0.9, 1.0)
    }

    /// Whisper medium.en encoder (≈ 300 M parameters).
    pub fn whisper_medium_encoder() -> Self {
        EncoderProfile::new("whisper-medium.en-encoder", 307_000_000, 3.2, 2.5)
    }

    /// A Conformer-style encoder of the size used by BESTOW-class models
    /// (≈ 110 M parameters).
    pub fn conformer_large() -> Self {
        EncoderProfile::new("conformer-large-encoder", 110_000_000, 1.8, 1.5)
    }

    /// Human-readable profile name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Parameter count.
    pub fn parameters(&self) -> u64 {
        self.parameters
    }

    /// Encoder latency (ms) for `audio_seconds` of input audio.
    pub fn latency_ms_for_audio(&self, audio_seconds: f64) -> f64 {
        self.fixed_overhead_ms + self.latency_ms_per_audio_second * audio_seconds.max(0.0)
    }

    /// Encoder latency (ms) for extending the encoder state by one streaming
    /// chunk of `chunk_audio_seconds`: the per-second compute is paid for the
    /// new audio only, and the fixed pipeline overhead is paid once, on the
    /// first chunk.  Summed over a stream's chunks this equals
    /// [`EncoderProfile::latency_ms_for_audio`] of the full utterance — the
    /// incremental path re-encodes nothing.
    pub fn incremental_latency_ms(&self, chunk_audio_seconds: f64, first_chunk: bool) -> f64 {
        let overhead = if first_chunk {
            self.fixed_overhead_ms
        } else {
            0.0
        };
        overhead + self.latency_ms_per_audio_second * chunk_audio_seconds.max(0.0)
    }
}

/// Audio embeddings produced by the encoder: `frames × hidden_dim` vectors in
/// the LLM hidden space.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AudioEmbedding {
    vectors: Vec<Vec<f64>>,
    hidden_dim: usize,
}

impl AudioEmbedding {
    /// Number of embedded (downsampled) frames.
    pub fn frame_count(&self) -> usize {
        self.vectors.len()
    }

    /// Hidden dimension of each embedding vector.
    pub fn hidden_dim(&self) -> usize {
        self.hidden_dim
    }

    /// Returns embedded frame `index`, if in range.
    pub fn frame(&self, index: usize) -> Option<&[f64]> {
        self.vectors.get(index).map(Vec::as_slice)
    }

    /// Iterates over embedding vectors in time order.
    pub fn iter(&self) -> impl Iterator<Item = &[f64]> {
        self.vectors.iter().map(Vec::as_slice)
    }
}

/// The audio encoder: stacks `stack_factor` consecutive mel frames and
/// projects them into `hidden_dim` dimensions with a fixed deterministic
/// projection.
///
/// # Example
///
/// ```
/// use specasr_audio::{AudioEncoder, Corpus, FeatureConfig, FeatureExtractor, Split, Waveform};
///
/// let corpus = Corpus::librispeech_like(5, 1);
/// let wave = Waveform::synthesize(&corpus.split(Split::TestClean)[0]);
/// let mel = FeatureExtractor::new(FeatureConfig::tiny()).extract(&wave);
/// let encoder = AudioEncoder::new(4, 32);
/// let embedding = encoder.encode(&mel);
/// assert_eq!(embedding.hidden_dim(), 32);
/// assert!(embedding.frame_count() <= mel.frame_count() / 4 + 1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AudioEncoder {
    stack_factor: usize,
    hidden_dim: usize,
    profile: EncoderProfile,
}

impl AudioEncoder {
    /// Creates an encoder with the given temporal stacking factor and hidden
    /// dimension, using the Whisper-medium encoder cost profile.
    ///
    /// # Panics
    ///
    /// Panics if `stack_factor` or `hidden_dim` is zero.
    pub fn new(stack_factor: usize, hidden_dim: usize) -> Self {
        AudioEncoder::with_profile(
            stack_factor,
            hidden_dim,
            EncoderProfile::whisper_medium_encoder(),
        )
    }

    /// Creates an encoder with an explicit cost profile.
    ///
    /// # Panics
    ///
    /// Panics if `stack_factor` or `hidden_dim` is zero.
    pub fn with_profile(stack_factor: usize, hidden_dim: usize, profile: EncoderProfile) -> Self {
        assert!(stack_factor > 0, "stack factor must be positive");
        assert!(hidden_dim > 0, "hidden dimension must be positive");
        AudioEncoder {
            stack_factor,
            hidden_dim,
            profile,
        }
    }

    /// The temporal stacking (downsampling) factor.
    pub fn stack_factor(&self) -> usize {
        self.stack_factor
    }

    /// The output hidden dimension.
    pub fn hidden_dim(&self) -> usize {
        self.hidden_dim
    }

    /// The encoder cost profile.
    pub fn profile(&self) -> &EncoderProfile {
        &self.profile
    }

    /// Number of embedded frames produced for `mel_frames` input frames.
    pub fn output_frames(&self, mel_frames: usize) -> usize {
        mel_frames / self.stack_factor
    }

    /// Encodes a log-mel spectrogram into audio embeddings.
    ///
    /// Stage 1 stacks `stack_factor` consecutive frames; stage 2 applies a
    /// fixed sinusoidal projection into the hidden dimension (a stand-in for
    /// the learned projection layer; the downstream simulation only requires
    /// determinism and dimensional correctness).
    pub fn encode(&self, mel: &LogMelSpectrogram) -> AudioEmbedding {
        let frames = self.output_frames(mel.frame_count());
        let mut vectors = Vec::with_capacity(frames);
        for out_frame in 0..frames {
            let group: Vec<&[f64]> = (0..self.stack_factor)
                .map(|k| {
                    mel.frame(out_frame * self.stack_factor + k)
                        .expect("frame index is within the downsampled range")
                })
                .collect();
            vectors.push(self.encode_group(&group));
        }
        AudioEmbedding {
            vectors,
            hidden_dim: self.hidden_dim,
        }
    }

    /// Encodes one group of exactly `stack_factor` consecutive mel frames
    /// into a single embedding vector (stacking + fixed projection).  This is
    /// the per-output-frame kernel shared by [`AudioEncoder::encode`] and the
    /// chunk-extending [`IncrementalEncoder`].
    ///
    /// # Panics
    ///
    /// Panics if the group does not hold exactly `stack_factor` frames.
    fn encode_group(&self, group: &[&[f64]]) -> Vec<f64> {
        assert_eq!(
            group.len(),
            self.stack_factor,
            "an embedding group holds exactly stack_factor frames"
        );
        // Stage 1: stack consecutive frames.
        let stacked_dim: usize = group.iter().map(|frame| frame.len()).sum();
        let mut stacked = Vec::with_capacity(stacked_dim);
        for frame in group {
            stacked.extend_from_slice(frame);
        }
        // Stage 2: fixed projection into the hidden dimension.
        let mut projected = vec![0.0f64; self.hidden_dim];
        for (j, value) in stacked.iter().enumerate() {
            for (h, out) in projected.iter_mut().enumerate() {
                *out += value * projection_weight(j, h, stacked_dim, self.hidden_dim);
            }
        }
        let norm = (stacked_dim as f64).sqrt();
        for out in &mut projected {
            *out /= norm;
        }
        projected
    }

    /// Encoder latency (ms) for processing `audio_seconds` of audio.
    pub fn latency_ms(&self, audio_seconds: f64) -> f64 {
        self.profile.latency_ms_for_audio(audio_seconds)
    }
}

/// An audio encoder that extends its output as mel chunks land, instead of
/// re-encoding the growing spectrogram from scratch.
///
/// The offline [`AudioEncoder`] is frame-local (each embedding depends on one
/// group of `stack_factor` consecutive mel frames), so the incremental state
/// is just the tail of mel frames that does not yet fill a group.  Feeding
/// the same spectrogram through in arbitrary chunkings produces exactly the
/// frames of [`AudioEncoder::encode`], in order.
///
/// # Example
///
/// ```
/// use specasr_audio::{AudioEncoder, Corpus, FeatureConfig, FeatureExtractor, IncrementalEncoder,
///                     Split, Waveform};
///
/// let corpus = Corpus::librispeech_like(5, 1);
/// let wave = Waveform::synthesize(&corpus.split(Split::TestClean)[0]);
/// let mel = FeatureExtractor::new(FeatureConfig::tiny()).extract(&wave);
/// let encoder = AudioEncoder::new(4, 32);
/// let offline = encoder.encode(&mel);
///
/// let mut incremental = IncrementalEncoder::new(encoder);
/// let mut frames = 0;
/// for chunk_start in (0..mel.frame_count()).step_by(7) {
///     let chunk: Vec<Vec<f64>> = (chunk_start..(chunk_start + 7).min(mel.frame_count()))
///         .map(|i| mel.frame(i).unwrap().to_vec())
///         .collect();
///     frames += incremental.push_frames(&chunk).frame_count();
/// }
/// assert_eq!(frames, offline.frame_count());
/// ```
#[derive(Debug, Clone)]
pub struct IncrementalEncoder {
    encoder: AudioEncoder,
    pending: Vec<Vec<f64>>,
    emitted_frames: usize,
}

impl IncrementalEncoder {
    /// Wraps an encoder for chunk-extending use.
    pub fn new(encoder: AudioEncoder) -> Self {
        IncrementalEncoder {
            encoder,
            pending: Vec::new(),
            emitted_frames: 0,
        }
    }

    /// The wrapped encoder.
    pub fn encoder(&self) -> &AudioEncoder {
        &self.encoder
    }

    /// Embedding frames emitted so far.
    pub fn emitted_frames(&self) -> usize {
        self.emitted_frames
    }

    /// Buffered mel frames that do not yet fill a stacking group.
    pub fn pending_frames(&self) -> usize {
        self.pending.len()
    }

    /// Feeds one chunk of mel frames and returns the *new* embedding frames
    /// it completes (possibly none, when the chunk only part-fills a group).
    pub fn push(&mut self, mel: &LogMelSpectrogram) -> AudioEmbedding {
        let frames: Vec<Vec<f64>> = mel.iter().map(<[f64]>::to_vec).collect();
        self.push_frames(&frames)
    }

    /// Feeds one chunk of raw mel frames (see [`IncrementalEncoder::push`]).
    pub fn push_frames(&mut self, frames: &[Vec<f64>]) -> AudioEmbedding {
        self.pending.extend(frames.iter().cloned());
        let stack = self.encoder.stack_factor();
        let groups = self.pending.len() / stack;
        let mut vectors = Vec::with_capacity(groups);
        for group_index in 0..groups {
            let group: Vec<&[f64]> = self.pending[group_index * stack..(group_index + 1) * stack]
                .iter()
                .map(Vec::as_slice)
                .collect();
            vectors.push(self.encoder.encode_group(&group));
        }
        self.pending.drain(..groups * stack);
        self.emitted_frames += vectors.len();
        AudioEmbedding {
            hidden_dim: self.encoder.hidden_dim(),
            vectors,
        }
    }
}

/// Deterministic pseudo-random projection weight for input index `j` and
/// output index `h`.
fn projection_weight(j: usize, h: usize, in_dim: usize, out_dim: usize) -> f64 {
    let phase = (j as f64 + 1.0) * (h as f64 + 1.0) / (in_dim as f64 + out_dim as f64);
    (std::f64::consts::TAU * phase).sin()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{Corpus, Split};
    use crate::features::{FeatureConfig, FeatureExtractor};
    use crate::waveform::Waveform;

    fn sample_mel() -> LogMelSpectrogram {
        let corpus = Corpus::librispeech_like(13, 1);
        let wave = Waveform::synthesize(&corpus.split(Split::TestClean)[0]);
        FeatureExtractor::new(FeatureConfig::tiny()).extract(&wave)
    }

    #[test]
    fn downsampling_matches_stack_factor() {
        let mel = sample_mel();
        for factor in [1usize, 2, 4, 8] {
            let encoder = AudioEncoder::new(factor, 16);
            let embedding = encoder.encode(&mel);
            assert_eq!(embedding.frame_count(), mel.frame_count() / factor);
            assert_eq!(
                encoder.output_frames(mel.frame_count()),
                embedding.frame_count()
            );
        }
    }

    #[test]
    fn embeddings_have_hidden_dim_and_are_finite() {
        let mel = sample_mel();
        let encoder = AudioEncoder::new(4, 24);
        let embedding = encoder.encode(&mel);
        for frame in embedding.iter() {
            assert_eq!(frame.len(), 24);
            assert!(frame.iter().all(|v| v.is_finite()));
        }
        assert_eq!(embedding.frame(embedding.frame_count()), None);
    }

    #[test]
    fn encoding_is_deterministic() {
        let mel = sample_mel();
        let encoder = AudioEncoder::new(2, 8);
        assert_eq!(encoder.encode(&mel), encoder.encode(&mel));
    }

    #[test]
    fn encoder_latency_scales_with_audio_length() {
        let encoder = AudioEncoder::new(4, 32);
        assert!(encoder.latency_ms(10.0) > encoder.latency_ms(1.0));
        assert!(encoder.latency_ms(0.0) >= 0.0);
    }

    #[test]
    fn encoder_profiles_are_ordered_by_size() {
        let tiny = EncoderProfile::whisper_tiny_encoder();
        let conformer = EncoderProfile::conformer_large();
        let medium = EncoderProfile::whisper_medium_encoder();
        assert!(tiny.parameters() < conformer.parameters());
        assert!(conformer.parameters() < medium.parameters());
        assert!(tiny.latency_ms_for_audio(10.0) < medium.latency_ms_for_audio(10.0));
    }

    #[test]
    fn incremental_encoding_matches_offline_for_any_chunking() {
        let mel = sample_mel();
        let encoder = AudioEncoder::new(4, 24);
        let offline = encoder.encode(&mel);
        for chunk_len in [1usize, 3, 4, 5, 11, mel.frame_count()] {
            let mut incremental = IncrementalEncoder::new(encoder.clone());
            let mut vectors: Vec<Vec<f64>> = Vec::new();
            let mut start = 0;
            while start < mel.frame_count() {
                let end = (start + chunk_len).min(mel.frame_count());
                let chunk: Vec<Vec<f64>> = (start..end)
                    .map(|i| mel.frame(i).expect("in range").to_vec())
                    .collect();
                let emitted = incremental.push_frames(&chunk);
                vectors.extend(emitted.iter().map(<[f64]>::to_vec));
                start = end;
            }
            assert_eq!(vectors.len(), offline.frame_count(), "chunk {chunk_len}");
            for (incrementally, offline_frame) in vectors.iter().zip(offline.iter()) {
                assert_eq!(incrementally.as_slice(), offline_frame);
            }
            assert_eq!(incremental.emitted_frames(), offline.frame_count());
            assert!(incremental.pending_frames() < encoder.stack_factor());
        }
    }

    #[test]
    fn incremental_latency_sums_to_the_offline_latency() {
        let profile = EncoderProfile::whisper_medium_encoder();
        let chunks = [0.5, 0.5, 0.5, 0.3];
        let total: f64 = chunks
            .iter()
            .enumerate()
            .map(|(i, &chunk)| profile.incremental_latency_ms(chunk, i == 0))
            .sum();
        let offline = profile.latency_ms_for_audio(chunks.iter().sum());
        assert!((total - offline).abs() < 1e-9);
        assert!(
            profile.incremental_latency_ms(0.5, true) > profile.incremental_latency_ms(0.5, false)
        );
    }

    #[test]
    #[should_panic(expected = "stack factor")]
    fn zero_stack_factor_panics() {
        AudioEncoder::new(0, 8);
    }

    #[test]
    #[should_panic(expected = "hidden dimension")]
    fn zero_hidden_dim_panics() {
        AudioEncoder::new(2, 0);
    }
}
