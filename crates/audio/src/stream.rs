//! Chunked audio ingestion: the streaming front end.
//!
//! Streaming ASR receives audio while the speaker is still talking.  This
//! module models that arrival process deterministically:
//!
//! * [`ChunkConfig`] — chunk duration plus a seeded arrival jitter (network
//!   and capture pipelines never deliver chunks exactly on the beat),
//! * [`chunk_schedule`] — the timed chunk plan of one utterance,
//! * [`AudioStream`] — yields each chunk's *feature* payload by pushing the
//!   chunk's samples through an [`IncrementalFeatureExtractor`], so the mel
//!   frames accumulated over a stream are byte-identical to the offline
//!   extraction of the whole waveform.
//!
//! The serving layers consume only the chunk *timing* (arrival offsets) and
//! the audio horizon (seconds received); the feature payload is what a real
//! encoder backend would consume, and the incremental encoder path
//! ([`crate::IncrementalEncoder`]) extends embeddings from exactly these
//! chunks.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::corpus::Utterance;
use crate::features::{FeatureConfig, IncrementalFeatureExtractor, LogMelSpectrogram};
use crate::waveform::Waveform;

/// How an utterance's audio is cut into streamed chunks.
///
/// # Example
///
/// ```
/// use specasr_audio::{chunk_schedule, ChunkConfig};
///
/// let config = ChunkConfig::default().with_chunk_seconds(0.5);
/// let chunks = chunk_schedule(2.2, &config);
/// assert_eq!(chunks.len(), 5);
/// assert!((chunks.last().unwrap().end_seconds - 2.2).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChunkConfig {
    /// Audio seconds per chunk (the last chunk may be shorter).
    pub chunk_seconds: f64,
    /// Arrival jitter as a fraction of the chunk duration: each chunk lands
    /// up to `arrival_jitter × chunk_seconds` late, drawn from a seeded
    /// generator.  `0.0` delivers every chunk exactly when its audio ends.
    pub arrival_jitter: f64,
    /// Seed of the jitter stream (combined with the utterance id by
    /// [`AudioStream::new`], so two streams of the same utterance jitter
    /// identically for the same seed).
    pub seed: u64,
}

impl ChunkConfig {
    /// Returns this configuration with a different chunk duration.
    pub fn with_chunk_seconds(mut self, chunk_seconds: f64) -> Self {
        self.chunk_seconds = chunk_seconds;
        self
    }

    /// Returns this configuration with a different arrival jitter fraction.
    pub fn with_arrival_jitter(mut self, arrival_jitter: f64) -> Self {
        self.arrival_jitter = arrival_jitter;
        self
    }

    /// Returns this configuration with a different jitter seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics if the chunk duration is not finite and positive, or the
    /// jitter fraction is not finite and non-negative.
    pub fn validate(&self) {
        assert!(
            self.chunk_seconds.is_finite() && self.chunk_seconds > 0.0,
            "chunk_seconds must be finite and positive"
        );
        assert!(
            self.arrival_jitter.is_finite() && self.arrival_jitter >= 0.0,
            "arrival_jitter must be finite and non-negative"
        );
    }
}

impl Default for ChunkConfig {
    fn default() -> Self {
        ChunkConfig {
            chunk_seconds: 0.5,
            arrival_jitter: 0.2,
            seed: 0,
        }
    }
}

/// One timed chunk of a streamed utterance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StreamChunk {
    /// Position of the chunk in the stream (0-based).
    pub index: usize,
    /// Audio-time start of the chunk in seconds.
    pub start_seconds: f64,
    /// Audio-time end of the chunk in seconds — the audio horizon once this
    /// chunk has arrived.
    pub end_seconds: f64,
    /// Milliseconds after stream start at which this chunk arrives (its
    /// audio end plus jitter; non-decreasing across the stream).
    pub arrival_offset_ms: f64,
}

impl StreamChunk {
    /// Audio seconds this chunk carries.
    pub fn duration_seconds(&self) -> f64 {
        self.end_seconds - self.start_seconds
    }
}

/// Builds the timed chunk plan for `duration_seconds` of audio: chunks of
/// `config.chunk_seconds` (the last one truncated to the utterance end), each
/// arriving when its audio has been spoken plus a seeded jitter, with arrival
/// times forced non-decreasing.
///
/// # Panics
///
/// Panics if `config` is invalid or `duration_seconds` is not finite and
/// positive.
pub fn chunk_schedule(duration_seconds: f64, config: &ChunkConfig) -> Vec<StreamChunk> {
    config.validate();
    assert!(
        duration_seconds.is_finite() && duration_seconds > 0.0,
        "duration_seconds must be finite and positive"
    );
    let count = (duration_seconds / config.chunk_seconds).ceil().max(1.0) as usize;
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed ^ STREAM_JITTER_SEED);
    let mut chunks = Vec::with_capacity(count);
    let mut previous_arrival = 0.0f64;
    for index in 0..count {
        let start_seconds = index as f64 * config.chunk_seconds;
        let end_seconds = ((index + 1) as f64 * config.chunk_seconds).min(duration_seconds);
        let jitter_ms: f64 =
            rng.gen::<f64>() * config.arrival_jitter * config.chunk_seconds * 1_000.0;
        let arrival_offset_ms = (end_seconds * 1_000.0 + jitter_ms).max(previous_arrival);
        previous_arrival = arrival_offset_ms;
        chunks.push(StreamChunk {
            index,
            start_seconds,
            end_seconds,
            arrival_offset_ms,
        });
    }
    chunks
}

/// Seed offset that decorrelates chunk-arrival jitter from the other seeded
/// streams (waveform noise, corpus difficulty).
const STREAM_JITTER_SEED: u64 = 0x57ea_4dc4_a2b0_0137;

/// A chunked audio stream over one utterance: the timed chunk plan plus the
/// incremental feature pipeline that turns each chunk's samples into new mel
/// frames.
///
/// # Example
///
/// ```
/// use specasr_audio::{AudioStream, ChunkConfig, Corpus, FeatureConfig, Split};
///
/// let corpus = Corpus::librispeech_like(3, 1);
/// let utterance = &corpus.split(Split::TestClean)[0];
/// let mut stream = AudioStream::new(utterance, FeatureConfig::tiny(), &ChunkConfig::default());
/// let mut heard = 0.0;
/// while let Some((chunk, mel)) = stream.next_chunk() {
///     heard = chunk.end_seconds;
///     let _ = mel.frame_count(); // new frames only — nothing re-extracted
/// }
/// assert!((heard - utterance.duration_seconds()).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct AudioStream {
    waveform: Waveform,
    extractor: IncrementalFeatureExtractor,
    schedule: Vec<StreamChunk>,
    next: usize,
}

impl AudioStream {
    /// Opens a stream over `utterance`: synthesises its waveform, plans the
    /// chunk schedule (jitter seeded by `config.seed` xor the utterance id),
    /// and prepares the incremental feature extractor.
    pub fn new(utterance: &Utterance, features: FeatureConfig, config: &ChunkConfig) -> Self {
        let seeded = config.with_seed(config.seed ^ utterance.id().value());
        let waveform = Waveform::synthesize(utterance);
        AudioStream {
            schedule: chunk_schedule(utterance.duration_seconds(), &seeded),
            extractor: IncrementalFeatureExtractor::new(features),
            waveform,
            next: 0,
        }
    }

    /// The full timed chunk plan.
    pub fn schedule(&self) -> &[StreamChunk] {
        &self.schedule
    }

    /// Chunks not yet consumed.
    pub fn remaining(&self) -> usize {
        self.schedule.len() - self.next
    }

    /// `true` once every chunk has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.next >= self.schedule.len()
    }

    /// Consumes the next chunk: slices its samples off the waveform, pushes
    /// them through the incremental extractor, and returns the chunk timing
    /// together with the *new* mel frames it completed.
    pub fn next_chunk(&mut self) -> Option<(StreamChunk, LogMelSpectrogram)> {
        let chunk = *self.schedule.get(self.next)?;
        self.next += 1;
        let rate = self.waveform.sample_rate();
        let start = (chunk.start_seconds * f64::from(rate)).round() as usize;
        let end = if self.next == self.schedule.len() {
            self.waveform.len()
        } else {
            ((chunk.end_seconds * f64::from(rate)).round() as usize).min(self.waveform.len())
        };
        let samples = &self.waveform.samples()[start.min(end)..end];
        let mel = self.extractor.push(samples, rate);
        Some((chunk, mel))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{Corpus, Split};
    use crate::features::FeatureExtractor;

    fn sample_utterance() -> Utterance {
        Corpus::librispeech_like(19, 2).split(Split::TestOther)[0].clone()
    }

    #[test]
    fn schedules_partition_the_audio_exactly() {
        for (duration, chunk_s) in [(2.0, 0.5), (2.3, 0.5), (0.3, 0.5), (7.7, 1.0)] {
            let chunks = chunk_schedule(
                duration,
                &ChunkConfig::default().with_chunk_seconds(chunk_s),
            );
            assert!(!chunks.is_empty());
            assert_eq!(chunks[0].start_seconds, 0.0);
            assert!((chunks.last().expect("non-empty").end_seconds - duration).abs() < 1e-12);
            for pair in chunks.windows(2) {
                assert!((pair[0].end_seconds - pair[1].start_seconds).abs() < 1e-12);
                assert!(pair[1].arrival_offset_ms >= pair[0].arrival_offset_ms);
            }
            for chunk in &chunks {
                assert!(chunk.arrival_offset_ms >= chunk.end_seconds * 1_000.0);
                assert!(chunk.duration_seconds() > 0.0);
            }
        }
    }

    #[test]
    fn zero_jitter_delivers_chunks_exactly_on_the_audio_beat() {
        let config = ChunkConfig::default().with_arrival_jitter(0.0);
        for chunk in chunk_schedule(3.0, &config) {
            assert!((chunk.arrival_offset_ms - chunk.end_seconds * 1_000.0).abs() < 1e-12);
        }
    }

    #[test]
    fn jitter_is_deterministic_per_seed_and_bounded() {
        let config = ChunkConfig::default().with_arrival_jitter(0.5).with_seed(9);
        let a = chunk_schedule(4.0, &config);
        let b = chunk_schedule(4.0, &config);
        assert_eq!(a, b);
        let other = chunk_schedule(4.0, &config.with_seed(10));
        assert_ne!(a, other);
        for chunk in &a {
            let late_ms = chunk.arrival_offset_ms - chunk.end_seconds * 1_000.0;
            assert!((0.0..=0.5 * config.chunk_seconds * 1_000.0 + 1e-9).contains(&late_ms));
        }
    }

    #[test]
    fn streamed_features_match_the_offline_extraction() {
        let utterance = sample_utterance();
        let offline =
            FeatureExtractor::new(FeatureConfig::tiny()).extract(&Waveform::synthesize(&utterance));
        let mut stream =
            AudioStream::new(&utterance, FeatureConfig::tiny(), &ChunkConfig::default());
        let expected_chunks = stream.schedule().len();
        let mut frames: Vec<Vec<f64>> = Vec::new();
        let mut consumed = 0;
        while let Some((chunk, mel)) = stream.next_chunk() {
            assert_eq!(chunk.index, consumed);
            consumed += 1;
            frames.extend(mel.iter().map(<[f64]>::to_vec));
        }
        assert_eq!(consumed, expected_chunks);
        assert!(stream.is_exhausted());
        assert_eq!(stream.remaining(), 0);
        assert_eq!(frames.len(), offline.frame_count());
        for (streamed, reference) in frames.iter().zip(offline.iter()) {
            assert_eq!(streamed.as_slice(), reference);
        }
    }

    #[test]
    fn streams_of_the_same_utterance_are_deterministic() {
        let utterance = sample_utterance();
        let config = ChunkConfig::default();
        let a = AudioStream::new(&utterance, FeatureConfig::tiny(), &config);
        let b = AudioStream::new(&utterance, FeatureConfig::tiny(), &config);
        assert_eq!(a.schedule(), b.schedule());
    }

    #[test]
    #[should_panic(expected = "chunk_seconds")]
    fn zero_chunk_duration_panics() {
        chunk_schedule(1.0, &ChunkConfig::default().with_chunk_seconds(0.0));
    }

    #[test]
    #[should_panic(expected = "duration_seconds")]
    fn zero_duration_panics() {
        chunk_schedule(0.0, &ChunkConfig::default());
    }
}
