//! Utterances, splits, and the synthetic LibriSpeech-like corpus.

use std::collections::HashMap;
use std::fmt;

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::difficulty::DifficultyModel;
use crate::text::TextGenerator;

/// Identifier of an utterance, unique within a [`Corpus`].
///
/// # Example
///
/// ```
/// use specasr_audio::UtteranceId;
///
/// let id = UtteranceId::new(3);
/// assert_eq!(id.value(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct UtteranceId(u64);

impl UtteranceId {
    /// Creates an utterance id from a raw value.
    pub const fn new(raw: u64) -> Self {
        UtteranceId(raw)
    }

    /// Returns the raw value.
    pub const fn value(self) -> u64 {
        self.0
    }
}

impl fmt::Display for UtteranceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "utt-{:06}", self.0)
    }
}

/// The four LibriSpeech evaluation splits used in the paper's experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Split {
    /// `test-clean`: clean read speech, evaluation set.
    TestClean,
    /// `test-other`: noisier/accented read speech, evaluation set.
    TestOther,
    /// `dev-clean`: clean read speech, development set.
    DevClean,
    /// `dev-other`: noisier/accented read speech, development set.
    DevOther,
}

impl Split {
    /// All splits in the order used by the paper's figures.
    pub const ALL: [Split; 4] = [
        Split::TestClean,
        Split::TestOther,
        Split::DevClean,
        Split::DevOther,
    ];

    /// The canonical lowercase name of the split (`test-clean`, …).
    pub const fn name(self) -> &'static str {
        match self {
            Split::TestClean => "test-clean",
            Split::TestOther => "test-other",
            Split::DevClean => "dev-clean",
            Split::DevOther => "dev-other",
        }
    }

    /// Returns `true` for the `*-other` (noisy) splits.
    pub const fn is_noisy(self) -> bool {
        matches!(self, Split::TestOther | Split::DevOther)
    }

    /// The acoustic difficulty profile associated with this split.
    pub fn difficulty_model(self) -> DifficultyModel {
        if self.is_noisy() {
            DifficultyModel::other()
        } else {
            DifficultyModel::clean()
        }
    }
}

impl fmt::Display for Split {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A single audio utterance with its reference transcript and per-word
/// acoustic difficulty.
///
/// # Example
///
/// ```
/// use specasr_audio::{Corpus, Split};
///
/// let corpus = Corpus::librispeech_like(1, 4);
/// let utt = &corpus.split(Split::DevClean)[0];
/// assert_eq!(utt.word_count(), utt.word_difficulties().len());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Utterance {
    id: UtteranceId,
    split: Split,
    transcript: String,
    word_difficulties: Vec<f64>,
    duration_seconds: f64,
    speaking_rate_wps: f64,
}

impl Utterance {
    /// Creates an utterance from its parts.
    ///
    /// # Panics
    ///
    /// Panics if the number of difficulties does not match the number of
    /// whitespace-separated words in the transcript, or if the duration is
    /// not strictly positive.
    pub fn new(
        id: UtteranceId,
        split: Split,
        transcript: String,
        word_difficulties: Vec<f64>,
        duration_seconds: f64,
    ) -> Self {
        let word_count = transcript.split_whitespace().count();
        assert_eq!(
            word_count,
            word_difficulties.len(),
            "one difficulty value per word is required"
        );
        assert!(duration_seconds > 0.0, "duration must be positive");
        let speaking_rate_wps = word_count as f64 / duration_seconds;
        Utterance {
            id,
            split,
            transcript,
            word_difficulties,
            duration_seconds,
            speaking_rate_wps,
        }
    }

    /// Unique identifier of this utterance.
    pub fn id(&self) -> UtteranceId {
        self.id
    }

    /// The split this utterance belongs to.
    pub fn split(&self) -> Split {
        self.split
    }

    /// Reference transcript (lowercase, whitespace separated words).
    pub fn transcript(&self) -> &str {
        &self.transcript
    }

    /// Reference transcript as a word list.
    pub fn words(&self) -> Vec<&str> {
        self.transcript.split_whitespace().collect()
    }

    /// Number of words in the reference transcript.
    pub fn word_count(&self) -> usize {
        self.word_difficulties.len()
    }

    /// Per-word acoustic difficulty in `[0, 1]`.
    pub fn word_difficulties(&self) -> &[f64] {
        &self.word_difficulties
    }

    /// Audio duration in seconds.
    pub fn duration_seconds(&self) -> f64 {
        self.duration_seconds
    }

    /// Average speaking rate in words per second.
    pub fn speaking_rate_wps(&self) -> f64 {
        self.speaking_rate_wps
    }

    /// Mean acoustic difficulty of the utterance.
    pub fn mean_difficulty(&self) -> f64 {
        if self.word_difficulties.is_empty() {
            0.0
        } else {
            self.word_difficulties.iter().sum::<f64>() / self.word_difficulties.len() as f64
        }
    }
}

/// Configuration for corpus generation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CorpusConfig {
    /// Base RNG seed; every derived quantity is a pure function of this seed.
    pub seed: u64,
    /// Number of utterances generated per split.
    pub utterances_per_split: usize,
    /// Minimum transcript length in words.
    pub min_words: usize,
    /// Maximum transcript length in words.
    pub max_words: usize,
    /// Mean speaking rate in words per second (LibriSpeech ≈ 2.7 w/s).
    pub speaking_rate_wps: f64,
    /// Relative jitter applied to the speaking rate per utterance.
    pub speaking_rate_jitter: f64,
}

impl CorpusConfig {
    /// Configuration mirroring the paper's evaluation corpora: utterances of
    /// roughly 4–35 words (≈ 2–13 s of audio) at ≈ 2.7 words per second.
    pub fn librispeech_like(seed: u64, utterances_per_split: usize) -> Self {
        CorpusConfig {
            seed,
            utterances_per_split,
            min_words: 4,
            max_words: 35,
            speaking_rate_wps: 2.7,
            speaking_rate_jitter: 0.15,
        }
    }
}

/// A generated corpus: utterances grouped by [`Split`].
///
/// # Example
///
/// ```
/// use specasr_audio::{Corpus, Split};
///
/// let corpus = Corpus::librispeech_like(11, 8);
/// assert_eq!(corpus.total_utterances(), 8 * Split::ALL.len());
/// let noisy_mean = corpus.mean_difficulty(Split::TestOther);
/// let clean_mean = corpus.mean_difficulty(Split::TestClean);
/// assert!(noisy_mean > clean_mean);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Corpus {
    config: CorpusConfig,
    splits: HashMap<Split, Vec<Utterance>>,
}

impl Corpus {
    /// Generates a corpus according to `config`.
    pub fn generate(config: CorpusConfig) -> Self {
        let mut splits = HashMap::new();
        let mut next_id = 0u64;
        for (split_index, split) in Split::ALL.into_iter().enumerate() {
            let mut utterances = Vec::with_capacity(config.utterances_per_split);
            let mut text = TextGenerator::new(
                config
                    .seed
                    .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                    .wrapping_add(split_index as u64),
            );
            let mut rng = ChaCha8Rng::seed_from_u64(
                config
                    .seed
                    .wrapping_add(0xc0ffee)
                    .wrapping_add(split_index as u64),
            );
            let difficulty = split.difficulty_model();
            for _ in 0..config.utterances_per_split {
                let transcript = text.transcript(config.min_words, config.max_words);
                let word_count = transcript.split_whitespace().count();
                let word_difficulties =
                    difficulty.sample(config.seed ^ next_id.wrapping_mul(0xabcd), word_count);
                let rate_jitter =
                    1.0 + (rng.gen::<f64>() * 2.0 - 1.0) * config.speaking_rate_jitter;
                let rate = (config.speaking_rate_wps * rate_jitter).max(0.5);
                let duration = word_count as f64 / rate;
                utterances.push(Utterance::new(
                    UtteranceId::new(next_id),
                    split,
                    transcript,
                    word_difficulties,
                    duration,
                ));
                next_id += 1;
            }
            splits.insert(split, utterances);
        }
        Corpus { config, splits }
    }

    /// Convenience constructor with the LibriSpeech-like defaults.
    pub fn librispeech_like(seed: u64, utterances_per_split: usize) -> Self {
        Corpus::generate(CorpusConfig::librispeech_like(seed, utterances_per_split))
    }

    /// Configuration used to generate this corpus.
    pub fn config(&self) -> &CorpusConfig {
        &self.config
    }

    /// The utterances of `split` in generation order.
    pub fn split(&self, split: Split) -> &[Utterance] {
        self.splits.get(&split).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Iterates over every utterance across all splits, in split order.
    pub fn iter(&self) -> impl Iterator<Item = &Utterance> {
        Split::ALL
            .into_iter()
            .flat_map(move |s| self.split(s).iter())
    }

    /// Total number of utterances across all splits.
    pub fn total_utterances(&self) -> usize {
        Split::ALL.iter().map(|s| self.split(*s).len()).sum()
    }

    /// Total audio duration of `split` in seconds.
    pub fn total_duration_seconds(&self, split: Split) -> f64 {
        self.split(split)
            .iter()
            .map(Utterance::duration_seconds)
            .sum()
    }

    /// Mean per-word acoustic difficulty of `split`.
    pub fn mean_difficulty(&self, split: Split) -> f64 {
        let utterances = self.split(split);
        let (sum, count) = utterances.iter().fold((0.0, 0usize), |(s, c), u| {
            (
                s + u.word_difficulties().iter().sum::<f64>(),
                c + u.word_count(),
            )
        });
        if count == 0 {
            0.0
        } else {
            sum / count as f64
        }
    }

    /// Returns corpus lines suitable for training a tokenizer vocabulary that
    /// covers the evaluation transcripts.
    pub fn tokenizer_training_lines(&self) -> Vec<String> {
        self.iter().map(|u| u.transcript().to_owned()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = Corpus::librispeech_like(5, 6);
        let b = Corpus::librispeech_like(5, 6);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_produce_different_corpora() {
        let a = Corpus::librispeech_like(5, 6);
        let b = Corpus::librispeech_like(6, 6);
        assert_ne!(a, b);
    }

    #[test]
    fn every_split_has_requested_size() {
        let corpus = Corpus::librispeech_like(1, 12);
        for split in Split::ALL {
            assert_eq!(corpus.split(split).len(), 12);
        }
        assert_eq!(corpus.total_utterances(), 48);
    }

    #[test]
    fn utterance_ids_are_unique() {
        let corpus = Corpus::librispeech_like(2, 10);
        let mut ids: Vec<u64> = corpus.iter().map(|u| u.id().value()).collect();
        let before = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), before);
    }

    #[test]
    fn noisy_splits_are_harder() {
        let corpus = Corpus::librispeech_like(3, 40);
        assert!(
            corpus.mean_difficulty(Split::TestOther) > corpus.mean_difficulty(Split::TestClean)
        );
        assert!(corpus.mean_difficulty(Split::DevOther) > corpus.mean_difficulty(Split::DevClean));
    }

    #[test]
    fn durations_match_speaking_rate() {
        let corpus = Corpus::librispeech_like(4, 20);
        for utt in corpus.iter() {
            let implied_rate = utt.word_count() as f64 / utt.duration_seconds();
            assert!(
                (1.5..=4.5).contains(&implied_rate),
                "rate {implied_rate} out of range"
            );
            assert!((implied_rate - utt.speaking_rate_wps()).abs() < 1e-9);
        }
    }

    #[test]
    fn word_difficulties_align_with_words() {
        let corpus = Corpus::librispeech_like(8, 10);
        for utt in corpus.iter() {
            assert_eq!(utt.word_count(), utt.words().len());
            assert_eq!(utt.word_count(), utt.word_difficulties().len());
            assert!(utt.mean_difficulty() >= 0.0 && utt.mean_difficulty() <= 1.0);
        }
    }

    #[test]
    fn split_metadata_is_consistent() {
        assert!(Split::TestOther.is_noisy());
        assert!(!Split::DevClean.is_noisy());
        assert_eq!(Split::TestClean.name(), "test-clean");
        assert_eq!(Split::DevOther.to_string(), "dev-other");
    }

    #[test]
    #[should_panic(expected = "one difficulty value per word")]
    fn mismatched_difficulty_length_panics() {
        Utterance::new(
            UtteranceId::new(0),
            Split::TestClean,
            "two words".to_owned(),
            vec![0.1],
            1.0,
        );
    }

    #[test]
    #[should_panic(expected = "duration must be positive")]
    fn non_positive_duration_panics() {
        Utterance::new(
            UtteranceId::new(0),
            Split::TestClean,
            "one".to_owned(),
            vec![0.1],
            0.0,
        );
    }

    #[test]
    fn tokenizer_training_lines_cover_all_utterances() {
        let corpus = Corpus::librispeech_like(9, 5);
        assert_eq!(
            corpus.tokenizer_training_lines().len(),
            corpus.total_utterances()
        );
    }
}
