//! Log-mel feature extraction: the Whisper-style ASR front end.
//!
//! The pipeline is the textbook one — pre-emphasis, framing, Hann windowing,
//! a (naive) DFT power spectrum, a triangular mel filterbank, and a log
//! compression.  Frame counts are what matter downstream (they determine the
//! audio-encoder cost in Fig. 1), but the numerical path is implemented in
//! full so the encoder consumes real spectral features.

use serde::{Deserialize, Serialize};

use crate::waveform::Waveform;

/// Configuration of the feature extractor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FeatureConfig {
    /// Frame length in milliseconds (Whisper uses 25 ms).
    pub frame_length_ms: f64,
    /// Frame hop in milliseconds (Whisper uses 10 ms).
    pub frame_hop_ms: f64,
    /// Number of mel filterbank channels (Whisper uses 80).
    pub mel_channels: usize,
    /// Pre-emphasis coefficient applied before framing.
    pub pre_emphasis: f64,
    /// Number of DFT bins used for the power spectrum.
    pub dft_bins: usize,
}

impl FeatureConfig {
    /// The Whisper-style 25 ms / 10 ms / 80-channel configuration.
    pub fn whisper_like() -> Self {
        FeatureConfig {
            frame_length_ms: 25.0,
            frame_hop_ms: 10.0,
            mel_channels: 80,
            pre_emphasis: 0.97,
            dft_bins: 128,
        }
    }

    /// A reduced configuration for fast unit tests.
    pub fn tiny() -> Self {
        FeatureConfig {
            frame_length_ms: 25.0,
            frame_hop_ms: 10.0,
            mel_channels: 16,
            pre_emphasis: 0.97,
            dft_bins: 32,
        }
    }
}

impl Default for FeatureConfig {
    fn default() -> Self {
        FeatureConfig::whisper_like()
    }
}

/// A log-mel spectrogram: `frames × mel_channels` features.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogMelSpectrogram {
    frames: Vec<Vec<f64>>,
    mel_channels: usize,
    frame_hop_ms: f64,
}

impl LogMelSpectrogram {
    /// Number of frames.
    pub fn frame_count(&self) -> usize {
        self.frames.len()
    }

    /// Number of mel channels per frame.
    pub fn mel_channels(&self) -> usize {
        self.mel_channels
    }

    /// Frame hop in milliseconds (needed to convert frames back to seconds).
    pub fn frame_hop_ms(&self) -> f64 {
        self.frame_hop_ms
    }

    /// Returns frame `index`, if in range.
    pub fn frame(&self, index: usize) -> Option<&[f64]> {
        self.frames.get(index).map(Vec::as_slice)
    }

    /// Iterates over frames in time order.
    pub fn iter(&self) -> impl Iterator<Item = &[f64]> {
        self.frames.iter().map(Vec::as_slice)
    }

    /// Mean log-mel energy across the whole spectrogram, a cheap scalar proxy
    /// for signal level used in tests and diagnostics.
    pub fn mean_energy(&self) -> f64 {
        let total: f64 = self.frames.iter().flat_map(|f| f.iter()).sum();
        let count = self.frames.len() * self.mel_channels.max(1);
        if count == 0 {
            0.0
        } else {
            total / count as f64
        }
    }
}

/// Extracts [`LogMelSpectrogram`]s from [`Waveform`]s.
///
/// # Example
///
/// ```
/// use specasr_audio::{Corpus, FeatureConfig, FeatureExtractor, Split, Waveform};
///
/// let corpus = Corpus::librispeech_like(2, 1);
/// let wave = Waveform::synthesize(&corpus.split(Split::DevClean)[0]);
/// let extractor = FeatureExtractor::new(FeatureConfig::tiny());
/// let mel = extractor.extract(&wave);
/// assert!(mel.frame_count() > 0);
/// assert_eq!(mel.mel_channels(), 16);
/// ```
#[derive(Debug, Clone)]
pub struct FeatureExtractor {
    config: FeatureConfig,
}

impl FeatureExtractor {
    /// Creates an extractor with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has zero mel channels, zero DFT bins, or a
    /// non-positive frame geometry.
    pub fn new(config: FeatureConfig) -> Self {
        assert!(
            config.mel_channels > 0,
            "at least one mel channel is required"
        );
        assert!(config.dft_bins > 1, "at least two DFT bins are required");
        assert!(config.frame_length_ms > 0.0 && config.frame_hop_ms > 0.0);
        FeatureExtractor { config }
    }

    /// The extractor configuration.
    pub fn config(&self) -> &FeatureConfig {
        &self.config
    }

    /// Number of frames a waveform of `duration_seconds` will produce.
    pub fn frames_for_duration(&self, duration_seconds: f64) -> usize {
        if duration_seconds <= 0.0 {
            return 0;
        }
        let hop_s = self.config.frame_hop_ms / 1000.0;
        (duration_seconds / hop_s).floor().max(0.0) as usize
    }

    /// Extracts the log-mel spectrogram of `waveform`.
    pub fn extract(&self, waveform: &Waveform) -> LogMelSpectrogram {
        let sample_rate = waveform.sample_rate() as f64;
        let frame_len = ((self.config.frame_length_ms / 1000.0) * sample_rate).round() as usize;
        let frame_hop = ((self.config.frame_hop_ms / 1000.0) * sample_rate).round() as usize;
        let samples = pre_emphasize(waveform.samples(), self.config.pre_emphasis);

        let mut frames = Vec::new();
        if frame_len == 0 || frame_hop == 0 {
            return LogMelSpectrogram {
                frames,
                mel_channels: self.config.mel_channels,
                frame_hop_ms: self.config.frame_hop_ms,
            };
        }
        let window = hann_window(frame_len);
        let filterbank =
            mel_filterbank(self.config.mel_channels, self.config.dft_bins, sample_rate);
        let mut start = 0;
        while start + frame_len <= samples.len() {
            frames.push(mel_frame(
                &samples[start..start + frame_len],
                &window,
                &filterbank,
                self.config.dft_bins,
            ));
            start += frame_hop;
        }
        LogMelSpectrogram {
            frames,
            mel_channels: self.config.mel_channels,
            frame_hop_ms: self.config.frame_hop_ms,
        }
    }
}

/// Computes one log-mel frame from a pre-emphasised, frame-length sample
/// slice (windowing, DFT power spectrum, filterbank, log compression) — the
/// kernel shared by the offline [`FeatureExtractor`] and the streaming
/// [`IncrementalFeatureExtractor`].
fn mel_frame(
    samples: &[f64],
    window: &[f64],
    filterbank: &[Vec<f64>],
    dft_bins: usize,
) -> Vec<f64> {
    let mut frame: Vec<f64> = samples
        .iter()
        .zip(window.iter())
        .map(|(s, w)| s * w)
        .collect();
    // Zero-pad or truncate to the DFT analysis length.
    frame.resize(dft_bins * 2, 0.0);
    let power = power_spectrum(&frame, dft_bins);
    filterbank
        .iter()
        .map(|filter| {
            let energy: f64 = filter.iter().zip(power.iter()).map(|(f, p)| f * p).sum();
            (energy + 1e-10).ln()
        })
        .collect()
}

/// A feature extractor that consumes a waveform chunk by chunk, emitting new
/// log-mel frames as soon as enough samples are buffered — nothing is ever
/// re-framed or re-transformed.
///
/// Pre-emphasis is a causal first-order filter and framing is a sliding
/// window, so the streaming state is one previous raw sample plus the sample
/// tail that does not yet fill a frame.  Feeding the same waveform in any
/// chunking yields exactly the frames of [`FeatureExtractor::extract`], in
/// order — the equality the incremental encoder path builds on.
///
/// # Example
///
/// ```
/// use specasr_audio::{Corpus, FeatureConfig, FeatureExtractor, IncrementalFeatureExtractor,
///                     Split, Waveform};
///
/// let corpus = Corpus::librispeech_like(2, 1);
/// let wave = Waveform::synthesize(&corpus.split(Split::DevClean)[0]);
/// let offline = FeatureExtractor::new(FeatureConfig::tiny()).extract(&wave);
///
/// let mut streaming = IncrementalFeatureExtractor::new(FeatureConfig::tiny());
/// let mut frames = 0;
/// for chunk in wave.samples().chunks(1000) {
///     frames += streaming.push(chunk, wave.sample_rate()).frame_count();
/// }
/// assert_eq!(frames, offline.frame_count());
/// ```
#[derive(Debug, Clone)]
pub struct IncrementalFeatureExtractor {
    config: FeatureConfig,
    sample_rate: Option<u32>,
    window: Vec<f64>,
    filterbank: Vec<Vec<f64>>,
    /// Pre-emphasised samples not yet fully consumed by emitted frames.
    buffer: Vec<f64>,
    /// The last raw sample seen, for the causal pre-emphasis filter.
    previous_raw: f64,
    frames_emitted: usize,
}

impl IncrementalFeatureExtractor {
    /// Creates a streaming extractor with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics under the same configuration conditions as
    /// [`FeatureExtractor::new`].
    pub fn new(config: FeatureConfig) -> Self {
        // Reuse the offline constructor's validation.
        let _ = FeatureExtractor::new(config);
        IncrementalFeatureExtractor {
            config,
            sample_rate: None,
            window: Vec::new(),
            filterbank: Vec::new(),
            buffer: Vec::new(),
            previous_raw: 0.0,
            frames_emitted: 0,
        }
    }

    /// The extractor configuration.
    pub fn config(&self) -> &FeatureConfig {
        &self.config
    }

    /// Total frames emitted so far across all pushed chunks.
    pub fn frames_emitted(&self) -> usize {
        self.frames_emitted
    }

    /// Feeds one chunk of raw samples and returns the new frames it
    /// completes (possibly none for very short chunks).
    ///
    /// # Panics
    ///
    /// Panics if `sample_rate` is zero or changes between chunks.
    pub fn push(&mut self, samples: &[f32], sample_rate: u32) -> LogMelSpectrogram {
        assert!(sample_rate > 0, "sample rate must be positive");
        match self.sample_rate {
            None => {
                self.sample_rate = Some(sample_rate);
                let rate = sample_rate as f64;
                let frame_len = ((self.config.frame_length_ms / 1000.0) * rate).round() as usize;
                self.window = hann_window(frame_len);
                self.filterbank =
                    mel_filterbank(self.config.mel_channels, self.config.dft_bins, rate);
            }
            Some(existing) => assert_eq!(
                existing, sample_rate,
                "the sample rate must not change mid-stream"
            ),
        }
        // Causal pre-emphasis over the new chunk, continuing from the last
        // raw sample of the previous chunk.
        for &s in samples {
            let s = f64::from(s);
            self.buffer
                .push(s - self.config.pre_emphasis * self.previous_raw);
            self.previous_raw = s;
        }

        let rate = f64::from(sample_rate);
        let frame_len = ((self.config.frame_length_ms / 1000.0) * rate).round() as usize;
        let frame_hop = ((self.config.frame_hop_ms / 1000.0) * rate).round() as usize;
        let mut frames = Vec::new();
        if frame_len > 0 && frame_hop > 0 {
            let mut start = 0;
            while start + frame_len <= self.buffer.len() {
                frames.push(mel_frame(
                    &self.buffer[start..start + frame_len],
                    &self.window,
                    &self.filterbank,
                    self.config.dft_bins,
                ));
                start += frame_hop;
            }
            // Keep only the overlap tail the next frame still needs.
            self.buffer.drain(..start);
        }
        self.frames_emitted += frames.len();
        LogMelSpectrogram {
            frames,
            mel_channels: self.config.mel_channels,
            frame_hop_ms: self.config.frame_hop_ms,
        }
    }
}

impl Default for FeatureExtractor {
    fn default() -> Self {
        FeatureExtractor::new(FeatureConfig::default())
    }
}

/// Applies the first-order pre-emphasis filter `y[n] = x[n] - a·x[n-1]`.
fn pre_emphasize(samples: &[f32], coefficient: f64) -> Vec<f64> {
    let mut out = Vec::with_capacity(samples.len());
    let mut previous = 0.0f64;
    for &s in samples {
        let s = s as f64;
        out.push(s - coefficient * previous);
        previous = s;
    }
    out
}

/// The Hann window of length `n`.
fn hann_window(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| 0.5 * (1.0 - (std::f64::consts::TAU * i as f64 / n as f64).cos()))
        .collect()
}

/// Naive DFT power spectrum over `bins` frequency bins.
fn power_spectrum(frame: &[f64], bins: usize) -> Vec<f64> {
    let n = frame.len();
    (0..bins)
        .map(|k| {
            let mut real = 0.0;
            let mut imag = 0.0;
            for (i, &x) in frame.iter().enumerate() {
                let angle = std::f64::consts::TAU * k as f64 * i as f64 / n as f64;
                real += x * angle.cos();
                imag -= x * angle.sin();
            }
            (real * real + imag * imag) / n as f64
        })
        .collect()
}

/// Converts a frequency in Hz to the mel scale.
fn hz_to_mel(hz: f64) -> f64 {
    2595.0 * (1.0 + hz / 700.0).log10()
}

/// Converts a mel-scale value back to Hz.
fn mel_to_hz(mel: f64) -> f64 {
    700.0 * (10f64.powf(mel / 2595.0) - 1.0)
}

/// Builds a triangular mel filterbank of `channels` filters over `bins`
/// linear-frequency bins covering 0..sample_rate/2.
fn mel_filterbank(channels: usize, bins: usize, sample_rate: f64) -> Vec<Vec<f64>> {
    let max_mel = hz_to_mel(sample_rate / 2.0);
    let centers: Vec<f64> = (0..channels + 2)
        .map(|i| mel_to_hz(max_mel * i as f64 / (channels + 1) as f64))
        .collect();
    let bin_hz = |bin: usize| bin as f64 * (sample_rate / 2.0) / bins as f64;
    (0..channels)
        .map(|c| {
            let (lo, mid, hi) = (centers[c], centers[c + 1], centers[c + 2]);
            (0..bins)
                .map(|b| {
                    let f = bin_hz(b);
                    if f <= lo || f >= hi {
                        0.0
                    } else if f <= mid {
                        (f - lo) / (mid - lo).max(1e-9)
                    } else {
                        (hi - f) / (hi - mid).max(1e-9)
                    }
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{Corpus, Split};

    fn sample_wave() -> Waveform {
        let corpus = Corpus::librispeech_like(77, 1);
        Waveform::synthesize(&corpus.split(Split::TestClean)[0])
    }

    #[test]
    fn frame_count_matches_duration_prediction() {
        let wave = sample_wave();
        let extractor = FeatureExtractor::new(FeatureConfig::tiny());
        let mel = extractor.extract(&wave);
        let predicted = extractor.frames_for_duration(wave.duration_seconds());
        let diff = (mel.frame_count() as i64 - predicted as i64).abs();
        assert!(
            diff <= 3,
            "frame count {} vs predicted {}",
            mel.frame_count(),
            predicted
        );
    }

    #[test]
    fn every_frame_has_mel_channels() {
        let extractor = FeatureExtractor::new(FeatureConfig::tiny());
        let mel = extractor.extract(&sample_wave());
        for frame in mel.iter() {
            assert_eq!(frame.len(), 16);
            assert!(frame.iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn silence_has_lower_energy_than_speech() {
        let extractor = FeatureExtractor::new(FeatureConfig::tiny());
        let speech = extractor.extract(&sample_wave());
        let silence = extractor.extract(&Waveform::from_samples(vec![0.0; 16_000], 16_000));
        assert!(speech.mean_energy() > silence.mean_energy());
    }

    #[test]
    fn hann_window_is_symmetric_and_bounded() {
        // This is the periodic Hann window (denominator n), symmetric around
        // n/2: w[i] == w[n - i] for i >= 1.
        let w = hann_window(64);
        assert_eq!(w.len(), 64);
        for (i, &value) in w.iter().enumerate().skip(1) {
            assert!((value - w[64 - i]).abs() < 1e-9 || 64 - i == 64);
            assert!((0.0..=1.0).contains(&value));
        }
        assert!(w[0].abs() < 1e-12);
    }

    #[test]
    fn power_spectrum_detects_dominant_frequency() {
        // A pure 1 kHz tone at 16 kHz sampled into 256 points: bin resolution
        // is 16 000 / 512 = 31.25 Hz per DFT index over 256 bins covering the
        // full rate; the peak must be near k = 1000/ (16000/256) = 16.
        let n = 256;
        let tone: Vec<f64> = (0..n)
            .map(|i| (std::f64::consts::TAU * 1000.0 * i as f64 / 16_000.0).sin())
            .collect();
        let spectrum = power_spectrum(&tone, 64);
        let peak = spectrum
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .map(|(i, _)| i)
            .expect("non-empty");
        assert!((14..=18).contains(&peak), "peak at bin {peak}");
    }

    #[test]
    fn mel_scale_round_trips() {
        for hz in [100.0, 440.0, 1000.0, 4000.0, 7999.0] {
            assert!((mel_to_hz(hz_to_mel(hz)) - hz).abs() < 1e-6);
        }
    }

    #[test]
    fn filterbank_rows_are_nonnegative_and_peak_once() {
        let fb = mel_filterbank(8, 32, 16_000.0);
        assert_eq!(fb.len(), 8);
        for row in &fb {
            assert_eq!(row.len(), 32);
            assert!(row.iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn empty_waveform_yields_no_frames() {
        let extractor = FeatureExtractor::new(FeatureConfig::tiny());
        let mel = extractor.extract(&Waveform::from_samples(vec![], 16_000));
        assert_eq!(mel.frame_count(), 0);
        assert_eq!(extractor.frames_for_duration(0.0), 0);
    }

    #[test]
    fn incremental_extraction_matches_offline_for_any_chunking() {
        let wave = sample_wave();
        let extractor = FeatureExtractor::new(FeatureConfig::tiny());
        let offline = extractor.extract(&wave);
        for chunk_len in [160usize, 333, 1000, 4096, wave.len()] {
            let mut streaming = IncrementalFeatureExtractor::new(FeatureConfig::tiny());
            let mut frames: Vec<Vec<f64>> = Vec::new();
            for chunk in wave.samples().chunks(chunk_len) {
                let emitted = streaming.push(chunk, wave.sample_rate());
                frames.extend(emitted.iter().map(<[f64]>::to_vec));
            }
            assert_eq!(frames.len(), offline.frame_count(), "chunk {chunk_len}");
            for (streamed, reference) in frames.iter().zip(offline.iter()) {
                assert_eq!(streamed.as_slice(), reference, "chunk {chunk_len}");
            }
            assert_eq!(streaming.frames_emitted(), offline.frame_count());
        }
    }

    #[test]
    fn incremental_extraction_handles_empty_chunks() {
        let wave = sample_wave();
        let mut streaming = IncrementalFeatureExtractor::new(FeatureConfig::tiny());
        assert_eq!(streaming.push(&[], wave.sample_rate()).frame_count(), 0);
        let emitted = streaming.push(wave.samples(), wave.sample_rate());
        assert!(emitted.frame_count() > 0);
    }

    #[test]
    #[should_panic(expected = "must not change")]
    fn changing_the_sample_rate_mid_stream_panics() {
        let mut streaming = IncrementalFeatureExtractor::new(FeatureConfig::tiny());
        streaming.push(&[0.0; 100], 16_000);
        streaming.push(&[0.0; 100], 8_000);
    }

    #[test]
    #[should_panic(expected = "mel channel")]
    fn zero_mel_channels_panics() {
        FeatureExtractor::new(FeatureConfig {
            mel_channels: 0,
            ..FeatureConfig::tiny()
        });
    }
}
