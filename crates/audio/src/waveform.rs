//! Formant-style waveform synthesis for generated utterances.
//!
//! The feature pipeline ([`crate::features`]) and the audio encoder operate on
//! raw samples, so the corpus needs actual waveforms.  Each word is rendered
//! as a short "syllable" of mixed sinusoids whose formant frequencies are
//! derived deterministically from the word text; the split's acoustic
//! difficulty is injected as additive noise, so noisy splits produce visibly
//! noisier spectrograms.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::corpus::Utterance;

/// Default sample rate, matching the 16 kHz LibriSpeech recordings.
pub const DEFAULT_SAMPLE_RATE: u32 = 16_000;

/// A mono waveform with its sample rate.
///
/// # Example
///
/// ```
/// use specasr_audio::{Corpus, Split, Waveform};
///
/// let corpus = Corpus::librispeech_like(3, 2);
/// let wave = Waveform::synthesize(&corpus.split(Split::TestClean)[0]);
/// assert_eq!(wave.sample_rate(), 16_000);
/// assert!(wave.len() > 0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Waveform {
    samples: Vec<f32>,
    sample_rate: u32,
}

impl Waveform {
    /// Wraps raw samples at a given sample rate.
    ///
    /// # Panics
    ///
    /// Panics if `sample_rate` is zero.
    pub fn from_samples(samples: Vec<f32>, sample_rate: u32) -> Self {
        assert!(sample_rate > 0, "sample rate must be positive");
        Waveform {
            samples,
            sample_rate,
        }
    }

    /// Synthesises a waveform for `utterance` at the default 16 kHz rate.
    pub fn synthesize(utterance: &Utterance) -> Self {
        Waveform::synthesize_at(utterance, DEFAULT_SAMPLE_RATE)
    }

    /// Synthesises a waveform for `utterance` at `sample_rate` Hz.
    ///
    /// The word timeline divides the utterance duration evenly among words;
    /// each word contributes three formant sinusoids plus difficulty-scaled
    /// noise, with a short raised-cosine onset/offset to avoid clicks.
    ///
    /// # Panics
    ///
    /// Panics if `sample_rate` is zero.
    pub fn synthesize_at(utterance: &Utterance, sample_rate: u32) -> Self {
        assert!(sample_rate > 0, "sample rate must be positive");
        let total_samples = (utterance.duration_seconds() * sample_rate as f64)
            .round()
            .max(1.0) as usize;
        let mut samples = vec![0.0f32; total_samples];
        let words = utterance.words();
        if words.is_empty() {
            return Waveform::from_samples(samples, sample_rate);
        }
        let samples_per_word = total_samples / words.len();
        let mut rng = ChaCha8Rng::seed_from_u64(utterance.id().value() ^ WAVE_NOISE_SEED);
        for (w, word) in words.iter().enumerate() {
            let start = w * samples_per_word;
            let end = if w + 1 == words.len() {
                total_samples
            } else {
                start + samples_per_word
            };
            let difficulty = utterance.word_difficulties()[w];
            let formants = word_formants(word);
            let span = (end - start).max(1);
            for (i, sample) in samples[start..end].iter_mut().enumerate() {
                let t = i as f64 / sample_rate as f64;
                // Raised-cosine envelope over the word duration.
                let envelope = 0.5 * (1.0 - (std::f64::consts::TAU * i as f64 / span as f64).cos());
                let mut value = 0.0f64;
                for (k, &f) in formants.iter().enumerate() {
                    let amplitude = 0.5 / (k as f64 + 1.0);
                    value += amplitude * (std::f64::consts::TAU * f * t).sin();
                }
                let noise = (rng.gen::<f64>() * 2.0 - 1.0) * difficulty * 0.6;
                *sample = ((value * envelope + noise) * 0.5) as f32;
            }
        }
        Waveform::from_samples(samples, sample_rate)
    }

    /// The raw samples.
    pub fn samples(&self) -> &[f32] {
        &self.samples
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Returns `true` if the waveform holds no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The sample rate in Hz.
    pub fn sample_rate(&self) -> u32 {
        self.sample_rate
    }

    /// Duration in seconds.
    pub fn duration_seconds(&self) -> f64 {
        self.samples.len() as f64 / self.sample_rate as f64
    }

    /// Root-mean-square energy of the waveform.
    pub fn rms(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let sum_sq: f64 = self.samples.iter().map(|&s| (s as f64) * (s as f64)).sum();
        (sum_sq / self.samples.len() as f64).sqrt()
    }
}

/// Deterministically derives three formant frequencies (Hz) from a word.
fn word_formants(word: &str) -> [f64; 3] {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for b in word.bytes() {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x1000_0000_01b3);
    }
    let f1 = 250.0 + (hash % 500) as f64; // 250–750 Hz
    let f2 = 900.0 + ((hash >> 16) % 1200) as f64; // 0.9–2.1 kHz
    let f3 = 2200.0 + ((hash >> 32) % 1200) as f64; // 2.2–3.4 kHz
    [f1, f2, f3]
}

/// Seed offset that decorrelates waveform noise from the other per-utterance
/// random streams (difficulty, speaking rate).
const WAVE_NOISE_SEED: u64 = 0x57a7_e5ee_d000_0001;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{Corpus, Split};

    fn sample_utterance() -> Utterance {
        Corpus::librispeech_like(21, 2).split(Split::TestClean)[0].clone()
    }

    #[test]
    fn synthesis_is_deterministic() {
        let utt = sample_utterance();
        assert_eq!(Waveform::synthesize(&utt), Waveform::synthesize(&utt));
    }

    #[test]
    fn duration_matches_utterance() {
        let utt = sample_utterance();
        let wave = Waveform::synthesize(&utt);
        assert!((wave.duration_seconds() - utt.duration_seconds()).abs() < 1e-3);
    }

    #[test]
    fn samples_are_bounded() {
        let utt = sample_utterance();
        let wave = Waveform::synthesize(&utt);
        for &s in wave.samples() {
            assert!(s.abs() <= 1.5, "sample {s} out of expected dynamic range");
        }
        assert!(wave.rms() > 0.0);
    }

    #[test]
    fn noisy_split_has_more_energy_variation() {
        let corpus = Corpus::librispeech_like(33, 12);
        let clean_rms: f64 = corpus
            .split(Split::TestClean)
            .iter()
            .map(|u| Waveform::synthesize(u).rms())
            .sum::<f64>()
            / 12.0;
        let other_rms: f64 = corpus
            .split(Split::TestOther)
            .iter()
            .map(|u| Waveform::synthesize(u).rms())
            .sum::<f64>()
            / 12.0;
        // Additive noise raises total energy on the noisy split.
        assert!(other_rms > clean_rms * 0.9);
    }

    #[test]
    fn formants_are_in_speech_band() {
        for word in ["the", "recognition", "zzz", "a"] {
            let [f1, f2, f3] = word_formants(word);
            assert!((200.0..800.0).contains(&f1));
            assert!((800.0..2200.0).contains(&f2));
            assert!((2100.0..3500.0).contains(&f3));
        }
    }

    #[test]
    fn custom_sample_rate_scales_sample_count() {
        let utt = sample_utterance();
        let full = Waveform::synthesize_at(&utt, 16_000);
        let half = Waveform::synthesize_at(&utt, 8_000);
        let ratio = full.len() as f64 / half.len() as f64;
        assert!((ratio - 2.0).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "sample rate must be positive")]
    fn zero_sample_rate_panics() {
        Waveform::from_samples(vec![0.0], 0);
    }
}
