//! Synthetic LibriSpeech-like audio corpus and audio-encoder substrate.
//!
//! The SpecASR paper evaluates on the LibriSpeech `test-clean`, `test-other`,
//! `dev-clean`, and `dev-other` splits, recorded speech that this offline
//! reproduction cannot ship.  This crate builds the closest synthetic
//! equivalent that exercises the same code paths:
//!
//! * [`text`] — a seeded English-like text generator producing reference
//!   transcripts with realistic word-frequency structure,
//! * [`difficulty`] — a per-word acoustic-difficulty model with bursty,
//!   localised hard regions (the paper's "variations in pronunciation and
//!   acoustic quality across specific speech segments"),
//! * [`corpus`] — utterance and split generation ([`Corpus::librispeech_like`]
//!   reproduces the four evaluation splits with a clean/other noise contrast),
//! * [`waveform`] — a small formant-style waveform synthesiser so the feature
//!   pipeline operates on real samples,
//! * [`features`] — framing, Hann windowing, a naive DFT and a log-mel style
//!   filterbank (the Whisper-style front end),
//! * [`encoder`] — the audio encoder: frame stacking, projection into the LLM
//!   hidden dimension, and an encoder latency/parameter profile used by the
//!   Fig. 1 reproduction.
//!
//! # Example
//!
//! ```
//! use specasr_audio::{Corpus, Split};
//!
//! let corpus = Corpus::librispeech_like(7, 20);
//! let clean = corpus.split(Split::TestClean);
//! assert_eq!(clean.len(), 20);
//! assert!(clean[0].duration_seconds() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corpus;
pub mod difficulty;
pub mod encoder;
pub mod features;
pub mod stream;
pub mod text;
pub mod waveform;

pub use corpus::{Corpus, Split, Utterance, UtteranceId};
pub use difficulty::DifficultyModel;
pub use encoder::{AudioEncoder, EncoderProfile, IncrementalEncoder};
pub use features::{
    FeatureConfig, FeatureExtractor, IncrementalFeatureExtractor, LogMelSpectrogram,
};
pub use stream::{chunk_schedule, AudioStream, ChunkConfig, StreamChunk};
pub use text::TextGenerator;
pub use waveform::Waveform;
