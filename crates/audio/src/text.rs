//! Seeded English-like transcript generation.
//!
//! LibriSpeech transcripts are read audiobook sentences.  The generator below
//! produces sentences with a similar surface statistics profile — a Zipf-like
//! word-frequency distribution over a fixed lexicon plus simple grammatical
//! templates — so downstream tokenisation, language-model alignment, and WER
//! measurements behave like they would on natural text.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The fixed lexicon used to synthesise transcripts.
///
/// Ordered roughly by frequency rank; the generator samples ranks from a
/// Zipf-like distribution so early entries dominate exactly as function words
/// do in natural speech.
pub const LEXICON: &[&str] = &[
    "the",
    "and",
    "of",
    "to",
    "a",
    "in",
    "that",
    "he",
    "was",
    "it",
    "his",
    "her",
    "with",
    "as",
    "for",
    "had",
    "you",
    "not",
    "be",
    "is",
    "she",
    "at",
    "on",
    "by",
    "which",
    "have",
    "or",
    "from",
    "this",
    "him",
    "they",
    "all",
    "were",
    "but",
    "are",
    "my",
    "one",
    "so",
    "there",
    "been",
    "their",
    "we",
    "said",
    "when",
    "who",
    "will",
    "more",
    "no",
    "if",
    "out",
    "up",
    "into",
    "them",
    "then",
    "what",
    "would",
    "about",
    "could",
    "now",
    "little",
    "time",
    "very",
    "some",
    "like",
    "over",
    "after",
    "man",
    "did",
    "down",
    "made",
    "before",
    "other",
    "old",
    "see",
    "came",
    "way",
    "great",
    "through",
    "again",
    "himself",
    "never",
    "night",
    "house",
    "might",
    "still",
    "upon",
    "such",
    "being",
    "where",
    "much",
    "own",
    "first",
    "here",
    "good",
    "long",
    "day",
    "found",
    "come",
    "thought",
    "went",
    "hand",
    "knights",
    "black",
    "voice",
    "light",
    "water",
    "morning",
    "evening",
    "river",
    "mountain",
    "forest",
    "silence",
    "stone",
    "window",
    "garden",
    "summer",
    "winter",
    "children",
    "mother",
    "father",
    "friend",
    "captain",
    "soldier",
    "village",
    "castle",
    "shadow",
    "journey",
    "letter",
    "answer",
    "question",
    "moment",
    "memory",
    "story",
    "history",
    "people",
    "country",
    "spirit",
    "heart",
    "world",
    "clad",
    "horizon",
    "twilight",
    "harbor",
    "lantern",
    "meadow",
    "orchard",
    "thunder",
    "whisper",
    "courage",
    "wonder",
    "danger",
    "stranger",
    "teacher",
    "doctor",
    "market",
    "bridge",
    "island",
    "valley",
    "ocean",
    "desert",
    "palace",
    "temple",
    "wisdom",
    "promise",
    "secret",
    "silver",
    "golden",
    "ancient",
    "beautiful",
    "terrible",
    "wonderful",
    "peculiar",
    "magnificent",
    "extraordinary",
    "remarkable",
    "mysterious",
    "pronounce",
    "recognition",
    "condition",
    "attention",
    "expression",
    "impression",
    "conversation",
    "expedition",
];

/// Deterministic sentence/transcript generator.
///
/// # Example
///
/// ```
/// use specasr_audio::TextGenerator;
///
/// let mut gen = TextGenerator::new(42);
/// let a = gen.sentence(12);
/// let mut gen2 = TextGenerator::new(42);
/// assert_eq!(a, gen2.sentence(12));
/// ```
#[derive(Debug, Clone)]
pub struct TextGenerator {
    rng: ChaCha8Rng,
    zipf_weights: Vec<f64>,
    total_weight: f64,
}

impl TextGenerator {
    /// Creates a generator seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        // Zipf-like weights: w_r = 1 / (r + 2)^0.9, flattened slightly so the
        // content-word tail still appears regularly.
        let zipf_weights: Vec<f64> = (0..LEXICON.len())
            .map(|rank| 1.0 / ((rank as f64) + 2.0).powf(0.9))
            .collect();
        let total_weight = zipf_weights.iter().sum();
        TextGenerator {
            rng: ChaCha8Rng::seed_from_u64(seed ^ 0x5eca_5e0a_u64),
            zipf_weights,
            total_weight,
        }
    }

    /// Samples a single word from the Zipf-like lexicon distribution.
    pub fn word(&mut self) -> &'static str {
        let mut target = self.rng.gen::<f64>() * self.total_weight;
        for (rank, weight) in self.zipf_weights.iter().enumerate() {
            target -= weight;
            if target <= 0.0 {
                return LEXICON[rank];
            }
        }
        LEXICON[LEXICON.len() - 1]
    }

    /// Generates a sentence of exactly `word_count` words.
    ///
    /// Consecutive duplicate words are avoided, mirroring natural text where
    /// immediate repetitions are rare.
    pub fn sentence(&mut self, word_count: usize) -> String {
        let mut words: Vec<&'static str> = Vec::with_capacity(word_count);
        while words.len() < word_count {
            let candidate = self.word();
            if words.last() == Some(&candidate) {
                continue;
            }
            words.push(candidate);
        }
        words.join(" ")
    }

    /// Generates a transcript whose length is sampled uniformly from
    /// `min_words..=max_words`.
    ///
    /// # Panics
    ///
    /// Panics if `min_words == 0` or `min_words > max_words`.
    pub fn transcript(&mut self, min_words: usize, max_words: usize) -> String {
        assert!(min_words > 0, "transcripts must contain at least one word");
        assert!(
            min_words <= max_words,
            "min_words must not exceed max_words"
        );
        let count = self.rng.gen_range(min_words..=max_words);
        self.sentence(count)
    }

    /// Generates `count` independent training lines, useful for building a
    /// tokenizer vocabulary over the same lexicon as the evaluation corpus.
    pub fn corpus_lines(&mut self, count: usize, words_per_line: usize) -> Vec<String> {
        (0..count).map(|_| self.sentence(words_per_line)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = TextGenerator::new(123);
        let mut b = TextGenerator::new(123);
        for _ in 0..10 {
            assert_eq!(a.sentence(9), b.sentence(9));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = TextGenerator::new(1);
        let mut b = TextGenerator::new(2);
        let sa: Vec<String> = (0..5).map(|_| a.sentence(15)).collect();
        let sb: Vec<String> = (0..5).map(|_| b.sentence(15)).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn sentence_has_requested_word_count() {
        let mut gen = TextGenerator::new(7);
        for n in [1usize, 2, 5, 20, 40] {
            assert_eq!(gen.sentence(n).split_whitespace().count(), n);
        }
    }

    #[test]
    fn no_immediate_repetition() {
        let mut gen = TextGenerator::new(99);
        let sentence = gen.sentence(200);
        let words: Vec<&str> = sentence.split_whitespace().collect();
        for pair in words.windows(2) {
            assert_ne!(pair[0], pair[1]);
        }
    }

    #[test]
    fn frequency_distribution_is_zipf_like() {
        let mut gen = TextGenerator::new(5);
        let mut the_count = 0usize;
        let mut rare_count = 0usize;
        let rare_word = LEXICON[LEXICON.len() - 1];
        for _ in 0..5_000 {
            let w = gen.word();
            if w == "the" {
                the_count += 1;
            }
            if w == rare_word {
                rare_count += 1;
            }
        }
        assert!(
            the_count > rare_count * 3,
            "head word ({the_count}) should dominate tail word ({rare_count})"
        );
    }

    #[test]
    fn transcript_length_is_in_range() {
        let mut gen = TextGenerator::new(11);
        for _ in 0..50 {
            let t = gen.transcript(5, 25);
            let n = t.split_whitespace().count();
            assert!((5..=25).contains(&n));
        }
    }

    #[test]
    #[should_panic(expected = "at least one word")]
    fn zero_length_transcript_panics() {
        TextGenerator::new(0).transcript(0, 3);
    }

    #[test]
    fn lexicon_has_no_duplicates() {
        let set: HashSet<&str> = LEXICON.iter().copied().collect();
        assert_eq!(set.len(), LEXICON.len());
    }

    #[test]
    fn corpus_lines_count_matches() {
        let mut gen = TextGenerator::new(3);
        let lines = gen.corpus_lines(17, 8);
        assert_eq!(lines.len(), 17);
        assert!(lines.iter().all(|l| l.split_whitespace().count() == 8));
    }
}
