//! Sampling strategies (mirrors `proptest::sample`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A strategy choosing uniformly among the given values.
pub fn select<T: Clone>(values: Vec<T>) -> Select<T> {
    assert!(!values.is_empty(), "select requires at least one value");
    Select { values }
}

/// The strategy returned by [`select`].
pub struct Select<T> {
    values: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let index = rng.next_u64() as usize % self.values.len();
        self.values[index].clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn select_covers_all_choices() {
        let mut rng = TestRng::for_test("select_covers_all_choices");
        let strategy = select(vec!['a', 'b', 'c']);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..200 {
            seen.insert(strategy.generate(&mut rng));
        }
        assert_eq!(seen.len(), 3);
    }
}
