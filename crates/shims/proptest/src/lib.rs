//! Offline stand-in for `proptest`, vendored because this build environment
//! has no crates.io access.
//!
//! It keeps the macro surface the workspace's property tests are written in —
//! `proptest! { #[test] fn name(x in strategy) { ... } }`, `prop_assert!`,
//! `prop_assert_eq!`, `any::<T>()`, ranges as strategies, `prop_map`,
//! `proptest::collection::vec`, and `prop::sample::select` — but replaces
//! proptest's shrinking engine with a plain deterministic random-case runner:
//! each test draws `ProptestConfig::cases` inputs from a generator seeded by
//! the test name, so failures are reproducible run to run.  No shrinking is
//! performed; the failing input is printed instead.

pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

/// The prelude, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

use strategy::Strategy;
use test_runner::TestRng;

/// A strategy producing any value of `T` (mirrors `proptest::arbitrary::any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// The strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Types [`any`] can produce.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($ty:ty),*) => {
        $(
            impl Arbitrary for $ty {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $ty
                }
            }
        )*
    };
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64() * 2e6 - 1e6
    }
}

/// Runs `cases` deterministic test cases drawn from the strategies bound in
/// the macro body.  This is the machinery behind the [`proptest!`] macro; it
/// is public so the macro can expand to it from other crates.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($items:tt)*) => {
        $crate::__proptest_items!({ $config } $($items)*);
    };
    ($($items:tt)*) => {
        $crate::__proptest_items!({ $crate::test_runner::ProptestConfig::default() } $($items)*);
    };
}

/// Internal expansion helper for [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ({ $config:expr }) => {};
    ({ $config:expr }
     $(#[$meta:meta])*
     fn $name:ident ( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(error) = outcome {
                    panic!(
                        "proptest case {}/{} of `{}` failed: {}",
                        case + 1,
                        config.cases,
                        stringify!($name),
                        error
                    );
                }
            }
        }
        $crate::__proptest_items!({ $config } $($rest)*);
    };
}

/// Asserts a condition inside a [`proptest!`] body, failing the case (not the
/// whole process) on violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` != `{:?}`: {}",
            left,
            right,
            format!($($fmt)+)
        );
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
}
