//! Collection strategies (mirrors `proptest::collection`).

use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A strategy producing `Vec`s whose length is drawn from `size` and whose
/// elements are drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(
        size.start < size.end,
        "empty size range for collection::vec"
    );
    VecStrategy { element, size }
}

/// The strategy returned by [`vec()`].
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = self.size.end - self.size.start;
        let len = self.size.start + (rng.next_u64() as usize % span);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vectors_respect_the_size_range() {
        let mut rng = TestRng::for_test("vectors_respect_the_size_range");
        let strategy = vec(0u32..5, 1..4);
        for _ in 0..200 {
            let v = strategy.generate(&mut rng);
            assert!((1..4).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }
}
