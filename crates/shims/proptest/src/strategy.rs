//! The [`Strategy`] trait and the combinators the workspace uses.

use std::ops::Range;

use crate::test_runner::TestRng;

/// A generator of test-case values.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `map`.
    fn prop_map<O, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map {
            strategy: self,
            map,
        }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    strategy: S,
    map: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.map)(self.strategy.generate(rng))
    }
}

macro_rules! impl_int_range_strategy {
    ($($ty:ty),*) => {
        $(
            impl Strategy for Range<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u128) - (self.start as u128);
                    self.start + (rng.next_u64() as u128 % span) as $ty
                }
            }
        )*
    };
}

impl_int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range_strategy {
    ($($ty:ty),*) => {
        $(
            impl Strategy for Range<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $ty
                }
            }
        )*
    };
}

impl_signed_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() as f32 * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+)),+) => {
        $(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*
    };
}

impl_tuple_strategy!((A, B), (A, B, C), (A, B, C, D));

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::for_test("ranges_respect_bounds");
        for _ in 0..500 {
            let v = (3u32..9).generate(&mut rng);
            assert!((3..9).contains(&v));
            let f = (-2.0f64..3.0).generate(&mut rng);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn prop_map_applies_the_function() {
        let mut rng = TestRng::for_test("prop_map_applies_the_function");
        let strategy = (0u32..10).prop_map(|v| v * 2);
        for _ in 0..100 {
            assert_eq!(strategy.generate(&mut rng) % 2, 0);
        }
    }

    #[test]
    fn tuples_generate_componentwise() {
        let mut rng = TestRng::for_test("tuples_generate_componentwise");
        let (a, b) = ((0u16..4), (10usize..12)).generate(&mut rng);
        assert!(a < 4);
        assert!((10..12).contains(&b));
    }
}
