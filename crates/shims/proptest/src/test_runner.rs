//! Deterministic case runner: configuration, RNG, and case-failure error.

use std::fmt;

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Number of cases each property test runs by default.
pub const DEFAULT_CASES: u32 = 64;

/// Runner configuration (mirrors `proptest::test_runner::ProptestConfig`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to execute.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: DEFAULT_CASES,
        }
    }
}

/// A failed test case (produced by `prop_assert!`-style macros).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// The deterministic RNG strategies draw from.  Seeded from the test name so
/// every test has an independent, reproducible stream.
#[derive(Debug, Clone)]
pub struct TestRng {
    rng: ChaCha8Rng,
}

impl TestRng {
    /// A generator seeded from the given test name.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the name: stable across platforms and runs.
        let mut hash = 0xcbf29ce484222325u64;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x100000001b3);
        }
        TestRng {
            rng: ChaCha8Rng::seed_from_u64(hash),
        }
    }

    /// The next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// A uniform draw from `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        self.rng.gen::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_rng_is_deterministic_per_name() {
        let mut a = TestRng::for_test("alpha");
        let mut b = TestRng::for_test("alpha");
        let mut c = TestRng::for_test("beta");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn default_config_runs_a_meaningful_number_of_cases() {
        assert!(ProptestConfig::default().cases >= 32);
        assert_eq!(ProptestConfig::with_cases(12).cases, 12);
    }
}
