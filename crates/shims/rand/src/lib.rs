//! Offline stand-in for `rand`, vendored because this build environment has
//! no crates.io access.  It provides exactly the trait surface the workspace
//! uses — [`Rng::gen`], [`Rng::gen_range`], and [`SeedableRng::seed_from_u64`]
//! — with deterministic, platform-independent behaviour.  The statistical
//! quality comes from the generator implementation supplied by the paired
//! `rand_chacha` stand-in (an xoshiro256** core), which is more than adequate
//! for the synthetic-corpus sampling this workspace does.

use std::ops::RangeInclusive;

/// A deterministic pseudo-random generator.
pub trait Rng {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// A uniformly distributed value of `T` (for `f64`: in `[0, 1)`).
    fn gen<T: Sample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniformly distributed value in the inclusive range.
    fn gen_range<T: SampleUniform>(&mut self, range: RangeInclusive<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }
}

/// Construction of a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that [`Rng::gen`] can produce.
pub trait Sample: Sized {
    /// Draws one value from `rng`.
    fn sample<R: Rng>(rng: &mut R) -> Self;
}

impl Sample for f64 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits → [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Sample for u64 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Sample for bool {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types that [`Rng::gen_range`] can produce.
pub trait SampleUniform: Sized {
    /// Draws one value uniformly from the inclusive range.
    fn sample_range<R: Rng>(rng: &mut R, range: RangeInclusive<Self>) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($ty:ty),*) => {
        $(
            impl SampleUniform for $ty {
                fn sample_range<R: Rng>(rng: &mut R, range: RangeInclusive<Self>) -> Self {
                    let (lo, hi) = (*range.start(), *range.end());
                    assert!(lo <= hi, "cannot sample an empty range");
                    let span = (hi as u128) - (lo as u128) + 1;
                    lo + (rng.next_u64() as u128 % span) as $ty
                }
            }
        )*
    };
}

impl_sample_uniform!(usize, u64, u32, u16, u8);

#[cfg(test)]
mod tests {
    use super::*;

    struct CountingRng(u64);

    impl Rng for CountingRng {
        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn floats_stay_in_the_unit_interval() {
        let mut rng = CountingRng(3);
        for _ in 0..1000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn ranges_are_inclusive_and_bounded() {
        let mut rng = CountingRng(7);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..2000 {
            let v = rng.gen_range(2usize..=5);
            assert!((2..=5).contains(&v));
            seen_lo |= v == 2;
            seen_hi |= v == 5;
        }
        assert!(seen_lo && seen_hi);
    }
}
