//! Offline stand-in for `serde`, vendored because this build environment has
//! no network access to crates.io.
//!
//! It keeps the public *spelling* the workspace relies on — `use serde::
//! {Serialize, Deserialize};` plus `#[derive(Serialize, Deserialize)]` — while
//! swapping serde's visitor architecture for a much smaller JSON-value data
//! model: serialisable types convert to and from [`Value`], and the sibling
//! `serde_json` stand-in renders/parses that value.  This is entirely
//! sufficient for the workspace, whose only serialisation consumer is the
//! experiment-record JSON written by `specasr-metrics`.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::hash::Hash;

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value: the interchange format of this serde stand-in.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number (stored as `f64`).
    Number(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object value.
    pub fn field(&self, name: &str) -> Result<&Value, Error> {
        match self {
            Value::Object(entries) => entries
                .iter()
                .find(|(key, _)| key == name)
                .map(|(_, value)| value)
                .ok_or_else(|| Error::custom(format!("missing field `{name}`"))),
            other => Err(Error::custom(format!(
                "expected an object with field `{name}`, found {}",
                other.kind()
            ))),
        }
    }

    /// Element of an array value.
    pub fn element(&self, index: usize) -> Result<&Value, Error> {
        match self {
            Value::Array(items) => items
                .get(index)
                .ok_or_else(|| Error::custom(format!("missing array element {index}"))),
            other => Err(Error::custom(format!(
                "expected an array, found {}",
                other.kind()
            ))),
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "a boolean",
            Value::Number(_) => "a number",
            Value::String(_) => "a string",
            Value::Array(_) => "an array",
            Value::Object(_) => "an object",
        }
    }

    fn as_number(&self) -> Result<f64, Error> {
        match self {
            Value::Number(n) => Ok(*n),
            other => Err(Error::custom(format!(
                "expected a number, found {}",
                other.kind()
            ))),
        }
    }
}

/// Serialisation/deserialisation error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Creates an error with a custom message.
    pub fn custom(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// A type that can be converted to a [`Value`].
pub trait Serialize {
    /// Converts `self` into the interchange value.
    fn to_value(&self) -> Value;
}

/// A type that can be reconstructed from a [`Value`].
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from the interchange value.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Primitive implementations
// ---------------------------------------------------------------------------

macro_rules! impl_for_integers {
    ($($ty:ty),*) => {
        $(
            impl Serialize for $ty {
                fn to_value(&self) -> Value {
                    Value::Number(*self as f64)
                }
            }
            impl Deserialize for $ty {
                fn from_value(value: &Value) -> Result<Self, Error> {
                    let number = value.as_number()?;
                    let cast = number as $ty;
                    if (cast as f64 - number).abs() > 0.5 {
                        return Err(Error::custom(format!(
                            "number {number} does not fit in {}",
                            stringify!($ty)
                        )));
                    }
                    Ok(cast)
                }
            }
        )*
    };
}

impl_for_integers!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value.as_number()
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.as_number()? as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!(
                "expected a boolean, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::String(s) => Ok(s.clone()),
            other => Err(Error::custom(format!(
                "expected a string, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for &str {
    fn to_value(&self) -> Value {
        Value::String((*self).to_owned())
    }
}

impl Deserialize for &'static str {
    fn from_value(value: &Value) -> Result<Self, Error> {
        // A stand-in compromise: `&'static str` fields (used for fixed table
        // labels) round-trip by leaking the parsed string, which is fine for
        // the short-lived CLI tools in this workspace.
        match value {
            Value::String(s) => Ok(Box::leak(s.clone().into_boxed_str())),
            other => Err(Error::custom(format!(
                "expected a string, found {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(inner) => inner.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::custom(format!(
                "expected an array, found {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok((
            A::from_value(value.element(0)?)?,
            B::from_value(value.element(1)?)?,
        ))
    }
}

fn key_to_string<K: Serialize>(key: &K) -> Result<String, Error> {
    match key.to_value() {
        Value::String(s) => Ok(s),
        Value::Number(n) => Ok(format!("{n}")),
        other => Err(Error::custom(format!(
            "map keys must serialise to strings or numbers, found {}",
            other.kind()
        ))),
    }
}

impl<K: Serialize + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(key, value)| {
                    (
                        key_to_string(key).expect("BTreeMap keys serialise to strings"),
                        value.to_value(),
                    )
                })
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Object(entries) => entries
                .iter()
                .map(|(key, value)| {
                    let key = K::from_value(&Value::String(key.clone()))?;
                    Ok((key, V::from_value(value)?))
                })
                .collect(),
            other => Err(Error::custom(format!(
                "expected an object, found {}",
                other.kind()
            ))),
        }
    }
}

impl<K: Serialize + Eq + Hash, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(key, value)| {
                (
                    key_to_string(key).expect("HashMap keys serialise to strings"),
                    value.to_value(),
                )
            })
            .collect();
        // Sort for a stable rendering, mirroring serde_json's map ordering
        // guarantees closely enough for diffable output.
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<K: Deserialize + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Object(entries) => entries
                .iter()
                .map(|(key, value)| {
                    let key = K::from_value(&Value::String(key.clone()))?;
                    Ok((key, V::from_value(value)?))
                })
                .collect(),
            other => Err(Error::custom(format!(
                "expected an object, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(
            Vec::<u32>::from_value(&vec![1u32, 2].to_value()).unwrap(),
            vec![1, 2]
        );
    }

    #[test]
    fn object_field_lookup_errors_are_descriptive() {
        let object = Value::Object(vec![("a".to_string(), Value::Number(1.0))]);
        assert!(object.field("a").is_ok());
        let err = object.field("b").unwrap_err();
        assert!(err.to_string().contains("missing field `b`"));
    }

    #[test]
    fn maps_serialise_to_objects() {
        let mut map = BTreeMap::new();
        map.insert("x".to_string(), 1.0f64);
        let value = map.to_value();
        assert_eq!(value.field("x").unwrap(), &Value::Number(1.0));
        let back = BTreeMap::<String, f64>::from_value(&value).unwrap();
        assert_eq!(back, map);
    }
}
