//! Offline stand-in for `rand_chacha`.  The workspace only needs *a*
//! high-quality deterministic generator behind the `ChaCha8Rng` name (streams
//! are never required to match the real ChaCha output); this implementation
//! uses xoshiro256** seeded through SplitMix64, which is deterministic across
//! platforms and statistically strong for simulation workloads.

use rand::{Rng, SeedableRng};

/// Deterministic pseudo-random generator (xoshiro256** core).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaCha8Rng {
    state: [u64; 4],
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion, the recommended xoshiro seeding procedure.
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        };
        ChaCha8Rng {
            state: [next(), next(), next(), next()],
        }
    }
}

impl Rng for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        let [mut s0, mut s1, mut s2, mut s3] = self.state;
        let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s1 << 17;
        s2 ^= s0;
        s3 ^= s1;
        s1 ^= s2;
        s0 ^= s3;
        s2 ^= t;
        s3 = s3.rotate_left(45);
        self.state = [s0, s1, s2, s3];
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn unit_floats_look_uniform() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }
}
