//! Offline stand-in for `criterion`: keeps the `criterion_group!` /
//! `criterion_main!` / `BenchmarkGroup` API the workspace's benches are
//! written against, but replaces criterion's statistical engine with a plain
//! warm-up + timed-iterations loop that reports the mean wall-clock time per
//! iteration.  Good enough to eyeball relative implementation throughput;
//! not a substitute for real criterion's confidence intervals.

use std::fmt;
use std::time::{Duration, Instant};

/// Top-level benchmark harness handle.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\nbenchmark group: {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 10,
        }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark collects.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(1);
        self
    }

    /// Runs one benchmark.  The id may be a `BenchmarkId` or a plain
    /// string, mirroring criterion's `IntoBenchmarkId` flexibility.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: Vec::new(),
            iterations_per_sample: 1,
            sample_budget: self.sample_size,
        };
        routine(&mut bencher);
        bencher.report(&self.name, &id);
        self
    }

    /// Runs one benchmark with an explicit input.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |bencher| routine(bencher, input))
    }

    /// Finishes the group (prints nothing extra in this stand-in).
    pub fn finish(&mut self) {}
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        BenchmarkId {
            label: label.to_owned(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

impl BenchmarkId {
    /// Builds an id from anything displayable (mirrors criterion's API).
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }

    /// Builds an id from a function name and a parameter.
    pub fn new<P: fmt::Display>(function: impl Into<String>, parameter: P) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function.into(), parameter),
        }
    }
}

/// Collects timed iterations of one routine.
pub struct Bencher {
    samples: Vec<Duration>,
    iterations_per_sample: u64,
    sample_budget: usize,
}

impl Bencher {
    /// Times repeated executions of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up and per-sample iteration sizing: aim for samples of at
        // least ~1 ms so Instant resolution noise stays negligible.
        let warmup = Instant::now();
        std::hint::black_box(routine());
        let once = warmup.elapsed();
        let per_sample = if once < Duration::from_micros(50) {
            (Duration::from_millis(1).as_nanos() / once.as_nanos().max(1)) as u64
        } else {
            1
        }
        .max(1);
        self.iterations_per_sample = per_sample;
        for _ in 0..self.sample_budget {
            let start = Instant::now();
            for _ in 0..per_sample {
                std::hint::black_box(routine());
            }
            self.samples.push(start.elapsed());
        }
    }

    fn report(&self, group: &str, id: &BenchmarkId) {
        if self.samples.is_empty() {
            println!("  {group}/{}: no samples collected", id.label);
            return;
        }
        let total: Duration = self.samples.iter().sum();
        let iterations = self.iterations_per_sample * self.samples.len() as u64;
        let mean_ns = total.as_nanos() as f64 / iterations as f64;
        println!(
            "  {group}/{}: mean {:.3} µs/iter over {} iterations",
            id.label,
            mean_ns / 1000.0,
            iterations
        );
    }
}

/// Groups benchmark functions under one callable (mirrors criterion's macro).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($function:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($function(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups (mirrors criterion's macro).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_the_routine() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("smoke");
        group.sample_size(2);
        let mut runs = 0u64;
        group.bench_function(BenchmarkId::from_parameter("count"), |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        group.finish();
        assert!(runs > 0);
    }
}
