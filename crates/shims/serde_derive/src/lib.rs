//! Derive macros for the offline `serde` stand-in.
//!
//! The macros parse the item declaration directly from the proc-macro token
//! stream (no `syn`/`quote`, which are unavailable offline) and emit
//! implementations of the stand-in's `Serialize`/`Deserialize` traits in
//! terms of its JSON-like `Value`.  Supported shapes cover everything the
//! workspace derives on: named-field structs, tuple (newtype) structs, unit
//! enums, and enums with tuple variants.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives the stand-in `Serialize` trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    item.serialize_impl()
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derives the stand-in `Deserialize` trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    item.deserialize_impl()
        .parse()
        .expect("generated Deserialize impl parses")
}

struct Item {
    name: String,
    kind: Kind,
}

enum Kind {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    fields: usize,
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0usize;
    // Skip outer attributes (`#[...]`) and visibility (`pub`, `pub(...)`).
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => break,
        }
    }
    let keyword = ident_text(&tokens, i);
    i += 1;
    let name = ident_text(&tokens, i);
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("the serde stand-in derive does not support generic types ({name})");
    }
    let kind = match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::TupleStruct(count_tuple_fields(g.stream()))
            }
            _ => Kind::UnitStruct,
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g.stream()))
            }
            _ => panic!("enum {name} has no body"),
        },
        other => panic!("cannot derive serde traits for `{other}` items"),
    };
    Item { name, kind }
}

fn ident_text(tokens: &[TokenTree], index: usize) -> String {
    match tokens.get(index) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected an identifier, found {other:?}"),
    }
}

/// Parses `name: Type, ...` bodies, returning the field names in order.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        // Skip field attributes and visibility.
        loop {
            match tokens.get(i) {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    i += 1;
                    if let Some(TokenTree::Group(g)) = tokens.get(i) {
                        if g.delimiter() == Delimiter::Parenthesis {
                            i += 1;
                        }
                    }
                }
                _ => break,
            }
        }
        if i >= tokens.len() {
            break;
        }
        fields.push(ident_text(&tokens, i));
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("expected `:` after field name, found {other:?}"),
        }
        // Skip the type: consume until a comma at angle-bracket depth zero.
        let mut angle_depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

/// Counts the fields of a tuple-struct/tuple-variant body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut fields = 1usize;
    let mut angle_depth = 0i32;
    for (index, token) in tokens.iter().enumerate() {
        match token {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p)
                if p.as_char() == ',' && angle_depth == 0 && index + 1 < tokens.len() =>
            {
                fields += 1;
            }
            _ => {}
        }
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        // Skip variant attributes (doc comments).
        while matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            i += 2;
        }
        if i >= tokens.len() {
            break;
        }
        let name = ident_text(&tokens, i);
        i += 1;
        let mut fields = 0usize;
        if let Some(TokenTree::Group(g)) = tokens.get(i) {
            match g.delimiter() {
                Delimiter::Parenthesis => {
                    fields = count_tuple_fields(g.stream());
                    i += 1;
                }
                Delimiter::Brace => {
                    panic!("struct-style enum variants are not supported by the serde stand-in")
                }
                _ => {}
            }
        }
        variants.push(Variant { name, fields });
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    variants
}

impl Item {
    fn serialize_impl(&self) -> String {
        let name = &self.name;
        let body = match &self.kind {
            Kind::NamedStruct(fields) => {
                let pushes: String = fields
                    .iter()
                    .map(|f| {
                        format!(
                            "entries.push((\"{f}\".to_string(), \
                             ::serde::Serialize::to_value(&self.{f})));"
                        )
                    })
                    .collect();
                format!(
                    "let mut entries: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                     ::std::vec::Vec::new(); {pushes} ::serde::Value::Object(entries)"
                )
            }
            Kind::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
            Kind::TupleStruct(n) => {
                let items: Vec<String> = (0..*n)
                    .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                    .collect();
                format!("::serde::Value::Array(vec![{}])", items.join(", "))
            }
            Kind::UnitStruct => "::serde::Value::Null".to_string(),
            Kind::Enum(variants) => {
                let arms: String = variants
                    .iter()
                    .map(|v| {
                        let vname = &v.name;
                        if v.fields == 0 {
                            format!(
                                "{name}::{vname} => \
                                 ::serde::Value::String(\"{vname}\".to_string()),"
                            )
                        } else {
                            let binds: Vec<String> =
                                (0..v.fields).map(|k| format!("f{k}")).collect();
                            let inner = if v.fields == 1 {
                                "::serde::Serialize::to_value(f0)".to_string()
                            } else {
                                let items: Vec<String> = binds
                                    .iter()
                                    .map(|b| format!("::serde::Serialize::to_value({b})"))
                                    .collect();
                                format!("::serde::Value::Array(vec![{}])", items.join(", "))
                            };
                            format!(
                                "{name}::{vname}({}) => ::serde::Value::Object(vec![(\
                                 \"{vname}\".to_string(), {inner})]),",
                                binds.join(", ")
                            )
                        }
                    })
                    .collect();
                format!("match self {{ {arms} }}")
            }
        };
        format!(
            "impl ::serde::Serialize for {name} {{ \
             fn to_value(&self) -> ::serde::Value {{ {body} }} }}"
        )
    }

    fn deserialize_impl(&self) -> String {
        let name = &self.name;
        let body = match &self.kind {
            Kind::NamedStruct(fields) => {
                let inits: String = fields
                    .iter()
                    .map(|f| {
                        format!("{f}: ::serde::Deserialize::from_value(value.field(\"{f}\")?)?,")
                    })
                    .collect();
                format!("::std::result::Result::Ok({name} {{ {inits} }})")
            }
            Kind::TupleStruct(1) => format!(
                "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(value)?))"
            ),
            Kind::TupleStruct(n) => {
                let items: Vec<String> = (0..*n)
                    .map(|k| format!("::serde::Deserialize::from_value(value.element({k})?)?"))
                    .collect();
                format!("::std::result::Result::Ok({name}({}))", items.join(", "))
            }
            Kind::UnitStruct => format!("::std::result::Result::Ok({name})"),
            Kind::Enum(variants) => {
                let unit_arms: String = variants
                    .iter()
                    .filter(|v| v.fields == 0)
                    .map(|v| {
                        let vname = &v.name;
                        format!("\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),")
                    })
                    .collect();
                let tagged_arms: String = variants
                    .iter()
                    .filter(|v| v.fields > 0)
                    .map(|v| {
                        let vname = &v.name;
                        let inner = if v.fields == 1 {
                            format!("{name}::{vname}(::serde::Deserialize::from_value(inner)?)")
                        } else {
                            let items: Vec<String> = (0..v.fields)
                                .map(|k| {
                                    format!(
                                        "::serde::Deserialize::from_value(inner.element({k})?)?"
                                    )
                                })
                                .collect();
                            format!("{name}::{vname}({})", items.join(", "))
                        };
                        format!("\"{vname}\" => ::std::result::Result::Ok({inner}),")
                    })
                    .collect();
                let object_arm = if tagged_arms.is_empty() {
                    String::new()
                } else {
                    format!(
                        "::serde::Value::Object(entries) if entries.len() == 1 => {{ \
                           let (tag, inner) = &entries[0]; \
                           match tag.as_str() {{ \
                             {tagged_arms} \
                             other => ::std::result::Result::Err(::serde::Error::custom(format!(\
                               \"unknown {name} variant {{other}}\"))), \
                           }} \
                         }},"
                    )
                };
                format!(
                    "match value {{ \
                       ::serde::Value::String(tag) => match tag.as_str() {{ \
                         {unit_arms} \
                         other => ::std::result::Result::Err(::serde::Error::custom(format!(\
                           \"unknown {name} variant {{other}}\"))), \
                       }}, \
                       {object_arm} \
                       _ => ::std::result::Result::Err(::serde::Error::custom(\
                         \"expected an enum tag for {name}\")), \
                     }}"
                )
            }
        };
        format!(
            "impl ::serde::Deserialize for {name} {{ \
             fn from_value(value: &::serde::Value) \
             -> ::std::result::Result<Self, ::serde::Error> {{ {body} }} }}"
        )
    }
}
