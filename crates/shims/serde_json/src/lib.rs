//! Offline stand-in for `serde_json`, pairing with the vendored `serde`
//! stand-in: it pretty-prints and parses the stand-in's [`Value`] data model.
//! Numbers are emitted with Rust's shortest-round-trip `f64` formatting, so
//! `to_string_pretty` → `from_str` round-trips exactly.

use serde::{Deserialize, Serialize};
pub use serde::{Error, Value};

/// Serialises `value` as compact JSON.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), None, 0, &mut out);
    Ok(out)
}

/// Serialises `value` as pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), Some(2), 0, &mut out);
    Ok(out)
}

/// Parses a JSON document into `T`.
pub fn from_str<T: Deserialize>(input: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_whitespace();
    let value = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(Error::custom("trailing characters after JSON document"));
    }
    T::from_value(&value)
}

fn write_value(value: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(*n, out),
        Value::String(s) => write_string(s, out),
        Value::Array(items) => write_sequence(
            items.iter(),
            indent,
            depth,
            out,
            '[',
            ']',
            |item, depth, out| {
                write_value(item, indent, depth, out);
            },
        ),
        Value::Object(entries) => write_sequence(
            entries.iter(),
            indent,
            depth,
            out,
            '{',
            '}',
            |(key, value), depth, out| {
                write_string(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(value, indent, depth, out);
            },
        ),
    }
}

fn write_sequence<I, F>(
    items: I,
    indent: Option<usize>,
    depth: usize,
    out: &mut String,
    open: char,
    close: char,
    mut write_item: F,
) where
    I: ExactSizeIterator,
    F: FnMut(I::Item, usize, &mut String),
{
    out.push(open);
    let count = items.len();
    if count == 0 {
        out.push(close);
        return;
    }
    for (index, item) in items.enumerate() {
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (depth + 1)));
        }
        write_item(item, depth + 1, out);
        if index + 1 < count {
            out.push(',');
        }
    }
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
    out.push(close);
}

fn write_number(n: f64, out: &mut String) {
    if n.is_finite() {
        if n == n.trunc() && n.abs() < 1e15 {
            // Integral values print without a fractional part, like serde_json.
            out.push_str(&format!("{}", n as i64));
        } else {
            out.push_str(&format!("{n}"));
        }
    } else {
        // JSON has no NaN/Inf; emit null like serde_json's lossy behaviour.
        out.push_str("null");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_whitespace(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\n' || b == b'\t' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                byte as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_whitespace();
        match self.peek() {
            Some(b'n') => self.parse_literal("null", Value::Null),
            Some(b't') => self.parse_literal("true", Value::Bool(true)),
            Some(b'f') => self.parse_literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(_) => self.parse_number(),
            None => Err(Error::custom("unexpected end of JSON document")),
        }
    }

    fn parse_literal(&mut self, literal: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            Ok(value)
        } else {
            Err(Error::custom(format!(
                "invalid literal at byte {}",
                self.pos
            )))
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid UTF-8 in number"))?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| Error::custom(format!("invalid number `{text}`")))
    }

    /// Parses the four hex digits of a `\u` escape (the `\u` itself already
    /// consumed) and returns the code unit.
    fn parse_hex_escape(&mut self) -> Result<u32, Error> {
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| Error::custom("truncated \\u escape"))?;
        self.pos += 4;
        u32::from_str_radix(
            std::str::from_utf8(hex).map_err(|_| Error::custom("invalid \\u escape"))?,
            16,
        )
        .map_err(|_| Error::custom("invalid \\u escape"))
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(Error::custom("unterminated string"));
            };
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let Some(escape) = self.peek() else {
                        return Err(Error::custom("unterminated escape"));
                    };
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let code = self.parse_hex_escape()?;
                            // Non-BMP characters arrive as UTF-16 surrogate
                            // pairs (`😀`); combine them.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                if self.peek() != Some(b'\\') {
                                    return Err(Error::custom("unpaired lead surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(Error::custom("unpaired lead surrogate"));
                                }
                                self.pos += 1;
                                let low = self.parse_hex_escape()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(Error::custom("invalid trail surrogate"));
                                }
                                let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                                    .ok_or_else(|| Error::custom("invalid surrogate pair"))?
                            } else {
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("invalid \\u code point"))?
                            };
                            out.push(c);
                        }
                        other => {
                            return Err(Error::custom(format!(
                                "unknown escape `\\{}`",
                                other as char
                            )))
                        }
                    }
                }
                _ => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::custom("invalid UTF-8 in string"))?;
                    let c = rest.chars().next().expect("non-empty remainder");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::custom("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(Error::custom("expected `,` or `}` in object")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_round_trip_through_text() {
        let value = Value::Object(vec![
            (
                "name".to_string(),
                Value::String("spec \"asr\"".to_string()),
            ),
            ("speedup".to_string(), Value::Number(3.12)),
            ("count".to_string(), Value::Number(24.0)),
            (
                "rows".to_string(),
                Value::Array(vec![Value::Bool(true), Value::Null]),
            ),
        ]);
        let pretty = to_string_pretty(&value).unwrap();
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(back, value);
        let compact = to_string(&value).unwrap();
        assert!(!compact.contains('\n'));
        let back: Value = from_str(&compact).unwrap();
        assert_eq!(back, value);
    }

    #[test]
    fn pretty_output_is_indented() {
        let value = Value::Object(vec![("a".to_string(), Value::Number(1.0))]);
        assert_eq!(to_string_pretty(&value).unwrap(), "{\n  \"a\": 1\n}");
    }

    #[test]
    fn surrogate_pair_escapes_decode() {
        let value: Value = from_str("\"\\ud83d\\ude00 ok\"").unwrap();
        assert_eq!(value, Value::String("😀 ok".to_string()));
        assert!(from_str::<Value>("\"\\ud83d\"").is_err());
        assert!(from_str::<Value>("\"\\ud83d\\u0041\"").is_err());
    }

    #[test]
    fn shortest_float_formatting_round_trips() {
        for n in [231.06, 0.1, 1.0 / 3.0, -7.25e-3] {
            let text = to_string(&Value::Number(n)).unwrap();
            let back: Value = from_str(&text).unwrap();
            assert_eq!(back, Value::Number(n));
        }
    }
}
