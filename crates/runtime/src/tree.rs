//! The draft token tree.
//!
//! A token tree represents every candidate continuation the draft model has
//! proposed for the current decoding position.  The root of the tree is the
//! (implicit) committed prefix; each node holds one draft token, a link to its
//! parent, the draft model's normalised probability for that token, and an
//! origin tag recording *why* the node exists (main trunk, sparse side branch,
//! or recycled from a previously rejected draft).  Origin tags are what the
//! draft-sequence-recycling statistics in Fig. 12 are computed from.

use serde::{Deserialize, Serialize};
use specasr_tokenizer::TokenId;

/// Index of a node within a [`TokenTree`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[serde(transparent)]
pub struct NodeId(usize);

impl NodeId {
    /// The raw index of the node in insertion order.
    pub const fn index(self) -> usize {
        self.0
    }

    /// Builds a node id from a flattened insertion index.
    ///
    /// Ids are only meaningful for the tree they were flattened from; all
    /// accessors validate the range at use time.
    pub const fn from_index(index: usize) -> Self {
        NodeId(index)
    }
}

/// Why a node was added to the tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeOrigin {
    /// Part of the single-sequence "main trunk" produced by greedy drafting.
    Trunk,
    /// A sparse side branch opened at an uncertain position (top-k expansion).
    Branch,
    /// Reused from a previously generated draft sequence (recycling).
    Recycled,
}

/// One node of the draft token tree.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TreeNode {
    /// The draft token at this node.
    pub token: TokenId,
    /// The parent node; `None` for nodes attached directly to the committed
    /// prefix.
    pub parent: Option<NodeId>,
    /// Normalised draft probability of this token.
    pub probability: f64,
    /// Why this node exists.
    pub origin: NodeOrigin,
    /// Depth of the node: 1 for roots, parent depth + 1 otherwise.
    pub depth: usize,
}

/// A draft token tree rooted at the committed prefix.
///
/// Nodes are stored in insertion order, which is also a valid topological
/// order (parents always precede children); the verification batch and the
/// attention mask rely on this property.
///
/// # Example
///
/// ```
/// use specasr_runtime::{NodeOrigin, TokenTree};
/// use specasr_tokenizer::TokenId;
///
/// let mut tree = TokenTree::new();
/// let root = tree.push_root(TokenId::new(7), 0.9, NodeOrigin::Trunk);
/// let child = tree.push_child(root, TokenId::new(8), 0.7, NodeOrigin::Trunk);
/// assert_eq!(tree.depth(child), 2);
/// assert_eq!(tree.leaves(), vec![child]);
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TokenTree {
    nodes: Vec<TreeNode>,
}

impl TokenTree {
    /// Creates an empty tree.
    pub fn new() -> Self {
        TokenTree::default()
    }

    /// Builds a linear (single-sequence) tree from a token/probability list.
    pub fn from_sequence<I>(tokens: I, origin: NodeOrigin) -> Self
    where
        I: IntoIterator<Item = (TokenId, f64)>,
    {
        let mut tree = TokenTree::new();
        let mut parent: Option<NodeId> = None;
        for (token, probability) in tokens {
            let id = match parent {
                None => tree.push_root(token, probability, origin),
                Some(p) => tree.push_child(p, token, probability, origin),
            };
            parent = Some(id);
        }
        tree
    }

    /// Adds a node attached directly to the committed prefix.
    pub fn push_root(&mut self, token: TokenId, probability: f64, origin: NodeOrigin) -> NodeId {
        self.push_node(None, token, probability, origin)
    }

    /// Adds a child of `parent`.
    ///
    /// # Panics
    ///
    /// Panics if `parent` is not a node of this tree.
    pub fn push_child(
        &mut self,
        parent: NodeId,
        token: TokenId,
        probability: f64,
        origin: NodeOrigin,
    ) -> NodeId {
        assert!(
            parent.index() < self.nodes.len(),
            "parent node does not exist"
        );
        self.push_node(Some(parent), token, probability, origin)
    }

    fn push_node(
        &mut self,
        parent: Option<NodeId>,
        token: TokenId,
        probability: f64,
        origin: NodeOrigin,
    ) -> NodeId {
        let depth = match parent {
            None => 1,
            Some(p) => self.nodes[p.index()].depth + 1,
        };
        let id = NodeId(self.nodes.len());
        self.nodes.push(TreeNode {
            token,
            parent,
            probability,
            origin,
            depth,
        });
        id
    }

    /// Number of nodes in the tree.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` if the tree has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The node with id `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this tree.
    pub fn node(&self, id: NodeId) -> &TreeNode {
        &self.nodes[id.index()]
    }

    /// The node with id `id`, if it exists.
    pub fn get(&self, id: NodeId) -> Option<&TreeNode> {
        self.nodes.get(id.index())
    }

    /// Iterates over `(id, node)` pairs in insertion (topological) order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &TreeNode)> {
        self.nodes.iter().enumerate().map(|(i, n)| (NodeId(i), n))
    }

    /// All node ids in insertion order.
    pub fn node_ids(&self) -> Vec<NodeId> {
        (0..self.nodes.len()).map(NodeId).collect()
    }

    /// Depth of node `id` (1 for roots).
    pub fn depth(&self, id: NodeId) -> usize {
        self.node(id).depth
    }

    /// The children of `id` in insertion order.
    pub fn children(&self, id: NodeId) -> Vec<NodeId> {
        self.iter()
            .filter(|(_, n)| n.parent == Some(id))
            .map(|(i, _)| i)
            .collect()
    }

    /// The ids of nodes with no children.
    pub fn leaves(&self) -> Vec<NodeId> {
        let mut has_child = vec![false; self.nodes.len()];
        for node in &self.nodes {
            if let Some(parent) = node.parent {
                has_child[parent.index()] = true;
            }
        }
        (0..self.nodes.len())
            .filter(|&i| !has_child[i])
            .map(NodeId)
            .collect()
    }

    /// The node ids on the path from the root to `id`, inclusive, in root→leaf
    /// order.
    pub fn path(&self, id: NodeId) -> Vec<NodeId> {
        let mut path = Vec::with_capacity(self.node(id).depth);
        let mut current = Some(id);
        while let Some(node_id) = current {
            path.push(node_id);
            current = self.node(node_id).parent;
        }
        path.reverse();
        path
    }

    /// The draft tokens on the path from the root to `id`, inclusive.
    pub fn path_tokens(&self, id: NodeId) -> Vec<TokenId> {
        self.path(id)
            .into_iter()
            .map(|n| self.node(n).token)
            .collect()
    }

    /// Returns `true` if `ancestor` lies on the path from the root to
    /// `descendant` (a node is its own ancestor).
    pub fn is_ancestor(&self, ancestor: NodeId, descendant: NodeId) -> bool {
        let mut current = Some(descendant);
        while let Some(node_id) = current {
            if node_id == ancestor {
                return true;
            }
            current = self.node(node_id).parent;
        }
        false
    }

    /// Maximum node depth (0 for an empty tree).
    pub fn max_depth(&self) -> usize {
        self.nodes.iter().map(|n| n.depth).max().unwrap_or(0)
    }

    /// Number of nodes with the given origin.
    pub fn count_origin(&self, origin: NodeOrigin) -> usize {
        self.nodes.iter().filter(|n| n.origin == origin).count()
    }

    /// Finds the deepest node whose root path equals `tokens`, if any.
    /// Used by recycling to locate re-usable branches.
    pub fn find_path(&self, tokens: &[TokenId]) -> Option<NodeId> {
        self.iter()
            .filter(|(id, _)| self.path_tokens(*id) == tokens)
            .map(|(id, _)| id)
            .last()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(raw: u32) -> TokenId {
        TokenId::new(raw)
    }

    fn sample_tree() -> (TokenTree, Vec<NodeId>) {
        // prefix -> 1 -> 2 -> 3
        //                \-> 4 -> 5
        let mut tree = TokenTree::new();
        let n1 = tree.push_root(t(1), 0.9, NodeOrigin::Trunk);
        let n2 = tree.push_child(n1, t(2), 0.8, NodeOrigin::Trunk);
        let n3 = tree.push_child(n2, t(3), 0.7, NodeOrigin::Trunk);
        let n4 = tree.push_child(n1, t(4), 0.2, NodeOrigin::Branch);
        let n5 = tree.push_child(n4, t(5), 0.6, NodeOrigin::Recycled);
        (tree, vec![n1, n2, n3, n4, n5])
    }

    #[test]
    fn paths_and_depths_are_consistent() {
        let (tree, n) = sample_tree();
        assert_eq!(tree.path_tokens(n[2]), vec![t(1), t(2), t(3)]);
        assert_eq!(tree.path_tokens(n[4]), vec![t(1), t(4), t(5)]);
        assert_eq!(tree.depth(n[0]), 1);
        assert_eq!(tree.depth(n[2]), 3);
        assert_eq!(tree.max_depth(), 3);
        for id in tree.node_ids() {
            assert_eq!(tree.path(id).len(), tree.depth(id));
        }
    }

    #[test]
    fn children_and_leaves() {
        let (tree, n) = sample_tree();
        assert_eq!(tree.children(n[0]), vec![n[1], n[3]]);
        assert_eq!(tree.children(n[2]), Vec::<NodeId>::new());
        assert_eq!(tree.leaves(), vec![n[2], n[4]]);
    }

    #[test]
    fn ancestry_is_reflexive_and_follows_parents() {
        let (tree, n) = sample_tree();
        assert!(tree.is_ancestor(n[0], n[4]));
        assert!(tree.is_ancestor(n[4], n[4]));
        assert!(!tree.is_ancestor(n[1], n[4]));
        assert!(!tree.is_ancestor(n[2], n[0]));
    }

    #[test]
    fn origin_counts() {
        let (tree, _) = sample_tree();
        assert_eq!(tree.count_origin(NodeOrigin::Trunk), 3);
        assert_eq!(tree.count_origin(NodeOrigin::Branch), 1);
        assert_eq!(tree.count_origin(NodeOrigin::Recycled), 1);
    }

    #[test]
    fn from_sequence_builds_a_chain() {
        let tree =
            TokenTree::from_sequence([(t(5), 0.9), (t(6), 0.8), (t(7), 0.7)], NodeOrigin::Trunk);
        assert_eq!(tree.len(), 3);
        assert_eq!(tree.max_depth(), 3);
        assert_eq!(tree.leaves().len(), 1);
        let leaf = tree.leaves()[0];
        assert_eq!(tree.path_tokens(leaf), vec![t(5), t(6), t(7)]);
    }

    #[test]
    fn find_path_locates_branches() {
        let (tree, n) = sample_tree();
        assert_eq!(tree.find_path(&[t(1), t(4)]), Some(n[3]));
        assert_eq!(tree.find_path(&[t(1), t(9)]), None);
        assert_eq!(tree.find_path(&[]), None);
    }

    #[test]
    fn insertion_order_is_topological() {
        let (tree, _) = sample_tree();
        for (id, node) in tree.iter() {
            if let Some(parent) = node.parent {
                assert!(parent.index() < id.index());
            }
        }
    }

    #[test]
    fn empty_tree_behaves() {
        let tree = TokenTree::new();
        assert!(tree.is_empty());
        assert_eq!(tree.max_depth(), 0);
        assert!(tree.leaves().is_empty());
        assert_eq!(tree.get(NodeId(0)), None);
    }

    #[test]
    #[should_panic(expected = "parent node does not exist")]
    fn pushing_to_missing_parent_panics() {
        let mut tree = TokenTree::new();
        tree.push_child(NodeId(3), t(1), 0.5, NodeOrigin::Trunk);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Randomly grown trees maintain the structural invariants: parents
        /// precede children, depths increase by exactly one along edges, and
        /// every path's length equals the node depth.
        #[test]
        fn random_trees_keep_invariants(choices in proptest::collection::vec((any::<u16>(), 0u32..100), 1..60)) {
            let mut tree = TokenTree::new();
            for (parent_choice, token) in choices {
                if tree.is_empty() || parent_choice % 5 == 0 {
                    tree.push_root(TokenId::new(token), 0.5, NodeOrigin::Trunk);
                } else {
                    let parent = NodeId((parent_choice as usize) % tree.len());
                    tree.push_child(parent, TokenId::new(token), 0.5, NodeOrigin::Branch);
                }
            }
            for (id, node) in tree.iter() {
                if let Some(parent) = node.parent {
                    prop_assert!(parent.index() < id.index());
                    prop_assert_eq!(node.depth, tree.node(parent).depth + 1);
                } else {
                    prop_assert_eq!(node.depth, 1);
                }
                prop_assert_eq!(tree.path(id).len(), node.depth);
                prop_assert_eq!(tree.path_tokens(id).len(), node.depth);
            }
            // Leaves plus internal nodes partition the tree.
            let leaves = tree.leaves().len();
            prop_assert!(leaves >= 1);
            prop_assert!(leaves <= tree.len());
        }
    }
}
