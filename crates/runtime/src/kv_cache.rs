//! KV-cache position bookkeeping with speculative rollback.
//!
//! The simulation does not store key/value tensors — the simulated models are
//! pure functions of the prefix — but the *bookkeeping* of a KV cache is still
//! part of the system being reproduced: speculative decoding appends draft
//! positions optimistically and must roll the cache back to the last accepted
//! position when verification rejects a suffix.  Tracking this explicitly lets
//! the test suite assert that every policy leaves both models' caches in a
//! consistent state after every round.

use serde::{Deserialize, Serialize};

/// A prefill was attempted on a cache that already holds positions.
///
/// Returned by [`KvCache::try_prefill`] so that serving layers can reject a
/// malformed request instead of panicking a worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefillError {
    /// Number of positions the cache already held.
    pub existing: usize,
    /// Number of positions the rejected prefill asked for.
    pub requested: usize,
}

impl std::fmt::Display for PrefillError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "prefill of {} positions on a cache already holding {} (prefill must happen on an \
             empty cache)",
            self.requested, self.existing
        )
    }
}

impl std::error::Error for PrefillError {}

/// Position bookkeeping of one model's KV cache.
///
/// # Example
///
/// ```
/// use specasr_runtime::KvCache;
///
/// let mut cache = KvCache::new();
/// cache.try_prefill(100).expect("empty cache");
/// cache.append(8);
/// assert_eq!(cache.len(), 108);
/// cache.rollback_to(103);
/// assert_eq!(cache.len(), 103);
/// assert_eq!(cache.generated_len(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct KvCache {
    prefill_len: usize,
    total_len: usize,
    peak_len: usize,
    rollbacks: usize,
    positions_discarded: usize,
}

impl KvCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        KvCache::default()
    }

    /// Records the prefill of `tokens` context positions (audio embeddings
    /// plus prompt), or returns a typed [`PrefillError`] if the cache
    /// already holds positions — prefill may only happen on an empty cache.
    ///
    /// This is the only prefill entry point: the panicking `prefill` wrapper
    /// it replaced was deprecated for one release and has been removed
    /// (serving workers must see the double-prefill case as a typed error,
    /// never a panic).
    pub fn try_prefill(&mut self, tokens: usize) -> Result<(), PrefillError> {
        if self.total_len != 0 {
            return Err(PrefillError {
                existing: self.total_len,
                requested: tokens,
            });
        }
        self.prefill_len = tokens;
        self.total_len = tokens;
        self.peak_len = self.peak_len.max(tokens);
        Ok(())
    }

    /// Appends `tokens` generated positions.
    pub fn append(&mut self, tokens: usize) {
        self.total_len += tokens;
        self.peak_len = self.peak_len.max(self.total_len);
    }

    /// Rolls the cache back to `len` total positions, discarding everything
    /// after it (used when speculative tokens are rejected).
    ///
    /// # Panics
    ///
    /// Panics if `len` is larger than the current length or smaller than the
    /// prefill length (the audio context is never rolled back).
    pub fn rollback_to(&mut self, len: usize) {
        assert!(len <= self.total_len, "cannot roll forward");
        assert!(
            len >= self.prefill_len,
            "cannot roll back past the prefilled context"
        );
        self.positions_discarded += self.total_len - len;
        if len < self.total_len {
            self.rollbacks += 1;
        }
        self.total_len = len;
    }

    /// Total cached positions (prefill + generated).
    pub fn len(&self) -> usize {
        self.total_len
    }

    /// Returns `true` if nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.total_len == 0
    }

    /// Number of prefilled context positions.
    pub fn prefill_len(&self) -> usize {
        self.prefill_len
    }

    /// Number of generated (post-prefill) positions currently cached.
    pub fn generated_len(&self) -> usize {
        self.total_len - self.prefill_len
    }

    /// Largest number of positions ever held (peak memory proxy).
    pub fn peak_len(&self) -> usize {
        self.peak_len
    }

    /// Number of rollback events.
    pub fn rollbacks(&self) -> usize {
        self.rollbacks
    }

    /// Total positions discarded across all rollbacks (wasted cache writes).
    pub fn positions_discarded(&self) -> usize {
        self.positions_discarded
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefill_then_append_tracks_lengths() {
        let mut cache = KvCache::new();
        assert!(cache.is_empty());
        cache.try_prefill(50).expect("empty cache");
        cache.append(10);
        cache.append(5);
        assert_eq!(cache.len(), 65);
        assert_eq!(cache.prefill_len(), 50);
        assert_eq!(cache.generated_len(), 15);
        assert_eq!(cache.peak_len(), 65);
        assert!(!cache.is_empty());
    }

    #[test]
    fn rollback_discards_and_counts() {
        let mut cache = KvCache::new();
        cache.try_prefill(10).expect("empty cache");
        cache.append(20);
        cache.rollback_to(15);
        assert_eq!(cache.len(), 15);
        assert_eq!(cache.rollbacks(), 1);
        assert_eq!(cache.positions_discarded(), 15);
        assert_eq!(cache.peak_len(), 30);
        // Rolling back to the current length is a no-op, not a rollback event.
        cache.rollback_to(15);
        assert_eq!(cache.rollbacks(), 1);
    }

    #[test]
    #[should_panic(expected = "cannot roll forward")]
    fn rollforward_panics() {
        let mut cache = KvCache::new();
        cache.try_prefill(5).expect("empty cache");
        cache.rollback_to(10);
    }

    #[test]
    #[should_panic(expected = "past the prefilled context")]
    fn rollback_past_prefill_panics() {
        let mut cache = KvCache::new();
        cache.try_prefill(5).expect("empty cache");
        cache.append(3);
        cache.rollback_to(2);
    }

    #[test]
    fn try_prefill_reports_a_typed_error_on_a_non_empty_cache() {
        let mut cache = KvCache::new();
        assert_eq!(cache.try_prefill(6), Ok(()));
        cache.append(2);
        let error = cache.try_prefill(9).expect_err("cache is non-empty");
        assert_eq!(
            error,
            PrefillError {
                existing: 8,
                requested: 9
            }
        );
        assert!(error.to_string().contains("8"));
        assert!(error.to_string().contains("empty cache"));
        // The failed attempt left the bookkeeping untouched.
        assert_eq!(cache.len(), 8);
        assert_eq!(cache.prefill_len(), 6);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Applying any valid sequence of appends and rollbacks keeps the
        /// invariants: prefill ≤ len ≤ peak, and discarded = appended − kept.
        #[test]
        fn cache_invariants_hold(
            prefill in 0usize..200,
            ops in proptest::collection::vec((0usize..2, 1usize..30), 0..40),
        ) {
            let mut cache = KvCache::new();
            cache.try_prefill(prefill).expect("empty cache");
            let mut appended = 0usize;
            for (kind, amount) in ops {
                if kind == 0 {
                    cache.append(amount);
                    appended += amount;
                } else {
                    let target = prefill + (cache.generated_len().saturating_sub(amount));
                    cache.rollback_to(target);
                }
                prop_assert!(cache.len() >= cache.prefill_len());
                prop_assert!(cache.len() <= cache.peak_len());
            }
            prop_assert_eq!(
                cache.positions_discarded(),
                appended - cache.generated_len()
            );
        }
    }
}
