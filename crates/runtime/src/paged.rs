//! Paged KV-cache pool: fixed-size blocks, ref-counted prefix sharing, and
//! copy-on-write — the vLLM-style memory substrate for multi-session serving.
//!
//! [`crate::KvCache`] tracks one session's cache *positions*; it says nothing
//! about where those positions live.  A serving scheduler that admits many
//! sessions against one accelerator needs the missing half: a shared budget
//! of physical cache memory, carved into fixed-size blocks, so that admission
//! can be memory-aware and sessions with identical prompt+audio prefixes can
//! share the blocks holding that prefix.
//!
//! * [`BlockPool`] — one model's block allocator: a bounded (or unbounded)
//!   slab of blocks with a free list, per-block reference counts, and a
//!   prefix index keyed on hash chains of the prefill content,
//! * [`BlockTable`] — one session's view: the ordered block list backing its
//!   positions, wrapping a [`KvCache`] so position bookkeeping (rollback
//!   counters, peaks) stays byte-identical to the pre-paged implementation,
//! * [`KvPool`] — the draft + target sub-pool pair a speculative decoding
//!   session allocates from.
//!
//! # Sharing and copy-on-write
//!
//! Prefill blocks are published to the pool's prefix index under a hash
//! chain of `(prefix_key, block index)`.  A later prefill with the same key
//! re-uses the resident blocks (reference count bump, no allocation).  A
//! shared block is never written through: the first append that would write
//! into a shared tail block copies it first (copy-on-write), and a tail
//! block owned exclusively is simply retired from the prefix index before
//! the write.  Blocks return to the free list when their last reference is
//! released, so a drained pool always ends with its free list equal to its
//! capacity — the no-leak/no-double-free invariant the property tests pin.
//!
//! # Example
//!
//! ```
//! use specasr_runtime::{BlockPool, BlockTable};
//!
//! let mut pool = BlockPool::bounded(8, 16);
//! let mut a = BlockTable::new();
//! let mut b = BlockTable::new();
//! pool.prefill(&mut a, 40, Some(0xfeed)).unwrap(); // 3 blocks
//! pool.prefill(&mut b, 40, Some(0xfeed)).unwrap(); // shares all 3
//! assert_eq!(pool.used_blocks(), 3);
//! pool.append(&mut a, 4).unwrap();                 // copy-on-write tail
//! assert_eq!(pool.used_blocks(), 4);
//! pool.release(&mut a);
//! pool.release(&mut b);
//! assert_eq!(pool.free_blocks(), 8);
//! ```

use std::collections::HashMap;

use crate::kv_cache::{KvCache, PrefillError};

/// SplitMix64-style avalanche used for the prefix hash chains (kept local so
/// the runtime crate stays dependency-free).
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Identity of one block within a [`BlockPool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(usize);

impl BlockId {
    /// The block's slab index.
    pub const fn index(self) -> usize {
        self.0
    }
}

/// Why a pool operation could not be served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolError {
    /// The pool does not have enough free blocks for the allocation.
    OutOfBlocks {
        /// Fresh blocks the operation needed.
        requested: usize,
        /// Free blocks available at the time.
        available: usize,
        /// The pool's total capacity in blocks.
        capacity: usize,
    },
    /// A prefill was attempted on a table that already holds positions.
    AlreadyPrefilled(PrefillError),
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PoolError::OutOfBlocks {
                requested,
                available,
                capacity,
            } => write!(
                f,
                "pool exhausted: {requested} blocks requested, {available} free of {capacity}"
            ),
            PoolError::AlreadyPrefilled(error) => write!(f, "{error}"),
        }
    }
}

impl std::error::Error for PoolError {}

impl From<PrefillError> for PoolError {
    fn from(error: PrefillError) -> Self {
        PoolError::AlreadyPrefilled(error)
    }
}

/// One session's ordered view of the blocks backing its KV positions.
///
/// Wraps a [`KvCache`] so the position bookkeeping (lengths, peaks, rollback
/// counters) is byte-identical to the pre-paged per-session caches; the
/// block list is what the paged pool adds.  All mutation goes through a
/// [`BlockPool`] — the table alone cannot allocate or free.
///
/// Cloning a table snapshots its bookkeeping for inspection; a clone must
/// not be handed back to pool operations (block references are not
/// re-counted by `clone`).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BlockTable {
    positions: KvCache,
    blocks: Vec<BlockId>,
}

impl BlockTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        BlockTable::default()
    }

    /// The position bookkeeping (lengths, peak, rollback counters).
    pub fn positions(&self) -> &KvCache {
        &self.positions
    }

    /// Total cached positions (prefill + generated).
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Returns `true` if nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// The blocks currently backing this table, in position order.
    pub fn block_ids(&self) -> &[BlockId] {
        &self.blocks
    }

    /// Number of blocks currently held.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }
}

#[derive(Debug, Clone, Default)]
struct BlockState {
    ref_count: usize,
    /// The prefix-chain hash this block is published under, if shareable.
    hash: Option<u64>,
}

/// Monotonic allocation counters of one [`BlockPool`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolCounters {
    /// Fresh blocks handed out (excluding shared re-use).
    pub allocated: usize,
    /// Blocks returned to the free list.
    pub freed: usize,
    /// Prefill blocks requested under a prefix key (sharing opportunities).
    pub prefix_lookups: usize,
    /// Prefill blocks satisfied by re-using a resident shared block.
    pub shared_hits: usize,
    /// Copy-on-write block copies (writes into a shared tail).
    pub cow_copies: usize,
}

impl PoolCounters {
    /// Component-wise sum of two counter sets.
    pub fn merged(self, other: PoolCounters) -> PoolCounters {
        PoolCounters {
            allocated: self.allocated + other.allocated,
            freed: self.freed + other.freed,
            prefix_lookups: self.prefix_lookups + other.prefix_lookups,
            shared_hits: self.shared_hits + other.shared_hits,
            cow_copies: self.cow_copies + other.cow_copies,
        }
    }
}

/// One model's paged block allocator.
#[derive(Debug, Clone)]
pub struct BlockPool {
    block_size: usize,
    /// `None` grows on demand (single-session use); `Some(n)` is a hard
    /// budget of `n` blocks (serving use).
    capacity: Option<usize>,
    blocks: Vec<BlockState>,
    free: Vec<BlockId>,
    prefix_index: HashMap<u64, BlockId>,
    used: usize,
    peak_used: usize,
    counters: PoolCounters,
}

impl BlockPool {
    /// Creates a pool with a hard budget of `capacity` blocks of
    /// `block_size` positions each.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` or `block_size` is zero.
    pub fn bounded(capacity: usize, block_size: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        assert!(block_size > 0, "block_size must be positive");
        BlockPool {
            block_size,
            capacity: Some(capacity),
            blocks: vec![BlockState::default(); capacity],
            // Reversed so blocks are handed out in 0, 1, 2, ... order.
            free: (0..capacity).rev().map(BlockId).collect(),
            prefix_index: HashMap::new(),
            used: 0,
            peak_used: 0,
            counters: PoolCounters::default(),
        }
    }

    /// Creates a pool that grows on demand — the private backing store of a
    /// standalone (non-serving) decode session, where allocation never fails.
    ///
    /// # Panics
    ///
    /// Panics if `block_size` is zero.
    pub fn unbounded(block_size: usize) -> Self {
        assert!(block_size > 0, "block_size must be positive");
        BlockPool {
            block_size,
            capacity: None,
            blocks: Vec::new(),
            free: Vec::new(),
            prefix_index: HashMap::new(),
            used: 0,
            peak_used: 0,
            counters: PoolCounters::default(),
        }
    }

    /// Positions per block.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// The hard block budget, or `None` for an unbounded pool.
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Blocks currently in use (shared blocks count once).
    pub fn used_blocks(&self) -> usize {
        self.used
    }

    /// Largest number of blocks ever simultaneously in use.
    pub fn peak_used_blocks(&self) -> usize {
        self.peak_used
    }

    /// Free blocks available right now (`usize::MAX` for unbounded pools).
    pub fn free_blocks(&self) -> usize {
        match self.capacity {
            Some(_) => self.free.len(),
            None => usize::MAX,
        }
    }

    /// Monotonic allocation counters.
    pub fn counters(&self) -> PoolCounters {
        self.counters
    }

    /// Number of blocks needed to back `positions` cache positions.
    pub fn blocks_for(&self, positions: usize) -> usize {
        positions.div_ceil(self.block_size)
    }

    /// Fresh blocks an `append(table, tokens)` would need right now,
    /// including a possible copy-on-write of a shared tail block.
    pub fn blocks_needed_for_append(&self, table: &BlockTable, tokens: usize) -> usize {
        if tokens == 0 {
            return 0;
        }
        let growth = self.blocks_for(table.len() + tokens) - self.blocks_for(table.len());
        let cow = usize::from(self.tail_needs_cow(table));
        growth + cow
    }

    /// Whether the table's tail block has room for a write but is shared
    /// (reference count above one), forcing a copy before the next append.
    fn tail_needs_cow(&self, table: &BlockTable) -> bool {
        if table.len().is_multiple_of(self.block_size) {
            return false; // the tail is full; the next write opens a new block
        }
        match table.blocks.last() {
            Some(&id) => self.blocks[id.index()].ref_count > 1,
            None => false,
        }
    }

    /// Records the prefill of `tokens` context positions, allocating (or,
    /// under `prefix_key`, sharing) the blocks that back them.
    ///
    /// With `Some(key)`, every prefill block is looked up in the prefix
    /// index under the hash chain of `(key, block index)`; resident blocks
    /// are re-used (reference count bump) and misses are allocated and
    /// published.  Identical keys therefore share physical blocks for as
    /// long as at least one owner is resident.
    ///
    /// The operation is atomic: on [`PoolError::OutOfBlocks`] nothing was
    /// allocated, shared, or recorded.
    pub fn prefill(
        &mut self,
        table: &mut BlockTable,
        tokens: usize,
        prefix_key: Option<u64>,
    ) -> Result<(), PoolError> {
        if !table.is_empty() || !table.blocks.is_empty() {
            return Err(PoolError::AlreadyPrefilled(PrefillError {
                existing: table.len().max(table.blocks.len()),
                requested: tokens,
            }));
        }
        let needed = self.blocks_for(tokens);
        // Pass 1 (read-only): which blocks can be shared?
        let plan: Vec<(Option<BlockId>, Option<u64>)> = match prefix_key {
            Some(key) => prefix_chain(key, self.block_size, needed)
                .map(|hash| (self.prefix_index.get(&hash).copied(), Some(hash)))
                .collect(),
            None => vec![(None, None); needed],
        };
        let fresh = plan.iter().filter(|(hit, _)| hit.is_none()).count();
        self.ensure_available(fresh)?;
        // Pass 2: commit.
        if prefix_key.is_some() {
            self.counters.prefix_lookups += needed;
        }
        for (hit, hash) in plan {
            match hit {
                Some(id) => {
                    self.blocks[id.index()].ref_count += 1;
                    self.counters.shared_hits += 1;
                    table.blocks.push(id);
                }
                None => {
                    let id = self.allocate(hash);
                    table.blocks.push(id);
                }
            }
        }
        table.positions.try_prefill(tokens)?;
        Ok(())
    }

    /// Appends `tokens` generated positions, allocating blocks as position
    /// boundaries are crossed and copy-on-writing a shared tail first.
    ///
    /// The operation is atomic: on [`PoolError::OutOfBlocks`] nothing was
    /// allocated or recorded.
    pub fn append(&mut self, table: &mut BlockTable, tokens: usize) -> Result<(), PoolError> {
        let needed = self.blocks_needed_for_append(table, tokens);
        self.ensure_available(needed)?;
        if tokens > 0 {
            self.privatize_tail(table);
        }
        let total_blocks = self.blocks_for(table.len() + tokens);
        while table.blocks.len() < total_blocks {
            let id = self.allocate(None);
            table.blocks.push(id);
        }
        table.positions.append(tokens);
        Ok(())
    }

    /// Rolls the table back to `len` total positions, releasing the blocks
    /// past the new boundary (speculative rejection).
    ///
    /// Rolling back into a shared block defers the copy to the next append
    /// (copy-on-write): the rolled-back session only re-acquires a private
    /// tail when it actually writes again.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`KvCache::rollback_to`].
    pub fn rollback(&mut self, table: &mut BlockTable, len: usize) {
        table.positions.rollback_to(len);
        let keep = self.blocks_for(len);
        while table.blocks.len() > keep {
            let id = table.blocks.pop().expect("block count was checked");
            self.unref(id);
        }
    }

    /// Releases every block the table holds (session finished or preempted).
    ///
    /// The position bookkeeping is left intact so a finished session can
    /// still report its cache statistics; releasing twice is a no-op.
    pub fn release(&mut self, table: &mut BlockTable) {
        while let Some(id) = table.blocks.pop() {
            self.unref(id);
        }
    }

    /// Moves the blocks backing `table` from this pool into `dest` — the
    /// same-machine hand-off fast path of a live session migration.  The
    /// position bookkeeping is untouched (no re-prefill, no rollback
    /// counters), the table is re-backed by freshly allocated private blocks
    /// in `dest`, and the source references are dropped.  Prefix sharing
    /// does not survive the move: the destination copies are never published
    /// to the prefix index (their content diverges from any prefill hash the
    /// moment the session appends).
    ///
    /// The operation is atomic: on [`PoolError::OutOfBlocks`] (the
    /// destination cannot hold the table) neither pool nor the table
    /// changed.
    ///
    /// # Panics
    ///
    /// Panics if the two pools page at different block sizes — a hand-off
    /// models moving physical cache pages, which only makes sense between
    /// pools of identical geometry.
    pub fn transfer(
        &mut self,
        dest: &mut BlockPool,
        table: &mut BlockTable,
    ) -> Result<(), PoolError> {
        assert_eq!(
            self.block_size, dest.block_size,
            "a block-table hand-off requires matching block geometry"
        );
        dest.ensure_available(table.blocks.len())?;
        let moved = std::mem::take(&mut table.blocks);
        for _ in 0..moved.len() {
            table.blocks.push(dest.allocate(None));
        }
        for id in moved {
            self.unref(id);
        }
        Ok(())
    }

    fn ensure_available(&self, fresh: usize) -> Result<(), PoolError> {
        let Some(capacity) = self.capacity else {
            return Ok(());
        };
        if fresh > self.free.len() {
            return Err(PoolError::OutOfBlocks {
                requested: fresh,
                available: self.free.len(),
                capacity,
            });
        }
        Ok(())
    }

    /// Makes the table's tail block safe to write into: copies it when other
    /// owners share it, or retires it from the prefix index when this table
    /// owns it exclusively (its content is about to diverge from the hash it
    /// was published under).
    ///
    /// Callers guarantee a free block when a copy is due (see
    /// [`BlockPool::blocks_needed_for_append`]).
    fn privatize_tail(&mut self, table: &mut BlockTable) {
        if table.len().is_multiple_of(self.block_size) {
            return;
        }
        let Some(&tail) = table.blocks.last() else {
            return;
        };
        if self.blocks[tail.index()].ref_count > 1 {
            let copy = self.allocate(None);
            self.counters.cow_copies += 1;
            *table.blocks.last_mut().expect("tail exists") = copy;
            self.unref(tail);
        } else if let Some(hash) = self.blocks[tail.index()].hash.take() {
            self.prefix_index.remove(&hash);
        }
    }

    /// Hands out a fresh block, publishing it under `hash` when given.
    fn allocate(&mut self, hash: Option<u64>) -> BlockId {
        let id = match self.free.pop() {
            Some(id) => id,
            None => {
                assert!(
                    self.capacity.is_none(),
                    "bounded allocation must be preceded by an availability check"
                );
                let id = BlockId(self.blocks.len());
                self.blocks.push(BlockState::default());
                id
            }
        };
        let state = &mut self.blocks[id.index()];
        state.ref_count = 1;
        state.hash = hash;
        if let Some(hash) = hash {
            self.prefix_index.insert(hash, id);
        }
        self.counters.allocated += 1;
        self.used += 1;
        self.peak_used = self.peak_used.max(self.used);
        id
    }

    /// Drops one reference; the block returns to the free list when the last
    /// owner lets go.
    fn unref(&mut self, id: BlockId) {
        let state = &mut self.blocks[id.index()];
        assert!(state.ref_count > 0, "double free of block {id:?}");
        state.ref_count -= 1;
        if state.ref_count == 0 {
            if let Some(hash) = state.hash.take() {
                self.prefix_index.remove(&hash);
            }
            self.free.push(id);
            self.counters.freed += 1;
            self.used -= 1;
        }
    }
}

/// The hash chain prefill blocks are published under: one hash per block
/// index, avalanched over the prefix key and the pool's block size (the same
/// prompt paged at a different granularity must not collide).
fn prefix_chain(key: u64, block_size: usize, blocks: usize) -> impl Iterator<Item = u64> {
    let mut hash = mix64(key ^ mix64(block_size as u64 ^ 0x9aed_0c11));
    (0..blocks).map(move |_| {
        hash = mix64(hash ^ 0x5bd1_e995);
        hash
    })
}

/// The draft + target sub-pool pair one speculative decoding fleet shares.
///
/// Draft and target models have different cache geometries, so each gets its
/// own block budget; the pair travels together because every decode session
/// allocates from both.
#[derive(Debug, Clone)]
pub struct KvPool {
    draft: BlockPool,
    target: BlockPool,
}

impl KvPool {
    /// Creates a pool with a hard budget of `kv_blocks` blocks *per
    /// sub-pool* of `block_size` positions each.
    ///
    /// # Panics
    ///
    /// Panics if `kv_blocks` or `block_size` is zero.
    pub fn bounded(kv_blocks: usize, block_size: usize) -> Self {
        KvPool {
            draft: BlockPool::bounded(kv_blocks, block_size),
            target: BlockPool::bounded(kv_blocks, block_size),
        }
    }

    /// Creates a pool that grows on demand (standalone decode sessions).
    ///
    /// # Panics
    ///
    /// Panics if `block_size` is zero.
    pub fn unbounded(block_size: usize) -> Self {
        KvPool {
            draft: BlockPool::unbounded(block_size),
            target: BlockPool::unbounded(block_size),
        }
    }

    /// Positions per block.
    pub fn block_size(&self) -> usize {
        self.target.block_size()
    }

    /// The draft model's sub-pool.
    pub fn draft(&self) -> &BlockPool {
        &self.draft
    }

    /// The draft model's sub-pool, mutably.
    pub fn draft_mut(&mut self) -> &mut BlockPool {
        &mut self.draft
    }

    /// The target model's sub-pool.
    pub fn target(&self) -> &BlockPool {
        &self.target
    }

    /// The target model's sub-pool, mutably.
    pub fn target_mut(&mut self) -> &mut BlockPool {
        &mut self.target
    }

    /// Blocks in use across both sub-pools.
    pub fn used_blocks(&self) -> usize {
        self.draft.used_blocks() + self.target.used_blocks()
    }

    /// Blocks in use per sub-pool, `(draft, target)` — the flight recorder
    /// samples this every tick for the per-sub-pool occupancy counter track.
    pub fn sub_pool_used_blocks(&self) -> (usize, usize) {
        (self.draft.used_blocks(), self.target.used_blocks())
    }

    /// Total block budget across both sub-pools (`None` when unbounded).
    pub fn capacity_blocks(&self) -> Option<usize> {
        match (self.draft.capacity(), self.target.capacity()) {
            (Some(d), Some(t)) => Some(d + t),
            _ => None,
        }
    }

    /// Summed allocation counters of both sub-pools.
    pub fn counters(&self) -> PoolCounters {
        self.draft.counters().merged(self.target.counters())
    }

    /// Moves one session's draft and target block tables from this pool into
    /// `dest` without re-prefill (see [`BlockPool::transfer`]) — the
    /// same-machine hand-off fast path of a live session migration between
    /// two workers' pools.
    ///
    /// All-or-nothing across both sub-pools: on [`PoolError::OutOfBlocks`]
    /// neither pool nor either table changed, and the caller falls back to
    /// the preempt/restore slow path.
    ///
    /// # Panics
    ///
    /// Panics if the pools page at different block sizes.
    pub fn hand_off(
        &mut self,
        dest: &mut KvPool,
        draft: &mut BlockTable,
        target: &mut BlockTable,
    ) -> Result<(), PoolError> {
        dest.draft.ensure_available(draft.block_count())?;
        dest.target.ensure_available(target.block_count())?;
        self.draft
            .transfer(&mut dest.draft, draft)
            .expect("draft headroom was checked");
        self.target
            .transfer(&mut dest.target, target)
            .expect("target headroom was checked");
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefill_and_append_allocate_by_block_boundaries() {
        let mut pool = BlockPool::bounded(10, 16);
        let mut table = BlockTable::new();
        pool.prefill(&mut table, 20, None).unwrap(); // 2 blocks (16 + 4)
        assert_eq!(table.block_count(), 2);
        assert_eq!(pool.used_blocks(), 2);
        pool.append(&mut table, 11).unwrap(); // fills to 31, still block 2
        assert_eq!(table.block_count(), 2);
        pool.append(&mut table, 2).unwrap(); // crosses into block 3
        assert_eq!(table.block_count(), 3);
        assert_eq!(table.len(), 33);
        assert_eq!(table.positions().prefill_len(), 20);
        assert_eq!(pool.free_blocks(), 7);
        assert_eq!(pool.peak_used_blocks(), 3);
    }

    #[test]
    fn rollback_frees_whole_blocks_and_release_frees_the_rest() {
        let mut pool = BlockPool::bounded(10, 4);
        let mut table = BlockTable::new();
        pool.prefill(&mut table, 6, None).unwrap(); // blocks 0..2
        pool.append(&mut table, 10).unwrap(); // 16 positions → 4 blocks
        assert_eq!(pool.used_blocks(), 4);
        pool.rollback(&mut table, 7); // keep 2 blocks
        assert_eq!(table.block_count(), 2);
        assert_eq!(pool.used_blocks(), 2);
        assert_eq!(table.positions().rollbacks(), 1);
        assert_eq!(table.positions().positions_discarded(), 9);
        pool.release(&mut table);
        assert_eq!(pool.used_blocks(), 0);
        assert_eq!(pool.free_blocks(), 10);
        // Release is idempotent.
        pool.release(&mut table);
        assert_eq!(pool.free_blocks(), 10);
        // Position bookkeeping survives the release for outcome reporting.
        assert_eq!(table.len(), 7);
    }

    #[test]
    fn out_of_blocks_is_atomic() {
        let mut pool = BlockPool::bounded(2, 8);
        let mut a = BlockTable::new();
        pool.prefill(&mut a, 16, None).unwrap();
        let mut b = BlockTable::new();
        let error = pool.prefill(&mut b, 9, None).unwrap_err();
        assert_eq!(
            error,
            PoolError::OutOfBlocks {
                requested: 2,
                available: 0,
                capacity: 2
            }
        );
        assert!(b.is_empty());
        assert_eq!(b.block_count(), 0);
        let error = pool.append(&mut a, 1).unwrap_err();
        assert!(matches!(error, PoolError::OutOfBlocks { requested: 1, .. }));
        assert_eq!(a.len(), 16, "failed append must not record positions");
        assert!(error.to_string().contains("free"));
    }

    #[test]
    fn transfer_moves_a_table_between_pools_without_reprefill() {
        let mut source = BlockPool::bounded(8, 16);
        let mut dest = BlockPool::bounded(8, 16);
        let mut table = BlockTable::new();
        source.prefill(&mut table, 40, Some(0xfeed)).unwrap();
        source.append(&mut table, 10).unwrap(); // 50 positions → 4 blocks
        let positions_before = *table.positions();
        source.transfer(&mut dest, &mut table).unwrap();
        assert_eq!(source.used_blocks(), 0);
        assert_eq!(source.free_blocks(), 8);
        assert_eq!(dest.used_blocks(), 4);
        assert_eq!(table.block_count(), 4);
        // No re-prefill: the position bookkeeping is byte-identical.
        assert_eq!(*table.positions(), positions_before);
        assert_eq!(table.len(), 50);
        // The moved table keeps working against the destination pool.
        dest.append(&mut table, 20).unwrap();
        assert_eq!(table.block_count(), 5);
        dest.release(&mut table);
        assert_eq!(dest.free_blocks(), 8);
    }

    #[test]
    fn transfer_is_atomic_when_the_destination_is_full() {
        let mut source = BlockPool::bounded(4, 8);
        let mut dest = BlockPool::bounded(2, 8);
        let mut hog = BlockTable::new();
        dest.prefill(&mut hog, 16, None).unwrap(); // fills the destination
        let mut table = BlockTable::new();
        source.prefill(&mut table, 24, None).unwrap(); // 3 blocks
        let error = source.transfer(&mut dest, &mut table).unwrap_err();
        assert!(matches!(error, PoolError::OutOfBlocks { requested: 3, .. }));
        assert_eq!(source.used_blocks(), 3, "failed hand-off must not free");
        assert_eq!(table.block_count(), 3);
        assert_eq!(table.len(), 24);
    }

    #[test]
    fn transfer_of_a_shared_table_leaves_the_other_owner_resident() {
        let mut source = BlockPool::bounded(8, 16);
        let mut dest = BlockPool::bounded(8, 16);
        let mut a = BlockTable::new();
        let mut b = BlockTable::new();
        source.prefill(&mut a, 32, Some(9)).unwrap();
        source.prefill(&mut b, 32, Some(9)).unwrap(); // shares both blocks
        assert_eq!(source.used_blocks(), 2);
        source.transfer(&mut dest, &mut a).unwrap();
        // `b` still owns the shared originals; `a` got private copies.
        assert_eq!(source.used_blocks(), 2);
        assert_eq!(dest.used_blocks(), 2);
        let mut c = BlockTable::new();
        source.prefill(&mut c, 32, Some(9)).unwrap();
        assert_eq!(
            source.used_blocks(),
            2,
            "the prefix stays shareable at the source after a hand-off"
        );
        source.release(&mut b);
        source.release(&mut c);
        dest.release(&mut a);
        assert_eq!(source.free_blocks(), 8);
        assert_eq!(dest.free_blocks(), 8);
    }

    #[test]
    fn kv_pool_hand_off_is_atomic_across_sub_pools() {
        let mut source = KvPool::bounded(4, 8);
        let mut dest = KvPool::bounded(4, 8);
        let mut draft = BlockTable::new();
        let mut target = BlockTable::new();
        source.draft_mut().prefill(&mut draft, 16, None).unwrap();
        source.target_mut().prefill(&mut target, 24, None).unwrap();
        // Fill the destination's *target* sub-pool so only the second half
        // of the hand-off would fail: the first half must not commit.
        let mut hog = BlockTable::new();
        dest.target_mut().prefill(&mut hog, 32, None).unwrap();
        let error = source
            .hand_off(&mut dest, &mut draft, &mut target)
            .unwrap_err();
        assert!(matches!(error, PoolError::OutOfBlocks { .. }));
        assert_eq!(source.used_blocks(), 5);
        assert_eq!(dest.draft().used_blocks(), 0);
        dest.target_mut().release(&mut hog);
        source.hand_off(&mut dest, &mut draft, &mut target).unwrap();
        assert_eq!(source.used_blocks(), 0);
        assert_eq!(dest.used_blocks(), 5);
    }

    #[test]
    #[should_panic(expected = "matching block geometry")]
    fn transfer_between_mismatched_geometries_panics() {
        let mut source = BlockPool::bounded(4, 8);
        let mut dest = BlockPool::bounded(4, 16);
        let mut table = BlockTable::new();
        source.prefill(&mut table, 8, None).unwrap();
        let _ = source.transfer(&mut dest, &mut table);
    }

    #[test]
    fn double_prefill_is_a_typed_error() {
        let mut pool = BlockPool::bounded(4, 8);
        let mut table = BlockTable::new();
        pool.prefill(&mut table, 8, None).unwrap();
        let error = pool.prefill(&mut table, 8, None).unwrap_err();
        assert!(matches!(error, PoolError::AlreadyPrefilled(_)));
        assert_eq!(table.block_count(), 1);
    }

    #[test]
    fn identical_prefix_keys_share_blocks() {
        let mut pool = BlockPool::bounded(8, 16);
        let mut a = BlockTable::new();
        let mut b = BlockTable::new();
        let mut c = BlockTable::new();
        pool.prefill(&mut a, 40, Some(7)).unwrap(); // 3 fresh blocks
        pool.prefill(&mut b, 40, Some(7)).unwrap(); // 3 shared
        pool.prefill(&mut c, 40, Some(8)).unwrap(); // different key: fresh
        assert_eq!(pool.used_blocks(), 6);
        assert_eq!(a.block_ids(), b.block_ids());
        assert_ne!(a.block_ids(), c.block_ids());
        let counters = pool.counters();
        assert_eq!(counters.prefix_lookups, 9);
        assert_eq!(counters.shared_hits, 3);
        // Releasing one owner keeps the shared blocks resident for the other.
        pool.release(&mut a);
        assert_eq!(pool.used_blocks(), 6);
        pool.release(&mut b);
        assert_eq!(pool.used_blocks(), 3);
        pool.release(&mut c);
        assert_eq!(pool.free_blocks(), 8);
    }

    #[test]
    fn unkeyed_prefills_never_share() {
        let mut pool = BlockPool::bounded(8, 16);
        let mut a = BlockTable::new();
        let mut b = BlockTable::new();
        pool.prefill(&mut a, 16, None).unwrap();
        pool.prefill(&mut b, 16, None).unwrap();
        assert_eq!(pool.used_blocks(), 2);
        assert_eq!(pool.counters().shared_hits, 0);
        assert_eq!(pool.counters().prefix_lookups, 0);
    }

    #[test]
    fn writing_into_a_shared_tail_copies_on_write() {
        let mut pool = BlockPool::bounded(8, 16);
        let mut a = BlockTable::new();
        let mut b = BlockTable::new();
        pool.prefill(&mut a, 20, Some(3)).unwrap(); // block 1 is a partial tail
        pool.prefill(&mut b, 20, Some(3)).unwrap();
        assert_eq!(pool.used_blocks(), 2);
        assert_eq!(pool.blocks_needed_for_append(&a, 1), 1, "CoW needs a block");
        pool.append(&mut a, 1).unwrap();
        assert_eq!(pool.counters().cow_copies, 1);
        assert_eq!(pool.used_blocks(), 3);
        // The writers' tails diverged; the shared prefix block is still one.
        assert_eq!(a.block_ids()[0], b.block_ids()[0]);
        assert_ne!(a.block_ids()[1], b.block_ids()[1]);
        // `b` still owns the published tail exclusively now, so its write
        // retires the block from the index instead of copying.
        pool.append(&mut b, 1).unwrap();
        assert_eq!(pool.counters().cow_copies, 1);
        assert_eq!(pool.used_blocks(), 3);
        pool.release(&mut a);
        pool.release(&mut b);
        assert_eq!(pool.free_blocks(), 8);
    }

    #[test]
    fn retired_prefix_blocks_are_republished_by_later_prefills() {
        let mut pool = BlockPool::bounded(8, 16);
        let mut a = BlockTable::new();
        pool.prefill(&mut a, 20, Some(5)).unwrap();
        pool.append(&mut a, 1).unwrap(); // retires the tail from the index
        let mut b = BlockTable::new();
        pool.prefill(&mut b, 20, Some(5)).unwrap();
        // The full block is shared; the tail had to be re-allocated.
        assert_eq!(pool.counters().shared_hits, 1);
        assert_eq!(a.block_ids()[0], b.block_ids()[0]);
        assert_ne!(a.block_ids()[1], b.block_ids()[1]);
        pool.release(&mut a);
        pool.release(&mut b);
        assert_eq!(pool.free_blocks(), 8);
    }

    #[test]
    fn kv_pool_pairs_draft_and_target_budgets() {
        let mut pool = KvPool::bounded(4, 8);
        assert_eq!(pool.capacity_blocks(), Some(8));
        assert_eq!(pool.block_size(), 8);
        let mut draft = BlockTable::new();
        let mut target = BlockTable::new();
        pool.draft_mut().prefill(&mut draft, 8, Some(1)).unwrap();
        pool.target_mut().prefill(&mut target, 8, Some(1)).unwrap();
        // Same key, different sub-pools: no cross-model sharing.
        assert_eq!(pool.used_blocks(), 2);
        assert_eq!(pool.counters().allocated, 2);
        assert_eq!(KvPool::unbounded(8).capacity_blocks(), None);
    }

    #[test]
    fn unbounded_pools_grow_and_recycle() {
        let mut pool = BlockPool::unbounded(4);
        let mut table = BlockTable::new();
        pool.prefill(&mut table, 40, None).unwrap();
        assert_eq!(pool.used_blocks(), 10);
        assert_eq!(pool.capacity(), None);
        assert_eq!(pool.free_blocks(), usize::MAX);
        pool.rollback(&mut table, 40); // no-op
        pool.release(&mut table);
        assert_eq!(pool.used_blocks(), 0);
        let mut again = BlockTable::new();
        pool.prefill(&mut again, 12, None).unwrap();
        assert_eq!(pool.counters().allocated, 13);
        assert_eq!(pool.blocks.len(), 10, "freed slabs are recycled");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Reference model: per-table expected position counts, mirrored through
    /// plain integers, to cross-check the pool's accounting.
    #[derive(Debug, Clone, Copy, Default)]
    struct TableModel {
        prefilled: bool,
        released: bool,
        len: usize,
        prefill: usize,
    }

    proptest! {
        /// Random multi-session lifecycles (prefill with random shared keys,
        /// append, rollback, release/preempt, re-prefill on a fresh table)
        /// never leak or double-free: used + free always equals capacity,
        /// and a fully drained pool ends with its free list equal to its
        /// capacity.
        #[test]
        fn random_lifecycles_never_leak_blocks(
            seed_ops in proptest::collection::vec(
                (0usize..4, 0usize..6, 1usize..40, 0u64..3),
                1..120,
            ),
        ) {
            const CAPACITY: usize = 64;
            const TABLES: usize = 6;
            let mut pool = BlockPool::bounded(CAPACITY, 8);
            let mut tables: Vec<BlockTable> =
                (0..TABLES).map(|_| BlockTable::new()).collect();
            let mut models = [TableModel::default(); TABLES];

            for (op, slot, amount, key) in seed_ops {
                let table = &mut tables[slot];
                let model = &mut models[slot];
                match op {
                    // Prefill (idempotently skipped once live).
                    0 if !model.prefilled => {
                        let shared = if key == 0 { None } else { Some(key) };
                        if pool.prefill(table, amount, shared).is_ok() {
                            *model = TableModel {
                                prefilled: true,
                                released: false,
                                len: amount,
                                prefill: amount,
                            };
                        }
                    }
                    // Append.
                    1 if model.prefilled
                        && !model.released
                        && pool.append(table, amount).is_ok() =>
                    {
                        model.len += amount;
                    }
                    // Rollback a random amount of the generated suffix.
                    2 if model.prefilled && !model.released => {
                        let generated = model.len - model.prefill;
                        let target = model.prefill + generated.saturating_sub(amount);
                        pool.rollback(table, target);
                        model.len = target;
                    }
                    // Release (finish or preempt), making the slot reusable.
                    3 if model.prefilled && !model.released => {
                        pool.release(table);
                        *table = BlockTable::new();
                        *model = TableModel::default();
                    }
                    _ => {}
                }
                // Accounting invariants after every operation.
                prop_assert_eq!(pool.used_blocks() + pool.free_blocks(), CAPACITY);
                prop_assert_eq!(
                    pool.counters().allocated - pool.counters().freed,
                    pool.used_blocks()
                );
                for (table, model) in tables.iter().zip(&models) {
                    if model.prefilled {
                        prop_assert_eq!(table.len(), model.len);
                        prop_assert_eq!(table.block_count(), table.len().div_ceil(8));
                    }
                }
                prop_assert!(pool.used_blocks() <= CAPACITY);
            }

            // Drain everything: the free list must return to capacity.
            for table in &mut tables {
                pool.release(table);
            }
            prop_assert_eq!(pool.used_blocks(), 0);
            prop_assert_eq!(pool.free_blocks(), CAPACITY);
            prop_assert_eq!(pool.counters().allocated, pool.counters().freed);
        }
    }
}
