//! Inference-runtime substrate: KV-cache bookkeeping, draft token trees, and
//! SpecInfer-style 2-D tree attention masks.
//!
//! The decoding policies in the `specasr` crate are written against four
//! runtime primitives:
//!
//! * [`KvCache`] — position bookkeeping of a transformer KV cache, including
//!   the rollback that happens when speculative tokens are rejected,
//! * [`KvPool`] / [`BlockPool`] / [`BlockTable`] — the paged memory substrate
//!   behind multi-session serving: fixed-size ref-counted blocks with a free
//!   list, prefix sharing keyed on prompt hashes, and copy-on-write,
//! * [`TokenTree`] — the draft token tree: a trunk of sequential draft tokens
//!   plus sparse side branches (two-pass sparse-tree prediction) and recycled
//!   branches (draft sequence recycling),
//! * [`TreeAttentionMask`] — the 2-D attention mask that lets the target
//!   model verify every branch of a token tree in a single forward pass, and
//! * [`VerificationBatch`] — the flattened view of a tree (node order, root
//!   paths, and mask) handed to the target model.
//!
//! # Example
//!
//! ```
//! use specasr_runtime::{TokenTree, NodeOrigin};
//! use specasr_tokenizer::TokenId;
//!
//! let mut tree = TokenTree::new();
//! let a = tree.push_root(TokenId::new(10), 0.9, NodeOrigin::Trunk);
//! let b = tree.push_child(a, TokenId::new(11), 0.8, NodeOrigin::Trunk);
//! let _alt = tree.push_child(a, TokenId::new(12), 0.1, NodeOrigin::Branch);
//! assert_eq!(tree.path_tokens(b), vec![TokenId::new(10), TokenId::new(11)]);
//! assert_eq!(tree.len(), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
mod kv_cache;
mod mask;
mod paged;
mod tree;

pub use batch::VerificationBatch;
pub use kv_cache::{KvCache, PrefillError};
pub use mask::TreeAttentionMask;
pub use paged::{BlockId, BlockPool, BlockTable, KvPool, PoolCounters, PoolError};
pub use tree::{NodeId, NodeOrigin, TokenTree, TreeNode};
