//! The SpecInfer-style 2-D tree attention mask.
//!
//! When a token tree is flattened into one verification batch, each node must
//! attend only to the committed prefix and to its own ancestors — *not* to
//! nodes on sibling branches that happen to sit earlier in the flattened
//! order.  The 2-D mask encodes exactly that: `mask[i][j]` is `true` iff node
//! `j` is node `i` or one of its ancestors.

use serde::{Deserialize, Serialize};

use crate::tree::{NodeId, TokenTree};

/// A dense boolean ancestor mask over the flattened nodes of a token tree.
///
/// # Example
///
/// ```
/// use specasr_runtime::{NodeOrigin, TokenTree, TreeAttentionMask};
/// use specasr_tokenizer::TokenId;
///
/// let mut tree = TokenTree::new();
/// let a = tree.push_root(TokenId::new(1), 0.9, NodeOrigin::Trunk);
/// let b = tree.push_child(a, TokenId::new(2), 0.8, NodeOrigin::Trunk);
/// let c = tree.push_child(a, TokenId::new(3), 0.1, NodeOrigin::Branch);
/// let mask = TreeAttentionMask::from_tree(&tree);
/// assert!(mask.attends(b, a));
/// assert!(!mask.attends(b, c));       // sibling branches do not see each other
/// assert!(mask.attends(c, c));        // every node attends to itself
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TreeAttentionMask {
    size: usize,
    // Row-major: rows index the attending node, columns the attended node.
    rows: Vec<Vec<bool>>,
}

impl TreeAttentionMask {
    /// Builds the ancestor mask of `tree`.
    pub fn from_tree(tree: &TokenTree) -> Self {
        let size = tree.len();
        let mut rows = vec![vec![false; size]; size];
        for (id, node) in tree.iter() {
            let i = id.index();
            rows[i][i] = true;
            // Copy the parent's row: ancestors of the parent are ancestors of
            // the child.  Insertion order guarantees the parent row is final.
            if let Some(parent) = node.parent {
                let (head, tail) = rows.split_at_mut(i);
                let parent_row = &head[parent.index()];
                for (dst, &src) in tail[0].iter_mut().zip(parent_row.iter()) {
                    *dst |= src;
                }
            }
        }
        TreeAttentionMask { size, rows }
    }

    /// Number of nodes covered by the mask.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Returns `true` if `from` may attend to `to` (i.e. `to` is `from` or an
    /// ancestor of `from`).
    ///
    /// # Panics
    ///
    /// Panics if either node index is out of range.
    pub fn attends(&self, from: NodeId, to: NodeId) -> bool {
        self.rows[from.index()][to.index()]
    }

    /// The full attention row of a node (which flattened positions it sees).
    pub fn row(&self, from: NodeId) -> &[bool] {
        &self.rows[from.index()]
    }

    /// Number of `true` entries in the mask — the effective attention volume,
    /// useful for cost accounting and diagnostics.
    pub fn active_entries(&self) -> usize {
        self.rows.iter().flatten().filter(|&&b| b).count()
    }

    /// Checks the structural invariants of an ancestor mask: reflexivity,
    /// lower-triangularity (in topological order), and transitive closure.
    /// Intended for tests and debug assertions.
    pub fn is_consistent_with(&self, tree: &TokenTree) -> bool {
        if self.size != tree.len() {
            return false;
        }
        for (id, _) in tree.iter() {
            let i = id.index();
            if !self.rows[i][i] {
                return false;
            }
            for j in 0..self.size {
                let expected = tree.is_ancestor(NodeId::from_index(j), id);
                if self.rows[i][j] != expected {
                    return false;
                }
                if j > i && self.rows[i][j] {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::NodeOrigin;
    use specasr_tokenizer::TokenId;

    fn t(raw: u32) -> TokenId {
        TokenId::new(raw)
    }

    fn sample_tree() -> (TokenTree, Vec<NodeId>) {
        let mut tree = TokenTree::new();
        let n1 = tree.push_root(t(1), 0.9, NodeOrigin::Trunk);
        let n2 = tree.push_child(n1, t(2), 0.8, NodeOrigin::Trunk);
        let n3 = tree.push_child(n2, t(3), 0.7, NodeOrigin::Trunk);
        let n4 = tree.push_child(n1, t(4), 0.2, NodeOrigin::Branch);
        let n5 = tree.push_child(n4, t(5), 0.6, NodeOrigin::Recycled);
        (tree, vec![n1, n2, n3, n4, n5])
    }

    #[test]
    fn mask_matches_ancestry() {
        let (tree, n) = sample_tree();
        let mask = TreeAttentionMask::from_tree(&tree);
        assert_eq!(mask.size(), 5);
        assert!(mask.attends(n[2], n[0]));
        assert!(mask.attends(n[2], n[1]));
        assert!(mask.attends(n[2], n[2]));
        assert!(!mask.attends(n[2], n[3]));
        assert!(!mask.attends(n[2], n[4]));
        assert!(mask.attends(n[4], n[3]));
        assert!(mask.attends(n[4], n[0]));
        assert!(!mask.attends(n[4], n[1]));
        assert!(mask.is_consistent_with(&tree));
    }

    #[test]
    fn active_entries_counts_paths() {
        let (tree, _) = sample_tree();
        let mask = TreeAttentionMask::from_tree(&tree);
        // Sum over nodes of their depth: 1 + 2 + 3 + 2 + 3 = 11.
        assert_eq!(mask.active_entries(), 11);
    }

    #[test]
    fn empty_tree_yields_empty_mask() {
        let tree = TokenTree::new();
        let mask = TreeAttentionMask::from_tree(&tree);
        assert_eq!(mask.size(), 0);
        assert_eq!(mask.active_entries(), 0);
        assert!(mask.is_consistent_with(&tree));
    }

    #[test]
    fn linear_chain_gives_causal_mask() {
        let tree = TokenTree::from_sequence((0..6u32).map(|i| (t(i + 10), 0.9)), NodeOrigin::Trunk);
        let mask = TreeAttentionMask::from_tree(&tree);
        for i in 0..6 {
            for j in 0..6 {
                assert_eq!(
                    mask.attends(NodeId::from_index(i), NodeId::from_index(j)),
                    j <= i,
                    "causal mask mismatch at ({i}, {j})"
                );
            }
        }
    }

    #[test]
    fn inconsistent_size_is_detected() {
        let (tree, _) = sample_tree();
        let other = TokenTree::from_sequence([(t(1), 0.5)], NodeOrigin::Trunk);
        let mask = TreeAttentionMask::from_tree(&other);
        assert!(!mask.is_consistent_with(&tree));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::tree::NodeOrigin;
    use proptest::prelude::*;
    use specasr_tokenizer::TokenId;

    proptest! {
        /// Masks of randomly grown trees always satisfy the ancestor-mask
        /// invariants (reflexive, lower-triangular, matches tree ancestry).
        #[test]
        fn random_tree_masks_are_consistent(
            choices in proptest::collection::vec((any::<u16>(), 0u32..100), 1..50)
        ) {
            let mut tree = TokenTree::new();
            for (parent_choice, token) in choices {
                if tree.is_empty() || parent_choice % 7 == 0 {
                    tree.push_root(TokenId::new(token), 0.5, NodeOrigin::Trunk);
                } else {
                    let parent = NodeId::from_index((parent_choice as usize) % tree.len());
                    tree.push_child(parent, TokenId::new(token), 0.5, NodeOrigin::Branch);
                }
            }
            let mask = TreeAttentionMask::from_tree(&tree);
            prop_assert!(mask.is_consistent_with(&tree));
            // The number of active entries equals the sum of node depths.
            let depth_sum: usize = tree.iter().map(|(_, n)| n.depth).sum();
            prop_assert_eq!(mask.active_entries(), depth_sum);
        }
    }
}
