//! Flattening a token tree into one target-model verification batch.
//!
//! The target model verifies all candidate branches of the draft token tree
//! in a single forward pass.  A [`VerificationBatch`] carries everything that
//! pass needs: the flattened node order, the root path (prefix continuation)
//! of every node, and the 2-D attention mask.

use serde::{Deserialize, Serialize};
use specasr_tokenizer::TokenId;

use crate::mask::TreeAttentionMask;
use crate::tree::{NodeId, TokenTree};

/// The flattened view of a draft token tree handed to the target model.
///
/// # Example
///
/// ```
/// use specasr_runtime::{NodeOrigin, TokenTree, VerificationBatch};
/// use specasr_tokenizer::TokenId;
///
/// let mut tree = TokenTree::new();
/// let a = tree.push_root(TokenId::new(1), 0.9, NodeOrigin::Trunk);
/// tree.push_child(a, TokenId::new(2), 0.8, NodeOrigin::Trunk);
/// let batch = VerificationBatch::from_tree(&tree);
/// assert_eq!(batch.len(), 2);
/// assert_eq!(batch.path_of(batch.nodes()[1]), &[TokenId::new(1), TokenId::new(2)]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VerificationBatch {
    nodes: Vec<NodeId>,
    paths: Vec<Vec<TokenId>>,
    mask: TreeAttentionMask,
}

impl VerificationBatch {
    /// Flattens `tree` in topological (insertion) order.
    pub fn from_tree(tree: &TokenTree) -> Self {
        let nodes = tree.node_ids();
        let paths = nodes.iter().map(|&id| tree.path_tokens(id)).collect();
        VerificationBatch {
            nodes,
            paths,
            mask: TreeAttentionMask::from_tree(tree),
        }
    }

    /// Number of draft tokens the target will process in this pass.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` if the batch is empty (nothing to verify).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The flattened node order.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// The root path (committed-prefix continuation) of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not part of this batch.
    pub fn path_of(&self, node: NodeId) -> &[TokenId] {
        let position = self
            .nodes
            .iter()
            .position(|&n| n == node)
            .expect("node is part of this batch");
        &self.paths[position]
    }

    /// Iterates over `(node, path)` pairs in flattened order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &[TokenId])> {
        self.nodes
            .iter()
            .copied()
            .zip(self.paths.iter().map(Vec::as_slice))
    }

    /// The 2-D tree attention mask of the batch.
    pub fn mask(&self) -> &TreeAttentionMask {
        &self.mask
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::NodeOrigin;

    fn t(raw: u32) -> TokenId {
        TokenId::new(raw)
    }

    fn sample_tree() -> TokenTree {
        let mut tree = TokenTree::new();
        let n1 = tree.push_root(t(1), 0.9, NodeOrigin::Trunk);
        let n2 = tree.push_child(n1, t(2), 0.8, NodeOrigin::Trunk);
        tree.push_child(n2, t(3), 0.7, NodeOrigin::Trunk);
        let n4 = tree.push_child(n1, t(4), 0.2, NodeOrigin::Branch);
        tree.push_child(n4, t(5), 0.6, NodeOrigin::Recycled);
        tree
    }

    #[test]
    fn batch_preserves_tree_size_and_order() {
        let tree = sample_tree();
        let batch = VerificationBatch::from_tree(&tree);
        assert_eq!(batch.len(), tree.len());
        assert!(!batch.is_empty());
        for (i, (node, _)) in batch.iter().enumerate() {
            assert_eq!(node.index(), i);
        }
    }

    #[test]
    fn paths_match_the_tree() {
        let tree = sample_tree();
        let batch = VerificationBatch::from_tree(&tree);
        for (node, path) in batch.iter() {
            assert_eq!(path, tree.path_tokens(node).as_slice());
        }
        assert_eq!(batch.path_of(NodeId::from_index(4)), &[t(1), t(4), t(5)]);
    }

    #[test]
    fn mask_is_consistent() {
        let tree = sample_tree();
        let batch = VerificationBatch::from_tree(&tree);
        assert!(batch.mask().is_consistent_with(&tree));
        assert_eq!(batch.mask().size(), batch.len());
    }

    #[test]
    fn empty_tree_gives_empty_batch() {
        let batch = VerificationBatch::from_tree(&TokenTree::new());
        assert!(batch.is_empty());
        assert_eq!(batch.len(), 0);
    }

    #[test]
    #[should_panic(expected = "part of this batch")]
    fn path_of_unknown_node_panics() {
        let tree = sample_tree();
        let batch = VerificationBatch::from_tree(&tree);
        batch.path_of(NodeId::from_index(99));
    }
}
