//! Per-decode statistics: rounds, draft steps, predicted/accepted tokens.
//!
//! Fig. 12 of the paper compares speculative methods by (a) the number of
//! draft-prediction and target-verification rounds and (b) the average number
//! of draft decoding steps, predicted tokens per round, and accepted tokens
//! per round.  [`DecodeStats`] collects exactly those quantities while a
//! policy runs.

use serde::{Deserialize, Serialize};

/// Statistics of a single draft-predict / target-verify round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct RoundRecord {
    /// Draft tokens submitted for verification this round.
    pub predicted: usize,
    /// Draft tokens accepted by the target this round (corrections excluded).
    pub accepted: usize,
    /// Draft forward passes issued this round.
    pub draft_steps: usize,
    /// Size of the verified token tree (equals `predicted` for single
    /// sequences).
    pub tree_size: usize,
    /// Tokens adopted through recycling merges this round (no draft pass was
    /// spent on them).
    pub recycled: usize,
    /// Whether drafting was truncated early by the logit threshold.
    pub truncated: bool,
}

/// Aggregated statistics of one decode.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct DecodeStats {
    /// Number of draft-predict / target-verify rounds (1 round per target
    /// verification pass; autoregressive decoding has one "round" per token).
    pub rounds: usize,
    /// Total draft forward passes.
    pub draft_steps: usize,
    /// Total draft tokens submitted for verification.
    pub predicted_tokens: usize,
    /// Total draft tokens accepted by the target.
    pub accepted_tokens: usize,
    /// Tokens contributed directly by the target (corrections and bonus
    /// tokens).
    pub correction_tokens: usize,
    /// Tokens adopted through recycling merges.
    pub recycled_tokens: usize,
    /// Rounds that were truncated early by the logit threshold.
    pub truncations: usize,
    /// Per-round detail in execution order.
    pub rounds_detail: Vec<RoundRecord>,
}

impl DecodeStats {
    /// Creates empty statistics.
    pub fn new() -> Self {
        DecodeStats::default()
    }

    /// Records one completed round.
    pub fn record_round(&mut self, round: RoundRecord) {
        self.rounds += 1;
        self.draft_steps += round.draft_steps;
        self.predicted_tokens += round.predicted;
        self.accepted_tokens += round.accepted;
        self.recycled_tokens += round.recycled;
        if round.truncated {
            self.truncations += 1;
        }
        self.rounds_detail.push(round);
    }

    /// Records a token contributed directly by the target model.
    pub fn record_correction(&mut self) {
        self.correction_tokens += 1;
    }

    /// Average draft tokens predicted per round (0 when no rounds ran).
    pub fn predicted_per_round(&self) -> f64 {
        ratio(self.predicted_tokens, self.rounds)
    }

    /// Average draft tokens accepted per round.
    pub fn accepted_per_round(&self) -> f64 {
        ratio(self.accepted_tokens, self.rounds)
    }

    /// Average draft forward passes per round.
    pub fn draft_steps_per_round(&self) -> f64 {
        ratio(self.draft_steps, self.rounds)
    }

    /// The decoding-acceptance ratio: accepted / predicted tokens (the paper
    /// reports 94.4 % for adaptive single-sequence prediction).
    pub fn acceptance_ratio(&self) -> f64 {
        ratio(self.accepted_tokens, self.predicted_tokens)
    }

    /// Merges the statistics of another decode (used for split-level totals).
    pub fn merge(&mut self, other: &DecodeStats) {
        self.rounds += other.rounds;
        self.draft_steps += other.draft_steps;
        self.predicted_tokens += other.predicted_tokens;
        self.accepted_tokens += other.accepted_tokens;
        self.correction_tokens += other.correction_tokens;
        self.recycled_tokens += other.recycled_tokens;
        self.truncations += other.truncations;
        self.rounds_detail
            .extend(other.rounds_detail.iter().copied());
    }
}

fn ratio(numerator: usize, denominator: usize) -> f64 {
    if denominator == 0 {
        0.0
    } else {
        numerator as f64 / denominator as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round(predicted: usize, accepted: usize, steps: usize) -> RoundRecord {
        RoundRecord {
            predicted,
            accepted,
            draft_steps: steps,
            tree_size: predicted,
            recycled: 0,
            truncated: false,
        }
    }

    #[test]
    fn recording_rounds_accumulates_totals() {
        let mut stats = DecodeStats::new();
        stats.record_round(round(8, 6, 8));
        stats.record_round(round(8, 8, 8));
        stats.record_correction();
        stats.record_correction();
        assert_eq!(stats.rounds, 2);
        assert_eq!(stats.predicted_tokens, 16);
        assert_eq!(stats.accepted_tokens, 14);
        assert_eq!(stats.correction_tokens, 2);
        assert!((stats.predicted_per_round() - 8.0).abs() < 1e-12);
        assert!((stats.accepted_per_round() - 7.0).abs() < 1e-12);
        assert!((stats.acceptance_ratio() - 0.875).abs() < 1e-12);
    }

    #[test]
    fn truncations_and_recycling_are_counted() {
        let mut stats = DecodeStats::new();
        stats.record_round(RoundRecord {
            predicted: 12,
            accepted: 10,
            draft_steps: 7,
            tree_size: 12,
            recycled: 5,
            truncated: true,
        });
        assert_eq!(stats.truncations, 1);
        assert_eq!(stats.recycled_tokens, 5);
        assert_eq!(stats.rounds_detail.len(), 1);
    }

    #[test]
    fn empty_stats_report_zero_ratios() {
        let stats = DecodeStats::new();
        assert_eq!(stats.acceptance_ratio(), 0.0);
        assert_eq!(stats.predicted_per_round(), 0.0);
        assert_eq!(stats.draft_steps_per_round(), 0.0);
    }

    #[test]
    fn merge_pools_all_counters() {
        let mut a = DecodeStats::new();
        a.record_round(round(8, 6, 8));
        let mut b = DecodeStats::new();
        b.record_round(round(4, 4, 4));
        b.record_correction();
        a.merge(&b);
        assert_eq!(a.rounds, 2);
        assert_eq!(a.predicted_tokens, 12);
        assert_eq!(a.accepted_tokens, 10);
        assert_eq!(a.correction_tokens, 1);
        assert_eq!(a.rounds_detail.len(), 2);
    }
}
