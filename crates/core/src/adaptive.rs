//! Adaptive single-sequence prediction (ASP) with draft sequence recycling —
//! the first two SpecASR techniques.
//!
//! The draft model speculates a *long* sequence (up to 24 tokens) but
//! truncates early whenever the normalised top-1 logit of a drafted token
//! falls below the truncation threshold: a low logit is strongly correlated
//! with verification failure, so drafting past it would mostly be wasted.
//! When verification rejects a suffix, the rejected tokens are retained and
//! merged back into the next round's draft ([`crate::RecycleBuffer`]),
//! which removes most of the regeneration cost.

use specasr_models::{AsrDecoderModel, UtteranceTokens};

use crate::config::AdaptiveConfig;
use crate::outcome::DecodeOutcome;
use crate::policy::Policy;
use crate::session::DecodeSession;

/// SpecASR's adaptive single-sequence decoder.
///
/// # Example
///
/// ```
/// use specasr::{AdaptiveConfig, AdaptiveDecoder};
/// use specasr_audio::{Corpus, Split};
/// use specasr_models::{AsrDecoderModel, ModelProfile, SimulatedAsrModel, TokenizerBinding};
///
/// let corpus = Corpus::librispeech_like(1, 1);
/// let binding = TokenizerBinding::for_corpus(&corpus);
/// let audio = binding.bind(&corpus.split(Split::TestClean)[0]);
/// let target = SimulatedAsrModel::target(ModelProfile::whisper_medium_en(), 7);
/// let draft = SimulatedAsrModel::draft_paired(ModelProfile::whisper_tiny_en(), 8, &target);
///
/// let outcome = AdaptiveDecoder::new(AdaptiveConfig::paper()).decode(&draft, &target, &audio);
/// assert_eq!(outcome.tokens, target.greedy_transcript(&audio)); // lossless
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveDecoder {
    config: AdaptiveConfig,
}

impl AdaptiveDecoder {
    /// Creates a decoder with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`AdaptiveConfig::validate`]).
    pub fn new(config: AdaptiveConfig) -> Self {
        config.validate();
        AdaptiveDecoder { config }
    }

    /// The decoder configuration.
    pub fn config(&self) -> &AdaptiveConfig {
        &self.config
    }

    /// Decodes `audio`, drafting with `draft` and verifying with `target`.
    ///
    /// Runs a [`DecodeSession`] to completion; the round-by-round mechanics
    /// live in [`crate::DecodeSession::draft_round`] and
    /// [`crate::DecodeSession::verify_round`].
    pub fn decode<D, T>(&self, draft: &D, target: &T, audio: &UtteranceTokens) -> DecodeOutcome
    where
        D: AsrDecoderModel + ?Sized,
        T: AsrDecoderModel + ?Sized,
    {
        DecodeSession::new(Policy::AdaptiveSingleSequence(self.config), audio.clone())
            .run(draft, target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SpeculativeConfig;
    use crate::speculative::SpeculativeDecoder;
    use crate::stats::DecodeStats;
    use specasr_audio::{Corpus, Split};
    use specasr_models::{ModelProfile, SimulatedAsrModel, TokenizerBinding};

    fn setup(split: Split) -> (SimulatedAsrModel, SimulatedAsrModel, Vec<UtteranceTokens>) {
        let corpus = Corpus::librispeech_like(31, 8);
        let binding = TokenizerBinding::for_corpus(&corpus);
        let audio = binding.bind_all(corpus.split(split));
        let target = SimulatedAsrModel::target(ModelProfile::whisper_medium_en(), 7);
        let draft = SimulatedAsrModel::draft_paired(ModelProfile::whisper_tiny_en(), 8, &target);
        (draft, target, audio)
    }

    #[test]
    fn adaptive_decoding_is_lossless() {
        let (draft, target, audio) = setup(Split::TestOther);
        for config in [AdaptiveConfig::paper(), AdaptiveConfig::without_recycling()] {
            let decoder = AdaptiveDecoder::new(config);
            for utt in &audio {
                assert_eq!(
                    decoder.decode(&draft, &target, utt).tokens,
                    target.greedy_transcript(utt)
                );
            }
        }
    }

    #[test]
    fn adaptive_prediction_needs_fewer_rounds_than_the_baseline() {
        let (draft, target, audio) = setup(Split::TestClean);
        let baseline = SpeculativeDecoder::new(SpeculativeConfig::short_single());
        let adaptive = AdaptiveDecoder::new(AdaptiveConfig::without_recycling());
        let mut baseline_rounds = 0usize;
        let mut adaptive_rounds = 0usize;
        for utt in &audio {
            baseline_rounds += baseline.decode(&draft, &target, utt).stats.rounds;
            adaptive_rounds += adaptive.decode(&draft, &target, utt).stats.rounds;
        }
        assert!(
            adaptive_rounds < baseline_rounds,
            "adaptive rounds ({adaptive_rounds}) should undercut baseline rounds ({baseline_rounds})"
        );
    }

    #[test]
    fn adaptive_prediction_improves_the_acceptance_ratio() {
        let (draft, target, audio) = setup(Split::TestClean);
        let baseline = SpeculativeDecoder::new(SpeculativeConfig::long_single());
        let adaptive = AdaptiveDecoder::new(AdaptiveConfig::without_recycling());
        let mut baseline_stats = DecodeStats::new();
        let mut adaptive_stats = DecodeStats::new();
        for utt in &audio {
            baseline_stats.merge(&baseline.decode(&draft, &target, utt).stats);
            adaptive_stats.merge(&adaptive.decode(&draft, &target, utt).stats);
        }
        assert!(
            adaptive_stats.acceptance_ratio() > baseline_stats.acceptance_ratio(),
            "adaptive acceptance ({:.3}) should exceed baseline acceptance ({:.3})",
            adaptive_stats.acceptance_ratio(),
            baseline_stats.acceptance_ratio()
        );
        assert!(
            adaptive_stats.truncations > 0,
            "the threshold should fire on noisy audio"
        );
    }

    #[test]
    fn recycling_reduces_draft_latency() {
        let (draft, target, audio) = setup(Split::TestOther);
        let without = AdaptiveDecoder::new(AdaptiveConfig::without_recycling());
        let with = AdaptiveDecoder::new(AdaptiveConfig::paper());
        let mut draft_ms_without = 0.0;
        let mut draft_ms_with = 0.0;
        let mut recycled = 0usize;
        for utt in &audio {
            draft_ms_without += without.decode(&draft, &target, utt).latency().draft_ms;
            let outcome = with.decode(&draft, &target, utt);
            draft_ms_with += outcome.latency().draft_ms;
            recycled += outcome.stats.recycled_tokens;
        }
        assert!(
            recycled > 0,
            "recycling should adopt at least some tokens on noisy audio"
        );
        assert!(
            draft_ms_with < draft_ms_without,
            "recycling draft time ({draft_ms_with:.1} ms) should undercut non-recycling ({draft_ms_without:.1} ms)"
        );
    }

    #[test]
    fn extreme_thresholds_behave_sensibly() {
        let (draft, target, audio) = setup(Split::TestClean);
        let utt = &audio[0];
        // Threshold 0: never truncate → behaves like fixed length-24 drafting.
        let never = AdaptiveDecoder::new(AdaptiveConfig::paper().with_threshold(0.0))
            .decode(&draft, &target, utt);
        assert_eq!(never.stats.truncations, 0);
        // Threshold 1: truncate after every token → degenerates towards
        // one-token drafts but stays lossless.
        let always = AdaptiveDecoder::new(AdaptiveConfig::paper().with_threshold(1.0))
            .decode(&draft, &target, utt);
        assert_eq!(always.tokens, target.greedy_transcript(utt));
        assert!(always.stats.rounds >= never.stats.rounds);
    }

    #[test]
    fn draft_steps_match_clock_passes() {
        let (draft, target, audio) = setup(Split::DevOther);
        let outcome =
            AdaptiveDecoder::new(AdaptiveConfig::paper()).decode(&draft, &target, &audio[0]);
        assert_eq!(
            outcome.stats.draft_steps as u64,
            outcome.clock.draft_passes()
        );
        assert_eq!(outcome.stats.rounds as u64, outcome.clock.target_passes());
    }
}
