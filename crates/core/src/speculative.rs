//! Baseline speculative decoding with a fixed prediction length and optional
//! beams — the `(8, 1)`, `(16, 1)`, and `(8, 2)` configurations the paper
//! compares against.

use specasr_models::{AsrDecoderModel, UtteranceTokens};

use crate::config::SpeculativeConfig;
use crate::outcome::DecodeOutcome;
use crate::policy::Policy;
use crate::session::DecodeSession;

/// Classic draft-then-verify speculative decoding.
///
/// With one beam the draft speculates `prediction_length` tokens greedily and
/// the target verifies them in one pass.  With `beams > 1` the draft keeps the
/// top-`beams` candidates of its *first* step and extends each greedily,
/// producing a fixed token tree that the target verifies with a 2-D attention
/// mask (the SpecInfer-style baseline).
///
/// # Example
///
/// ```
/// use specasr::{SpeculativeConfig, SpeculativeDecoder};
/// use specasr_audio::{Corpus, Split};
/// use specasr_models::{AsrDecoderModel, ModelProfile, SimulatedAsrModel, TokenizerBinding};
///
/// let corpus = Corpus::librispeech_like(1, 1);
/// let binding = TokenizerBinding::for_corpus(&corpus);
/// let audio = binding.bind(&corpus.split(Split::TestClean)[0]);
/// let target = SimulatedAsrModel::target(ModelProfile::whisper_medium_en(), 7);
/// let draft = SimulatedAsrModel::draft_paired(ModelProfile::whisper_tiny_en(), 8, &target);
///
/// let outcome = SpeculativeDecoder::new(SpeculativeConfig::short_single())
///     .decode(&draft, &target, &audio);
/// assert_eq!(outcome.tokens, target.greedy_transcript(&audio)); // lossless
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpeculativeDecoder {
    config: SpeculativeConfig,
}

impl SpeculativeDecoder {
    /// Creates a decoder with the given configuration.
    pub fn new(config: SpeculativeConfig) -> Self {
        SpeculativeDecoder { config }
    }

    /// The decoder configuration.
    pub fn config(&self) -> &SpeculativeConfig {
        &self.config
    }

    /// Decodes `audio`, drafting with `draft` and verifying with `target`.
    ///
    /// Runs a [`DecodeSession`] to completion; the per-round draft/verify
    /// mechanics (including the beam-tree construction) live in
    /// [`crate::DecodeSession`].
    pub fn decode<D, T>(&self, draft: &D, target: &T, audio: &UtteranceTokens) -> DecodeOutcome
    where
        D: AsrDecoderModel + ?Sized,
        T: AsrDecoderModel + ?Sized,
    {
        DecodeSession::new(Policy::Speculative(self.config), audio.clone()).run(draft, target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::autoregressive::AutoregressiveDecoder;
    use specasr_audio::{Corpus, Split};
    use specasr_models::{ModelProfile, SimulatedAsrModel, TokenizerBinding};

    fn setup() -> (SimulatedAsrModel, SimulatedAsrModel, Vec<UtteranceTokens>) {
        let corpus = Corpus::librispeech_like(29, 6);
        let binding = TokenizerBinding::for_corpus(&corpus);
        let audio = binding.bind_all(corpus.split(Split::TestClean));
        let target = SimulatedAsrModel::target(ModelProfile::whisper_medium_en(), 7);
        let draft = SimulatedAsrModel::draft_paired(ModelProfile::whisper_tiny_en(), 8, &target);
        (draft, target, audio)
    }

    #[test]
    fn all_baseline_configs_are_lossless() {
        let (draft, target, audio) = setup();
        for config in [
            SpeculativeConfig::short_single(),
            SpeculativeConfig::long_single(),
            SpeculativeConfig::short_double_beam(),
        ] {
            let decoder = SpeculativeDecoder::new(config);
            for utt in &audio {
                let reference = target.greedy_transcript(utt);
                let outcome = decoder.decode(&draft, &target, utt);
                assert_eq!(outcome.tokens, reference, "config {:?}", config);
            }
        }
    }

    #[test]
    fn speculative_decoding_is_faster_than_autoregressive() {
        let (draft, target, audio) = setup();
        let spec = SpeculativeDecoder::new(SpeculativeConfig::short_single());
        let mut spec_ms = 0.0;
        let mut ar_ms = 0.0;
        for utt in &audio {
            spec_ms += spec.decode(&draft, &target, utt).decode_ms();
            ar_ms += AutoregressiveDecoder::new()
                .decode(&target, utt)
                .decode_ms();
        }
        assert!(
            spec_ms < ar_ms,
            "speculative ({spec_ms:.1} ms) should beat autoregressive ({ar_ms:.1} ms)"
        );
    }

    #[test]
    fn rounds_and_passes_are_consistent() {
        let (draft, target, audio) = setup();
        let outcome = SpeculativeDecoder::new(SpeculativeConfig::short_single())
            .decode(&draft, &target, &audio[0]);
        assert_eq!(outcome.stats.rounds as u64, outcome.clock.target_passes());
        assert_eq!(
            outcome.stats.draft_steps as u64,
            outcome.clock.draft_passes()
        );
        assert!(outcome.stats.accepted_tokens <= outcome.stats.predicted_tokens);
        assert!(outcome.stats.acceptance_ratio() <= 1.0);
    }

    #[test]
    fn longer_prediction_length_means_fewer_rounds() {
        let (draft, target, audio) = setup();
        let mut short_rounds = 0usize;
        let mut long_rounds = 0usize;
        for utt in &audio {
            short_rounds += SpeculativeDecoder::new(SpeculativeConfig::new(4, 1))
                .decode(&draft, &target, utt)
                .stats
                .rounds;
            long_rounds += SpeculativeDecoder::new(SpeculativeConfig::new(16, 1))
                .decode(&draft, &target, utt)
                .stats
                .rounds;
        }
        assert!(long_rounds < short_rounds);
    }

    #[test]
    fn beam_trees_are_larger_than_single_sequences() {
        let (draft, target, audio) = setup();
        let single = SpeculativeDecoder::new(SpeculativeConfig::new(8, 1))
            .decode(&draft, &target, &audio[0]);
        let double = SpeculativeDecoder::new(SpeculativeConfig::new(8, 2))
            .decode(&draft, &target, &audio[0]);
        let single_avg_tree = single
            .stats
            .rounds_detail
            .iter()
            .map(|r| r.tree_size)
            .sum::<usize>() as f64
            / single.stats.rounds as f64;
        let double_avg_tree = double
            .stats
            .rounds_detail
            .iter()
            .map(|r| r.tree_size)
            .sum::<usize>() as f64
            / double.stats.rounds as f64;
        assert!(double_avg_tree > single_avg_tree);
        // The beam configuration is still lossless.
        assert_eq!(double.tokens, target.greedy_transcript(&audio[0]));
    }

    #[test]
    fn kv_caches_end_at_the_committed_length() {
        let (draft, target, audio) = setup();
        let outcome = SpeculativeDecoder::new(SpeculativeConfig::short_single())
            .decode(&draft, &target, &audio[2]);
        let committed = audio[2].prefill_tokens() + outcome.tokens.len();
        assert!(outcome.target_cache.len() <= committed + 1);
        assert_eq!(
            outcome.target_cache.prefill_len(),
            audio[2].prefill_tokens()
        );
        assert_eq!(outcome.draft_cache.prefill_len(), audio[2].prefill_tokens());
        // Speculative positions that were appended but not committed must have
        // been discarded by rollbacks.
        let appended: usize = outcome
            .stats
            .rounds_detail
            .iter()
            .map(|r| r.tree_size)
            .sum();
        assert_eq!(
            outcome.target_cache.positions_discarded(),
            appended - outcome.target_cache.generated_len()
        );
    }
}
