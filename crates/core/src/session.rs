//! Round-level decoding sessions: the steppable core of every policy.
//!
//! Historically each decoder owned a blocking `decode` loop; a serving
//! scheduler cannot interleave work across utterances through such a loop.
//! [`DecodeSession`] splits one utterance's decode into explicit *rounds*:
//!
//! 1. [`DecodeSession::draft_round`] — the session's draft source speculates
//!    this round's material (a token sequence or a sparse token tree,
//!    depending on the policy) and the session records the draft-side
//!    latency.  The source is any [`crate::Drafter`]: the classic draft
//!    *model* ([`crate::ModelDrafter`], the historical `draft_round` path),
//!    or a draft-free source (CTC collapse, token-map walk) stepped through
//!    [`DecodeSession::draft_round_with`];
//! 2. [`DecodeSession::verify_round`] — the target model verifies the drafted
//!    material, the accepted prefix plus correction token are committed, and
//!    KV caches, statistics, and the recycle buffer are updated.
//!
//! [`DecodeSession::step`] chains the two for single-utterance use, and every
//! decoder's `decode` method is now a thin wrapper that runs a session to
//! completion — so a scheduler that interleaves `draft_round`/`verify_round`
//! calls across many sessions produces byte-identical transcripts to
//! sequential decoding (the lossless invariant serving relies on).
//!
//! The drafted material is returned as an opaque [`DraftedRound`]; its
//! [`DraftedRound::verify_tokens`] exposes how many tokens the target pass
//! must process, which is what a continuous-batching scheduler needs to cost
//! a grouped verification step before running it.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use specasr_models::{
    AsrBackend, AsrDecoderModel, BackendModelBridge, DecodeClock, ForwardRequest, ForwardResult,
    ModelProfile, TokenLogits, UtteranceTokens,
};
use specasr_runtime::{BlockTable, KvPool, PoolError, TokenTree};
use specasr_tokenizer::TokenId;

use crate::drafter::{DraftRequest, Drafter, DrafterKind, ModelDrafter};
use crate::outcome::DecodeOutcome;
use crate::policy::Policy;
use crate::recycle::RecycleBuffer;
use crate::round::commit_round;
use crate::stats::{DecodeStats, RoundRecord};
use crate::verify::{verify_sequence, verify_tree};

/// The material one draft phase produced, waiting to be verified.
///
/// Opaque by design: schedulers only need the verification width; the
/// policy-specific payload goes straight back into
/// [`DecodeSession::verify_round`].
#[derive(Debug, Clone, PartialEq)]
pub struct DraftedRound {
    pub(crate) plan: RoundPlan,
}

#[derive(Debug, Clone, PartialEq)]
pub(crate) enum RoundPlan {
    /// Autoregressive decoding drafts nothing; verification emits one token.
    Autoregressive,
    /// A single draft sequence (speculative baseline or adaptive prediction).
    Sequence {
        tokens: Vec<TokenId>,
        steps: usize,
        recycled: usize,
        truncated: bool,
    },
    /// A single draft sequence produced *without* the draft model (CTC
    /// collapse, token-map walk): verified exactly like
    /// [`RoundPlan::Sequence`] but appending zero draft-KV positions and
    /// charging zero draft forward passes.
    ExternalSequence { tokens: Vec<TokenId> },
    /// A draft token tree (beam baseline or two-pass sparse tree).  For the
    /// sparse tree the trunk is kept for the recycle-buffer update.
    Tree {
        tree: TokenTree,
        trunk_tokens: Option<Vec<TokenId>>,
        steps: usize,
        recycled: usize,
    },
}

impl DraftedRound {
    /// An autoregressive round: draft nothing, verify one token.  The plan
    /// every [`crate::Drafter`] must return under
    /// [`Policy::Autoregressive`].
    pub fn autoregressive() -> Self {
        DraftedRound {
            plan: RoundPlan::Autoregressive,
        }
    }

    /// A draft-free sequence round: `tokens` were produced outside the draft
    /// model (e.g. CTC collapse or a token-map walk), so verification prices
    /// a target pass over them but appends zero draft-KV positions and
    /// charges zero draft latency.  An empty draft is valid and degrades the
    /// round to a single correction token — losslessness is unaffected
    /// either way, since verification only commits target-matching tokens.
    ///
    /// This is the constructor external [`crate::Drafter`] implementations
    /// build their rounds with.
    pub fn external(tokens: Vec<TokenId>) -> Self {
        DraftedRound {
            plan: RoundPlan::ExternalSequence { tokens },
        }
    }

    /// Number of tokens the target model will process when verifying this
    /// round (the width of the verification forward pass).
    pub fn verify_tokens(&self) -> usize {
        match &self.plan {
            RoundPlan::Autoregressive => 1,
            RoundPlan::Sequence { tokens, .. } | RoundPlan::ExternalSequence { tokens } => {
                tokens.len().max(1)
            }
            RoundPlan::Tree { tree, .. } => tree.len().max(1),
        }
    }

    /// Number of draft tokens submitted for verification (0 for
    /// autoregressive rounds, which draft nothing).
    pub fn predicted_tokens(&self) -> usize {
        match &self.plan {
            RoundPlan::Autoregressive => 0,
            RoundPlan::Sequence { tokens, .. } | RoundPlan::ExternalSequence { tokens } => {
                tokens.len()
            }
            RoundPlan::Tree { tree, .. } => tree.len(),
        }
    }

    /// The probe extensions one verification forward pass over this round
    /// must score (relative to the committed prefix): the empty probe (the
    /// correction/bonus position) plus every draft position — each prefix of
    /// a drafted sequence, or each root-to-node path of a drafted token tree
    /// (including the sparse-tree trunk, whose per-position target outputs
    /// the recycle-buffer update reads off the same pass).
    ///
    /// This is the probe list [`DecodeSession::verify_request`] submits and
    /// [`DecodeSession::verify_round_from_in`] re-derives to interpret the
    /// returned logits, so the two always agree.
    pub fn probe_extensions(&self) -> Vec<Vec<TokenId>> {
        let mut probes: Vec<Vec<TokenId>> = vec![Vec::new()];
        match &self.plan {
            RoundPlan::Autoregressive => {}
            RoundPlan::Sequence { tokens, .. } | RoundPlan::ExternalSequence { tokens } => {
                for end in 1..=tokens.len() {
                    probes.push(tokens[..end].to_vec());
                }
            }
            RoundPlan::Tree {
                tree, trunk_tokens, ..
            } => {
                // Distinct branches can in principle spell identical token
                // paths; dedup keeps the probe list minimal (insertion order
                // stays deterministic — the set only filters).
                let mut seen: HashSet<Vec<TokenId>> = HashSet::new();
                seen.insert(Vec::new());
                let mut push_unique = |probe: Vec<TokenId>, probes: &mut Vec<Vec<TokenId>>| {
                    if seen.insert(probe.clone()) {
                        probes.push(probe);
                    }
                };
                for id in tree.node_ids() {
                    push_unique(tree.path_tokens(id), &mut probes);
                }
                if let Some(trunk) = trunk_tokens {
                    for end in 1..=trunk.len() {
                        push_unique(trunk[..end].to_vec(), &mut probes);
                    }
                }
            }
        }
        probes
    }

    /// KV positions this round appends to the (draft, target) caches before
    /// the post-commit rollback — the widths the paged pool must have room
    /// for.
    fn kv_widths(&self) -> (usize, usize) {
        match &self.plan {
            RoundPlan::Autoregressive => (0, 1),
            RoundPlan::Sequence { tokens, .. } => (tokens.len(), tokens.len()),
            // Draft-free material never entered a draft model, so no draft
            // KV positions exist to append — only the target cache grows.
            RoundPlan::ExternalSequence { tokens } => (0, tokens.len()),
            RoundPlan::Tree {
                tree,
                trunk_tokens,
                steps,
                ..
            } => {
                // The beam baseline counted its draft appends as
                // max(tree, steps); the sparse tree appends the tree size.
                let draft = if trunk_tokens.is_some() {
                    tree.len()
                } else {
                    tree.len().max(*steps)
                };
                (draft, tree.len())
            }
        }
    }
}

/// Fresh (draft, target) block demand of one drafted round against a pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct KvDemand {
    /// Fresh draft sub-pool blocks the round's appends would consume.
    pub draft_blocks: usize,
    /// Fresh target sub-pool blocks the round's appends would consume.
    pub target_blocks: usize,
}

/// Where a session's KV blocks live.
#[derive(Debug, Clone)]
enum SessionKv {
    /// A standalone session owns an unbounded private pool (the blocking
    /// `Policy::decode` path, where allocation must never fail).
    Private {
        pool: Box<KvPool>,
        draft: BlockTable,
        target: BlockTable,
    },
    /// A served session allocates from a scheduler-owned shared pool and is
    /// stepped through [`DecodeSession::verify_round_in`].
    Pooled {
        draft: BlockTable,
        target: BlockTable,
    },
}

impl SessionKv {
    fn tables(&self) -> (&BlockTable, &BlockTable) {
        match self {
            SessionKv::Private { draft, target, .. } | SessionKv::Pooled { draft, target } => {
                (draft, target)
            }
        }
    }
}

/// One utterance's in-flight decode under a policy, steppable round by round.
///
/// # Example
///
/// ```
/// use specasr::{AdaptiveConfig, DecodeSession, Policy};
/// use specasr_audio::{Corpus, Split};
/// use specasr_models::{AsrDecoderModel, ModelProfile, SimulatedAsrModel, TokenizerBinding};
///
/// let corpus = Corpus::librispeech_like(1, 1);
/// let binding = TokenizerBinding::for_corpus(&corpus);
/// let audio = binding.bind(&corpus.split(Split::TestClean)[0]);
/// let target = SimulatedAsrModel::target(ModelProfile::whisper_medium_en(), 7);
/// let draft = SimulatedAsrModel::draft_paired(ModelProfile::whisper_tiny_en(), 8, &target);
///
/// let policy = Policy::AdaptiveSingleSequence(AdaptiveConfig::paper());
/// let mut session = DecodeSession::new(policy, audio.clone());
/// while !session.is_finished() {
///     let drafted = session.draft_round(&draft);
///     session.verify_round(&target, drafted);
/// }
/// let outcome = session.into_outcome();
/// assert_eq!(outcome.tokens, target.greedy_transcript(&audio)); // lossless
/// ```
#[derive(Debug, Clone)]
pub struct DecodeSession {
    policy: Policy,
    drafter: DrafterKind,
    /// Shared so backend `ForwardRequest`s reference it without copying.
    audio: Arc<UtteranceTokens>,
    tokens: Vec<TokenId>,
    stats: DecodeStats,
    clock: DecodeClock,
    kv: SessionKv,
    recycle: RecycleBuffer,
    finished: bool,
    cap: usize,
}

/// Block size of a standalone session's private pool.  Position bookkeeping
/// is independent of the paging granularity, so any value keeps standalone
/// outcomes byte-identical; 16 matches the serving default.
const PRIVATE_BLOCK_SIZE: usize = 16;

impl DecodeSession {
    /// Starts a session for `audio` under `policy`.
    ///
    /// # Panics
    ///
    /// Panics if the policy carries an invalid configuration (mirroring the
    /// decoder constructors).
    pub fn new(policy: Policy, audio: UtteranceTokens) -> Self {
        Self::new_with_drafter(policy, audio, DrafterKind::ModelDraft)
    }

    /// Starts a session drafting from `drafter` (see [`DrafterKind`]).
    /// Draft-free kinds never prefill or append the draft KV cache — the
    /// session's [`DecodeSession::round_kv_demand`] reports zero draft
    /// blocks every round — and must be stepped with
    /// [`DecodeSession::draft_round_with`] using a matching
    /// [`crate::Drafter`].
    ///
    /// # Panics
    ///
    /// Panics if the policy carries an invalid configuration (mirroring
    /// [`DecodeSession::new`]).
    pub fn new_with_drafter(policy: Policy, audio: UtteranceTokens, drafter: DrafterKind) -> Self {
        Self::validate_policy(&policy);
        let mut pool = Box::new(KvPool::unbounded(PRIVATE_BLOCK_SIZE));
        let mut draft = BlockTable::new();
        let mut target = BlockTable::new();
        // Autoregressive decoding never touches the draft model, and
        // draft-free drafters never hold a draft KV cache, so in both cases
        // the draft table stays empty, exactly as the blocking decoder
        // reported it.
        if Self::holds_draft_kv(&policy, drafter) {
            pool.draft_mut()
                .prefill(&mut draft, audio.prefill_tokens(), None)
                .expect("an unbounded pool always accepts a first prefill");
        }
        pool.target_mut()
            .prefill(&mut target, audio.prefill_tokens(), None)
            .expect("an unbounded pool always accepts a first prefill");
        Self::construct(
            policy,
            drafter,
            audio,
            SessionKv::Private {
                pool,
                draft,
                target,
            },
        )
    }

    /// Starts a session whose KV blocks come from a shared paged `pool`
    /// (the serving path): prefix blocks are shared with resident sessions
    /// holding an identical prompt+audio prefix (see
    /// [`UtteranceTokens::prefix_key`]), and allocation failures surface as
    /// typed errors instead of panics so an over-committed or malformed
    /// request cannot take down a serving worker.
    ///
    /// On error nothing stays allocated.  Sessions built this way must be
    /// stepped with [`DecodeSession::verify_round_in`] and released with
    /// [`DecodeSession::release_kv`].
    ///
    /// # Panics
    ///
    /// Panics if the policy carries an invalid configuration (mirroring
    /// [`DecodeSession::new`]; policies are server-side configuration, not
    /// request payload).
    pub fn new_in(
        policy: Policy,
        audio: UtteranceTokens,
        pool: &mut KvPool,
    ) -> Result<Self, PoolError> {
        Self::new_in_with_drafter(policy, audio, DrafterKind::ModelDraft, pool)
    }

    /// The shared-pool form of [`DecodeSession::new_with_drafter`]: a
    /// draft-free session prefills only the target sub-pool, so its whole
    /// KV footprint — admission, per-round demand, preemption-victim size —
    /// is target-side only.
    ///
    /// # Panics
    ///
    /// Panics if the policy carries an invalid configuration (mirroring
    /// [`DecodeSession::new_in`]).
    pub fn new_in_with_drafter(
        policy: Policy,
        audio: UtteranceTokens,
        drafter: DrafterKind,
        pool: &mut KvPool,
    ) -> Result<Self, PoolError> {
        Self::validate_policy(&policy);
        let key = Some(audio.prefix_key());
        let mut draft = BlockTable::new();
        let mut target = BlockTable::new();
        if Self::holds_draft_kv(&policy, drafter) {
            pool.draft_mut()
                .prefill(&mut draft, audio.prefill_tokens(), key)?;
        }
        if let Err(error) = pool
            .target_mut()
            .prefill(&mut target, audio.prefill_tokens(), key)
        {
            pool.draft_mut().release(&mut draft);
            return Err(error);
        }
        Ok(Self::construct(
            policy,
            drafter,
            audio,
            SessionKv::Pooled { draft, target },
        ))
    }

    /// Starts a session that continues decoding after `committed` transcript
    /// tokens (the streaming re-decode path): the context and both KV tables
    /// are seeded as if those tokens had just been committed, and the next
    /// round drafts from the end of the committed prefix.
    ///
    /// Committed tokens produced by any lossless decode are exactly the
    /// target's greedy choices, and every policy's continuation is a
    /// deterministic function of `(audio, committed prefix)` — so a resumed
    /// session commits exactly the tokens the original session would have
    /// committed after the same prefix, for every policy.  (The recycle
    /// buffer starts empty, which can change round boundaries but never the
    /// committed transcript.)
    ///
    /// # Panics
    ///
    /// Panics if the policy carries an invalid configuration (mirroring
    /// [`DecodeSession::new`]).
    pub fn resume(policy: Policy, audio: UtteranceTokens, committed: &[TokenId]) -> Self {
        Self::resume_with_drafter(policy, audio, DrafterKind::ModelDraft, committed)
    }

    /// [`DecodeSession::resume`] with an explicit draft source (see
    /// [`DecodeSession::new_with_drafter`]).  Draft-free sessions seed the
    /// committed prefix into the target cache only.
    ///
    /// # Panics
    ///
    /// Panics if the policy carries an invalid configuration.
    pub fn resume_with_drafter(
        policy: Policy,
        audio: UtteranceTokens,
        drafter: DrafterKind,
        committed: &[TokenId],
    ) -> Self {
        let mut session = DecodeSession::new_with_drafter(policy, audio, drafter);
        session
            .seed_committed(None, committed)
            .expect("an unbounded pool always accepts the committed prefix");
        session
    }

    /// The shared-pool form of [`DecodeSession::resume`]: like
    /// [`DecodeSession::new_in`], prefix blocks are shared where possible,
    /// allocation failures surface as typed errors, and nothing stays
    /// allocated on error.  Sessions built this way must be stepped with
    /// [`DecodeSession::verify_round_in`].
    ///
    /// # Panics
    ///
    /// Panics if the policy carries an invalid configuration.
    pub fn resume_in(
        policy: Policy,
        audio: UtteranceTokens,
        committed: &[TokenId],
        pool: &mut KvPool,
    ) -> Result<Self, PoolError> {
        Self::resume_in_with_drafter(policy, audio, DrafterKind::ModelDraft, committed, pool)
    }

    /// The shared-pool form of [`DecodeSession::resume_with_drafter`]; see
    /// [`DecodeSession::resume_in`] for the error contract.
    ///
    /// # Panics
    ///
    /// Panics if the policy carries an invalid configuration.
    pub fn resume_in_with_drafter(
        policy: Policy,
        audio: UtteranceTokens,
        drafter: DrafterKind,
        committed: &[TokenId],
        pool: &mut KvPool,
    ) -> Result<Self, PoolError> {
        let mut session = DecodeSession::new_in_with_drafter(policy, audio, drafter, pool)?;
        if let Err(error) = session.seed_committed(Some(pool), committed) {
            session.release_kv(pool);
            return Err(error);
        }
        Ok(session)
    }

    /// Whether sessions under this `(policy, drafter)` pair hold a draft KV
    /// cache at all: autoregressive decoding never queries a draft source,
    /// and draft-free sources never hold draft state.
    fn holds_draft_kv(policy: &Policy, drafter: DrafterKind) -> bool {
        !matches!(policy, Policy::Autoregressive) && drafter.uses_draft_kv()
    }

    /// Seeds the committed prefix into a freshly prefilled session: the
    /// transcript takes the tokens and both KV tables grow by the committed
    /// width (the state a session holds right after committing them).
    fn seed_committed(
        &mut self,
        pool: Option<&mut KvPool>,
        committed: &[TokenId],
    ) -> Result<(), PoolError> {
        if committed.is_empty() {
            return Ok(());
        }
        // Sessions without a draft KV cache (autoregressive, or draft-free
        // drafters) never touch the draft table; every other configuration
        // holds prefill + committed positions in both tables.
        let draft_width = if Self::holds_draft_kv(&self.policy, self.drafter) {
            committed.len()
        } else {
            0
        };
        self.kv_append(pool, draft_width, committed.len())?;
        self.tokens.extend_from_slice(committed);
        Ok(())
    }

    fn validate_policy(policy: &Policy) {
        match policy {
            Policy::AdaptiveSingleSequence(config) => config.validate(),
            Policy::TwoPassSparseTree(config) => config.validate(),
            Policy::Autoregressive | Policy::Speculative(_) => {}
        }
    }

    fn construct(
        policy: Policy,
        drafter: DrafterKind,
        audio: UtteranceTokens,
        kv: SessionKv,
    ) -> Self {
        let cap = audio.len() * 2 + 16;
        let token_capacity = audio.len() + 1;
        DecodeSession {
            policy,
            drafter,
            audio: Arc::new(audio),
            tokens: Vec::with_capacity(token_capacity),
            stats: DecodeStats::new(),
            clock: DecodeClock::new(),
            kv,
            recycle: RecycleBuffer::new(),
            finished: false,
            cap,
        }
    }

    /// The policy this session decodes under.
    pub fn policy(&self) -> &Policy {
        &self.policy
    }

    /// The draft source this session was configured for.  Schedulers
    /// dispatch the draft phase on this: model-draft sessions go to the
    /// draft backend, draft-free sessions to the installed [`Drafter`].
    pub fn drafter(&self) -> DrafterKind {
        self.drafter
    }

    /// The bound utterance being decoded.
    pub fn audio(&self) -> &UtteranceTokens {
        &self.audio
    }

    /// The committed transcript so far.
    pub fn tokens(&self) -> &[TokenId] {
        &self.tokens
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &DecodeStats {
        &self.stats
    }

    /// The latency clock accumulated so far.
    pub fn clock(&self) -> &DecodeClock {
        &self.clock
    }

    /// `true` once EOS was reached (or the safety cap hit).
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// Runs the draft phase of the next round against a draft *model* — the
    /// historical API, equivalent to [`DecodeSession::draft_round_with`]
    /// over [`ModelDrafter::new`]`(draft)`.
    ///
    /// # Panics
    ///
    /// Panics if the session is already finished, or if it was configured
    /// for a draft-free source (step those with
    /// [`DecodeSession::draft_round_with`]).
    pub fn draft_round<D>(&mut self, draft: &D) -> DraftedRound
    where
        D: AsrDecoderModel + ?Sized,
    {
        self.draft_round_with(&ModelDrafter::new(draft))
    }

    /// Runs the draft phase of the next round against any [`Drafter`].
    ///
    /// The drafter's kind must match the kind the session was constructed
    /// with: the draft-KV prefill, per-round append widths, and scheduler
    /// admission accounting were all sized at construction, so swapping
    /// draft sources mid-session would corrupt the KV bookkeeping.
    ///
    /// # Panics
    ///
    /// Panics if the session is already finished, or if `drafter.kind()`
    /// differs from [`DecodeSession::drafter`].
    pub fn draft_round_with<Dr>(&mut self, drafter: &Dr) -> DraftedRound
    where
        Dr: Drafter + ?Sized,
    {
        assert!(!self.finished, "draft_round called on a finished session");
        assert_eq!(
            drafter.kind(),
            self.drafter,
            "a session must be drafted by the drafter kind it was built for"
        );
        drafter.propose(DraftRequest {
            audio: &self.audio,
            committed: &self.tokens,
            policy: &self.policy,
            recycle: &self.recycle,
            clock: &mut self.clock,
        })
    }

    /// Verifies and commits one drafted round, returning `true` when the
    /// session finished.
    ///
    /// # Panics
    ///
    /// Panics if the session was built over a shared pool
    /// ([`DecodeSession::new_in`]) — step those with
    /// [`DecodeSession::verify_round_in`] so allocation goes through the
    /// shared budget.
    pub fn verify_round<T>(&mut self, target: &T, drafted: DraftedRound) -> bool
    where
        T: AsrDecoderModel + ?Sized,
    {
        assert!(
            matches!(self.kv, SessionKv::Private { .. }),
            "a pooled session must be stepped with verify_round_in"
        );
        self.verify_round_impl(None, target, drafted)
            .expect("a private pool never exhausts")
    }

    /// Verifies and commits one drafted round against a shared paged pool.
    ///
    /// Identical to [`DecodeSession::verify_round`] except that KV appends
    /// allocate from `pool` and an exhausted pool surfaces as
    /// [`PoolError::OutOfBlocks`] *before* any state was mutated — the
    /// caller can preempt another session to free blocks and retry, or
    /// release this one (schedulers re-queue and restore by re-prefilling,
    /// which is deterministic).
    pub fn verify_round_in<T>(
        &mut self,
        pool: &mut KvPool,
        target: &T,
        drafted: DraftedRound,
    ) -> Result<bool, PoolError>
    where
        T: AsrDecoderModel + ?Sized,
    {
        self.verify_round_impl(Some(pool), target, drafted)
    }

    /// Runs the draft phase of the next round against an [`AsrBackend`]:
    /// every draft-model query becomes a single-probe
    /// [`specasr_models::ForwardRequest`] submitted (at `now_ms`) and
    /// completed through the backend.  Outcome-identical to
    /// [`DecodeSession::draft_round`] over the model the backend fronts —
    /// draft steps are inherently sequential within a session (each depends
    /// on the previous token), so the loop structure stays and only the
    /// model boundary changes.
    ///
    /// # Panics
    ///
    /// Panics if the session is already finished.
    pub fn draft_round_via<B>(&mut self, backend: &mut B, now_ms: f64) -> DraftedRound
    where
        B: AsrBackend + Send,
    {
        // Seed the bridge with the session's shared audio context so the
        // draft loop's requests reference it without ever copying it.
        let bridge = BackendModelBridge::with_audio(backend, now_ms, Arc::clone(&self.audio));
        self.draft_round(&bridge)
    }

    /// Builds the verification [`ForwardRequest`] for `drafted`: one target
    /// forward pass scoring every probe of
    /// [`DraftedRound::probe_extensions`] after the committed prefix, priced
    /// at [`DraftedRound::verify_tokens`] parallel tokens.
    ///
    /// A scheduler collects these across all in-flight sessions into one
    /// cross-session [`specasr_models::BackendBatch`], submits it, and
    /// commits each session from its completion via
    /// [`DecodeSession::verify_round_from_in`].
    pub fn verify_request(&self, drafted: &DraftedRound) -> ForwardRequest {
        ForwardRequest::verify(
            Arc::clone(&self.audio),
            self.tokens.clone(),
            drafted.probe_extensions(),
            drafted.verify_tokens(),
        )
    }

    /// Verifies and commits one drafted round from a backend completion
    /// instead of querying a target model: `result` must answer the request
    /// built by [`DecodeSession::verify_request`] for the same `drafted`
    /// round, and `target_profile` is the profile of the model the backend
    /// fronts (verification latency is charged against it, exactly as the
    /// synchronous path charges the target model).
    ///
    /// Outcome-identical to [`DecodeSession::verify_round`]: the acceptance
    /// walk reads the pre-scored distributions, and the wrapped models are
    /// pure, so the decisions cannot differ.
    ///
    /// # Panics
    ///
    /// Panics if the session was built over a shared pool (use
    /// [`DecodeSession::verify_round_from_in`]), or if `result` does not
    /// carry one scored distribution per probe of `drafted`.
    pub fn verify_round_from(
        &mut self,
        target_profile: &ModelProfile,
        result: &ForwardResult,
        drafted: DraftedRound,
    ) -> bool {
        assert!(
            matches!(self.kv, SessionKv::Private { .. }),
            "a pooled session must be stepped with verify_round_from_in"
        );
        self.verify_round_from_impl(None, target_profile, result, drafted)
            .expect("a private pool never exhausts")
    }

    /// The shared-pool form of [`DecodeSession::verify_round_from`]: KV
    /// appends allocate from `pool` and an exhausted pool surfaces as
    /// [`PoolError::OutOfBlocks`] before any state was mutated, exactly like
    /// [`DecodeSession::verify_round_in`].
    ///
    /// # Panics
    ///
    /// Panics if `result` does not carry one scored distribution per probe
    /// of `drafted`.
    pub fn verify_round_from_in(
        &mut self,
        pool: &mut KvPool,
        target_profile: &ModelProfile,
        result: &ForwardResult,
        drafted: DraftedRound,
    ) -> Result<bool, PoolError> {
        self.verify_round_from_impl(Some(pool), target_profile, result, drafted)
    }

    fn verify_round_from_impl(
        &mut self,
        pool: Option<&mut KvPool>,
        target_profile: &ModelProfile,
        result: &ForwardResult,
        drafted: DraftedRound,
    ) -> Result<bool, PoolError> {
        let probes = drafted.probe_extensions();
        assert_eq!(
            probes.len(),
            result.logits.len(),
            "one scored distribution per verification probe"
        );
        let table = ProbeTableModel {
            profile: target_profile,
            base_len: self.tokens.len(),
            entries: probes
                .into_iter()
                .zip(result.logits.iter().cloned())
                .collect(),
        };
        self.verify_round_impl(pool, &table, drafted)
    }

    fn verify_round_impl<T>(
        &mut self,
        mut pool: Option<&mut KvPool>,
        target: &T,
        drafted: DraftedRound,
    ) -> Result<bool, PoolError>
    where
        T: AsrDecoderModel + ?Sized,
    {
        // KV bookkeeping first: this round's append widths are fixed by the
        // drafted plan, and verification itself never reads the caches, so
        // appending up front leaves every counter (totals, peaks, discards)
        // byte-identical to the historical order while making exhaustion
        // visible before any transcript state changes.
        let (draft_width, target_width) = drafted.kv_widths();
        self.kv_append(pool.as_deref_mut(), draft_width, target_width)?;
        // Draft-free sequences verify exactly like model-drafted ones (the
        // append widths above already excluded the draft cache); normalising
        // here keeps a single sequence-verification arm.  Zero draft steps:
        // no draft forward passes were run.
        let plan = match drafted.plan {
            RoundPlan::ExternalSequence { tokens } => RoundPlan::Sequence {
                tokens,
                steps: 0,
                recycled: 0,
                truncated: false,
            },
            plan => plan,
        };
        match plan {
            // Normalised away above; kept irrefutable for the compiler.
            RoundPlan::ExternalSequence { .. } => unreachable!("normalised to Sequence above"),
            RoundPlan::Autoregressive => {
                let next = target.greedy_token(&self.audio, &self.tokens);
                self.clock.charge_target(target.profile().latency(), 1);
                self.stats.record_round(RoundRecord {
                    predicted: 0,
                    accepted: 0,
                    draft_steps: 0,
                    tree_size: 1,
                    recycled: 0,
                    truncated: false,
                });
                self.stats.record_correction();
                if next == self.audio.eos() || self.tokens.len() >= self.cap {
                    self.finished = true;
                } else {
                    self.tokens.push(next);
                }
            }
            RoundPlan::Sequence {
                tokens: draft_tokens,
                steps,
                recycled,
                truncated,
            } => {
                // Verify phase: one target pass over the draft sequence.
                let verification =
                    verify_sequence(target, &self.audio, &self.tokens, &draft_tokens);
                self.clock
                    .charge_target(target.profile().latency(), draft_tokens.len().max(1));

                // Retain the rejected suffix for the next round (only the
                // adaptive policy reads it back).
                self.recycle = if verification.all_accepted {
                    RecycleBuffer::new()
                } else {
                    RecycleBuffer::from_rejected(&draft_tokens, verification.accepted_len())
                };

                // Commit, then roll the caches back to the committed length.
                self.finished = commit_round(
                    &mut self.tokens,
                    &verification.accepted,
                    verification.correction,
                    self.audio.eos(),
                    self.cap,
                    &mut self.stats,
                );
                self.kv_rollback_to_committed(pool.as_deref_mut());
                self.stats.record_round(RoundRecord {
                    predicted: draft_tokens.len(),
                    accepted: verification.accepted_len(),
                    draft_steps: steps,
                    tree_size: draft_tokens.len(),
                    recycled,
                    truncated,
                });
            }
            RoundPlan::Tree {
                tree,
                trunk_tokens,
                steps,
                recycled,
            } => {
                // Verification: one target pass over the whole tree.
                let verification = verify_tree(target, &self.audio, &self.tokens, &tree);
                self.clock.charge_target(
                    target.profile().latency(),
                    verification.nodes_processed.max(1),
                );

                // Two-pass sparse trees retain the trunk's rejected suffix
                // for the next round.  The trunk's per-position target
                // outputs are available from the same verification pass, so
                // no extra latency is charged.
                if let Some(trunk_tokens) = &trunk_tokens {
                    let trunk_verification =
                        verify_sequence(target, &self.audio, &self.tokens, trunk_tokens);
                    self.recycle = if trunk_verification.all_accepted {
                        RecycleBuffer::new()
                    } else {
                        RecycleBuffer::from_rejected(
                            trunk_tokens,
                            trunk_verification.accepted_len(),
                        )
                    };
                }

                // Commit, then roll the caches back to the committed length
                // (the tree appends were sized by `DraftedRound::kv_widths`).
                self.finished = commit_round(
                    &mut self.tokens,
                    &verification.accepted,
                    verification.correction,
                    self.audio.eos(),
                    self.cap,
                    &mut self.stats,
                );
                self.kv_rollback_to_committed(pool);
                self.stats.record_round(RoundRecord {
                    predicted: tree.len(),
                    accepted: verification.accepted_len(),
                    draft_steps: steps,
                    tree_size: tree.len(),
                    recycled,
                    truncated: false,
                });
            }
        }
        // Safety cap on speculative rounds (autoregressive decoding caps on
        // the committed length above, one round per token).
        if !matches!(self.policy, Policy::Autoregressive) && self.stats.rounds >= self.cap {
            self.finished = true;
        }
        Ok(self.finished)
    }

    /// One complete round: draft then verify.  Returns `true` when finished.
    pub fn step<D, T>(&mut self, draft: &D, target: &T) -> bool
    where
        D: AsrDecoderModel + ?Sized,
        T: AsrDecoderModel + ?Sized,
    {
        let drafted = self.draft_round(draft);
        self.verify_round(target, drafted)
    }

    /// Runs the session to completion and returns the outcome.
    pub fn run<D, T>(mut self, draft: &D, target: &T) -> DecodeOutcome
    where
        D: AsrDecoderModel + ?Sized,
        T: AsrDecoderModel + ?Sized,
    {
        while !self.finished {
            self.step(draft, target);
        }
        self.into_outcome()
    }

    /// Consumes the session into a [`DecodeOutcome`].
    ///
    /// Normally called once [`DecodeSession::is_finished`] is `true`; calling
    /// it earlier yields the partial transcript decoded so far.  The
    /// reported KV caches are the position summaries of the block tables
    /// (byte-identical to the pre-paged per-session bookkeeping).
    pub fn into_outcome(self) -> DecodeOutcome {
        let (draft, target) = self.kv.tables();
        let draft_cache = *draft.positions();
        let target_cache = *target.positions();
        DecodeOutcome {
            tokens: self.tokens,
            stats: self.stats,
            clock: self.clock,
            draft_cache,
            target_cache,
        }
    }

    /// Fresh block demand of verifying `drafted` against `pool` right now —
    /// what a memory-aware scheduler checks (and preempts against) before
    /// calling [`DecodeSession::verify_round_in`].
    pub fn round_kv_demand(&self, pool: &KvPool, drafted: &DraftedRound) -> KvDemand {
        let (draft_width, target_width) = drafted.kv_widths();
        let (draft, target) = self.kv.tables();
        KvDemand {
            draft_blocks: pool.draft().blocks_needed_for_append(draft, draft_width),
            target_blocks: pool.target().blocks_needed_for_append(target, target_width),
        }
    }

    /// Blocks this session currently holds across both sub-pools (the
    /// preemption-victim size signal).
    pub fn kv_blocks_held(&self) -> usize {
        let (draft, target) = self.kv.tables();
        draft.block_count() + target.block_count()
    }

    /// Releases every block a pooled session holds back to `pool` (on
    /// finish, preemption, or memory rejection).  Idempotent; a no-op for
    /// standalone sessions, whose private pool dies with them.
    pub fn release_kv(&mut self, pool: &mut KvPool) {
        match &mut self.kv {
            SessionKv::Pooled { draft, target } => {
                pool.draft_mut().release(draft);
                pool.target_mut().release(target);
            }
            SessionKv::Private { .. } => {}
        }
    }

    /// Moves a pooled session's KV blocks from `source` to `dest` without
    /// re-prefill — the same-machine block-table hand-off fast path of a
    /// live migration between two workers' pools (see
    /// [`KvPool::hand_off`]).  After a successful move the session must be
    /// stepped against `dest`.
    ///
    /// All-or-nothing: on [`PoolError::OutOfBlocks`] (the destination pool
    /// cannot hold the session) nothing moved and the session still
    /// allocates from `source` — the caller falls back to the
    /// preempt/restore slow path ([`DecodeSession::release_kv`] plus a
    /// deterministic re-prefill + re-decode on the destination).
    ///
    /// # Panics
    ///
    /// Panics on a standalone session (whose private pool dies with it) or
    /// when the pools page at different block sizes.
    pub fn migrate_kv(&mut self, source: &mut KvPool, dest: &mut KvPool) -> Result<(), PoolError> {
        match &mut self.kv {
            SessionKv::Pooled { draft, target } => source.hand_off(dest, draft, target),
            SessionKv::Private { .. } => {
                panic!("a standalone session owns its pool and cannot migrate")
            }
        }
    }

    /// Appends this round's positions to both block tables, against either
    /// the private or the shared pool.
    ///
    /// The two sub-pool demands are checked up front so the operation is
    /// atomic: on [`PoolError::OutOfBlocks`] neither table changed.
    fn kv_append(
        &mut self,
        pool: Option<&mut KvPool>,
        draft_width: usize,
        target_width: usize,
    ) -> Result<(), PoolError> {
        let (pool, draft, target) = Self::split_kv(&mut self.kv, pool);
        let draft_need = pool.draft().blocks_needed_for_append(draft, draft_width);
        let target_need = pool.target().blocks_needed_for_append(target, target_width);
        for (need, sub) in [(draft_need, pool.draft()), (target_need, pool.target())] {
            if need > sub.free_blocks() {
                return Err(PoolError::OutOfBlocks {
                    requested: need,
                    available: sub.free_blocks(),
                    capacity: sub.capacity().unwrap_or(usize::MAX),
                });
            }
        }
        pool.draft_mut()
            .append(draft, draft_width)
            .expect("draft demand was checked");
        pool.target_mut()
            .append(target, target_width)
            .expect("target demand was checked");
        Ok(())
    }

    /// Rolls both KV tables back to the committed transcript length.
    fn kv_rollback_to_committed(&mut self, pool: Option<&mut KvPool>) {
        let committed = self.audio.prefill_tokens() + self.tokens.len();
        let (pool, draft, target) = Self::split_kv(&mut self.kv, pool);
        pool.draft_mut().rollback(draft, committed.min(draft.len()));
        pool.target_mut()
            .rollback(target, committed.min(target.len()));
    }

    /// Resolves which pool backs this session's tables: the private one for
    /// standalone sessions (an externally passed pool is never consulted),
    /// the caller's for pooled sessions.
    fn split_kv<'a>(
        kv: &'a mut SessionKv,
        pool: Option<&'a mut KvPool>,
    ) -> (&'a mut KvPool, &'a mut BlockTable, &'a mut BlockTable) {
        match (kv, pool) {
            (
                SessionKv::Private {
                    pool,
                    draft,
                    target,
                },
                _,
            ) => (pool.as_mut(), draft, target),
            (SessionKv::Pooled { draft, target }, Some(pool)) => (pool, draft, target),
            (SessionKv::Pooled { .. }, None) => {
                panic!("a pooled session must be stepped with verify_round_in")
            }
        }
    }
}

/// A "model" backed by the pre-scored probe table of one backend
/// completion: `next_logits` looks the queried context's extension (beyond
/// the committed prefix) up in the table instead of running a forward pass.
///
/// The verification walk (`verify_sequence` / `verify_tree`) only ever
/// queries contexts whose extensions are probes of the drafted round, so a
/// missing entry is an invariant violation, not a recoverable condition.
struct ProbeTableModel<'a> {
    profile: &'a ModelProfile,
    base_len: usize,
    entries: HashMap<Vec<TokenId>, TokenLogits>,
}

impl AsrDecoderModel for ProbeTableModel<'_> {
    fn profile(&self) -> &ModelProfile {
        self.profile
    }

    fn next_logits(&self, _audio: &UtteranceTokens, prefix: &[TokenId]) -> TokenLogits {
        assert!(
            prefix.len() >= self.base_len,
            "verification contexts always extend the committed prefix"
        );
        let extension = &prefix[self.base_len..];
        self.entries.get(extension).cloned().unwrap_or_else(|| {
            panic!(
                "verification probed an unscored extension of {} tokens",
                extension.len()
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{AdaptiveConfig, SparseTreeConfig, SpeculativeConfig};
    use specasr_audio::{Corpus, Split};
    use specasr_models::{ModelProfile, SimulatedAsrModel, TokenizerBinding};

    fn setup(split: Split) -> (SimulatedAsrModel, SimulatedAsrModel, Vec<UtteranceTokens>) {
        let corpus = Corpus::librispeech_like(61, 6);
        let binding = TokenizerBinding::for_corpus(&corpus);
        let audio = binding.bind_all(corpus.split(split));
        let target = SimulatedAsrModel::target(ModelProfile::whisper_medium_en(), 7);
        let draft = SimulatedAsrModel::draft_paired(ModelProfile::whisper_tiny_en(), 8, &target);
        (draft, target, audio)
    }

    fn all_policies() -> Vec<Policy> {
        vec![
            Policy::Autoregressive,
            Policy::Speculative(SpeculativeConfig::short_single()),
            Policy::Speculative(SpeculativeConfig::short_double_beam()),
            Policy::AdaptiveSingleSequence(AdaptiveConfig::paper()),
            Policy::TwoPassSparseTree(SparseTreeConfig::paper()),
        ]
    }

    #[test]
    fn stepping_matches_blocking_decode_exactly() {
        let (draft, target, audio) = setup(Split::TestOther);
        for policy in all_policies() {
            for utt in &audio {
                let blocking = policy.decode(&draft, &target, utt);
                let mut session = DecodeSession::new(policy, utt.clone());
                while !session.is_finished() {
                    session.step(&draft, &target);
                }
                let stepped = session.into_outcome();
                assert_eq!(stepped, blocking, "policy {}", policy.name());
            }
        }
    }

    #[test]
    fn interleaving_sessions_does_not_change_outcomes() {
        // Drive several sessions round-robin — the scheduler's access pattern
        // — and compare with sequential decoding.
        let (draft, target, audio) = setup(Split::TestClean);
        let policy = Policy::AdaptiveSingleSequence(AdaptiveConfig::paper());
        let mut sessions: Vec<DecodeSession> = audio
            .iter()
            .map(|utt| DecodeSession::new(policy, utt.clone()))
            .collect();
        while sessions.iter().any(|s| !s.is_finished()) {
            for session in sessions.iter_mut().filter(|s| !s.is_finished()) {
                let drafted = session.draft_round(&draft);
                session.verify_round(&target, drafted);
            }
        }
        for (session, utt) in sessions.into_iter().zip(audio.iter()) {
            let sequential = policy.decode(&draft, &target, utt);
            assert_eq!(session.into_outcome(), sequential);
        }
    }

    #[test]
    fn drafted_round_reports_verification_width() {
        let (draft, _target, audio) = setup(Split::DevClean);
        let mut ar = DecodeSession::new(Policy::Autoregressive, audio[0].clone());
        assert_eq!(ar.draft_round(&draft).verify_tokens(), 1);
        let mut spec = DecodeSession::new(
            Policy::Speculative(SpeculativeConfig::short_single()),
            audio[0].clone(),
        );
        let drafted = spec.draft_round(&draft);
        assert_eq!(drafted.verify_tokens(), drafted.predicted_tokens().max(1));
        assert!(drafted.predicted_tokens() <= 8);
    }

    #[test]
    fn partial_outcome_is_a_prefix_of_the_full_transcript() {
        let (draft, target, audio) = setup(Split::TestClean);
        let policy = Policy::Speculative(SpeculativeConfig::short_single());
        let reference = target.greedy_transcript(&audio[0]);
        let mut session = DecodeSession::new(policy, audio[0].clone());
        session.step(&draft, &target);
        let partial = session.into_outcome();
        assert!(partial.tokens.len() <= reference.len());
        assert_eq!(partial.tokens[..], reference[..partial.tokens.len()]);
    }

    #[test]
    fn pooled_sessions_match_private_sessions_exactly() {
        let (draft, target, audio) = setup(Split::TestClean);
        let mut pool = KvPool::bounded(2048, 16);
        for policy in all_policies() {
            for utt in &audio {
                let private = DecodeSession::new(policy, utt.clone()).run(&draft, &target);
                let mut session =
                    DecodeSession::new_in(policy, utt.clone(), &mut pool).expect("pool has room");
                while !session.is_finished() {
                    let drafted = session.draft_round(&draft);
                    session
                        .verify_round_in(&mut pool, &target, drafted)
                        .expect("pool has room");
                }
                session.release_kv(&mut pool);
                assert_eq!(session.into_outcome(), private, "policy {}", policy.name());
            }
        }
        assert_eq!(pool.used_blocks(), 0, "released sessions leave no blocks");
    }

    #[test]
    fn pooled_sessions_share_prefix_blocks_for_identical_audio() {
        let (_draft, _target, audio) = setup(Split::DevClean);
        let mut pool = KvPool::bounded(256, 16);
        let policy = Policy::Speculative(SpeculativeConfig::short_single());
        let mut first = DecodeSession::new_in(policy, audio[0].clone(), &mut pool).expect("room");
        let used_by_one = pool.used_blocks();
        let mut second = DecodeSession::new_in(policy, audio[0].clone(), &mut pool).expect("room");
        // The second session re-uses the first one's prefill blocks wholesale.
        assert_eq!(pool.used_blocks(), used_by_one);
        assert!(pool.counters().shared_hits > 0);
        let mut third = DecodeSession::new_in(policy, audio[1].clone(), &mut pool).expect("room");
        assert!(
            pool.used_blocks() > used_by_one,
            "different audio: no share"
        );
        for session in [&mut first, &mut second, &mut third] {
            session.release_kv(&mut pool);
        }
        assert_eq!(pool.used_blocks(), 0);
    }

    #[test]
    fn exhausted_pools_reject_admission_without_leaking() {
        let (_draft, _target, audio) = setup(Split::DevOther);
        let mut pool = KvPool::bounded(1, 16);
        let policy = Policy::Speculative(SpeculativeConfig::short_single());
        let error = DecodeSession::new_in(policy, audio[0].clone(), &mut pool)
            .expect_err("one block cannot hold a prefill");
        assert!(matches!(
            error,
            specasr_runtime::PoolError::OutOfBlocks { .. }
        ));
        assert_eq!(pool.used_blocks(), 0, "failed admission must not leak");
    }

    #[test]
    fn round_demand_predicts_the_blocks_a_round_consumes() {
        let (draft, target, audio) = setup(Split::TestOther);
        let mut pool = KvPool::bounded(512, 16);
        let policy = Policy::AdaptiveSingleSequence(AdaptiveConfig::paper());
        let mut session = DecodeSession::new_in(policy, audio[0].clone(), &mut pool).expect("room");
        let drafted = session.draft_round(&draft);
        let demand = session.round_kv_demand(&pool, &drafted);
        let before = pool.used_blocks();
        session
            .verify_round_in(&mut pool, &target, drafted)
            .expect("room");
        // The round's net growth is bounded by the predicted demand (the
        // post-commit rollback may return some of it).
        assert!(pool.used_blocks() <= before + demand.draft_blocks + demand.target_blocks);
        assert!(session.kv_blocks_held() > 0);
        session.release_kv(&mut pool);
        session.release_kv(&mut pool); // idempotent
        assert_eq!(pool.used_blocks(), 0);
    }

    #[test]
    fn resumed_sessions_complete_the_offline_transcript_for_all_policies() {
        let (draft, target, audio) = setup(Split::TestOther);
        for policy in all_policies() {
            for utt in audio.iter().take(3) {
                let reference = policy.decode(&draft, &target, utt);
                for cut in [0, 1, reference.tokens.len() / 2, reference.tokens.len()] {
                    let committed = &reference.tokens[..cut];
                    let mut session = DecodeSession::resume(policy, utt.clone(), committed);
                    assert_eq!(session.tokens(), committed);
                    while !session.is_finished() {
                        session.step(&draft, &target);
                    }
                    assert_eq!(
                        session.into_outcome().tokens,
                        reference.tokens,
                        "policy {} cut {cut}",
                        policy.name()
                    );
                }
            }
        }
    }

    #[test]
    fn pooled_resume_matches_private_resume_and_releases_cleanly() {
        let (draft, target, audio) = setup(Split::TestClean);
        let mut pool = KvPool::bounded(2048, 16);
        let policy = Policy::AdaptiveSingleSequence(AdaptiveConfig::paper());
        let reference = policy.decode(&draft, &target, &audio[0]);
        let committed = &reference.tokens[..reference.tokens.len() / 2];
        let mut session = DecodeSession::resume_in(policy, audio[0].clone(), committed, &mut pool)
            .expect("pool has room");
        while !session.is_finished() {
            let drafted = session.draft_round(&draft);
            session
                .verify_round_in(&mut pool, &target, drafted)
                .expect("pool has room");
        }
        session.release_kv(&mut pool);
        assert_eq!(session.into_outcome().tokens, reference.tokens);
        assert_eq!(pool.used_blocks(), 0);
    }

    #[test]
    fn pooled_resume_on_an_exhausted_pool_leaks_nothing() {
        let (draft, target, audio) = setup(Split::DevOther);
        let policy = Policy::Speculative(SpeculativeConfig::short_single());
        let reference = policy.decode(&draft, &target, &audio[0]);
        // Enough blocks for the prefill but not for the committed appends.
        let prefill_blocks = {
            let probe = KvPool::bounded(4096, 16);
            probe.target().blocks_for(audio[0].prefill_tokens())
        };
        let tail_slack = prefill_blocks * 16 - audio[0].prefill_tokens();
        assert!(
            reference.tokens.len() > tail_slack,
            "precondition: the committed prefix must overflow the prefill tail"
        );
        let mut pool = KvPool::bounded(prefill_blocks, 16);
        let error =
            DecodeSession::resume_in(policy, audio[0].clone(), &reference.tokens, &mut pool)
                .expect_err("the committed appends cannot fit");
        assert!(matches!(error, PoolError::OutOfBlocks { .. }));
        assert_eq!(pool.used_blocks(), 0, "failed resume must not leak");
    }

    #[test]
    fn backend_stepping_matches_blocking_decode_exactly() {
        use specasr_models::{AsrBackend, BackendBatch, SyncBackendAdapter};
        let (draft, target, audio) = setup(Split::TestClean);
        let mut draft_backend = SyncBackendAdapter::new(&draft);
        let mut target_backend = SyncBackendAdapter::new(&target);
        for policy in all_policies() {
            for utt in &audio {
                let blocking = policy.decode(&draft, &target, utt);
                let mut session = DecodeSession::new(policy, utt.clone());
                let mut now = 0.0;
                while !session.is_finished() {
                    let drafted = session.draft_round_via(&mut draft_backend, now);
                    let request = session.verify_request(&drafted);
                    let tickets = target_backend.submit(BackendBatch::of(request), now);
                    let result = target_backend
                        .complete(tickets[0])
                        .expect("computed at submit");
                    now = result.completed_ms;
                    session.verify_round_from(target.profile(), &result, drafted);
                }
                assert_eq!(session.into_outcome(), blocking, "policy {}", policy.name());
            }
        }
        assert!(target_backend.counters().verify_requests > 0);
        assert!(draft_backend.counters().draft_requests > 0);
    }

    #[test]
    fn backend_stepping_over_a_shared_pool_matches_the_private_path() {
        use specasr_models::{AsrBackend, BackendBatch, SyncBackendAdapter};
        let (draft, target, audio) = setup(Split::TestOther);
        let mut draft_backend = SyncBackendAdapter::new(&draft);
        let mut target_backend = SyncBackendAdapter::new(&target);
        let mut pool = KvPool::bounded(2048, 16);
        for policy in all_policies() {
            let utt = &audio[0];
            let private = DecodeSession::new(policy, utt.clone()).run(&draft, &target);
            let mut session =
                DecodeSession::new_in(policy, utt.clone(), &mut pool).expect("pool has room");
            while !session.is_finished() {
                let drafted = session.draft_round_via(&mut draft_backend, 0.0);
                let request = session.verify_request(&drafted);
                let tickets = target_backend.submit(BackendBatch::of(request), 0.0);
                let result = target_backend
                    .complete(tickets[0])
                    .expect("computed at submit");
                session
                    .verify_round_from_in(&mut pool, target.profile(), &result, drafted)
                    .expect("pool has room");
            }
            session.release_kv(&mut pool);
            assert_eq!(session.into_outcome(), private, "policy {}", policy.name());
        }
        assert_eq!(pool.used_blocks(), 0);
    }

    #[test]
    fn probe_extensions_cover_every_verification_query() {
        // The probe list must contain the empty probe and one entry per
        // draft position (sequences) or per distinct node path (trees).
        let (draft, _target, audio) = setup(Split::DevClean);
        let mut ar = DecodeSession::new(Policy::Autoregressive, audio[0].clone());
        let drafted = ar.draft_round(&draft);
        assert_eq!(drafted.probe_extensions(), vec![Vec::new()]);

        let mut spec = DecodeSession::new(
            Policy::Speculative(SpeculativeConfig::short_single()),
            audio[0].clone(),
        );
        let drafted = spec.draft_round(&draft);
        let probes = drafted.probe_extensions();
        assert_eq!(probes.len(), drafted.predicted_tokens() + 1);
        assert_eq!(probes[0], Vec::<specasr_tokenizer::TokenId>::new());
        for pair in probes.windows(2) {
            assert_eq!(pair[1].len(), pair[0].len() + 1, "sequence prefixes grow");
        }

        let mut tree = DecodeSession::new(
            Policy::TwoPassSparseTree(SparseTreeConfig::paper()),
            audio[0].clone(),
        );
        let drafted = tree.draft_round(&draft);
        let probes = drafted.probe_extensions();
        assert!(probes.len() > 1);
        let mut seen = probes.clone();
        seen.sort();
        seen.dedup();
        assert_eq!(seen.len(), probes.len(), "probes are unique");
    }

    #[test]
    #[should_panic(expected = "one scored distribution per verification probe")]
    fn mismatched_verify_results_panic() {
        use specasr_models::{ForwardKind, ForwardResult, Ticket};
        let (draft, target, audio) = setup(Split::DevOther);
        let policy = Policy::Speculative(SpeculativeConfig::short_single());
        let mut session = DecodeSession::new(policy, audio[0].clone());
        let drafted = session.draft_round(&draft);
        let bogus = ForwardResult {
            ticket: Ticket::new(0),
            kind: ForwardKind::Verify,
            logits: Vec::new(),
            submitted_ms: 0.0,
            started_ms: 0.0,
            completed_ms: 0.0,
            batch_requests: 1,
        };
        let _ = session.verify_round_from(target.profile(), &bogus, drafted);
    }

    #[test]
    #[should_panic(expected = "verify_round_in")]
    fn stepping_a_pooled_session_without_its_pool_panics() {
        let (draft, target, audio) = setup(Split::DevClean);
        let mut pool = KvPool::bounded(256, 16);
        let policy = Policy::Autoregressive;
        let mut session = DecodeSession::new_in(policy, audio[0].clone(), &mut pool).expect("room");
        let drafted = session.draft_round(&draft);
        let _ = session.verify_round(&target, drafted);
    }

    #[test]
    #[should_panic(expected = "finished session")]
    fn drafting_after_finish_panics() {
        let (draft, target, audio) = setup(Split::DevOther);
        let mut session = DecodeSession::new(Policy::Autoregressive, audio[0].clone());
        while !session.step(&draft, &target) {}
        let _ = session.draft_round(&draft);
    }
}
