//! Shared commit logic for one speculative round.
//!
//! Every decoding policy — autoregressive, fixed-length speculative,
//! adaptive, sparse-tree, and every [`crate::Drafter`] source feeding them —
//! funnels through the single [`commit_round`] function at the end of a
//! round: append the accepted draft tokens, append the target's correction
//! token, stop on EOS or the safety cap.  Centralising the append is what
//! makes the lossless invariant auditable in one place: accepted tokens
//! equal the target's greedy choices *by definition* (that is what the
//! verifier accepted), so the committed transcript can only ever be the
//! target's greedy transcript, regardless of where the draft came from.
//!
//! The safety cap mirrors the generation limit a production decoder applies
//! to runaway hypotheses; hitting it ends the utterance exactly as EOS does.

use specasr_tokenizer::TokenId;

use crate::stats::DecodeStats;

/// Appends the accepted draft tokens and the target's correction token to the
/// committed transcript, handling EOS and the safety cap.
///
/// Returns `true` when decoding is finished (EOS reached or cap hit).
///
/// Accepted draft tokens equal the target's own greedy choices by
/// construction (that is what "accepted" means), so appending them preserves
/// the lossless-decoding invariant.
pub(crate) fn commit_round(
    tokens: &mut Vec<TokenId>,
    accepted: &[TokenId],
    correction: TokenId,
    eos: TokenId,
    cap: usize,
    stats: &mut DecodeStats,
) -> bool {
    for &token in accepted {
        if token == eos {
            return true;
        }
        tokens.push(token);
        if tokens.len() >= cap {
            return true;
        }
    }
    stats.record_correction();
    if correction == eos {
        return true;
    }
    tokens.push(correction);
    tokens.len() >= cap
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(raw: u32) -> TokenId {
        TokenId::new(raw)
    }

    #[test]
    fn appends_accepted_then_correction() {
        let mut tokens = vec![t(1)];
        let mut stats = DecodeStats::new();
        let finished = commit_round(&mut tokens, &[t(2), t(3)], t(4), t(0), 100, &mut stats);
        assert!(!finished);
        assert_eq!(tokens, vec![t(1), t(2), t(3), t(4)]);
        assert_eq!(stats.correction_tokens, 1);
    }

    #[test]
    fn eos_in_accepted_stops_without_the_correction() {
        let mut tokens = vec![];
        let mut stats = DecodeStats::new();
        let finished = commit_round(
            &mut tokens,
            &[t(2), t(0), t(3)],
            t(4),
            t(0),
            100,
            &mut stats,
        );
        assert!(finished);
        assert_eq!(tokens, vec![t(2)]);
        assert_eq!(stats.correction_tokens, 0);
    }

    #[test]
    fn eos_correction_stops_after_accepted() {
        let mut tokens = vec![];
        let mut stats = DecodeStats::new();
        let finished = commit_round(&mut tokens, &[t(2)], t(0), t(0), 100, &mut stats);
        assert!(finished);
        assert_eq!(tokens, vec![t(2)]);
        assert_eq!(stats.correction_tokens, 1);
    }

    #[test]
    fn cap_stops_decoding() {
        let mut tokens = vec![];
        let mut stats = DecodeStats::new();
        let finished = commit_round(&mut tokens, &[t(2), t(3), t(4)], t(5), t(0), 2, &mut stats);
        assert!(finished);
        assert_eq!(tokens.len(), 2);
    }
}
