//! The result of decoding one utterance with a policy.

use serde::{Deserialize, Serialize};
use specasr_models::{DecodeClock, LatencyBreakdown};
use specasr_runtime::KvCache;
use specasr_tokenizer::TokenId;

use crate::stats::DecodeStats;

/// Everything a policy produces for one utterance: the transcript tokens, the
/// round statistics, the simulated latency clock, and the final KV-cache
/// bookkeeping of both models.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecodeOutcome {
    /// The decoded transcript tokens (EOS excluded).
    pub tokens: Vec<TokenId>,
    /// Round/acceptance statistics (Fig. 12).
    pub stats: DecodeStats,
    /// Simulated latency accounting (Figs. 7, 11 and Tab. II).
    pub clock: DecodeClock,
    /// Final state of the draft model's KV cache (empty for autoregressive
    /// decoding, which uses no draft model).
    pub draft_cache: KvCache,
    /// Final state of the target model's KV cache.
    pub target_cache: KvCache,
}

impl DecodeOutcome {
    /// The latency breakdown of this decode.
    pub fn latency(&self) -> LatencyBreakdown {
        self.clock.breakdown()
    }

    /// Decoder-only simulated milliseconds (draft + target).
    pub fn decode_ms(&self) -> f64 {
        self.clock.breakdown().decode_ms()
    }

    /// Number of decoded tokens.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// Returns `true` if the transcript is empty.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use specasr_models::LatencyModel;

    #[test]
    fn latency_helpers_read_the_clock() {
        let mut clock = DecodeClock::new();
        let model = LatencyModel::new(10.0, 0.5, 0.1);
        clock.charge_target(&model, 4);
        let outcome = DecodeOutcome {
            tokens: vec![TokenId::new(5)],
            stats: DecodeStats::new(),
            clock,
            draft_cache: KvCache::new(),
            target_cache: KvCache::new(),
        };
        assert!((outcome.decode_ms() - 12.0).abs() < 1e-12);
        assert!((outcome.latency().target_ms - 12.0).abs() < 1e-12);
        assert_eq!(outcome.len(), 1);
        assert!(!outcome.is_empty());
    }
}
