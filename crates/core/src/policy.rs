//! The [`Policy`] enum: a named decoding configuration that the benchmark
//! harness can sweep over, plus the qualitative feature matrix of Tab. I.
//!
//! A policy answers one question — *how is the next round drafted and
//! verified?* — and is deliberately small: four variants covering the
//! paper's baselines (target-only autoregressive decoding and fixed-length
//! speculative decoding with one or more beams) and its two contributions
//! (adaptive single-sequence prediction and two-pass sparse-tree
//! prediction).  Everything else in the stack is policy-agnostic and
//! receives the policy as data:
//!
//! - [`Policy::decode`] runs a one-shot blocking decode by driving a
//!   [`crate::DecodeSession`] to completion — the offline path used by the
//!   figure binaries and as the byte-identical reference in tests.
//! - The serving scheduler carries the policy inside each queued request and
//!   steps the same session type round by round, interleaved across a batch.
//! - The draft phase of a round is produced by a [`crate::Drafter`]; the
//!   policy only fixes the draft *budget* and the verification shape
//!   (sequence vs tree), so model-based and draft-free drafters slot in
//!   without the policy knowing.
//!
//! Policies serialize (they appear in benchmark JSON records) and carry the
//! paper-exact configurations via [`SpeculativeConfig`], [`AdaptiveConfig`],
//! and [`SparseTreeConfig`] constructors such as
//! [`AdaptiveConfig::paper`].

use serde::{Deserialize, Serialize};
use specasr_models::{AsrDecoderModel, UtteranceTokens};

use crate::config::{AdaptiveConfig, SparseTreeConfig, SpeculativeConfig};
use crate::outcome::DecodeOutcome;
use crate::session::DecodeSession;

/// A fully specified decoding policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Policy {
    /// Target-only autoregressive decoding.
    Autoregressive,
    /// Baseline speculative decoding with `(prediction_length, beams)`.
    Speculative(SpeculativeConfig),
    /// SpecASR adaptive single-sequence prediction (+ optional recycling).
    AdaptiveSingleSequence(AdaptiveConfig),
    /// SpecASR two-pass sparse-tree prediction.
    TwoPassSparseTree(SparseTreeConfig),
}

impl Policy {
    /// A short, stable name for figures and JSON records.
    pub fn name(&self) -> String {
        match self {
            Policy::Autoregressive => "autoregressive".to_owned(),
            Policy::Speculative(config) => format!("speculative {}", config.label()),
            Policy::AdaptiveSingleSequence(config) => {
                if config.recycling {
                    "specasr-asp+recycle".to_owned()
                } else {
                    "specasr-asp".to_owned()
                }
            }
            Policy::TwoPassSparseTree(_) => "specasr-tsp".to_owned(),
        }
    }

    /// Decodes `audio` with this policy.  The autoregressive policy ignores
    /// the draft model.
    ///
    /// Equivalent to running a [`crate::DecodeSession`] for this policy to
    /// completion — which is exactly what it does, so blocking decodes and
    /// round-interleaved (scheduled) decodes share one code path.
    pub fn decode<D, T>(&self, draft: &D, target: &T, audio: &UtteranceTokens) -> DecodeOutcome
    where
        D: AsrDecoderModel + ?Sized,
        T: AsrDecoderModel + ?Sized,
    {
        DecodeSession::new(*self, audio.clone()).run(draft, target)
    }

    /// The baselines used throughout the paper's evaluation: autoregressive
    /// decoding plus the three speculative `(length, beams)` configurations.
    pub fn paper_baselines() -> Vec<Policy> {
        vec![
            Policy::Autoregressive,
            Policy::Speculative(SpeculativeConfig::short_single()),
            Policy::Speculative(SpeculativeConfig::long_single()),
            Policy::Speculative(SpeculativeConfig::short_double_beam()),
        ]
    }

    /// The two SpecASR policies evaluated in Fig. 11.
    pub fn specasr_policies() -> Vec<Policy> {
        vec![
            Policy::AdaptiveSingleSequence(AdaptiveConfig::paper()),
            Policy::TwoPassSparseTree(SparseTreeConfig::paper()),
        ]
    }

    /// The qualitative comparison of Tab. I, one row per speculative-decoding
    /// family.
    pub fn feature_matrix() -> Vec<FeatureRow> {
        vec![
            FeatureRow {
                method: "single sequence",
                draft_generation_efficiency: Rating::High,
                target_verification_efficiency: Rating::Low,
                draft_sequence_length: Rating::Medium,
                target_accept_rate: Rating::Low,
                flexibility: Rating::Medium,
            },
            FeatureRow {
                method: "fixed tree",
                draft_generation_efficiency: Rating::Low,
                target_verification_efficiency: Rating::High,
                draft_sequence_length: Rating::Low,
                target_accept_rate: Rating::Medium,
                flexibility: Rating::Low,
            },
            FeatureRow {
                method: "dynamic tree",
                draft_generation_efficiency: Rating::Low,
                target_verification_efficiency: Rating::High,
                draft_sequence_length: Rating::Low,
                target_accept_rate: Rating::High,
                flexibility: Rating::High,
            },
            FeatureRow {
                method: "specasr (ours)",
                draft_generation_efficiency: Rating::High,
                target_verification_efficiency: Rating::High,
                draft_sequence_length: Rating::High,
                target_accept_rate: Rating::High,
                flexibility: Rating::High,
            },
        ]
    }
}

/// Qualitative rating used by the Tab. I comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Rating {
    /// Weak on this axis.
    Low,
    /// Average on this axis.
    Medium,
    /// Strong on this axis.
    High,
}

impl Rating {
    /// Numeric value (1–3) used when the matrix is printed as a table.
    pub fn score(self) -> f64 {
        match self {
            Rating::Low => 1.0,
            Rating::Medium => 2.0,
            Rating::High => 3.0,
        }
    }
}

/// One row of the Tab. I feature matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FeatureRow {
    /// Speculative-decoding family.
    pub method: &'static str,
    /// How cheap draft generation is.
    pub draft_generation_efficiency: Rating,
    /// How cheap target verification is.
    pub target_verification_efficiency: Rating,
    /// How long the draft sequences are.
    pub draft_sequence_length: Rating,
    /// How often the target accepts the draft.
    pub target_accept_rate: Rating,
    /// How well the method adapts across models/tasks.
    pub flexibility: Rating,
}

#[cfg(test)]
mod tests {
    use super::*;
    use specasr_audio::{Corpus, Split};
    use specasr_models::{ModelProfile, SimulatedAsrModel, TokenizerBinding};

    #[test]
    fn policy_names_are_distinct() {
        let mut names: Vec<String> = Policy::paper_baselines()
            .into_iter()
            .chain(Policy::specasr_policies())
            .map(|p| p.name())
            .collect();
        let before = names.len();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), before);
    }

    #[test]
    fn every_policy_decodes_losslessly() {
        let corpus = Corpus::librispeech_like(43, 2);
        let binding = TokenizerBinding::for_corpus(&corpus);
        let audio = binding.bind_all(corpus.split(Split::DevClean));
        let target = SimulatedAsrModel::target(ModelProfile::whisper_medium_en(), 7);
        let draft = SimulatedAsrModel::draft_paired(ModelProfile::whisper_tiny_en(), 8, &target);
        for policy in Policy::paper_baselines()
            .into_iter()
            .chain(Policy::specasr_policies())
        {
            for utt in &audio {
                assert_eq!(
                    policy.decode(&draft, &target, utt).tokens,
                    target.greedy_transcript(utt),
                    "policy {} is not lossless",
                    policy.name()
                );
            }
        }
    }

    #[test]
    fn feature_matrix_matches_table_one() {
        let matrix = Policy::feature_matrix();
        assert_eq!(matrix.len(), 4);
        let ours = matrix.last().expect("non-empty");
        assert_eq!(ours.method, "specasr (ours)");
        assert_eq!(ours.draft_generation_efficiency, Rating::High);
        assert_eq!(ours.target_verification_efficiency, Rating::High);
        assert!(Rating::High.score() > Rating::Low.score());
    }
}
