//! SpecASR: speculative decoding policies specialised for LLM-based ASR.
//!
//! This crate is the paper's primary contribution: a family of decoding
//! policies that accelerate the LLM decoder of an ASR system without changing
//! its output (lossless acceleration).  Every policy is written against the
//! [`specasr_models::AsrDecoderModel`] trait, so the simulated models used in
//! this reproduction and a real neural backend are interchangeable.
//!
//! # Policies
//!
//! * [`AutoregressiveDecoder`] — the target model decodes one token per
//!   forward pass (the paper's first baseline),
//! * [`SpeculativeDecoder`] — classic draft-then-verify speculative decoding
//!   with a fixed prediction length and optional beams (the `(8, 1)`,
//!   `(16, 1)`, `(8, 2)` baselines),
//! * [`AdaptiveDecoder`] — SpecASR's **adaptive single-sequence prediction**:
//!   draft up to 24 tokens but truncate early when the normalised top-1 logit
//!   falls below a threshold, with optional **draft sequence recycling** of
//!   rejected suffixes,
//! * [`SparseTreeDecoder`] — SpecASR's **two-pass sparse-tree prediction**:
//!   a greedy main trunk plus sparse top-k side branches at uncertain
//!   positions, verified in one pass with a 2-D tree attention mask.
//!
//! The [`Policy`] enum names each configuration and dispatches to the right
//! decoder, which is what the benchmark harness sweeps over.
//!
//! # Drafters
//!
//! *Where draft tokens come from* is orthogonal to the policy: the
//! [`Drafter`] trait decouples the draft source from the decoder model.
//! [`ModelDrafter`] is the paper's configuration (a small draft model);
//! [`specasr_models::CtcDrafter`] and [`TokenMapDrafter`] are **draft-free**
//! — they propose from the encoder's CTC posterior or a precomputed domain
//! token map, run zero draft forward passes, and hold zero draft KV cache,
//! trading shorter accepted drafts for roughly double effective serving
//! capacity.  [`DrafterKind`] threads the per-session choice through the
//! serving stack.
//!
//! # Losslessness
//!
//! Every policy produces exactly the target model's greedy transcription.
//! This invariant is enforced by unit, integration, and property-based tests
//! (`tests/` at the workspace root), and is the reason speculative decoding
//! may be compared at *iso-accuracy* in the paper.
//!
//! # Example
//!
//! ```
//! use specasr::{AdaptiveConfig, AdaptiveDecoder, AutoregressiveDecoder};
//! use specasr_audio::{Corpus, Split};
//! use specasr_models::{ModelProfile, SimulatedAsrModel, TokenizerBinding};
//!
//! let corpus = Corpus::librispeech_like(1, 1);
//! let binding = TokenizerBinding::for_corpus(&corpus);
//! let audio = binding.bind(&corpus.split(Split::TestClean)[0]);
//!
//! let target = SimulatedAsrModel::target(ModelProfile::whisper_medium_en(), 7);
//! let draft = SimulatedAsrModel::draft_paired(ModelProfile::whisper_tiny_en(), 8, &target);
//!
//! let reference = AutoregressiveDecoder::new().decode(&target, &audio);
//! let accelerated = AdaptiveDecoder::new(AdaptiveConfig::default()).decode(&draft, &target, &audio);
//!
//! assert_eq!(reference.tokens, accelerated.tokens); // lossless
//! assert!(accelerated.clock.breakdown().decode_ms() < reference.clock.breakdown().decode_ms());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adaptive;
mod autoregressive;
mod config;
mod drafter;
mod outcome;
mod pipeline;
mod policy;
mod recycle;
mod round;
mod session;
mod sparse_tree;
mod speculative;
mod stats;
mod verify;

pub use adaptive::AdaptiveDecoder;
pub use autoregressive::AutoregressiveDecoder;
pub use config::{AdaptiveConfig, SparseTreeConfig, SpeculativeConfig};
pub use drafter::{DraftRequest, Drafter, DrafterKind, ModelDrafter, TokenMapDrafter};
pub use outcome::DecodeOutcome;
pub use pipeline::{AsrPipeline, PipelineOutput};
pub use policy::{FeatureRow, Policy, Rating};
pub use recycle::RecycleBuffer;
pub use session::{DecodeSession, DraftedRound, KvDemand};
pub use sparse_tree::SparseTreeDecoder;
pub use speculative::SpeculativeDecoder;
pub use stats::{DecodeStats, RoundRecord};
pub use verify::{verify_sequence, verify_tree, SequenceVerification, TreeVerification};
