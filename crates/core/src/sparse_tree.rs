//! Two-pass sparse-tree prediction (TSP) — the third SpecASR technique.
//!
//! Pass 1 drafts a long greedy "main trunk" while recording the positions
//! whose normalised top-1 logit falls below the uncertainty threshold,
//! together with the runner-up (top-2) candidate at each of them.  Pass 2
//! expands *only* those uncertain positions into sparse side branches,
//! stopping a branch early whenever it can be merged back onto the trunk (the
//! recycling rule), so the tree stays narrow while covering the most likely
//! verification failures.  The whole tree is then verified by the target in a
//! single forward pass using the SpecInfer 2-D attention mask.

use specasr_models::{AsrDecoderModel, DecodeClock, UtteranceTokens};
use specasr_runtime::{KvCache, NodeId, NodeOrigin, TokenTree};
use specasr_tokenizer::TokenId;

use crate::config::SparseTreeConfig;
use crate::outcome::DecodeOutcome;
use crate::recycle::{run_draft_phase, DraftPhase, RecycleBuffer};
use crate::round::commit_round;
use crate::stats::{DecodeStats, RoundRecord};
use crate::verify::{verify_sequence, verify_tree};

/// SpecASR's two-pass sparse-tree decoder.
///
/// # Example
///
/// ```
/// use specasr::{SparseTreeConfig, SparseTreeDecoder};
/// use specasr_audio::{Corpus, Split};
/// use specasr_models::{AsrDecoderModel, ModelProfile, SimulatedAsrModel, TokenizerBinding};
///
/// let corpus = Corpus::librispeech_like(1, 1);
/// let binding = TokenizerBinding::for_corpus(&corpus);
/// let audio = binding.bind(&corpus.split(Split::TestClean)[0]);
/// let target = SimulatedAsrModel::target(ModelProfile::vicuna_13b(), 7);
/// let draft = SimulatedAsrModel::draft_paired(ModelProfile::tiny_llama_1b(), 8, &target);
///
/// let outcome = SparseTreeDecoder::new(SparseTreeConfig::paper()).decode(&draft, &target, &audio);
/// assert_eq!(outcome.tokens, target.greedy_transcript(&audio)); // lossless
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SparseTreeDecoder {
    config: SparseTreeConfig,
}

impl SparseTreeDecoder {
    /// Creates a decoder with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`SparseTreeConfig::validate`]).
    pub fn new(config: SparseTreeConfig) -> Self {
        config.validate();
        SparseTreeDecoder { config }
    }

    /// The decoder configuration.
    pub fn config(&self) -> &SparseTreeConfig {
        &self.config
    }

    /// Decodes `audio`, drafting with `draft` and verifying with `target`.
    pub fn decode<D, T>(&self, draft: &D, target: &T, audio: &UtteranceTokens) -> DecodeOutcome
    where
        D: AsrDecoderModel + ?Sized,
        T: AsrDecoderModel + ?Sized,
    {
        let mut clock = DecodeClock::new();
        let mut stats = DecodeStats::new();
        let mut draft_cache = KvCache::new();
        let mut target_cache = KvCache::new();
        draft_cache.prefill(audio.prefill_tokens());
        target_cache.prefill(audio.prefill_tokens());

        let cap = audio.len() * 2 + 16;
        let mut tokens: Vec<TokenId> = Vec::with_capacity(audio.len() + 1);
        let mut recycle = RecycleBuffer::new();
        let mut finished = false;

        while !finished {
            // Pass 1: greedy trunk, recording uncertainty but never truncating.
            let retained: &[TokenId] = if self.config.recycling {
                recycle.tokens()
            } else {
                &[]
            };
            let trunk = run_draft_phase(
                draft,
                audio,
                &tokens,
                retained,
                self.config.max_prediction_length,
                self.config.uncertainty_threshold,
                false,
                self.config.merge_offset,
                &mut clock,
            );

            // Pass 2: sparse branch expansion at the uncertain positions.
            let (tree, branch_steps, branch_recycled) =
                self.grow_tree(draft, audio, &tokens, &trunk, &mut clock);

            // Verification: one target pass over the whole tree.
            let verification = verify_tree(target, audio, &tokens, &tree);
            clock.charge_target(
                target.profile().latency(),
                verification.nodes_processed.max(1),
            );

            // Retain the trunk's rejected suffix for the next round.  The
            // trunk's per-position target outputs are available from the same
            // verification pass, so no extra latency is charged.
            let trunk_tokens = trunk.token_ids();
            let trunk_verification = verify_sequence(target, audio, &tokens, &trunk_tokens);
            recycle = if trunk_verification.all_accepted {
                RecycleBuffer::new()
            } else {
                RecycleBuffer::from_rejected(&trunk_tokens, trunk_verification.accepted_len())
            };

            // KV bookkeeping and commit.
            draft_cache.append(tree.len());
            target_cache.append(tree.len());
            finished = commit_round(
                &mut tokens,
                &verification.accepted,
                verification.correction,
                audio.eos(),
                cap,
                &mut stats,
            );
            let committed = audio.prefill_tokens() + tokens.len();
            draft_cache.rollback_to(committed.min(draft_cache.len()));
            target_cache.rollback_to(committed.min(target_cache.len()));

            stats.record_round(RoundRecord {
                predicted: tree.len(),
                accepted: verification.accepted_len(),
                draft_steps: trunk.steps + branch_steps,
                tree_size: tree.len(),
                recycled: trunk.recycled + branch_recycled,
                truncated: false,
            });
            if stats.rounds >= cap {
                break;
            }
        }

        DecodeOutcome {
            tokens,
            stats,
            clock,
            draft_cache,
            target_cache,
        }
    }

    /// Builds the sparse token tree from the trunk draft: the trunk chain plus
    /// one side branch per uncertain position (up to `max_branches`).
    ///
    /// Returns `(tree, branch_draft_steps, branch_recycled_tokens)`.
    fn grow_tree<D>(
        &self,
        draft: &D,
        audio: &UtteranceTokens,
        prefix: &[TokenId],
        trunk: &DraftPhase,
        clock: &mut DecodeClock,
    ) -> (TokenTree, usize, usize)
    where
        D: AsrDecoderModel + ?Sized,
    {
        let mut tree = TokenTree::new();
        let trunk_tokens = trunk.token_ids();

        // Trunk chain.
        let mut trunk_nodes: Vec<NodeId> = Vec::with_capacity(trunk.tokens.len());
        let mut previous: Option<NodeId> = None;
        for drafted in &trunk.tokens {
            let origin = if drafted.recycled {
                NodeOrigin::Recycled
            } else {
                NodeOrigin::Trunk
            };
            let node = match previous {
                None => tree.push_root(drafted.token, drafted.probability, origin),
                Some(parent) => tree.push_child(parent, drafted.token, drafted.probability, origin),
            };
            trunk_nodes.push(node);
            previous = Some(node);
        }

        // Uncertain positions: low-confidence, freshly generated, non-EOS
        // trunk tokens with a recorded runner-up candidate.
        let uncertain: Vec<(usize, TokenId, f64)> = trunk
            .tokens
            .iter()
            .enumerate()
            .filter(|(_, d)| {
                !d.recycled
                    && d.probability < self.config.uncertainty_threshold
                    && d.token != audio.eos()
            })
            .filter_map(|(i, d)| d.runner_up.map(|(alt, p)| (i, alt, p)))
            .take(self.config.max_branches)
            .collect();

        let mut branch_steps = 0usize;
        let mut branch_recycled = 0usize;
        let branch_width = self.config.branch_top_k.saturating_sub(1).max(1);

        for &(position, alt_token, alt_probability) in &uncertain {
            // Open `branch_top_k - 1` alternative branches at this position;
            // the paper finds a single (top-2) branch optimal, so additional
            // widths reuse lower-ranked candidates from a fresh draft query
            // only when configured.
            let mut alternatives: Vec<(TokenId, f64)> = vec![(alt_token, alt_probability)];
            if branch_width > 1 {
                let mut context = prefix.to_vec();
                context.extend_from_slice(&trunk_tokens[..position]);
                let logits = draft.next_logits(audio, &context);
                clock.charge_draft(draft.profile().latency(), 1);
                branch_steps += 1;
                for candidate in logits.iter().skip(2).take(branch_width - 1) {
                    alternatives.push((candidate.token, candidate.probability));
                }
            }

            for (token, probability) in alternatives {
                let parent = if position == 0 {
                    None
                } else {
                    Some(trunk_nodes[position - 1])
                };
                let mut tip = match parent {
                    None => tree.push_root(token, probability, NodeOrigin::Branch),
                    Some(p) => tree.push_child(p, token, probability, NodeOrigin::Branch),
                };
                let mut branch_tokens = vec![token];

                // Extend the branch greedily, merging back onto the trunk as
                // soon as a generated token matches it at the corresponding
                // or an adjacent position.
                for _ in 0..self.config.branch_extension {
                    let mut context = prefix.to_vec();
                    context.extend_from_slice(&trunk_tokens[..position]);
                    context.extend_from_slice(&branch_tokens);
                    let logits = draft.next_logits(audio, &context);
                    clock.charge_draft(draft.profile().latency(), 1);
                    branch_steps += 1;
                    let Some(top1) = logits.top1() else { break };

                    // Merge check against the trunk.
                    let trunk_slot = position + branch_tokens.len();
                    if let Some(merge_at) = merge_slot(
                        &trunk_tokens,
                        trunk_slot,
                        top1.token,
                        self.config.merge_offset,
                    ) {
                        tip = tree.push_child(tip, top1.token, top1.probability, NodeOrigin::Branch);
                        branch_tokens.push(top1.token);
                        // Adopt the trunk continuation after the merge point.
                        // Adoption is capped so side branches stay sparse and
                        // the verification tree does not balloon.
                        let adoption_cap = 2 * self.config.branch_extension;
                        for &recycled_token in
                            trunk_tokens.iter().skip(merge_at + 1).take(adoption_cap)
                        {
                            if recycled_token == audio.eos() {
                                break;
                            }
                            tip = tree.push_child(tip, recycled_token, 1.0, NodeOrigin::Recycled);
                            branch_tokens.push(recycled_token);
                            branch_recycled += 1;
                        }
                        break;
                    }

                    tip = tree.push_child(tip, top1.token, top1.probability, NodeOrigin::Branch);
                    branch_tokens.push(top1.token);
                    if top1.token == audio.eos() {
                        break;
                    }
                }
            }
        }

        (tree, branch_steps, branch_recycled)
    }
}

/// Finds the trunk index near `slot` holding `token`, within `merge_offset`.
fn merge_slot(
    trunk: &[TokenId],
    slot: usize,
    token: TokenId,
    merge_offset: usize,
) -> Option<usize> {
    if trunk.is_empty() {
        return None;
    }
    let lo = slot.saturating_sub(merge_offset);
    let hi = (slot + merge_offset).min(trunk.len() - 1);
    let mut candidates: Vec<usize> = (lo..=hi).collect();
    candidates.sort_by_key(|&j| j.abs_diff(slot));
    candidates.into_iter().find(|&j| trunk[j] == token)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adaptive::AdaptiveDecoder;
    use crate::config::AdaptiveConfig;
    use specasr_audio::{Corpus, Split};
    use specasr_models::{ModelProfile, SimulatedAsrModel, TokenizerBinding};

    fn setup(
        target_profile: ModelProfile,
        split: Split,
    ) -> (SimulatedAsrModel, SimulatedAsrModel, Vec<UtteranceTokens>) {
        let corpus = Corpus::librispeech_like(37, 8);
        let binding = TokenizerBinding::for_corpus(&corpus);
        let audio = binding.bind_all(corpus.split(split));
        let target = SimulatedAsrModel::target(target_profile, 7);
        let draft = SimulatedAsrModel::draft_paired(ModelProfile::whisper_tiny_en(), 8, &target);
        (draft, target, audio)
    }

    #[test]
    fn sparse_tree_decoding_is_lossless() {
        let (draft, target, audio) = setup(ModelProfile::whisper_medium_en(), Split::TestOther);
        let decoder = SparseTreeDecoder::new(SparseTreeConfig::paper());
        for utt in &audio {
            assert_eq!(
                decoder.decode(&draft, &target, utt).tokens,
                target.greedy_transcript(utt)
            );
        }
    }

    #[test]
    fn trees_contain_branches_on_noisy_audio() {
        let (draft, target, audio) = setup(ModelProfile::whisper_medium_en(), Split::TestOther);
        let decoder = SparseTreeDecoder::new(SparseTreeConfig::paper());
        let mut total_tree = 0usize;
        let mut total_predicted = 0usize;
        for utt in &audio {
            let outcome = decoder.decode(&draft, &target, utt);
            total_tree += outcome
                .stats
                .rounds_detail
                .iter()
                .map(|r| r.tree_size)
                .sum::<usize>();
            total_predicted += outcome.stats.predicted_tokens;
        }
        assert_eq!(total_tree, total_predicted);
        assert!(total_tree > 0);
    }

    #[test]
    fn sparse_tree_beats_adaptive_for_large_targets() {
        // Observation 3: with a large target model the verification pass is
        // the bottleneck, and the sparse tree's higher accepted length per
        // round pays off.
        let (draft, target, audio) = setup(ModelProfile::vicuna_13b(), Split::TestClean);
        let adaptive = AdaptiveDecoder::new(AdaptiveConfig::paper());
        let sparse = SparseTreeDecoder::new(SparseTreeConfig::paper());
        let mut adaptive_target_ms = 0.0;
        let mut sparse_target_ms = 0.0;
        for utt in &audio {
            adaptive_target_ms += adaptive.decode(&draft, &target, utt).latency().target_ms;
            sparse_target_ms += sparse.decode(&draft, &target, utt).latency().target_ms;
        }
        assert!(
            sparse_target_ms <= adaptive_target_ms * 1.05,
            "sparse-tree target time ({sparse_target_ms:.1} ms) should not exceed adaptive ({adaptive_target_ms:.1} ms)"
        );
    }

    #[test]
    fn accepted_length_per_round_exceeds_the_baseline(){
        use crate::config::SpeculativeConfig;
        use crate::speculative::SpeculativeDecoder;
        let (draft, target, audio) = setup(ModelProfile::whisper_medium_en(), Split::TestClean);
        let baseline = SpeculativeDecoder::new(SpeculativeConfig::short_single());
        let sparse = SparseTreeDecoder::new(SparseTreeConfig::paper());
        let mut baseline_stats = DecodeStats::new();
        let mut sparse_stats = DecodeStats::new();
        for utt in &audio {
            baseline_stats.merge(&baseline.decode(&draft, &target, utt).stats);
            sparse_stats.merge(&sparse.decode(&draft, &target, utt).stats);
        }
        assert!(
            sparse_stats.accepted_per_round() > baseline_stats.accepted_per_round(),
            "sparse-tree accepted/round ({:.2}) should exceed baseline ({:.2})",
            sparse_stats.accepted_per_round(),
            baseline_stats.accepted_per_round()
        );
    }

    #[test]
    fn zero_branches_degenerates_to_single_sequence_trees() {
        let (draft, target, audio) = setup(ModelProfile::whisper_medium_en(), Split::TestClean);
        let config = SparseTreeConfig {
            max_branches: 0,
            ..SparseTreeConfig::paper()
        };
        let outcome = SparseTreeDecoder::new(config).decode(&draft, &target, &audio[0]);
        for round in &outcome.stats.rounds_detail {
            assert_eq!(round.tree_size, round.predicted);
        }
        assert_eq!(outcome.tokens, target.greedy_transcript(&audio[0]));
    }

    #[test]
    fn merge_slot_prefers_the_nearest_match() {
        let trunk: Vec<TokenId> = [5u32, 6, 7, 6].into_iter().map(TokenId::new).collect();
        assert_eq!(merge_slot(&trunk, 1, TokenId::new(6), 1), Some(1));
        assert_eq!(merge_slot(&trunk, 2, TokenId::new(6), 1), Some(1));
        assert_eq!(merge_slot(&trunk, 0, TokenId::new(9), 1), None);
        assert_eq!(merge_slot(&[], 0, TokenId::new(9), 1), None);
    }
}
