//! Two-pass sparse-tree prediction (TSP) — the third SpecASR technique.
//!
//! Pass 1 drafts a long greedy "main trunk" while recording the positions
//! whose normalised top-1 logit falls below the uncertainty threshold,
//! together with the runner-up (top-2) candidate at each of them.  Pass 2
//! expands *only* those uncertain positions into sparse side branches,
//! stopping a branch early whenever it can be merged back onto the trunk (the
//! recycling rule), so the tree stays narrow while covering the most likely
//! verification failures.  The whole tree is then verified by the target in a
//! single forward pass using the SpecInfer 2-D attention mask.

use specasr_models::{AsrDecoderModel, UtteranceTokens};
use specasr_tokenizer::TokenId;

use crate::config::SparseTreeConfig;
use crate::outcome::DecodeOutcome;
use crate::policy::Policy;
use crate::session::DecodeSession;

/// SpecASR's two-pass sparse-tree decoder.
///
/// # Example
///
/// ```
/// use specasr::{SparseTreeConfig, SparseTreeDecoder};
/// use specasr_audio::{Corpus, Split};
/// use specasr_models::{AsrDecoderModel, ModelProfile, SimulatedAsrModel, TokenizerBinding};
///
/// let corpus = Corpus::librispeech_like(1, 1);
/// let binding = TokenizerBinding::for_corpus(&corpus);
/// let audio = binding.bind(&corpus.split(Split::TestClean)[0]);
/// let target = SimulatedAsrModel::target(ModelProfile::vicuna_13b(), 7);
/// let draft = SimulatedAsrModel::draft_paired(ModelProfile::tiny_llama_1b(), 8, &target);
///
/// let outcome = SparseTreeDecoder::new(SparseTreeConfig::paper()).decode(&draft, &target, &audio);
/// assert_eq!(outcome.tokens, target.greedy_transcript(&audio)); // lossless
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SparseTreeDecoder {
    config: SparseTreeConfig,
}

impl SparseTreeDecoder {
    /// Creates a decoder with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`SparseTreeConfig::validate`]).
    pub fn new(config: SparseTreeConfig) -> Self {
        config.validate();
        SparseTreeDecoder { config }
    }

    /// The decoder configuration.
    pub fn config(&self) -> &SparseTreeConfig {
        &self.config
    }

    /// Decodes `audio`, drafting with `draft` and verifying with `target`.
    ///
    /// Runs a [`DecodeSession`] to completion; the two-pass trunk/branch
    /// drafting and the grouped tree verification live in
    /// [`crate::DecodeSession`].
    pub fn decode<D, T>(&self, draft: &D, target: &T, audio: &UtteranceTokens) -> DecodeOutcome
    where
        D: AsrDecoderModel + ?Sized,
        T: AsrDecoderModel + ?Sized,
    {
        DecodeSession::new(Policy::TwoPassSparseTree(self.config), audio.clone()).run(draft, target)
    }
}

/// Finds the trunk index near `slot` holding `token`, within `merge_offset`.
pub(crate) fn merge_slot(
    trunk: &[TokenId],
    slot: usize,
    token: TokenId,
    merge_offset: usize,
) -> Option<usize> {
    if trunk.is_empty() {
        return None;
    }
    let lo = slot.saturating_sub(merge_offset);
    let hi = (slot + merge_offset).min(trunk.len() - 1);
    let mut candidates: Vec<usize> = (lo..=hi).collect();
    candidates.sort_by_key(|&j| j.abs_diff(slot));
    candidates.into_iter().find(|&j| trunk[j] == token)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adaptive::AdaptiveDecoder;
    use crate::config::AdaptiveConfig;
    use crate::stats::DecodeStats;
    use specasr_audio::{Corpus, Split};
    use specasr_models::{ModelProfile, SimulatedAsrModel, TokenizerBinding};

    fn setup(
        target_profile: ModelProfile,
        split: Split,
    ) -> (SimulatedAsrModel, SimulatedAsrModel, Vec<UtteranceTokens>) {
        let corpus = Corpus::librispeech_like(37, 8);
        let binding = TokenizerBinding::for_corpus(&corpus);
        let audio = binding.bind_all(corpus.split(split));
        let target = SimulatedAsrModel::target(target_profile, 7);
        let draft = SimulatedAsrModel::draft_paired(ModelProfile::whisper_tiny_en(), 8, &target);
        (draft, target, audio)
    }

    #[test]
    fn sparse_tree_decoding_is_lossless() {
        let (draft, target, audio) = setup(ModelProfile::whisper_medium_en(), Split::TestOther);
        let decoder = SparseTreeDecoder::new(SparseTreeConfig::paper());
        for utt in &audio {
            assert_eq!(
                decoder.decode(&draft, &target, utt).tokens,
                target.greedy_transcript(utt)
            );
        }
    }

    #[test]
    fn trees_contain_branches_on_noisy_audio() {
        let (draft, target, audio) = setup(ModelProfile::whisper_medium_en(), Split::TestOther);
        let decoder = SparseTreeDecoder::new(SparseTreeConfig::paper());
        let mut total_tree = 0usize;
        let mut total_predicted = 0usize;
        for utt in &audio {
            let outcome = decoder.decode(&draft, &target, utt);
            total_tree += outcome
                .stats
                .rounds_detail
                .iter()
                .map(|r| r.tree_size)
                .sum::<usize>();
            total_predicted += outcome.stats.predicted_tokens;
        }
        assert_eq!(total_tree, total_predicted);
        assert!(total_tree > 0);
    }

    #[test]
    fn sparse_tree_beats_adaptive_for_large_targets() {
        // Observation 3: with a large target model the verification pass is
        // the bottleneck, and the sparse tree's higher accepted length per
        // round pays off.
        let (draft, target, audio) = setup(ModelProfile::vicuna_13b(), Split::TestClean);
        let adaptive = AdaptiveDecoder::new(AdaptiveConfig::paper());
        let sparse = SparseTreeDecoder::new(SparseTreeConfig::paper());
        let mut adaptive_target_ms = 0.0;
        let mut sparse_target_ms = 0.0;
        for utt in &audio {
            adaptive_target_ms += adaptive.decode(&draft, &target, utt).latency().target_ms;
            sparse_target_ms += sparse.decode(&draft, &target, utt).latency().target_ms;
        }
        assert!(
            sparse_target_ms <= adaptive_target_ms * 1.05,
            "sparse-tree target time ({sparse_target_ms:.1} ms) should not exceed adaptive ({adaptive_target_ms:.1} ms)"
        );
    }

    #[test]
    fn accepted_length_per_round_exceeds_the_baseline() {
        use crate::config::SpeculativeConfig;
        use crate::speculative::SpeculativeDecoder;
        let (draft, target, audio) = setup(ModelProfile::whisper_medium_en(), Split::TestClean);
        let baseline = SpeculativeDecoder::new(SpeculativeConfig::short_single());
        let sparse = SparseTreeDecoder::new(SparseTreeConfig::paper());
        let mut baseline_stats = DecodeStats::new();
        let mut sparse_stats = DecodeStats::new();
        for utt in &audio {
            baseline_stats.merge(&baseline.decode(&draft, &target, utt).stats);
            sparse_stats.merge(&sparse.decode(&draft, &target, utt).stats);
        }
        assert!(
            sparse_stats.accepted_per_round() > baseline_stats.accepted_per_round(),
            "sparse-tree accepted/round ({:.2}) should exceed baseline ({:.2})",
            sparse_stats.accepted_per_round(),
            baseline_stats.accepted_per_round()
        );
    }

    #[test]
    fn zero_branches_degenerates_to_single_sequence_trees() {
        let (draft, target, audio) = setup(ModelProfile::whisper_medium_en(), Split::TestClean);
        let config = SparseTreeConfig {
            max_branches: 0,
            ..SparseTreeConfig::paper()
        };
        let outcome = SparseTreeDecoder::new(config).decode(&draft, &target, &audio[0]);
        for round in &outcome.stats.rounds_detail {
            assert_eq!(round.tree_size, round.predicted);
        }
        assert_eq!(outcome.tokens, target.greedy_transcript(&audio[0]));
    }

    #[test]
    fn merge_slot_prefers_the_nearest_match() {
        let trunk: Vec<TokenId> = [5u32, 6, 7, 6].into_iter().map(TokenId::new).collect();
        assert_eq!(merge_slot(&trunk, 1, TokenId::new(6), 1), Some(1));
        assert_eq!(merge_slot(&trunk, 2, TokenId::new(6), 1), Some(1));
        assert_eq!(merge_slot(&trunk, 0, TokenId::new(9), 1), None);
        assert_eq!(merge_slot(&[], 0, TokenId::new(9), 1), None);
    }
}
