//! The [`Drafter`] abstraction: where draft tokens come from.
//!
//! Every speculative policy needs draft material, but nothing about
//! verification cares *how* it was produced — the lossless rule accepts
//! exactly the tokens that match the target's own greedy choices, whatever
//! their source.  This module decouples the two:
//!
//! * [`ModelDrafter`] — the classic draft *model*: a small
//!   [`AsrDecoderModel`] queried token by token (or tree by tree), charging
//!   draft forward passes and holding a draft KV cache.  This is the paper's
//!   own configuration, refitted behind the trait.
//! * [`specasr_models::CtcDrafter`] — **draft-free**: greedy collapse of a
//!   simulated CTC posterior over the encoder output (Saon et al.).  No
//!   forward passes, no draft KV.
//! * [`TokenMapDrafter`] — **draft-free**: a walk over a precomputed
//!   n-gram [`TokenMapIndex`] built from the domain vocabulary (Ho et al.),
//!   falling back to shorter drafts off-map.  No forward passes, no draft KV.
//!
//! The serving consequences of draft-free drafting are what matter at scale:
//! a draft-free [`crate::DecodeSession`] never prefs or appends the draft KV
//! sub-pool ([`crate::KvDemand::draft_blocks`] is 0 every round) and never
//! submits draft-lane backend batches, so a scheduler admitting draft-free
//! sessions sees roughly double the effective pool capacity.
//!
//! [`DrafterKind`] names the three sources so sessions, scheduler queues, and
//! bench rows can carry the choice as plain data; the trait objects
//! themselves are installed once per worker.

use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};
use specasr_models::{AsrDecoderModel, CtcDrafter, DecodeClock, UtteranceTokens};
use specasr_runtime::{NodeOrigin, TokenTree};
use specasr_tokenizer::{TokenId, TokenMapIndex};

use crate::config::SparseTreeConfig;
use crate::policy::Policy;
use crate::recycle::{run_draft_phase, DraftPhase, RecycleBuffer};
use crate::session::{DraftedRound, RoundPlan};
use crate::sparse_tree::merge_slot;

/// Names a draft-token source, carried per session through queues, bench
/// rows, and serialized records.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DrafterKind {
    /// A small draft model queried through forward passes (the paper's
    /// configuration); holds a draft KV cache.
    #[default]
    ModelDraft,
    /// Greedy collapse of the encoder's CTC posterior; draft-free.
    CtcEncoder,
    /// A precomputed n-gram token-map walk; draft-free.
    TokenMap,
}

impl DrafterKind {
    /// All kinds, in presentation order (model draft first).
    pub const ALL: [DrafterKind; 3] = [
        DrafterKind::ModelDraft,
        DrafterKind::CtcEncoder,
        DrafterKind::TokenMap,
    ];

    /// Short stable label used in bench rows and CLI cell names.
    pub fn label(self) -> &'static str {
        match self {
            DrafterKind::ModelDraft => "model",
            DrafterKind::CtcEncoder => "ctc",
            DrafterKind::TokenMap => "token-map",
        }
    }

    /// Parses a [`DrafterKind::label`] back into the kind.
    pub fn from_label(label: &str) -> Option<Self> {
        DrafterKind::ALL.into_iter().find(|k| k.label() == label)
    }

    /// Whether sessions drafting from this source hold a draft KV cache.
    /// Draft-free sources demand zero draft sub-pool blocks every round.
    pub fn uses_draft_kv(self) -> bool {
        matches!(self, DrafterKind::ModelDraft)
    }
}

/// Everything one draft phase may read (and the clock it may charge):
/// the audio view, the committed prefix, the session's policy and recycle
/// buffer.  Borrowed from the [`crate::DecodeSession`] for the duration of
/// [`Drafter::propose`].
pub struct DraftRequest<'a> {
    /// The bound utterance being decoded.
    pub audio: &'a UtteranceTokens,
    /// The committed transcript so far — drafting continues from its end.
    pub committed: &'a [TokenId],
    /// The session's decoding policy (supplies per-round draft budgets).
    pub policy: &'a Policy,
    /// The rejected suffix retained from the previous round (model-draft
    /// recycling; draft-free sources may ignore it).
    pub recycle: &'a RecycleBuffer,
    /// The session's latency clock; model-backed drafters charge their
    /// forward passes here, draft-free drafters charge nothing.
    pub clock: &'a mut DecodeClock,
}

/// A source of draft tokens for one speculative round.
///
/// Implementations must be pure with respect to the request: proposing from
/// the same `(audio, committed, policy, recycle)` state twice yields the same
/// [`DraftedRound`], which is what makes preemption/restore and resumed
/// streaming sessions deterministic.
///
/// The KV-demand hook [`Drafter::uses_draft_kv`] tells sessions whether to
/// prefill (and appends-per-round size) a draft KV table at all; the
/// scheduler's admission and preemption logic reads the resulting
/// [`crate::KvDemand`] — draft-free drafters report zero draft blocks.
pub trait Drafter: fmt::Debug {
    /// Which named source this drafter implements.
    fn kind(&self) -> DrafterKind;

    /// Produces this round's draft material from the committed prefix and
    /// the audio view.
    fn propose(&self, request: DraftRequest<'_>) -> DraftedRound;

    /// KV-demand hook: whether sessions using this drafter hold a draft KV
    /// cache.  Defaults to the kind's static answer.
    fn uses_draft_kv(&self) -> bool {
        self.kind().uses_draft_kv()
    }
}

/// The draft budget a policy grants one round (how many tokens the draft
/// source may propose before verification).
fn policy_draft_budget(policy: &Policy) -> usize {
    match policy {
        Policy::Autoregressive => 0,
        Policy::Speculative(config) => config.prediction_length,
        Policy::AdaptiveSingleSequence(config) => config.max_prediction_length,
        Policy::TwoPassSparseTree(config) => config.max_prediction_length,
    }
}

/// The classic model-backed drafter: wraps a small [`AsrDecoderModel`] and
/// reproduces the paper's per-policy draft phases (greedy sequence, beam
/// tree, adaptive truncation with recycling, two-pass sparse tree).
///
/// [`crate::DecodeSession::draft_round`] constructs one of these around the
/// model it is given, so the historical API is this drafter's first caller.
pub struct ModelDrafter<'a, D: ?Sized> {
    model: &'a D,
}

impl<'a, D> ModelDrafter<'a, D>
where
    D: AsrDecoderModel + ?Sized,
{
    /// Wraps `model` as the draft source.
    pub fn new(model: &'a D) -> Self {
        ModelDrafter { model }
    }
}

impl<D: ?Sized> fmt::Debug for ModelDrafter<'_, D> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ModelDrafter").finish_non_exhaustive()
    }
}

impl<D> Drafter for ModelDrafter<'_, D>
where
    D: AsrDecoderModel + ?Sized,
{
    fn kind(&self) -> DrafterKind {
        DrafterKind::ModelDraft
    }

    fn propose(&self, request: DraftRequest<'_>) -> DraftedRound {
        let DraftRequest {
            audio,
            committed,
            policy,
            recycle,
            clock,
        } = request;
        let draft = self.model;
        let plan = match *policy {
            Policy::Autoregressive => RoundPlan::Autoregressive,
            Policy::Speculative(config) if config.beams <= 1 => {
                let mut tokens = Vec::with_capacity(config.prediction_length);
                let mut context = committed.to_vec();
                let mut steps = 0usize;
                while tokens.len() < config.prediction_length {
                    let next = draft.greedy_token(audio, &context);
                    clock.charge_draft(draft.profile().latency(), 1);
                    steps += 1;
                    tokens.push(next);
                    context.push(next);
                    if next == audio.eos() {
                        break;
                    }
                }
                RoundPlan::Sequence {
                    tokens,
                    steps,
                    recycled: 0,
                    truncated: false,
                }
            }
            Policy::Speculative(config) => {
                let (tree, steps) = draft_beam_tree(
                    draft,
                    audio,
                    committed,
                    config.beams,
                    config.prediction_length,
                    clock,
                );
                RoundPlan::Tree {
                    tree,
                    trunk_tokens: None,
                    steps,
                    recycled: 0,
                }
            }
            Policy::AdaptiveSingleSequence(config) => {
                let retained: &[TokenId] = if config.recycling {
                    recycle.tokens()
                } else {
                    &[]
                };
                let phase = run_draft_phase(
                    draft,
                    audio,
                    committed,
                    retained,
                    config.max_prediction_length,
                    config.truncation_threshold,
                    true,
                    config.merge_offset,
                    clock,
                );
                RoundPlan::Sequence {
                    tokens: phase.token_ids(),
                    steps: phase.steps,
                    recycled: phase.recycled,
                    truncated: phase.truncated,
                }
            }
            Policy::TwoPassSparseTree(config) => {
                // Pass 1: greedy trunk, recording uncertainty but never
                // truncating.
                let retained: &[TokenId] = if config.recycling {
                    recycle.tokens()
                } else {
                    &[]
                };
                let trunk = run_draft_phase(
                    draft,
                    audio,
                    committed,
                    retained,
                    config.max_prediction_length,
                    config.uncertainty_threshold,
                    false,
                    config.merge_offset,
                    clock,
                );
                // Pass 2: sparse branch expansion at the uncertain positions.
                let (tree, branch_steps, branch_recycled) =
                    grow_sparse_tree(&config, draft, audio, committed, &trunk, clock);
                RoundPlan::Tree {
                    trunk_tokens: Some(trunk.token_ids()),
                    tree,
                    steps: trunk.steps + branch_steps,
                    recycled: trunk.recycled + branch_recycled,
                }
            }
        };
        DraftedRound { plan }
    }
}

/// The model-free token-map drafter: walks a precomputed
/// [`TokenMapIndex`] from the committed prefix, proposing the dominant
/// domain continuation until the walk falls off-map, hits EOS, or exhausts
/// the policy's draft budget.
///
/// Off-map contexts simply end the draft early — a shorter (possibly empty)
/// draft degrades one round toward autoregressive cost but can never break
/// losslessness, since verification accepts only target-matching tokens.
#[derive(Debug, Clone)]
pub struct TokenMapDrafter {
    index: Arc<TokenMapIndex>,
    max_draft_len: usize,
}

impl TokenMapDrafter {
    /// Wraps a prebuilt domain index.  The per-round draft cap defaults to
    /// 24, matching the adaptive policy's maximum prediction length.
    pub fn new(index: Arc<TokenMapIndex>) -> Self {
        TokenMapDrafter {
            index,
            max_draft_len: 24,
        }
    }

    /// Returns this drafter with a different per-round draft cap.
    ///
    /// # Panics
    ///
    /// Panics if `max_draft_len` is zero.
    pub fn with_max_draft_len(mut self, max_draft_len: usize) -> Self {
        assert!(max_draft_len > 0, "draft cap must be positive");
        self.max_draft_len = max_draft_len;
        self
    }

    /// The wrapped index.
    pub fn index(&self) -> &TokenMapIndex {
        &self.index
    }

    /// Walks the index from `committed`, proposing up to `budget` tokens.
    fn walk(&self, audio: &UtteranceTokens, committed: &[TokenId], budget: usize) -> Vec<TokenId> {
        let cap = budget.min(self.max_draft_len);
        let mut context = committed.to_vec();
        let mut tokens = Vec::new();
        while tokens.len() < cap {
            let Some(next) = self.index.predict(&context) else {
                break;
            };
            tokens.push(next);
            if next == audio.eos() {
                break;
            }
            context.push(next);
        }
        tokens
    }
}

impl Drafter for TokenMapDrafter {
    fn kind(&self) -> DrafterKind {
        DrafterKind::TokenMap
    }

    fn propose(&self, request: DraftRequest<'_>) -> DraftedRound {
        if matches!(request.policy, Policy::Autoregressive) {
            return DraftedRound::autoregressive();
        }
        let budget = policy_draft_budget(request.policy);
        DraftedRound::external(self.walk(request.audio, request.committed, budget))
    }
}

impl Drafter for CtcDrafter {
    fn kind(&self) -> DrafterKind {
        DrafterKind::CtcEncoder
    }

    fn propose(&self, request: DraftRequest<'_>) -> DraftedRound {
        if matches!(request.policy, Policy::Autoregressive) {
            return DraftedRound::autoregressive();
        }
        let budget = policy_draft_budget(request.policy);
        DraftedRound::external(self.collapse(request.audio, request.committed.len(), budget))
    }
}

/// The SpecInfer-style beam baseline draft: top-`beams` first-step
/// candidates extended greedily in parallel into a fixed token tree.
fn draft_beam_tree<D>(
    draft: &D,
    audio: &UtteranceTokens,
    committed: &[TokenId],
    beams: usize,
    prediction_length: usize,
    clock: &mut DecodeClock,
) -> (TokenTree, usize)
where
    D: AsrDecoderModel + ?Sized,
{
    let mut tree = TokenTree::new();
    let mut steps = 0usize;

    // First step: the top-`beams` candidates become branch roots.
    let first_logits = draft.next_logits(audio, committed);
    clock.charge_draft(draft.profile().latency(), beams);
    steps += 1;
    let mut branch_tips = Vec::new();
    for candidate in first_logits.iter().take(beams) {
        let origin = if branch_tips.is_empty() {
            NodeOrigin::Trunk
        } else {
            NodeOrigin::Branch
        };
        let node = tree.push_root(candidate.token, candidate.probability, origin);
        branch_tips.push((node, candidate.token == audio.eos()));
    }

    // Subsequent steps: extend every live branch greedily in parallel.
    for _ in 1..prediction_length {
        let live: Vec<usize> = branch_tips
            .iter()
            .enumerate()
            .filter(|(_, (_, done))| !done)
            .map(|(i, _)| i)
            .collect();
        if live.is_empty() {
            break;
        }
        clock.charge_draft(draft.profile().latency(), live.len());
        steps += 1;
        for branch in live {
            let (tip, _) = branch_tips[branch];
            let mut context = committed.to_vec();
            context.extend(tree.path_tokens(tip));
            let logits = draft.next_logits(audio, &context);
            let Some(top1) = logits.top1() else {
                branch_tips[branch].1 = true;
                continue;
            };
            let origin = if branch == 0 {
                NodeOrigin::Trunk
            } else {
                NodeOrigin::Branch
            };
            let node = tree.push_child(tip, top1.token, top1.probability, origin);
            branch_tips[branch] = (node, top1.token == audio.eos());
        }
    }
    (tree, steps)
}

/// Builds the sparse token tree from the trunk draft: the trunk chain plus
/// one side branch per uncertain position (up to `max_branches`).
///
/// Returns `(tree, branch_draft_steps, branch_recycled_tokens)`.
fn grow_sparse_tree<D>(
    config: &SparseTreeConfig,
    draft: &D,
    audio: &UtteranceTokens,
    prefix: &[TokenId],
    trunk: &DraftPhase,
    clock: &mut DecodeClock,
) -> (TokenTree, usize, usize)
where
    D: AsrDecoderModel + ?Sized,
{
    let mut tree = TokenTree::new();
    let trunk_tokens = trunk.token_ids();

    // Trunk chain.
    let mut trunk_nodes: Vec<specasr_runtime::NodeId> = Vec::with_capacity(trunk.tokens.len());
    let mut previous: Option<specasr_runtime::NodeId> = None;
    for drafted in &trunk.tokens {
        let origin = if drafted.recycled {
            NodeOrigin::Recycled
        } else {
            NodeOrigin::Trunk
        };
        let node = match previous {
            None => tree.push_root(drafted.token, drafted.probability, origin),
            Some(parent) => tree.push_child(parent, drafted.token, drafted.probability, origin),
        };
        trunk_nodes.push(node);
        previous = Some(node);
    }

    // Uncertain positions: low-confidence, freshly generated, non-EOS trunk
    // tokens with a recorded runner-up candidate.
    let uncertain: Vec<(usize, TokenId, f64)> = trunk
        .tokens
        .iter()
        .enumerate()
        .filter(|(_, d)| {
            !d.recycled && d.probability < config.uncertainty_threshold && d.token != audio.eos()
        })
        .filter_map(|(i, d)| d.runner_up.map(|(alt, p)| (i, alt, p)))
        .take(config.max_branches)
        .collect();

    let mut branch_steps = 0usize;
    let mut branch_recycled = 0usize;
    let branch_width = config.branch_top_k.saturating_sub(1).max(1);

    for &(position, alt_token, alt_probability) in &uncertain {
        // Open `branch_top_k - 1` alternative branches at this position; the
        // paper finds a single (top-2) branch optimal, so additional widths
        // reuse lower-ranked candidates from a fresh draft query only when
        // configured.
        let mut alternatives: Vec<(TokenId, f64)> = vec![(alt_token, alt_probability)];
        if branch_width > 1 {
            let mut context = prefix.to_vec();
            context.extend_from_slice(&trunk_tokens[..position]);
            let logits = draft.next_logits(audio, &context);
            clock.charge_draft(draft.profile().latency(), 1);
            branch_steps += 1;
            for candidate in logits.iter().skip(2).take(branch_width - 1) {
                alternatives.push((candidate.token, candidate.probability));
            }
        }

        for (token, probability) in alternatives {
            let parent = if position == 0 {
                None
            } else {
                Some(trunk_nodes[position - 1])
            };
            let mut tip = match parent {
                None => tree.push_root(token, probability, NodeOrigin::Branch),
                Some(p) => tree.push_child(p, token, probability, NodeOrigin::Branch),
            };
            let mut branch_tokens = vec![token];

            // Extend the branch greedily, merging back onto the trunk as soon
            // as a generated token matches it at the corresponding or an
            // adjacent position.
            for _ in 0..config.branch_extension {
                let mut context = prefix.to_vec();
                context.extend_from_slice(&trunk_tokens[..position]);
                context.extend_from_slice(&branch_tokens);
                let logits = draft.next_logits(audio, &context);
                clock.charge_draft(draft.profile().latency(), 1);
                branch_steps += 1;
                let Some(top1) = logits.top1() else { break };

                // Merge check against the trunk.
                let trunk_slot = position + branch_tokens.len();
                if let Some(merge_at) =
                    merge_slot(&trunk_tokens, trunk_slot, top1.token, config.merge_offset)
                {
                    tip = tree.push_child(tip, top1.token, top1.probability, NodeOrigin::Branch);
                    branch_tokens.push(top1.token);
                    // Adopt the trunk continuation after the merge point.
                    // Adoption is capped so side branches stay sparse and the
                    // verification tree does not balloon.
                    let adoption_cap = 2 * config.branch_extension;
                    for &recycled_token in trunk_tokens.iter().skip(merge_at + 1).take(adoption_cap)
                    {
                        if recycled_token == audio.eos() {
                            break;
                        }
                        tip = tree.push_child(tip, recycled_token, 1.0, NodeOrigin::Recycled);
                        branch_tokens.push(recycled_token);
                        branch_recycled += 1;
                    }
                    break;
                }

                tip = tree.push_child(tip, top1.token, top1.probability, NodeOrigin::Branch);
                branch_tokens.push(top1.token);
                if top1.token == audio.eos() {
                    break;
                }
            }
        }
    }

    (tree, branch_steps, branch_recycled)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{AdaptiveConfig, SpeculativeConfig};
    use crate::session::DecodeSession;
    use specasr_audio::{Corpus, Split};
    use specasr_models::{ModelProfile, SimulatedAsrModel, TokenizerBinding};

    fn setup() -> (SimulatedAsrModel, SimulatedAsrModel, Vec<UtteranceTokens>) {
        let corpus = Corpus::librispeech_like(61, 6);
        let binding = TokenizerBinding::for_corpus(&corpus);
        let audio = binding.bind_all(corpus.split(Split::TestClean));
        let target = SimulatedAsrModel::target(ModelProfile::whisper_medium_en(), 7);
        let draft = SimulatedAsrModel::draft_paired(ModelProfile::whisper_tiny_en(), 8, &target);
        (draft, target, audio)
    }

    fn token_map_for(audio: &[UtteranceTokens]) -> TokenMapDrafter {
        let sequences: Vec<Vec<TokenId>> = audio
            .iter()
            .map(|utt| {
                let mut seq = utt.reference_tokens().to_vec();
                seq.push(utt.eos());
                seq
            })
            .collect();
        let index = TokenMapIndex::build_default(sequences.iter().map(Vec::as_slice));
        TokenMapDrafter::new(Arc::new(index))
    }

    fn all_policies() -> Vec<Policy> {
        vec![
            Policy::Autoregressive,
            Policy::Speculative(SpeculativeConfig::short_single()),
            Policy::Speculative(SpeculativeConfig::short_double_beam()),
            Policy::AdaptiveSingleSequence(AdaptiveConfig::paper()),
            Policy::TwoPassSparseTree(crate::config::SparseTreeConfig::paper()),
        ]
    }

    #[test]
    fn kind_labels_round_trip() {
        for kind in DrafterKind::ALL {
            assert_eq!(DrafterKind::from_label(kind.label()), Some(kind));
        }
        assert_eq!(DrafterKind::from_label("nope"), None);
        assert_eq!(DrafterKind::default(), DrafterKind::ModelDraft);
        assert!(DrafterKind::ModelDraft.uses_draft_kv());
        assert!(!DrafterKind::CtcEncoder.uses_draft_kv());
        assert!(!DrafterKind::TokenMap.uses_draft_kv());
    }

    #[test]
    fn model_drafter_matches_the_session_draft_loop() {
        let (draft, _, audio) = setup();
        for policy in all_policies() {
            let mut a = DecodeSession::new(policy, audio[0].clone());
            let mut b = DecodeSession::new(policy, audio[0].clone());
            let via_session = a.draft_round(&draft);
            let via_drafter = b.draft_round_with(&ModelDrafter::new(&draft));
            assert_eq!(
                via_session,
                via_drafter,
                "draft_round must delegate to ModelDrafter under {}",
                policy.name()
            );
        }
    }

    #[test]
    fn ctc_sessions_decode_losslessly_under_every_policy() {
        let (draft, target, audio) = setup();
        for policy in all_policies() {
            for utt in audio.iter().take(3) {
                let ctc = CtcDrafter::paired(&target);
                let mut session =
                    DecodeSession::new_with_drafter(policy, utt.clone(), DrafterKind::CtcEncoder);
                while !session.is_finished() {
                    let drafted = session.draft_round_with(&ctc);
                    session.verify_round(&target, drafted);
                }
                let offline = policy.decode(&draft, &target, utt).tokens;
                assert_eq!(
                    session.tokens(),
                    &offline[..],
                    "CTC-draft transcript diverged under {}",
                    policy.name()
                );
            }
        }
    }

    #[test]
    fn token_map_sessions_decode_losslessly_under_every_policy() {
        let (draft, target, audio) = setup();
        let map = token_map_for(&audio);
        for policy in all_policies() {
            for utt in audio.iter().take(3) {
                let mut session =
                    DecodeSession::new_with_drafter(policy, utt.clone(), DrafterKind::TokenMap);
                while !session.is_finished() {
                    let drafted = session.draft_round_with(&map);
                    session.verify_round(&target, drafted);
                }
                let offline = policy.decode(&draft, &target, utt).tokens;
                assert_eq!(
                    session.tokens(),
                    &offline[..],
                    "token-map transcript diverged under {}",
                    policy.name()
                );
            }
        }
    }

    #[test]
    fn draft_free_drafters_charge_no_draft_latency() {
        let (_, target, audio) = setup();
        let ctc = CtcDrafter::paired(&target);
        let policy = Policy::AdaptiveSingleSequence(AdaptiveConfig::paper());
        let mut session =
            DecodeSession::new_with_drafter(policy, audio[0].clone(), DrafterKind::CtcEncoder);
        while !session.is_finished() {
            let drafted = session.draft_round_with(&ctc);
            session.verify_round(&target, drafted);
        }
        assert_eq!(session.clock().draft_passes(), 0);
        assert_eq!(session.clock().breakdown().draft_ms, 0.0);
    }

    #[test]
    fn token_map_walk_reproduces_in_domain_continuations() {
        let (_, _, audio) = setup();
        let map = token_map_for(&audio);
        let utt = &audio[0];
        let reference = utt.reference_tokens();
        // Walking from a mid-transcript prefix should reproduce a chunk of
        // the reference, since the domain corpus contains this utterance.
        let start = reference.len() / 2;
        let drafted = map.walk(utt, &reference[..start], 8);
        assert!(
            !drafted.is_empty(),
            "in-domain contexts should stay on-map at least one step"
        );
        for (offset, token) in drafted.iter().enumerate() {
            let slot = start + offset;
            if slot < reference.len() {
                assert_eq!(
                    *token, reference[slot],
                    "in-domain walk diverged from the reference at {slot}"
                );
            }
        }
    }

    #[test]
    fn off_map_contexts_fall_back_to_short_or_empty_drafts() {
        let (_, _, audio) = setup();
        let map = token_map_for(&audio);
        let utt = &audio[0];
        // A garbage context no domain sequence contains.
        let garbage: Vec<TokenId> = (9000..9004).map(TokenId::new).collect();
        let drafted = map.walk(utt, &garbage, 8);
        assert!(drafted.len() <= 1, "off-map walks must stop immediately");
    }

    #[test]
    fn autoregressive_policy_drafts_nothing_under_any_drafter() {
        let (_, target, audio) = setup();
        let ctc = CtcDrafter::paired(&target);
        let map = token_map_for(&audio);
        let mut session = DecodeSession::new_with_drafter(
            Policy::Autoregressive,
            audio[0].clone(),
            DrafterKind::CtcEncoder,
        );
        let drafted = session.draft_round_with(&ctc);
        assert_eq!(drafted.predicted_tokens(), 0);
        assert_eq!(drafted.verify_tokens(), 1);
        let mut session = DecodeSession::new_with_drafter(
            Policy::Autoregressive,
            audio[0].clone(),
            DrafterKind::TokenMap,
        );
        let drafted = session.draft_round_with(&map);
        assert_eq!(drafted.predicted_tokens(), 0);
    }
}
