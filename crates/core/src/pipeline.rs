//! The end-to-end ASR pipeline: audio encoder + LLM decoder under a policy.
//!
//! This is the convenience layer the examples use: it owns a draft/target
//! model pair, an audio-encoder cost profile, and a decoding [`Policy`], and
//! turns an [`specasr_audio::Utterance`] into transcript text together with
//! full latency accounting (encoder + decoder) and a real-time factor.

use specasr_audio::{EncoderProfile, Utterance};
use specasr_models::{AsrDecoderModel, LatencyBreakdown, TokenizerBinding};

use crate::outcome::DecodeOutcome;
use crate::policy::Policy;

/// End-to-end transcription result.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineOutput {
    /// The decoded transcript text.
    pub text: String,
    /// The decoding outcome (tokens, statistics, decoder latency).
    pub outcome: DecodeOutcome,
    /// Simulated audio-encoder latency in milliseconds.
    pub encoder_ms: f64,
    /// Duration of the input audio in seconds.
    pub audio_seconds: f64,
}

impl PipelineOutput {
    /// Total simulated latency: encoder plus decoder.
    pub fn total_ms(&self) -> f64 {
        self.encoder_ms + self.outcome.decode_ms()
    }

    /// The end-to-end latency breakdown.
    pub fn latency(&self) -> LatencyBreakdown {
        let mut breakdown = self.outcome.latency();
        breakdown.encoder_ms += self.encoder_ms;
        breakdown
    }

    /// Real-time factor: simulated processing time divided by audio duration
    /// (below 1.0 means faster than real time).
    pub fn real_time_factor(&self) -> f64 {
        if self.audio_seconds <= 0.0 {
            return 0.0;
        }
        (self.total_ms() / 1000.0) / self.audio_seconds
    }
}

/// An end-to-end LLM-based ASR pipeline under a decoding policy.
///
/// # Example
///
/// ```
/// use specasr::{AsrPipeline, Policy, SparseTreeConfig};
/// use specasr_audio::{Corpus, EncoderProfile, Split};
/// use specasr_models::{ModelProfile, SimulatedAsrModel, TokenizerBinding};
///
/// let corpus = Corpus::librispeech_like(3, 1);
/// let binding = TokenizerBinding::for_corpus(&corpus);
/// let target = SimulatedAsrModel::target(ModelProfile::whisper_medium_en(), 7);
/// let draft = SimulatedAsrModel::draft_paired(ModelProfile::whisper_tiny_en(), 8, &target);
///
/// let pipeline = AsrPipeline::new(
///     draft,
///     target,
///     EncoderProfile::whisper_medium_encoder(),
///     Policy::TwoPassSparseTree(SparseTreeConfig::paper()),
/// );
/// let output = pipeline.transcribe(&binding, &corpus.split(Split::TestClean)[0]);
/// assert!(!output.text.is_empty());
/// assert!(output.total_ms() > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct AsrPipeline<D, T> {
    draft: D,
    target: T,
    encoder: EncoderProfile,
    policy: Policy,
}

impl<D, T> AsrPipeline<D, T>
where
    D: AsrDecoderModel,
    T: AsrDecoderModel,
{
    /// Creates a pipeline from a draft/target pair, an encoder profile, and a
    /// decoding policy.
    pub fn new(draft: D, target: T, encoder: EncoderProfile, policy: Policy) -> Self {
        AsrPipeline {
            draft,
            target,
            encoder,
            policy,
        }
    }

    /// The decoding policy in use.
    pub fn policy(&self) -> &Policy {
        &self.policy
    }

    /// Replaces the decoding policy (useful when comparing policies on the
    /// same models).
    pub fn with_policy(mut self, policy: Policy) -> Self {
        self.policy = policy;
        self
    }

    /// Transcribes one utterance end to end.
    pub fn transcribe(&self, binding: &TokenizerBinding, utterance: &Utterance) -> PipelineOutput {
        let audio = binding.bind(utterance);
        let outcome = self.policy.decode(&self.draft, &self.target, &audio);
        let text = binding
            .tokenizer()
            .decode(&outcome.tokens)
            .expect("decoded tokens always come from the shared vocabulary");
        PipelineOutput {
            text,
            outcome,
            encoder_ms: self
                .encoder
                .latency_ms_for_audio(utterance.duration_seconds()),
            audio_seconds: utterance.duration_seconds(),
        }
    }

    /// Transcribes a batch of utterances, preserving order.
    pub fn transcribe_all<'a, I>(
        &self,
        binding: &TokenizerBinding,
        utterances: I,
    ) -> Vec<PipelineOutput>
    where
        I: IntoIterator<Item = &'a Utterance>,
    {
        utterances
            .into_iter()
            .map(|u| self.transcribe(binding, u))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AdaptiveConfig;
    use specasr_audio::{Corpus, Split};
    use specasr_metrics::wer_between;
    use specasr_models::{ModelProfile, SimulatedAsrModel};

    fn pipeline(
        policy: Policy,
    ) -> (
        AsrPipeline<SimulatedAsrModel, SimulatedAsrModel>,
        Corpus,
        TokenizerBinding,
    ) {
        let corpus = Corpus::librispeech_like(47, 4);
        let binding = TokenizerBinding::for_corpus(&corpus);
        let target = SimulatedAsrModel::target(ModelProfile::whisper_medium_en(), 7);
        let draft = SimulatedAsrModel::draft_paired(ModelProfile::whisper_tiny_en(), 8, &target);
        (
            AsrPipeline::new(
                draft,
                target,
                EncoderProfile::whisper_medium_encoder(),
                policy,
            ),
            corpus,
            binding,
        )
    }

    #[test]
    fn transcription_text_is_close_to_the_reference() {
        let (pipeline, corpus, binding) = pipeline(Policy::Autoregressive);
        let mut total = specasr_metrics::WerMeasurement::default();
        for utt in corpus.split(Split::TestClean) {
            let output = pipeline.transcribe(&binding, utt);
            total.accumulate(&wer_between(utt.transcript(), &output.text));
        }
        assert!(
            total.wer() < 0.15,
            "target-model WER on clean speech should be low, got {:.3}",
            total.wer()
        );
    }

    #[test]
    fn accelerated_policies_keep_the_same_text() {
        let (ar_pipeline, corpus, binding) = pipeline(Policy::Autoregressive);
        let accelerated = pipeline(Policy::AdaptiveSingleSequence(AdaptiveConfig::paper())).0;
        for utt in corpus.split(Split::DevOther).iter().take(3) {
            let reference = ar_pipeline.transcribe(&binding, utt);
            let fast = accelerated.transcribe(&binding, utt);
            assert_eq!(reference.text, fast.text);
            assert!(fast.total_ms() < reference.total_ms());
        }
    }

    #[test]
    fn latency_and_rtf_account_for_the_encoder() {
        let (pipeline, corpus, binding) = pipeline(Policy::Autoregressive);
        let utt = &corpus.split(Split::TestClean)[0];
        let output = pipeline.transcribe(&binding, utt);
        assert!(output.encoder_ms > 0.0);
        assert!(output.total_ms() > output.outcome.decode_ms());
        assert!(output.real_time_factor() > 0.0);
        assert!((output.latency().encoder_ms - output.encoder_ms).abs() < 1e-9);
    }

    #[test]
    fn transcribe_all_preserves_order() {
        let (pipeline, corpus, binding) = pipeline(Policy::Autoregressive);
        let split = corpus.split(Split::DevClean);
        let outputs = pipeline.transcribe_all(&binding, split);
        assert_eq!(outputs.len(), split.len());
        for (output, utt) in outputs.iter().zip(split.iter()) {
            assert!((output.audio_seconds - utt.duration_seconds()).abs() < 1e-12);
        }
    }
}
